// Window-based stream join (paper Section III-E) on the stock workload:
// match buy and sell orders per symbol, but only against orders from
// the last W seconds — the windowed semantics real trading systems use.
#include <iostream>

#include "common/table.hpp"
#include "datagen/stock.hpp"
#include "engine/engine.hpp"

using namespace fastjoin;

int main() {
  StockConfig wl;
  wl.num_symbols = 5'000;
  wl.volume_zipf = 1.2;
  wl.buy_rate = 30'000;
  wl.sell_rate = 30'000;
  wl.total_records = 400'000;

  std::cout << "Stock workload: " << wl.total_records << " orders over "
            << wl.num_symbols << " symbols\n\n";

  Table table({"window", "matches", "evicted", "peak store", "latency(ms)",
               "migrations"});
  // Sweep the window: sub-window 0.5 s, ring sizes 2..16 sub-windows,
  // plus full history for contrast.
  for (std::uint32_t subwindows : {2u, 4u, 8u, 16u, 0u}) {
    EngineConfig cfg;
    cfg.instances = 12;
    cfg.window_subwindows = subwindows;
    cfg.subwindow_len = kNanosPerSec / 2;
    cfg.balancer.monitor_period = kNanosPerSec / 4;
    cfg.metrics.warmup = from_seconds(1.0);
    cfg.cost.store_cost = 100 * kNanosPerMicro;
    cfg.cost.probe_base = 100 * kNanosPerMicro;
    cfg.cost.probe_per_match = 150.0 * kNanosPerMicro;
    cfg.cost.probe_match_cap = 1024;
    apply_system(cfg, SystemKind::kFastJoin);

    StockGenerator source(wl);
    SimJoinEngine engine(cfg);
    const RunReport rep = engine.run(source, from_seconds(30));

    std::uint64_t stored = 0;
    for (InstanceId i = 0; i < cfg.instances; ++i) {
      stored += engine.instance(Side::kR, i).store().size();
      stored += engine.instance(Side::kS, i).store().size();
    }
    const std::string label =
        subwindows == 0
            ? "full history"
            : std::to_string(subwindows * 0.5).substr(0, 4) + " s";
    table.add_row({label, static_cast<std::int64_t>(rep.results),
                   static_cast<std::int64_t>(rep.evicted),
                   static_cast<std::int64_t>(stored), rep.mean_latency_ms,
                   static_cast<std::int64_t>(rep.migrations)});
  }
  table.print(std::cout);
  std::cout << "\nWider windows keep more state and emit more matches; "
               "full history never evicts.\n";
  return 0;
}
