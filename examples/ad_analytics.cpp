// Advertisement analytics — the Photon-style use case from the paper's
// introduction: join a search-query (impression) stream with an
// ad-click stream on the campaign id to compute per-campaign
// click-through statistics in real time.
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "datagen/adclick.hpp"
#include "engine/engine.hpp"

using namespace fastjoin;

int main() {
  AdClickConfig wl;
  wl.num_campaigns = 30'000;
  wl.campaign_zipf = 1.1;
  wl.query_rate = 50'000;
  wl.click_through = 0.25;
  wl.total_records = 400'000;

  std::cout << "Ad-analytics workload: " << wl.total_records
            << " records, " << wl.num_campaigns << " campaigns, CTR "
            << wl.click_through << "\n\n";

  Table table({"system", "joined click-impressions", "throughput",
               "latency(ms)", "mean LI", "migrations"});
  for (auto system : {SystemKind::kBiStream, SystemKind::kFastJoin}) {
    EngineConfig cfg;
    cfg.instances = 12;
    cfg.balancer.monitor_period = kNanosPerSec / 4;
    cfg.metrics.warmup = from_seconds(1.0);
    cfg.cost.store_cost = 100 * kNanosPerMicro;
    cfg.cost.probe_base = 100 * kNanosPerMicro;
    cfg.cost.probe_per_match = 150.0 * kNanosPerMicro;
    cfg.cost.probe_match_cap = 1024;
    apply_system(cfg, system);

    AdClickGenerator source(wl);
    SimJoinEngine engine(cfg);
    const RunReport rep = engine.run(source, from_seconds(30));
    table.add_row({std::string(system_name(system)),
                   static_cast<std::int64_t>(rep.results),
                   rep.mean_throughput, rep.mean_latency_ms, rep.mean_li,
                   static_cast<std::int64_t>(rep.migrations)});
  }
  table.print(std::cout);

  // Offline sanity: per-campaign CTR on the raw stream (top campaigns).
  std::map<KeyId, std::pair<std::uint64_t, std::uint64_t>> stats;
  AdClickGenerator raw(wl);
  while (auto rec = raw.next()) {
    auto& [queries, clicks] = stats[rec->key];
    (rec->side == Side::kR ? queries : clicks)++;
  }
  std::vector<std::pair<std::uint64_t, KeyId>> ranked;
  for (const auto& [k, qc] : stats) ranked.push_back({qc.first, k});
  std::sort(ranked.rbegin(), ranked.rend());

  std::cout << "\nTop campaigns by impressions (ground truth):\n";
  Table top({"campaign", "impressions", "clicks", "CTR"});
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    const auto& [queries, clicks] = stats[ranked[i].second];
    top.add_row({static_cast<std::int64_t>(ranked[i].second % 100'000),
                 static_cast<std::int64_t>(queries),
                 static_cast<std::int64_t>(clicks),
                 queries ? static_cast<double>(clicks) / queries : 0.0});
  }
  top.print(std::cout);
  return 0;
}
