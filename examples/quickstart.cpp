// Quickstart — the minimal FastJoin program.
//
// Builds a skewed two-stream workload, runs the simulated cluster twice
// (BiStream's plain hash partitioning vs FastJoin's skew-aware dynamic
// balancing) and prints the comparison. ~40 lines of API surface:
//   KeyStreamSpec / TraceGenerator  — workload
//   EngineConfig  + apply_system()  — pick the system under test
//   SimJoinEngine::run()            — execute, get a RunReport
#include <iostream>

#include "datagen/trace.hpp"
#include "engine/engine.hpp"

using namespace fastjoin;

int main() {
  // Two streams over a shared key universe; both heavily skewed, with
  // rotated popularity so the hottest keys of R and S differ.
  KeyStreamSpec r_keys;
  r_keys.num_keys = 20'000;
  r_keys.zipf_s = 1.0;
  r_keys.seed = 1;
  KeyStreamSpec s_keys = r_keys;
  s_keys.seed = 2;
  s_keys.rank_offset = r_keys.num_keys / 3;

  TraceConfig trace;
  trace.r_rate = 20'000;      // tuples/sec, stream R
  trace.s_rate = 60'000;      // tuples/sec, stream S
  trace.total_records = 400'000;

  for (auto system : {SystemKind::kBiStream, SystemKind::kFastJoin}) {
    EngineConfig cfg;
    cfg.instances = 16;                       // join instances per side
    cfg.balancer.planner.theta = 2.2;         // LI threshold (paper)
    cfg.balancer.monitor_period = kNanosPerSec / 4;
    cfg.metrics.warmup = from_seconds(1.0);
    // Service-time model: flat per-op overheads plus a per-match term
    // (see CostModel); tuned so hot instances saturate while the
    // cluster average stays moderate.
    cfg.cost.store_cost = 100 * kNanosPerMicro;
    cfg.cost.probe_base = 100 * kNanosPerMicro;
    cfg.cost.probe_per_match = 150.0 * kNanosPerMicro;
    cfg.cost.probe_match_cap = 1024;
    apply_system(cfg, system);                // BiStream or FastJoin

    TraceGenerator source(r_keys, s_keys, trace);
    SimJoinEngine engine(cfg);
    const RunReport rep = engine.run(source, from_seconds(20));

    std::cout << system_name(system) << ":\n"
              << "  results      " << rep.results << "\n"
              << "  throughput   " << rep.mean_throughput << " results/s\n"
              << "  latency      " << rep.mean_latency_ms << " ms (p99 "
              << rep.p99_latency_ms << " ms)\n"
              << "  mean LI      " << rep.mean_li << "\n"
              << "  migrations   " << rep.migrations << "\n";
  }
  std::cout << "\nFastJoin should show lower LI and latency and higher "
               "throughput than BiStream on this skewed workload.\n";
  return 0;
}
