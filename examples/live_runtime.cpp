// Live runtime — the same FastJoin logic on real OS threads.
//
// Feeds a skewed stream into the multithreaded LiveEngine twice (with
// and without the balancer) and reports results, migrations and probe
// latency. Unlike the simulator examples, this one actually burns CPU:
// work_per_match_ns adds measurable per-match work so the balancer has
// something real to balance.
#include <chrono>
#include <iostream>

#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"

using namespace fastjoin;

int main() {
  KeyStreamSpec keys;
  keys.num_keys = 2'000;
  keys.zipf_s = 1.1;
  keys.seed = 5;

  const int total_records = 150'000;

  for (bool balancer : {false, true}) {
    LiveConfig cfg;
    cfg.instances = 4;
    cfg.balancer = balancer;
    cfg.planner.theta = 1.5;
    cfg.min_heaviest_load = 100.0;
    cfg.monitor_period = std::chrono::milliseconds(5);
    cfg.work_per_match_ns = 50;

    LiveEngine engine(cfg);
    engine.start();

    KeyGenerator gen(keys);
    Xoshiro256 rng(99);
    std::uint64_t r_seq = 0, s_seq = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < total_records; ++i) {
      Record rec;
      rec.side = rng.next_below(2) ? Side::kS : Side::kR;
      rec.key = gen();
      rec.seq = rec.side == Side::kR ? r_seq++ : s_seq++;
      rec.ts = i;
      engine.push(rec);
    }
    const LiveStats stats = engine.finish();
    const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    std::cout << (balancer ? "FastJoin (balancer on)"
                           : "BiStream (balancer off)")
              << ":\n"
              << "  wall time      " << wall << " ms\n"
              << "  results        " << stats.results << "\n"
              << "  probe latency  " << stats.mean_latency_us
              << " us mean, " << stats.p99_latency_us << " us p99\n"
              << "  migrations     " << stats.migrations << " ("
              << stats.tuples_migrated << " tuples)\n"
              << "  final LI       " << stats.final_li << "\n\n";
  }
  return 0;
}
