// Operations — elasticity and fault tolerance in one run.
//
// Starts an undersized FastJoin cluster on a skewed stream, scales out
// mid-run (new instances fill via key migrations, paper Section IV-C),
// then crashes an instance and recovers it from a checkpoint. Prints a
// phase-by-phase account.
#include <iostream>

#include "common/table.hpp"
#include "datagen/ride_hailing.hpp"
#include "engine/engine.hpp"

using namespace fastjoin;

int main() {
  RideHailingConfig wl;
  wl.num_locations = 20'000;
  wl.order_rate = 12'500;
  wl.track_rate = 50'000;
  wl.total_records = 600'000;  // ~9.6 s of virtual feed

  EngineConfig cfg;
  cfg.instances = 8;  // deliberately undersized
  cfg.balancer.planner.theta = 2.2;
  cfg.balancer.monitor_period = kNanosPerSec / 4;
  cfg.balancer.max_concurrent_migrations = 2;
  cfg.cost.store_cost = 150 * kNanosPerMicro;
  cfg.cost.probe_base = 150 * kNanosPerMicro;
  cfg.cost.probe_per_match = 400.0 * kNanosPerMicro;
  cfg.cost.probe_match_cap = 1024;
  cfg.checkpoint_period = kNanosPerSec / 2;
  cfg.metrics.warmup = from_seconds(1.0);
  apply_system(cfg, SystemKind::kFastJoin);

  RideHailingGenerator source(wl);
  SimJoinEngine engine(cfg);

  // t = 3 s: double the cluster. t = 6 s: crash S-instance 2.
  engine.schedule_scale_out(from_seconds(3.0), 8);
  engine.schedule_failure(from_seconds(6.0), Side::kS, 2);

  const RunReport rep = engine.run(source, from_seconds(30));

  std::cout << "Run with scale-out at 3 s and a crash at 6 s:\n\n";
  Table t({"metric", "value"});
  t.add_row({std::string("records"), static_cast<std::int64_t>(rep.records_in)});
  t.add_row({std::string("results"), static_cast<std::int64_t>(rep.results)});
  t.add_row({std::string("throughput (results/s)"), rep.mean_throughput});
  t.add_row({std::string("mean latency (ms)"), rep.mean_latency_ms});
  t.add_row({std::string("migrations"), static_cast<std::int64_t>(rep.migrations)});
  t.add_row({std::string("failures injected"), static_cast<std::int64_t>(rep.failures)});
  t.add_row({std::string("tuples recovered from checkpoint"),
             static_cast<std::int64_t>(rep.tuples_recovered)});
  t.print(std::cout);

  std::uint64_t on_new = 0;
  for (int g = 0; g < 2; ++g) {
    for (InstanceId i = 8; i < 16; ++i) {
      on_new += engine.instance(static_cast<Side>(g), i).store().size();
    }
  }
  std::cout << "\ntuples living on the 8 scaled-out instances: " << on_new
            << "\n";
  std::cout << "throughput timeline (per second):\n";
  for (const auto& p : rep.throughput_ts.resample(0, kNanosPerSec)) {
    std::cout << "  t=" << to_seconds(p.t) << "s  " << p.v << " results/s\n";
  }
  return 0;
}
