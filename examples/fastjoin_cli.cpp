// fastjoin_cli — config-driven experiment runner.
//
// Runs any workload x system combination from the command line and
// prints a run report; optionally saves/loads traces so an experiment
// can be replayed bit-for-bit.
//
//   fastjoin_cli workload=didi system=fastjoin instances=48 theta=2.2
//   fastjoin_cli workload=synthetic zr=1.0 zs=2.0 system=bistream
//   fastjoin_cli workload=stock records=500000 save=run.fjt
//   fastjoin_cli replay=run.fjt system=contrand
//
// Keys: workload=didi|synthetic|stock|adclick  system=fastjoin|
// fastjoin-sa|bistream|contrand  instances  theta  records  seed
// zr zs (synthetic zipf)  window (sub-windows)  save=<path>
// replay=<path>  duration (seconds)
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "common/table.hpp"
#include "datagen/adclick.hpp"
#include "datagen/ride_hailing.hpp"
#include "datagen/stock.hpp"
#include "datagen/trace_io.hpp"
#include "engine/engine.hpp"

using namespace fastjoin;

namespace {

std::unique_ptr<RecordSource> make_source(const Config& cfg) {
  if (cfg.has("replay")) {
    return std::make_unique<TraceFileSource>(cfg.get_str("replay", ""));
  }
  const std::string workload = cfg.get_str("workload", "didi");
  const auto records =
      static_cast<std::uint64_t>(cfg.get_int("records", 400'000));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));

  if (workload == "didi") {
    RideHailingConfig wl;
    wl.num_locations =
        static_cast<std::uint64_t>(cfg.get_int("keys", 20'000));
    wl.total_records = records;
    wl.seed = seed;
    return std::make_unique<RideHailingGenerator>(wl);
  }
  if (workload == "synthetic") {
    KeyStreamSpec r;
    r.num_keys = static_cast<std::uint64_t>(cfg.get_int("keys", 100'000));
    r.zipf_s = cfg.get_double("zr", 1.0);
    r.seed = seed;
    KeyStreamSpec s = r;
    s.zipf_s = cfg.get_double("zs", 1.0);
    s.seed = seed + 1000;
    TraceConfig tc;
    tc.total_records = records;
    tc.r_rate = cfg.get_double("r_rate", 25'000);
    tc.s_rate = cfg.get_double("s_rate", 25'000);
    return std::make_unique<TraceGenerator>(r, s, tc);
  }
  if (workload == "stock") {
    StockConfig wl;
    wl.total_records = records;
    wl.seed = seed;
    return std::make_unique<StockGenerator>(wl);
  }
  if (workload == "adclick") {
    AdClickConfig wl;
    wl.total_records = records;
    wl.seed = seed;
    return std::make_unique<AdClickGenerator>(wl);
  }
  throw std::runtime_error("unknown workload: " + workload);
}

SystemKind parse_system(const std::string& name) {
  if (name == "fastjoin") return SystemKind::kFastJoin;
  if (name == "fastjoin-sa") return SystemKind::kFastJoinSA;
  if (name == "bistream") return SystemKind::kBiStream;
  if (name == "contrand") return SystemKind::kBiStreamContRand;
  throw std::runtime_error("unknown system: " + name);
}

}  // namespace

int main(int argc, char** argv) try {
  const Config cfg = Config::from_args(argc, argv);
  if (cfg.has("help") || argc == 1) {
    std::cout
        << "usage: fastjoin_cli workload=didi|synthetic|stock|adclick "
           "system=fastjoin|fastjoin-sa|bistream|contrand\n"
           "  [instances=16] [theta=2.2] [records=400000] [seed=1]\n"
           "  [keys=N] [zr=] [zs=] [window=subwindows]\n"
           "  [save=trace.fjt] [replay=trace.fjt] [duration=secs]\n";
    return 0;
  }

  auto source = make_source(cfg);

  if (cfg.has("save")) {
    const auto n = write_trace_binary(cfg.get_str("save", ""), *source);
    std::cout << "wrote " << n << " records to "
              << cfg.get_str("save", "") << "\n";
    return 0;
  }

  EngineConfig ecfg;
  ecfg.instances =
      static_cast<std::uint32_t>(cfg.get_int("instances", 16));
  ecfg.balancer.planner.theta = cfg.get_double("theta", 2.2);
  ecfg.balancer.monitor_period = kNanosPerSec / 4;
  ecfg.metrics.warmup = from_seconds(cfg.get_double("warmup", 1.0));
  ecfg.cost.store_cost = 100 * kNanosPerMicro;
  ecfg.cost.probe_base = 100 * kNanosPerMicro;
  ecfg.cost.probe_per_match = 150.0 * kNanosPerMicro;
  ecfg.cost.probe_match_cap = 1024;
  ecfg.window_subwindows =
      static_cast<std::uint32_t>(cfg.get_int("window", 0));
  ecfg.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 1));
  apply_system(ecfg, parse_system(cfg.get_str("system", "fastjoin")));

  SimJoinEngine engine(ecfg);
  const auto rep =
      engine.run(*source, from_seconds(cfg.get_double("duration", 60)));

  Table t({"metric", "value"});
  t.add_row({std::string("records in"),
             static_cast<std::int64_t>(rep.records_in)});
  t.add_row({std::string("join results"),
             static_cast<std::int64_t>(rep.results)});
  t.add_row({std::string("throughput (results/s)"), rep.mean_throughput});
  t.add_row({std::string("mean latency (ms)"), rep.mean_latency_ms});
  t.add_row({std::string("p99 latency (ms)"), rep.p99_latency_ms});
  t.add_row({std::string("mean LI"), rep.mean_li});
  t.add_row({std::string("migrations"),
             static_cast<std::int64_t>(rep.migrations)});
  t.add_row({std::string("tuples migrated"),
             static_cast<std::int64_t>(rep.tuples_migrated)});
  t.add_row({std::string("evicted (window)"),
             static_cast<std::int64_t>(rep.evicted)});
  t.add_row({std::string("virtual time (s)"), to_seconds(rep.sim_end)});
  t.print(std::cout);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
