// Ride-hailing order dispatch — the paper's motivating application.
//
// Joins a passenger-order stream with a taxi-track stream on the
// location cell: every order meets every taxi that visits its cell
// (the simplified DiDi dispatch model of Section VI-A). Compares all
// three systems and prints the migration log.
#include <iostream>

#include "common/table.hpp"
#include "datagen/ride_hailing.hpp"
#include "engine/engine.hpp"

using namespace fastjoin;

int main() {
  RideHailingConfig wl;
  wl.num_locations = 20'000;
  wl.order_rate = 10'000;
  wl.track_rate = 40'000;
  wl.total_records = 500'000;

  std::cout << "Ride-hailing workload: " << wl.total_records
            << " records over " << wl.num_locations << " locations\n";
  {
    RideHailingGenerator probe(wl);
    std::cout << "calibrated zipf exponents: orders "
              << probe.order_exponent() << ", tracks "
              << probe.track_exponent() << "\n\n";
  }

  Table table({"system", "matches", "throughput", "latency(ms)",
               "mean LI", "migrations"});
  std::vector<MigrationEvent> fastjoin_log;
  for (auto system : {SystemKind::kBiStream, SystemKind::kBiStreamContRand,
                      SystemKind::kFastJoin}) {
    EngineConfig cfg;
    cfg.instances = 16;
    cfg.balancer.monitor_period = kNanosPerSec / 4;
    cfg.metrics.warmup = from_seconds(1.0);
    cfg.cost.store_cost = 100 * kNanosPerMicro;
    cfg.cost.probe_base = 100 * kNanosPerMicro;
    cfg.cost.probe_per_match = 150.0 * kNanosPerMicro;
    cfg.cost.probe_match_cap = 1024;
    apply_system(cfg, system);

    RideHailingGenerator source(wl);
    SimJoinEngine engine(cfg);
    const RunReport rep = engine.run(source, from_seconds(30));
    if (system == SystemKind::kFastJoin) fastjoin_log = rep.migration_log;

    table.add_row({std::string(system_name(system)),
                   static_cast<std::int64_t>(rep.results),
                   rep.mean_throughput, rep.mean_latency_ms, rep.mean_li,
                   static_cast<std::int64_t>(rep.migrations)});
  }
  table.print(std::cout);

  if (!fastjoin_log.empty()) {
    std::cout << "\nFastJoin migrations (hot location cells moving to "
                 "lighter instances):\n";
    Table mig({"t(s)", "group", "src", "dst", "LI", "keys", "tuples"});
    for (const auto& ev : fastjoin_log) {
      mig.add_row({to_seconds(ev.triggered_at),
                   std::string(side_name(ev.group)),
                   static_cast<std::int64_t>(ev.src),
                   static_cast<std::int64_t>(ev.dst), ev.li_before,
                   static_cast<std::int64_t>(ev.keys_moved),
                   static_cast<std::int64_t>(ev.tuples_moved)});
    }
    mig.print(std::cout);
  }
  return 0;
}
