#!/usr/bin/env bash
# clang-tidy over src/ with the repo's .clang-tidy profile, gated
# against a committed baseline so only NEW findings fail.
#
#   scripts/run_clang_tidy.sh                    # diff vs baseline
#   scripts/run_clang_tidy.sh --update-baseline  # refresh the baseline
#   scripts/run_clang_tidy.sh --findings FILE    # also write raw output
#
# Exits 0 when clang-tidy is not installed (prints a notice): the local
# container only ships GCC; the CI static-analysis job installs clang
# and runs this for real. Baseline entries are normalized
# "file:line: warning: ... [check]" lines (column dropped so unrelated
# same-line edits don't churn it).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/lint/clang_tidy_baseline.txt
BUILD_DIR=build-tidy
UPDATE=0
FINDINGS_OUT=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --update-baseline) UPDATE=1; shift ;;
    --findings) FINDINGS_OUT="$2"; shift 2 ;;
    *) echo "usage: $0 [--update-baseline] [--findings FILE]" >&2
       exit 2 ;;
  esac
done

TIDY=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
            clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then TIDY="$cand"; break; fi
done
if [[ -z $TIDY ]]; then
  echo "run_clang_tidy.sh: clang-tidy not installed; skipping" \
       "(the CI static-analysis job runs this leg)"
  exit 0
fi

jobs=$(nproc 2>/dev/null || echo 4)

# compile_commands.json; prefer a clang-configured cache so tidy's
# parser agrees with the flags.
if ! [[ -f $BUILD_DIR/compile_commands.json ]]; then
  extra=()
  if command -v clang++ >/dev/null 2>&1; then
    extra+=(-DCMAKE_CXX_COMPILER=clang++)
  fi
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        "${extra[@]}" >/dev/null
fi

mapfile -t sources < <(git ls-files 'src/**/*.cpp' 2>/dev/null ||
                       find src -name '*.cpp' | sort)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
# Collect everything; failures surface via the diff, not tidy's exit.
"$TIDY" -p "$BUILD_DIR" --quiet "${sources[@]}" >"$raw" 2>/dev/null || true
if [[ -n $FINDINGS_OUT ]]; then cp "$raw" "$FINDINGS_OUT"; fi

# Normalize: keep warning/error lines, make paths repo-relative, drop
# the column number.
norm=$(sed -E -e "s|$(pwd)/||g" \
              -e 's|^([^:]+:[0-9]+):[0-9]+:|\1:|' "$raw" |
       grep -E '^[^ ]+:[0-9]+: (warning|error):' | sort -u || true)

if [[ $UPDATE -eq 1 ]]; then
  printf '%s\n' "$norm" >"$BASELINE"
  echo "run_clang_tidy.sh: baseline updated" \
       "($(printf '%s\n' "$norm" | grep -c . || true) finding(s))"
  exit 0
fi

touch "$BASELINE"
new=$(comm -13 <(sort -u "$BASELINE") <(printf '%s\n' "$norm") |
      grep . || true)
if [[ -n $new ]]; then
  echo "run_clang_tidy.sh: NEW clang-tidy findings (not in $BASELINE):"
  printf '%s\n' "$new"
  exit 1
fi
echo "run_clang_tidy.sh: clean (no findings beyond the baseline)"
