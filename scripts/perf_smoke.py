#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh BENCH_live_scaling.json against the
committed baseline.

The gated quantity is the per-cell laned/locked *speedup ratio*, not
absolute throughput: shared CI runners disagree wildly on rec/s but
agree on whether the lock-free plane still beats the locked one on the
same box in the same run. A multi-producer cell whose ratio drops below
``tolerance`` x its committed value (default 0.9) fails the gate — that
is the exact shape of the regression PR 7 fixed (multi-producer laned
slower than locked), caught before it lands instead of three PRs later.

Single-producer cells are reported but not gated: with one producer the
two planes are within noise of each other by design, and gating a
ratio of ~1.0 on shared runners is a flake generator.

Usage:
    scripts/perf_smoke.py --baseline <committed.json> --current <fresh.json>
                          [--tolerance 0.9]

Exit codes: 0 clean, 1 regression or result mismatch, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_smoke: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def cell_key(cell):
    return (cell["producers"], cell["workers"], cell["zipf"])


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_live_scaling.json")
    ap.add_argument("--current", required=True,
                    help="freshly generated BENCH_live_scaling.json")
    ap.add_argument("--tolerance", type=float, default=0.9,
                    help="min current/baseline speedup ratio for "
                         "multi-producer cells (default 0.9)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    if not cur.get("results_identical", False):
        failures.append("current run: locked and laned results DIFFER "
                        "(exactness broken, numbers are meaningless)")

    base_cells = {cell_key(c): c for c in base.get("cells", [])}
    gated = skipped = 0
    for cell in cur.get("cells", []):
        key = cell_key(cell)
        label = (f"producers={key[0]} workers={key[1]} zipf={key[2]}")
        ref = base_cells.get(key)
        if ref is None:
            print(f"[  --  ] {label}: not in baseline, skipped")
            skipped += 1
            continue
        ratio = cell["speedup"] / ref["speedup"] if ref["speedup"] else 0.0
        line = (f"{label}: speedup {cell['speedup']:.2f}x "
                f"vs baseline {ref['speedup']:.2f}x "
                f"(ratio {ratio:.2f})")
        if key[0] <= 1:
            print(f"[ info ] {line} — single-producer, not gated")
            continue
        gated += 1
        if ratio < args.tolerance:
            print(f"[ FAIL ] {line} < tolerance {args.tolerance}")
            failures.append(line)
        else:
            print(f"[  ok  ] {line}")

    if gated == 0:
        failures.append("no multi-producer cells were gated — matrix "
                        "mismatch between baseline and current run?")

    print(f"\nperf_smoke: {gated} cells gated, {skipped} skipped, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
