#!/usr/bin/env bash
# Telemetry overhead acceptance: build the runtime twice — once with
# -DFASTJOIN_NO_TELEMETRY=ON (build-notel/), once normally (build/) —
# run bench/telemetry_overhead from both back-to-back, and leave
# BENCH_telemetry_overhead.json (ratio target >= 0.97) plus the sample
# trace/flight artifacts in the repo root.
#
#   scripts/bench_telemetry_overhead.sh [extra bench args, e.g. scale=0.3]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== building FASTJOIN_NO_TELEMETRY baseline (build-notel/) =="
cmake -B build-notel -S . -DFASTJOIN_NO_TELEMETRY=ON >/dev/null
cmake --build build-notel -j "$jobs" --target telemetry_overhead

echo "== building instrumented (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target telemetry_overhead

echo "== baseline leg =="
./build-notel/bench/telemetry_overhead "$@"

echo "== instrumented leg =="
./build/bench/telemetry_overhead "$@"

echo "bench_telemetry_overhead.sh: done (see BENCH_telemetry_overhead.json)"
