#!/usr/bin/env python3
"""fastjoin-lint: project-specific static checks the compiler can't do.

AST-lite: the pass works on comment/string-stripped, tokenized source
lines (stdlib only, no libclang). Rules:

  atomic-order       every std::atomic load/store/RMW names an explicit
                     std::memory_order (no seq_cst-by-default). RMW
                     methods (fetch_add, compare_exchange_*, exchange,
                     test_and_set) are atomic-only and always checked;
                     .load()/.store() and operator forms (++, +=, =) are
                     checked against a cross-file set of identifiers
                     declared std::atomic, so InstanceLoad::load() and
                     friends don't false-positive.
  hot-path-blocking  files tagged `// FASTJOIN_HOT_PATH` (whole file) or
                     regions between `// FASTJOIN_HOT_PATH_BEGIN` and
                     `// FASTJOIN_HOT_PATH_END` must not use mutexes,
                     condition variables, sleeps, or allocate inside a
                     loop.
  stub-parity        headers that carry both a real and a
                     FASTJOIN_NO_TELEMETRY stub branch must declare the
                     same classes with the same method names in both.
  banned-api         no C PRNG (rand/srand/random_shuffle), no gets, no
                     volatile-as-synchronization, no wall-clock/date
                     includes (<ctime>, <sys/time.h>) in src/ — steady
                     clocks only.
  protocol-clock     files tagged `// FASTJOIN_PROTOCOL_FILE` (the
                     migration/replay control plane and its model) must
                     not read steady_clock::now() or sleep directly —
                     time goes through the injectable Clock
                     (common/clock.hpp) so the protocol checker can run
                     it under virtual time. clk_->sleep_for(...) is
                     fine; std::this_thread::sleep_for is not.
  net-socket         raw socket/epoll usage (the <sys/socket.h> include
                     family, ::send/::recv and friends, epoll_*) is
                     confined to files tagged `// FASTJOIN_NET_FILE` —
                     which must live in src/net/. Everything else goes
                     through the Socket/Connection/EventLoop layer, so
                     framing, CRC checking and backpressure cannot be
                     bypassed by an ad-hoc write().
  parse-surface      files tagged `// FASTJOIN_PARSE_FILE` (the byte
                     decoders that face attacker-controlled input) must
                     fail by returning false, never by crashing: no
                     assert/abort/exit/throw; no ByteReader read whose
                     bool result is discarded (a statement-position
                     `r.u32(x);` silently continues on truncation); no
                     resize/reserve/new[] whose size expression
                     multiplies (`count * size` overflows before the
                     bound check — divide the bound instead, see
                     net::read_count). Additionally every
                     `bool decode(const std::vector<std::byte>&, T&)`
                     overload declared in a tagged header must have its
                     message type exercised by a fuzz harness under
                     --fuzz-dir (default: tests/fuzz), so new decoders
                     cannot land without harness coverage.
  atomic-padding     in FASTJOIN_HOT_PATH files/regions, a std::atomic
                     member declared without alignas() must not sit
                     directly next to a plain data member: an RMW on
                     the atomic invalidates the cache line carrying the
                     hot field (the false-sharing regression class that
                     cost SpscRing its close-flag padding). Atomics
                     next to other atomics are not flagged — packed
                     all-atomic records are a deliberate layout.

Escape hatch: `// fastjoin-lint: allow(<rule>)` on the offending line or
the line directly above suppresses that rule there (add a one-line
justification after a colon). A committed baseline
(scripts/lint/fastjoin_lint_baseline.json) gates only NEW findings;
refresh it with --update-baseline.

Usage:
  scripts/lint/fastjoin_lint.py [paths...]            # default: src/
  scripts/lint/fastjoin_lint.py --baseline FILE [--update-baseline]
  scripts/lint/fastjoin_lint.py --json out.json       # machine-readable

Exit status: 0 clean, 1 new findings, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass, field

CPP_EXTS = {".hpp", ".cpp", ".h", ".cc", ".cxx", ".hh"}

ALLOW_RE = re.compile(r"fastjoin-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str
    snippet: str

    def fingerprint(self) -> str:
        # Line-content based (not line-number based) so unrelated edits
        # above a baselined finding don't resurrect it.
        norm = re.sub(r"\s+", " ", self.snippet.strip())
        h = hashlib.sha256(f"{self.path}|{self.rule}|{norm}".encode())
        return h.hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    {self.snippet.strip()}")


@dataclass
class SourceFile:
    path: str
    raw_lines: list[str]
    code_lines: list[str]  # comments and string literals blanked
    allow: dict[int, set[str]] = field(default_factory=dict)  # 0-based

    def allowed(self, idx: int, rule: str) -> bool:
        for at in (idx, idx - 1):
            rules = self.allow.get(at)
            if rules and (rule in rules or "*" in rules):
                return True
        return False


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments and string/char literals, preserving layout
    (each construct is replaced with spaces so columns and line counts
    survive)."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        n = len(line)
        while i < n:
            c = line[i]
            if in_block:
                if c == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                buf.append(" " * (n - i))
                break
            if c == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                buf.append("  ")
                i += 2
                continue
            if c in "\"'":
                quote = c
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def load_file(path: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    sf = SourceFile(path=path, raw_lines=raw,
                    code_lines=strip_comments_and_strings(raw))
    for idx, line in enumerate(raw):
        m = ALLOW_RE.search(line)
        if m:
            sf.allow[idx] = {r.strip() for r in m.group(1).split(",")}
    return sf


# ---------------------------------------------------------------------------
# Rule: atomic-order
# ---------------------------------------------------------------------------

# Methods that only exist on std::atomic / std::atomic_flag: flag any
# call without a memory_order argument, receiver-independent.
ATOMIC_ONLY_METHODS = (
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong", "test_and_set",
)
# Methods shared with non-atomic types (InstanceLoad::load, ...): flag
# only when the receiver identifier is known to be a std::atomic.
ATOMIC_AMBIGUOUS_METHODS = ("load", "store", "exchange")

ATOMIC_DECL_RE = re.compile(
    r"std\s*::\s*atomic(?:_flag|_bool|_int|_uint|_size_t|_uint64_t)?\b")
# Identifier (with optional {...} init) that ends a declaration.
DECL_NAME_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\{[^{}]*\}|=[^,;]*)?\s*(?:[;,]|$)")

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "decltype", "static_assert", "catch", "new", "delete",
    "const", "constexpr", "static", "mutable", "explicit", "inline",
    "class", "struct", "public", "private", "protected", "namespace",
    "template", "typename", "using", "operator", "noexcept", "default",
    "true", "false", "nullptr", "do", "else", "break", "continue",
}


INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


# Declaration-shaped line WITHOUT std::atomic: a type token directly
# before the name. Used to un-shadow names that are atomic in an
# included header but plain in this file (`bool closed_` vs SpscRing's
# `std::atomic<bool> closed_`).
PLAIN_DECL_RE = re.compile(
    r"(?:\bauto\b|[A-Za-z_][\w:]*(?:<[^<>;]*>)?|[>\*&\]])\s+"
    r"([A-Za-z_]\w*)\s*(?:[A-Z_]+\([^)]*\)\s*)?(?:=|\{|;)")
DECL_KEYWORDS = {"return", "delete", "throw", "new", "co_return",
                 "case", "goto"}


def file_plain_names(sf: SourceFile) -> set[str]:
    names: set[str] = set()
    for line in sf.code_lines:
        if ATOMIC_DECL_RE.search(line):
            continue
        for m in PLAIN_DECL_RE.finditer(line):
            before = line[:m.start(1)].strip()
            first = before.split()[-1] if before else ""
            if first.rstrip("*&") in DECL_KEYWORDS:
                continue
            if m.group(1) not in CPP_KEYWORDS:
                names.add(m.group(1))
    return names


def file_atomic_names(sf: SourceFile) -> tuple[set[str], set[str]]:
    """(direct, wrapped) identifiers declared with std::atomic type in
    this file. `wrapped` names are containers OF atomics (e.g.
    unique_ptr<std::atomic<T>[]>): only their subscripted form is an
    atomic access."""
    names: set[str] = set()
    wrapped: set[str] = set()
    for line in sf.code_lines:
        m0 = ATOMIC_DECL_RE.search(line)
        if not m0:
            continue
        is_wrapped = line[:m0.start()].rstrip().endswith("<")
        # Only declaration-shaped lines: drop everything through the
        # last '>' of the template args, then take trailing identifiers
        # (handles alignas(64), mutable, arrays-in-unique_ptr and brace
        # inits).
        tail = line
        rest = line[m0.end():]
        gt = _skip_template_args(rest)
        if gt is not None:
            tail = rest[gt:]
        for dm in DECL_NAME_RE.finditer(tail):
            name = dm.group(1)
            if name not in CPP_KEYWORDS:
                (wrapped if is_wrapped else names).add(name)
    return names, wrapped


@dataclass
class AtomicScope:
    direct: set[str] = field(default_factory=set)
    wrapped: set[str] = field(default_factory=set)

    def __contains__(self, name: str) -> bool:
        return name in self.direct or name in self.wrapped


def collect_atomic_names(files: list[SourceFile]) -> dict[str, AtomicScope]:
    """Per-file atomic-identifier sets, scoped to the translation unit:
    a file sees its own std::atomic declarations plus those of project
    headers it directly #include-s (matched by path suffix), minus any
    name this file re-declares with a plain type. A global set would
    false-positive on common member names (`v`, `head`, `total_`) that
    are atomic in one class and plain in another."""
    own = {sf.path: file_atomic_names(sf) for sf in files}
    plain = {sf.path: file_plain_names(sf) for sf in files}
    by_suffix: dict[str, list[str]] = {}
    for sf in files:
        parts = sf.path.replace("\\", "/").split("/")
        for i in range(len(parts)):
            by_suffix.setdefault("/".join(parts[i:]), []).append(sf.path)
    scoped: dict[str, AtomicScope] = {}
    for sf in files:
        direct, wrapped = (set(own[sf.path][0]), set(own[sf.path][1]))
        for line in sf.raw_lines:
            m = INCLUDE_RE.search(line)
            if not m:
                continue
            for target in by_suffix.get(m.group(1), []):
                inc_direct, inc_wrapped = own[target]
                # Included names lose to this file's own plain decls.
                direct |= inc_direct - plain[sf.path]
                wrapped |= inc_wrapped - plain[sf.path]
        scoped[sf.path] = AtomicScope(direct, wrapped)
    return scoped


def _skip_template_args(s: str) -> int | None:
    """Given text starting right after 'std::atomic', return the index
    just past the balanced <...> (or 0 when there is none, e.g.
    atomic_flag)."""
    i = 0
    while i < len(s) and s[i].isspace():
        i += 1
    if i >= len(s) or s[i] != "<":
        return 0
    depth = 0
    while i < len(s):
        if s[i] == "<":
            depth += 1
        elif s[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return None  # unbalanced (multi-line decl) — skip


def _call_args(line: str, open_paren: int) -> str | None:
    """Text inside the balanced parens opening at `open_paren`, or None
    when the call spans lines (caller then peeks ahead)."""
    depth = 0
    for i in range(open_paren, len(line)):
        if line[i] == "(":
            depth += 1
        elif line[i] == ")":
            depth -= 1
            if depth == 0:
                return line[open_paren + 1:i]
    return None


METHOD_CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*)?"
    r"\b(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set)\s*\(")

ATOMIC_OP_ASSIGN_RE = re.compile(
    r"(?:^|[^\w.])([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*"
    r"(\+\+|--|\+=|-=|\|=|&=|\^=|=(?![=]))")
ATOMIC_PREFIX_RE = re.compile(
    r"(\+\+|--)\s*([A-Za-z_]\w*)\s*(\[[^\]]*\])?")


def _shadowed_decl(line: str, name_start: int) -> bool:
    """True when the match site is a declaration of a NEW variable with
    that name (`const auto pushed = lane->pushed.load(...)`) — a type
    token directly precedes the identifier. `->`/`(` / statement starts
    are real accesses."""
    prev = line[:name_start].rstrip()
    if not prev or prev.endswith(("->", "(", ",", ";", "{", "&&", "||",
                                  "=", "return")):
        return False
    return prev[-1].isalnum() or prev[-1] in "_>*&]"


def check_atomic_order(sf: SourceFile, scope: "AtomicScope",
                       findings: list[Finding]) -> None:
    rule = "atomic-order"
    lines = sf.code_lines
    for idx, line in enumerate(lines):
        for m in METHOD_CALL_RE.finditer(line):
            receiver, method = m.group(1), m.group(2)
            if method in ATOMIC_AMBIGUOUS_METHODS:
                if receiver is None or receiver not in scope:
                    continue
            # Balanced argument text; peek up to 3 continuation lines
            # for calls broken across lines.
            paren = line.index("(", m.end() - 1)
            args = _call_args(line, paren)
            peek = idx
            joined = line
            while args is None and peek + 1 < len(lines) and peek - idx < 3:
                peek += 1
                joined = joined + " " + lines[peek]
                args = _call_args(joined, paren)
            if args is None:
                continue
            if "memory_order" in args:
                continue
            if sf.allowed(idx, rule):
                continue
            findings.append(Finding(
                sf.path, idx + 1, rule,
                f"{method}() on std::atomic without an explicit "
                f"std::memory_order (implicit seq_cst)",
                sf.raw_lines[idx]))
    # Operator forms on known atomics: ++x / x++ / x += / x = v are all
    # implicit seq_cst RMWs or stores.
    for idx, line in enumerate(lines):
        if ATOMIC_DECL_RE.search(line):
            continue  # declaration with brace/equals init
        hits: set[str] = set()
        for m in ATOMIC_OP_ASSIGN_RE.finditer(line):
            name, sub = m.group(1), m.group(2)
            if name not in scope or name in CPP_KEYWORDS:
                continue
            if name in scope.wrapped and not sub:
                continue  # assigning the container, not an element
            if _shadowed_decl(line, m.start(1)):
                continue
            hits.add(name)
        for m in ATOMIC_PREFIX_RE.finditer(line):
            name, sub = m.group(2), m.group(3)
            if name not in scope or (name in scope.wrapped and not sub):
                continue
            hits.add(name)
        for name in sorted(hits):
            if sf.allowed(idx, "atomic-order"):
                continue
            findings.append(Finding(
                sf.path, idx + 1, "atomic-order",
                f"operator on std::atomic `{name}` is an implicit "
                f"seq_cst access; use an explicit-order method",
                sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Rule: hot-path-blocking
# ---------------------------------------------------------------------------

BLOCKING_TOKEN_RE = re.compile(
    r"std\s*::\s*(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
    r"|\b(MutexLockMaybe|MutexLock|UniqueLock|CondVar|Mutex)\b"
    r"|\b(sleep_for|sleep_until)\s*\(")

ALLOC_IN_LOOP_RE = re.compile(
    r"\bnew\b|\bmake_unique\b|\bmake_shared\b|\bmalloc\s*\(|"
    r"\bcalloc\s*\(|\bpush_back\s*\(|\bemplace_back\s*\(|"
    r"\bresize\s*\(|\breserve\s*\(")

LOOP_HEADER_RE = re.compile(r"(?:^|[^\w])(for|while)\s*\(")


def hot_regions(sf: SourceFile) -> list[tuple[int, int]]:
    """[start, end) line ranges (0-based) under hot-path rules."""
    head = "\n".join(sf.raw_lines[:5])
    if re.search(r"//\s*FASTJOIN_HOT_PATH\s*$", head, re.M):
        return [(0, len(sf.raw_lines))]
    regions = []
    start = None
    for idx, line in enumerate(sf.raw_lines):
        if "FASTJOIN_HOT_PATH_BEGIN" in line:
            start = idx
        elif "FASTJOIN_HOT_PATH_END" in line and start is not None:
            regions.append((start, idx + 1))
            start = None
    if start is not None:  # unterminated region runs to EOF
        regions.append((start, len(sf.raw_lines)))
    return regions


def check_hot_path(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "hot-path-blocking"
    regions = hot_regions(sf)
    if not regions:
        return
    # Loop extents: a stack of brace depths entered via a braced
    # for/while header.
    depth = 0
    loop_depths: list[int] = []
    in_loop_at: list[bool] = []
    pending_loop = False
    for idx, line in enumerate(sf.code_lines):
        if LOOP_HEADER_RE.search(line):
            pending_loop = True
        for c in line:
            if c == "{":
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
                depth += 1
            elif c == "}":
                depth -= 1
                if loop_depths and depth == loop_depths[-1]:
                    loop_depths.pop()
        if pending_loop and line.rstrip().endswith(";"):
            pending_loop = False  # braceless single-statement loop
        in_loop_at.append(bool(loop_depths))

    def in_region(idx: int) -> bool:
        return any(a <= idx < b for a, b in regions)

    for idx, line in enumerate(sf.code_lines):
        if not in_region(idx) or sf.allowed(idx, rule):
            continue
        m = BLOCKING_TOKEN_RE.search(line)
        if m:
            tok = next(g for g in m.groups() if g)
            findings.append(Finding(
                sf.path, idx + 1, rule,
                f"blocking primitive `{tok}` in a FASTJOIN_HOT_PATH "
                f"file/region", sf.raw_lines[idx]))
            continue
        if in_loop_at[idx]:
            am = ALLOC_IN_LOOP_RE.search(line)
            if am:
                findings.append(Finding(
                    sf.path, idx + 1, rule,
                    f"allocation-shaped call `{am.group(0).strip('(')}` "
                    f"inside a loop in a FASTJOIN_HOT_PATH file/region",
                    sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Rule: stub-parity
# ---------------------------------------------------------------------------

CLASS_DECL_RE = re.compile(r"^(class|struct)\s+([A-Za-z_]\w*)")
METHOD_NAME_RE = re.compile(r"(?<![\w.:>])([A-Za-z_]\w*)\s*\(")
MACROISH_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


def split_telemetry_branches(sf: SourceFile) -> tuple[list[str], list[str]] | None:
    """(real_lines, stub_lines) for a header with an
    #ifndef FASTJOIN_NO_TELEMETRY / #else / #endif split, else None."""
    real: list[str] = []
    stub: list[str] = []
    stack: list[str] = []  # 'real' / 'stub' / 'other'
    has_split = False
    for raw, code in zip(sf.raw_lines, sf.code_lines):
        s = raw.strip()
        if s.startswith("#ifndef") and "FASTJOIN_NO_TELEMETRY" in s:
            stack.append("real")
            continue
        if s.startswith("#ifdef") and "FASTJOIN_NO_TELEMETRY" in s:
            stack.append("stub")
            continue
        if s.startswith("#if"):
            stack.append("other")
            continue
        if s.startswith("#else"):
            if stack and stack[-1] == "real":
                stack[-1] = "stub"
                has_split = True
            elif stack and stack[-1] == "stub":
                stack[-1] = "real"
                has_split = True
            continue
        if s.startswith("#endif"):
            if stack:
                stack.pop()
            continue
        branch = next((b for b in reversed(stack) if b != "other"), None)
        if branch == "real":
            real.append(code)
        elif branch == "stub":
            stub.append(code)
    if not has_split or not stub:
        return None
    return real, stub


def extract_api(lines: list[str]) -> dict[str, set[str]]:
    """{class_name: {method names}} plus {'<free>': {...}} for functions
    at namespace scope. Only declarations at the class-body / namespace
    brace depth count, so calls inside inline bodies are ignored."""
    api: dict[str, set[str]] = {}
    depth = 0
    # (name or None-for-non-class scope, body_depth, access_public)
    class_stack: list[tuple[str | None, int, bool]] = []
    pending: tuple[str, str] | None = None  # (kind, name) awaiting '{'
    for line in lines:
        stripped = line.strip()
        m = CLASS_DECL_RE.match(stripped)
        if m and not stripped.rstrip().endswith(";"):
            pending = (m.group(1), m.group(2))
        if class_stack and stripped.startswith(("public:", "private:",
                                                "protected:")):
            name, bdepth, _ = class_stack[-1]
            class_stack[-1] = (name, bdepth,
                               stripped.startswith("public:"))
        # Method extraction happens before brace tracking so one-line
        # inline bodies are seen at class depth.
        at_class_depth = (class_stack
                          and depth == class_stack[-1][1] + 1
                          and class_stack[-1][0] is not None
                          and class_stack[-1][2])
        at_ns_depth = not class_stack and depth <= 1
        if (at_class_depth or at_ns_depth) \
                and not stripped.startswith(("#", ":", ",", ")")):
            mm = METHOD_NAME_RE.search(line)
            if mm:
                name = mm.group(1)
                if (name not in CPP_KEYWORDS
                        and not MACROISH_RE.match(name)):
                    key = class_stack[-1][0] if at_class_depth else "<free>"
                    api.setdefault(key, set()).add(name)
        for c in line:
            if c == "{":
                if pending:
                    kind, name = pending
                    top_level = depth <= 1
                    class_stack.append(
                        (name if top_level else None, depth,
                         kind == "struct"))
                    pending = None
                else:
                    # Any other brace (function body, namespace, enum):
                    # track anonymous scope when inside a class so
                    # nested depths don't count as class depth.
                    pass
                depth += 1
            elif c == "}":
                depth -= 1
                if class_stack and depth == class_stack[-1][1]:
                    class_stack.pop()
        if pending and stripped.endswith(";"):
            pending = None
    return api


def check_stub_parity(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "stub-parity"
    if not sf.path.endswith((".hpp", ".h", ".hh")):
        return  # .cpp bodies are legitimately real-branch-only
    branches = split_telemetry_branches(sf)
    if branches is None:
        return
    real_api = extract_api(branches[0])
    stub_api = extract_api(branches[1])
    if sf.allowed(0, rule) or sf.allowed(1, rule):
        return

    def report(msg: str) -> None:
        findings.append(Finding(sf.path, 1, rule, msg, sf.raw_lines[0]))

    for cls in sorted(set(real_api) | set(stub_api)):
        r = real_api.get(cls)
        s = stub_api.get(cls)
        if r is None or s is None:
            which = "stub" if s is None else "real"
            report(f"`{cls}` is declared in only one branch (missing "
                   f"from the {which} FASTJOIN_NO_TELEMETRY branch)")
            continue
        for name in sorted(r - s):
            report(f"`{cls}::{name}` exists in the real branch but not "
                   f"in the FASTJOIN_NO_TELEMETRY stub")
        for name in sorted(s - r):
            report(f"`{cls}::{name}` exists in the FASTJOIN_NO_TELEMETRY "
                   f"stub but not in the real branch")


# ---------------------------------------------------------------------------
# Rule: banned-api
# ---------------------------------------------------------------------------

BANNED_PATTERNS = [
    (re.compile(r"(?<![\w:])s?rand\s*\("), "C PRNG (rand/srand)",
     "use common/rng.hpp (seeded, reproducible)"),
    (re.compile(r"\brandom_shuffle\b"), "std::random_shuffle",
     "removed in C++17; use std::shuffle with common/rng"),
    (re.compile(r"(?<![\w:])gets\s*\("), "gets()",
     "unbounded read; removed from the standard"),
    (re.compile(r"\bvolatile\b"), "volatile",
     "volatile is not a synchronization primitive; use std::atomic"),
    (re.compile(r'#\s*include\s*<(ctime|time\.h|sys/time\.h)>'),
     "wall-clock/date include",
     "steady clocks only (telemetry/clock.hpp); wall time breaks "
     "replay determinism"),
]


def check_banned_api(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "banned-api"
    for idx, line in enumerate(sf.code_lines):
        # Includes are stripped? No: '<ctime>' survives stripping (not a
        # string), but use raw for include matching to be safe.
        for pat, what, why in BANNED_PATTERNS:
            target = sf.raw_lines[idx] if pat.pattern.startswith("#") \
                else line
            if pat.search(target):
                if sf.allowed(idx, rule):
                    continue
                findings.append(Finding(
                    sf.path, idx + 1, rule, f"{what}: {why}",
                    sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Rule: protocol-clock
# ---------------------------------------------------------------------------

PROTOCOL_TAG = "FASTJOIN_PROTOCOL_FILE"

# Direct clock reads and raw sleeps. Deliberately narrow: sleeps routed
# through the injectable Clock (`clk_->sleep_for(...)`) must stay legal,
# so only the this_thread-qualified forms and the C sleep family are
# banned; `steady_clock::time_point` as a type is fine, only ::now() is
# a wall-clock read.
PROTOCOL_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|\bthis_thread\s*::\s*(?:sleep_for|sleep_until)\s*\("
    r"|(?<![\w:.>])(?:usleep|nanosleep)\s*\(")


def check_protocol_clock(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "protocol-clock"
    head = "\n".join(sf.raw_lines[:5])
    if PROTOCOL_TAG not in head:
        return
    for idx, line in enumerate(sf.code_lines):
        m = PROTOCOL_CLOCK_RE.search(line)
        if not m:
            continue
        if sf.allowed(idx, rule):
            continue
        findings.append(Finding(
            sf.path, idx + 1, rule,
            f"direct wall-clock/sleep `{m.group(0).rstrip('(').strip()}` "
            f"in a {PROTOCOL_TAG}; route time through the injectable "
            f"Clock (common/clock.hpp) so the protocol checker can run "
            f"this path under virtual time",
            sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Rule: net-socket
# ---------------------------------------------------------------------------

NET_TAG = "FASTJOIN_NET_FILE"

NET_INCLUDE_RE = re.compile(
    r'#\s*include\s*<(sys/socket\.h|sys/epoll\.h|sys/un\.h|'
    r'netinet/[\w./]+|arpa/inet\.h|poll\.h|sys/select\.h)>')

# Global-scope-qualified socket syscalls (`::send`, never
# `Connection::send` — the lookbehind rejects a qualified name) plus
# the epoll family, whose bare names are unambiguous. poll/select are
# qualified-only: bare `poll(` is a legitimate method name elsewhere
# (ingest cursors).
NET_CALL_RE = re.compile(
    r"(?<![\w>])::\s*(send|recv|sendto|recvfrom|sendmsg|recvmsg|"
    r"socket|connect|accept4?|bind|listen|shutdown|"
    r"getsockopt|setsockopt|poll|ppoll|select)\s*\("
    r"|(?<![\w:.])(epoll_create1?|epoll_ctl|epoll_wait|epoll_pwait)\s*\(")


def check_net_socket(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "net-socket"
    norm = sf.path.replace("\\", "/")
    head = "\n".join(sf.raw_lines[:5])
    in_net = "/src/net/" in norm or norm.startswith("src/net/")
    in_src = "/src/" in norm or norm.startswith("src/")
    in_server = "/src/server/" in norm or norm.startswith("src/server/")
    if NET_TAG in head:
        # The tag is the exemption — and it is reserved for the
        # transport layer itself, or the boundary means nothing. The
        # serving layer in particular never qualifies: its whole design
        # is to reuse src/net (frames, event loop, connections).
        if in_src and not in_net and not sf.allowed(0, rule):
            where = ("src/server/ (the serving layer rides on src/net "
                     "by design)" if in_server else "src/net/")
            findings.append(Finding(
                sf.path, 1, rule,
                f"{NET_TAG} tag outside src/net/: the raw-socket "
                f"exemption is reserved for the transport layer, not "
                f"{where}",
                sf.raw_lines[0]))
        return
    for idx, line in enumerate(sf.code_lines):
        m = NET_INCLUDE_RE.search(sf.raw_lines[idx])
        if not m:
            m = NET_CALL_RE.search(line)
        if not m:
            continue
        if sf.allowed(idx, rule):
            continue
        what = next(g for g in m.groups() if g)
        hint = ("the serving front door must speak through src/net "
                "(Acceptor/Connection/EventLoop); raw sockets here "
                "bypass framing, CRC and backpressure"
                if in_server else
                "go through src/net (Socket/Connection/EventLoop), "
                "which owns framing, CRC and backpressure — or tag the "
                f"file {NET_TAG} if it IS the transport layer")
        findings.append(Finding(
            sf.path, idx + 1, rule,
            f"raw socket/epoll usage `{what}` outside the net layer; "
            f"{hint}",
            sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Rule: parse-surface
# ---------------------------------------------------------------------------

PARSE_TAG = "FASTJOIN_PARSE_FILE"

# Crash-on-input: a decoder that asserts or throws hands the attacker a
# remote kill switch. static_assert is compile-time and stays legal.
PARSE_CRASH_RE = re.compile(
    r"(?<![\w_])(?<!static_)assert\s*\("
    r"|(?<![\w:.])(?:abort|_exit|exit)\s*\("
    r"|(?<![\w:.])throw\b")

READER_DECL_RE = re.compile(r"\bByteReader\b\s*&?\s+([A-Za-z_]\w*)")

ALLOC_SIZE_RE = re.compile(r"\.\s*(resize|reserve)\s*(\()")
NEW_ARRAY_RE = re.compile(r"\bnew\s+[A-Za-z_][\w:<>\s]*\[([^\]]*)\]")


def is_parse_file(sf: SourceFile) -> bool:
    return PARSE_TAG in "\n".join(sf.raw_lines[:5])


def check_parse_surface(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "parse-surface"
    if not is_parse_file(sf):
        return
    reader_names = {m.group(1)
                    for line in sf.code_lines
                    for m in READER_DECL_RE.finditer(line)}
    reader_names -= CPP_KEYWORDS
    discard_re = None
    if reader_names:
        alts = "|".join(sorted(re.escape(n) for n in reader_names))
        # Statement-position read: nothing consumes the bool, so a
        # truncated buffer sails through with a zero-filled field.
        discard_re = re.compile(
            rf"^\s*(?:\(\s*void\s*\)\s*)?({alts})\s*\.\s*"
            rf"[A-Za-z_]\w*\s*\(")
    for idx, line in enumerate(sf.code_lines):
        m = PARSE_CRASH_RE.search(line)
        if m and not sf.allowed(idx, rule):
            what = m.group(0).rstrip("(").strip()
            findings.append(Finding(
                sf.path, idx + 1, rule,
                f"`{what}` in a {PARSE_TAG}: decoders face untrusted "
                f"bytes and must fail by returning false, not by "
                f"crashing the process",
                sf.raw_lines[idx]))
            continue
        if discard_re:
            # A line that merely continues an expression from above
            # (`return r.u64(a) &&\n  r.u32(b);`) has its result
            # consumed by the operator on the previous line.
            prev = ""
            for j in range(idx - 1, -1, -1):
                if sf.code_lines[j].strip():
                    prev = sf.code_lines[j].rstrip()
                    break
            continuation = prev.endswith(("&&", "||", "(", ",", "=",
                                          "?", ":", "return", "+", "!"))
            dm = discard_re.match(line)
            if dm and not continuation and line.rstrip().endswith(";") \
                    and not sf.allowed(idx, rule):
                findings.append(Finding(
                    sf.path, idx + 1, rule,
                    f"discarded ByteReader read on `{dm.group(1)}`: the "
                    f"bool result must be checked or truncated input "
                    f"silently yields zero-filled fields",
                    sf.raw_lines[idx]))
                continue
        sized = None
        for am in ALLOC_SIZE_RE.finditer(line):
            args = _call_args(line, am.start(2))
            if args is not None and "*" in args:
                sized = f".{am.group(1)}({args.strip()})"
                break
        if sized is None:
            nm = NEW_ARRAY_RE.search(line)
            if nm and "*" in nm.group(1):
                sized = nm.group(0)
        if sized is not None and not sf.allowed(idx, rule):
            findings.append(Finding(
                sf.path, idx + 1, rule,
                f"multiplied size expression `{sized}` in a "
                f"{PARSE_TAG}: `count * size` can overflow before any "
                f"bound check — divide the bound instead "
                f"(net::read_count)",
                sf.raw_lines[idx]))


# A decode overload declaration: bool decode(const std::vector<std::byte>&,
# T&). Matched in tagged headers only (definitions in .cpp would
# double-report the same surface).
DECODE_DECL_RE = re.compile(
    r"\bbool\s+decode\s*\(\s*const\s+std\s*::\s*vector\s*<\s*std\s*::\s*"
    r"byte\s*>\s*&\s*\w+\s*,\s*([A-Za-z_]\w*)\s*&")


def check_decode_parity(files: list[SourceFile], fuzz_dir: str | None,
                        findings: list[Finding]) -> None:
    """Every decode overload in a tagged header must have its message
    type named somewhere under the fuzz harness tree — a new decoder
    cannot land without a harness exercising it."""
    rule = "parse-surface"
    decls: list[tuple[SourceFile, int, str]] = []
    for sf in files:
        if not sf.path.endswith((".hpp", ".h", ".hh")):
            continue
        if not is_parse_file(sf):
            continue
        for idx, line in enumerate(sf.code_lines):
            m = DECODE_DECL_RE.search(line)
            if m:
                decls.append((sf, idx, m.group(1)))
    if not decls or fuzz_dir is None or not os.path.isdir(fuzz_dir):
        return
    corpus = []
    for root, dirs, names in os.walk(fuzz_dir):
        dirs[:] = [d for d in dirs if d != "corpus"]
        for f in sorted(names):
            if os.path.splitext(f)[1] in CPP_EXTS:
                with open(os.path.join(root, f), encoding="utf-8",
                          errors="replace") as fh:
                    corpus.append(fh.read())
    harness_text = "\n".join(corpus)
    for sf, idx, type_name in decls:
        if re.search(rf"\b{re.escape(type_name)}\b", harness_text):
            continue
        if sf.allowed(idx, rule):
            continue
        findings.append(Finding(
            sf.path, idx + 1, rule,
            f"decode overload for `{type_name}` has no fuzz harness: "
            f"no file under {os.path.relpath(fuzz_dir)} names the type. "
            f"Register it in the wire/client harness (tests/fuzz/) "
            f"and add seed corpus entries",
            sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Rule: atomic-padding
# ---------------------------------------------------------------------------

# A member-declaration-shaped line: ends with ';', no parens (excludes
# prototypes, macros, method bodies), not a brace/label/preprocessor
# line. Arrays and =/{...} initializers included.
MEMBER_DECL_RE = re.compile(
    r"^[A-Za-z_][\w:<>,\s\*&]*\s[A-Za-z_]\w*"
    r"(?:\s*\[[^\]]*\])?\s*(?:=[^;()]*|\{[^}()]*\})?\s*;\s*$")
NON_MEMBER_STARTS = ("using ", "typedef ", "return", "friend ",
                     "static_assert", "public", "private", "protected")


def _member_decl_kind(code_line: str) -> str | None:
    """'atomic' / 'plain' / None for a class-body line. Wrapped atomics
    (containers/pointers OF atomics) count as plain: the member itself
    is not the contended word."""
    s = code_line.strip()
    if not s or s.startswith(("#", "}", "{")) or \
            s.startswith(NON_MEMBER_STARTS):
        return None
    m = ATOMIC_DECL_RE.search(s)
    if m and not s[:m.start()].rstrip().endswith("<") and s.endswith(";"):
        return "atomic"
    if MEMBER_DECL_RE.match(s):
        return "plain"
    return None


def check_atomic_padding(sf: SourceFile, findings: list[Finding]) -> None:
    rule = "atomic-padding"
    regions = hot_regions(sf)
    if not regions:
        return

    def in_region(idx: int) -> bool:
        return any(a <= idx < b for a, b in regions)

    def neighbor_kind(idx: int, step: int) -> str | None:
        """Kind of the nearest non-blank code line in direction `step`,
        skipping pure-comment lines (blank after stripping)."""
        j = idx + step
        while 0 <= j < len(sf.code_lines):
            if sf.code_lines[j].strip():
                return _member_decl_kind(sf.code_lines[j])
            j += step
        return None

    for idx, line in enumerate(sf.code_lines):
        if not in_region(idx):
            continue
        if _member_decl_kind(line) != "atomic":
            continue
        if "alignas" in line:
            continue
        if neighbor_kind(idx, -1) != "plain" and \
                neighbor_kind(idx, +1) != "plain":
            continue
        if sf.allowed(idx, rule):
            continue
        findings.append(Finding(
            sf.path, idx + 1, rule,
            "unpadded std::atomic member adjacent to a plain data "
            "member in a FASTJOIN_HOT_PATH file/region: RMWs on it "
            "invalidate the neighbor's cache line (false sharing); "
            "alignas(64) the atomic or justify with an allow()",
            sf.raw_lines[idx]))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def iter_sources(paths: list[str]) -> list[str]:
    out = []
    for p in paths:
        if os.path.isfile(p):
            out.append(p)
            continue
        for root, dirs, files in os.walk(p):
            dirs[:] = [d for d in dirs if not d.startswith((".", "build"))]
            for f in sorted(files):
                if os.path.splitext(f)[1] in CPP_EXTS:
                    out.append(os.path.join(root, f))
    return sorted(set(out))


def run(paths: list[str], fuzz_dir: str | None = None) -> list[Finding]:
    files = [load_file(p) for p in iter_sources(paths)]
    atomic_scopes = collect_atomic_names(files)
    findings: list[Finding] = []
    for sf in files:
        check_atomic_order(sf, atomic_scopes[sf.path], findings)
        check_hot_path(sf, findings)
        check_stub_parity(sf, findings)
        check_banned_api(sf, findings)
        check_protocol_clock(sf, findings)
        check_net_socket(sf, findings)
        check_parse_surface(sf, findings)
        check_atomic_padding(sf, findings)
    check_decode_parity(files, fuzz_dir, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan (default: src)")
    ap.add_argument("--baseline", help="baseline JSON; only findings "
                    "not in it fail the run")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline with current findings")
    ap.add_argument("--json", dest="json_out",
                    help="write findings as JSON to this path")
    ap.add_argument("--fuzz-dir", dest="fuzz_dir",
                    help="fuzz harness tree for the parse-surface "
                    "decode-parity check (default: <repo>/tests/fuzz)")
    args = ap.parse_args(argv)

    repo = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or [os.path.join(repo, "src")]
    fuzz_dir = args.fuzz_dir or os.path.join(repo, "tests", "fuzz")
    try:
        findings = run(paths, fuzz_dir)
    except OSError as e:
        print(f"fastjoin-lint: {e}", file=sys.stderr)
        return 2

    # Report paths relative to the repo root for stable baselines.
    for f in findings:
        f.path = os.path.relpath(f.path, repo) \
            if os.path.isabs(f.path) else f.path

    baseline_counts: dict[str, int] = {}
    if args.baseline and os.path.exists(args.baseline) \
            and not args.update_baseline:
        try:
            with open(args.baseline, encoding="utf-8") as bf:
                data = json.load(bf)
            for entry in data.get("findings", []):
                fp = entry["fingerprint"]
                baseline_counts[fp] = baseline_counts.get(fp, 0) + 1
        except (OSError, ValueError, KeyError) as e:
            print(f"fastjoin-lint: bad baseline {args.baseline}: {e}",
                  file=sys.stderr)
            return 2

    new = []
    seen: dict[str, int] = {}
    for f in findings:
        fp = f.fingerprint()
        seen[fp] = seen.get(fp, 0) + 1
        if seen[fp] > baseline_counts.get(fp, 0):
            new.append(f)

    if args.json_out:
        payload = {"findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message, "fingerprint": f.fingerprint(),
             "baselined": f not in new}
            for f in findings]}
        with open(args.json_out, "w", encoding="utf-8") as jf:
            json.dump(payload, jf, indent=2)
            jf.write("\n")

    if args.update_baseline:
        if not args.baseline:
            print("fastjoin-lint: --update-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        payload = {"comment": "fastjoin-lint baseline: pre-existing "
                   "findings tolerated by CI. Regenerate with "
                   "--update-baseline after triage; new code must be "
                   "clean or carry an inline allow().",
                   "findings": [
                       {"path": f.path, "line": f.line, "rule": f.rule,
                        "message": f.message,
                        "fingerprint": f.fingerprint()}
                       for f in findings]}
        with open(args.baseline, "w", encoding="utf-8") as bf:
            json.dump(payload, bf, indent=2)
            bf.write("\n")
        print(f"fastjoin-lint: baseline updated with {len(findings)} "
              f"finding(s)")
        return 0

    for f in new:
        print(f.render())
    suppressed = len(findings) - len(new)
    print(f"fastjoin-lint: {len(new)} new finding(s), "
          f"{suppressed} baselined", file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
