#!/usr/bin/env bash
# Tier-1 gate plus sanitizer and static-analysis passes.
#
#   scripts/check.sh            # full: tier-1, TSan, ASan, UBSan,
#                               #       no-telemetry, static analysis
#   scripts/check.sh --tier1    # tier-1 only
#   scripts/check.sh --tsan     # TSan common+net+server+runtime+ingest+telemetry
#   scripts/check.sh --asan     # ASan common+net+server+runtime+ingest+telemetry
#   scripts/check.sh --ubsan    # UBSan common+net+server+runtime+ingest+telemetry
#   scripts/check.sh --notel    # FASTJOIN_NO_TELEMETRY build + ctest only
#   scripts/check.sh --static   # fastjoin-lint + clang-tidy +
#                               # -Werror=thread-safety build (clang legs
#                               # skip with a notice when clang is absent)
#   scripts/check.sh --protocol # deterministic protocol checker: full
#                               # exploration on a fixed seed plus extra
#                               # random seeds, self-test included
#   scripts/check.sh --fuzz     # trust-boundary fuzz harnesses under
#                               # ASan+UBSan: corpus replay + a timed
#                               # mutation budget per harness (libFuzzer
#                               # when built with clang, standalone
#                               # driver otherwise)
#
# The sanitizer passes rebuild into build-{tsan,asan,ubsan}/ (separate
# caches) and run the test_common, test_net, test_server, test_runtime,
# test_ingest and test_telemetry binaries, which cover the
# arena/buffer-pool recycling, the SPSC lanes, the frame codec and socket
# event loop, the serving front door (admission, slow clients, idle
# sweeps), the worker/monitor/supervisor threading, the chaos tests, and
# the StreamLog append/replay/truncation paths.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
run_asan=1
run_ubsan=1
run_notel=1
run_static=1
run_protocol=1
run_fuzz=1
case "${1:-}" in
  --tier1)  run_tsan=0; run_asan=0; run_ubsan=0; run_notel=0; run_static=0
            run_protocol=0; run_fuzz=0 ;;
  --tsan)   run_tier1=0; run_asan=0; run_ubsan=0; run_notel=0; run_static=0
            run_protocol=0; run_fuzz=0 ;;
  --asan)   run_tier1=0; run_tsan=0; run_ubsan=0; run_notel=0; run_static=0
            run_protocol=0; run_fuzz=0 ;;
  --ubsan)  run_tier1=0; run_tsan=0; run_asan=0; run_notel=0; run_static=0
            run_protocol=0; run_fuzz=0 ;;
  --notel)  run_tier1=0; run_tsan=0; run_asan=0; run_ubsan=0; run_static=0
            run_protocol=0; run_fuzz=0 ;;
  --static) run_tier1=0; run_tsan=0; run_asan=0; run_ubsan=0; run_notel=0
            run_protocol=0; run_fuzz=0 ;;
  --protocol) run_tier1=0; run_tsan=0; run_asan=0; run_ubsan=0; run_notel=0
            run_static=0; run_fuzz=0 ;;
  --fuzz)   run_tier1=0; run_tsan=0; run_asan=0; run_ubsan=0; run_notel=0
            run_static=0; run_protocol=0 ;;
  "") ;;
  *) echo "usage: $0 [--tier1|--tsan|--asan|--ubsan|--notel|--static|--protocol|--fuzz]" >&2
     exit 2 ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan: common + net + server + runtime + ingest + telemetry tests under -fsanitize=thread =="
  cmake -B build-tsan -S . -DFASTJOIN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_common \
    --target test_net --target test_server \
    --target test_runtime --target test_ingest --target test_telemetry
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_common
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_net
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_server
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_telemetry
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_ingest
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runtime
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== ASan: common + net + server + runtime + ingest + telemetry tests under -fsanitize=address =="
  cmake -B build-asan -S . -DFASTJOIN_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs" --target test_common \
    --target test_net --target test_server \
    --target test_runtime --target test_ingest --target test_telemetry
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_common
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_net
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_server
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_telemetry
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_ingest
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_runtime
fi

if [[ $run_ubsan -eq 1 ]]; then
  echo "== UBSan: common + net + server + runtime + ingest + telemetry tests under -fsanitize=undefined =="
  cmake -B build-ubsan -S . -DFASTJOIN_SANITIZE=undefined >/dev/null
  cmake --build build-ubsan -j "$jobs" --target test_common \
    --target test_net --target test_server \
    --target test_runtime --target test_ingest --target test_telemetry
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ./build-ubsan/tests/test_common
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ./build-ubsan/tests/test_net
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ./build-ubsan/tests/test_server
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ./build-ubsan/tests/test_telemetry
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ./build-ubsan/tests/test_ingest
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" ./build-ubsan/tests/test_runtime
fi

if [[ $run_notel -eq 1 ]]; then
  echo "== no-telemetry: FASTJOIN_NO_TELEMETRY=ON build + full test suite =="
  cmake -B build-notel -S . -DFASTJOIN_NO_TELEMETRY=ON >/dev/null
  cmake --build build-notel -j "$jobs"
  (cd build-notel && ctest --output-on-failure -j "$jobs")
fi

if [[ $run_static -eq 1 ]]; then
  echo "== static: fastjoin-lint =="
  python3 scripts/lint/fastjoin_lint.py \
    --baseline scripts/lint/fastjoin_lint_baseline.json

  echo "== static: clang-tidy (diff vs baseline) =="
  scripts/run_clang_tidy.sh

  echo "== static: Clang -Werror=thread-safety build =="
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DFASTJOIN_THREAD_SAFETY=ON >/dev/null
    cmake --build build-tsa -j "$jobs"
  else
    echo "clang++ not installed; skipping thread-safety build" \
         "(the CI static-analysis job runs this leg)"
  fi
fi

if [[ $run_protocol -eq 1 ]]; then
  echo "== protocol: deterministic-schedule checker =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs" --target protocol_check
  artifacts=build/protocol-artifacts
  mkdir -p "$artifacts"
  # Self-test first: a deliberately broken transition must be caught,
  # shrunk, and replayed from its dumped artifact.
  ./build/tools/protocol_check --self-test --artifact-dir "$artifacts"
  # Full exploration on the pinned seed (the one CI history compares
  # against), then a few extra seeds for schedule diversity. Seeds are
  # arbitrary but fixed so a red run is reproducible from the log line.
  for seed in 1 7 1337 990131; do
    echo "-- protocol_check --seed $seed"
    ./build/tools/protocol_check --seed "$seed" --artifact-dir "$artifacts"
  done
  echo "protocol: all seeds clean (artifacts, if any, in $artifacts)"
fi

if [[ $run_fuzz -eq 1 ]]; then
  echo "== fuzz: trust-boundary harnesses under ASan+UBSan =="
  # FASTJOIN_FUZZ picks the engine: libFuzzer under clang, the
  # standalone mutation driver under gcc. Either way each harness
  # replays its committed corpus and then spends a fixed wall-clock
  # budget mutating from it. Crash artifacts land in
  # build-fuzz/fuzz-artifacts/ — commit them as corpus regressions
  # alongside the fix.
  fuzz_budget="${FASTJOIN_FUZZ_SECONDS:-60}"
  cmake -B build-fuzz -S . -DFASTJOIN_FUZZ=ON \
    -DFASTJOIN_SANITIZE=address >/dev/null
  cmake --build build-fuzz -j "$jobs" --target fuzz_frame \
    --target fuzz_wire --target fuzz_client_protocol \
    --target fuzz_frontdoor --target fuzz_streamlog
  artifacts=build-fuzz/fuzz-artifacts
  mkdir -p "$artifacts"
  declare -A fuzz_corpus=(
    [fuzz_frame]=frame [fuzz_wire]=wire
    [fuzz_client_protocol]=client [fuzz_frontdoor]=frontdoor
    [fuzz_streamlog]=streamlog )
  # tests/fuzz/CMakeLists.txt stamps which engine the harnesses were
  # built with; the two dialects take different flags.
  engine=$(cat build-fuzz/fuzz_engine.txt 2>/dev/null || echo standalone)
  for h in fuzz_frame fuzz_wire fuzz_client_protocol fuzz_frontdoor \
           fuzz_streamlog; do
    corpus="tests/fuzz/corpus/${fuzz_corpus[$h]}"
    echo "-- $h ($corpus, ${fuzz_budget}s budget, $engine)"
    if [[ "$engine" == libfuzzer ]]; then
      # libFuzzer binary: corpus dir is positional, budget via flag.
      ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
        ./build-fuzz/tests/fuzz/"$h" -max_total_time="$fuzz_budget" \
        -artifact_prefix="$artifacts/" "$corpus"
    else
      ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
        ./build-fuzz/tests/fuzz/"$h" "$corpus" \
        --max-seconds "$fuzz_budget" --seed 1 --artifact-dir "$artifacts"
    fi
  done
  echo "fuzz: all harnesses clean (artifacts, if any, in $artifacts)"
fi

echo "check.sh: all requested passes green"
