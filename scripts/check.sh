#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes over the concurrent runtime.
#
#   scripts/check.sh            # full: tier-1, TSan, ASan, no-telemetry
#   scripts/check.sh --tier1    # tier-1 only
#   scripts/check.sh --tsan     # TSan runtime+ingest+telemetry tests only
#   scripts/check.sh --asan     # ASan runtime+ingest+telemetry tests only
#   scripts/check.sh --notel    # FASTJOIN_NO_TELEMETRY build + ctest only
#
# The sanitizer passes rebuild into build-tsan/ / build-asan/ (separate
# caches) and run the test_runtime and test_ingest binaries, which cover
# the worker/monitor/supervisor threading, the chaos tests, and the
# StreamLog append/replay/truncation paths.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
run_asan=1
run_notel=1
case "${1:-}" in
  --tier1) run_tsan=0; run_asan=0; run_notel=0 ;;
  --tsan) run_tier1=0; run_asan=0; run_notel=0 ;;
  --asan) run_tier1=0; run_tsan=0; run_notel=0 ;;
  --notel) run_tier1=0; run_tsan=0; run_asan=0 ;;
  "") ;;
  *) echo "usage: $0 [--tier1|--tsan|--asan|--notel]" >&2; exit 2 ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan: runtime + ingest + telemetry tests under -fsanitize=thread =="
  cmake -B build-tsan -S . -DFASTJOIN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_runtime \
    --target test_ingest --target test_telemetry
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_telemetry
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_ingest
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runtime
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== ASan: runtime + ingest + telemetry tests under -fsanitize=address =="
  cmake -B build-asan -S . -DFASTJOIN_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs" --target test_runtime \
    --target test_ingest --target test_telemetry
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_telemetry
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_ingest
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_runtime
fi

if [[ $run_notel -eq 1 ]]; then
  echo "== no-telemetry: FASTJOIN_NO_TELEMETRY=ON build + full test suite =="
  cmake -B build-notel -S . -DFASTJOIN_NO_TELEMETRY=ON >/dev/null
  cmake --build build-notel -j "$jobs"
  (cd build-notel && ctest --output-on-failure -j "$jobs")
fi

echo "check.sh: all requested passes green"
