#!/usr/bin/env bash
# Tier-1 gate plus a ThreadSanitizer pass over the concurrent runtime.
#
#   scripts/check.sh            # full: tier-1 build+tests, then TSan runtime
#   scripts/check.sh --tier1    # tier-1 only
#   scripts/check.sh --tsan     # TSan runtime tests only
#
# The TSan pass rebuilds into build-tsan/ (separate cache) and runs the
# test_runtime binary, which covers the worker/monitor/supervisor
# threading including the chaos tests.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
case "${1:-}" in
  --tier1) run_tsan=0 ;;
  --tsan) run_tier1=0 ;;
  "") ;;
  *) echo "usage: $0 [--tier1|--tsan]" >&2; exit 2 ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan: runtime tests under -fsanitize=thread =="
  cmake -B build-tsan -S . -DFASTJOIN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_runtime
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runtime
fi

echo "check.sh: all requested passes green"
