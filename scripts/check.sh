#!/usr/bin/env bash
# Tier-1 gate plus sanitizer passes over the concurrent runtime.
#
#   scripts/check.sh            # full: tier-1, then TSan, then ASan
#   scripts/check.sh --tier1    # tier-1 only
#   scripts/check.sh --tsan     # TSan runtime+ingest tests only
#   scripts/check.sh --asan     # ASan runtime+ingest tests only
#
# The sanitizer passes rebuild into build-tsan/ / build-asan/ (separate
# caches) and run the test_runtime and test_ingest binaries, which cover
# the worker/monitor/supervisor threading, the chaos tests, and the
# StreamLog append/replay/truncation paths.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
run_asan=1
case "${1:-}" in
  --tier1) run_tsan=0; run_asan=0 ;;
  --tsan) run_tier1=0; run_asan=0 ;;
  --asan) run_tier1=0; run_tsan=0 ;;
  "") ;;
  *) echo "usage: $0 [--tier1|--tsan|--asan]" >&2; exit 2 ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ $run_tier1 -eq 1 ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ $run_tsan -eq 1 ]]; then
  echo "== TSan: runtime + ingest tests under -fsanitize=thread =="
  cmake -B build-tsan -S . -DFASTJOIN_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target test_runtime --target test_ingest
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_ingest
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/test_runtime
fi

if [[ $run_asan -eq 1 ]]; then
  echo "== ASan: runtime + ingest tests under -fsanitize=address =="
  cmake -B build-asan -S . -DFASTJOIN_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs" --target test_runtime --target test_ingest
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_ingest
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" ./build-asan/tests/test_runtime
fi

echo "check.sh: all requested passes green"
