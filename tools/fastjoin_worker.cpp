// Standalone worker process for the multi-process plane.
//
// Normally spawned by fastjoin_router (or any MultiprocRouter host)
// as: fastjoin_worker --multiproc-worker --worker-id <i> --connect
// <endpoint>. It connects, handshakes, and serves frames until
// kFinish. Direct invocation with the same flags works too, which is
// handy for pointing a worker at a long-lived router by hand.
#include <cstdio>
#include <cstring>

#include "runtime/multiproc.hpp"

int main(int argc, char** argv) {
  const int rc = fastjoin::multiproc_worker_maybe_run(argc, argv);
  if (rc >= 0) return rc;
  // No --multiproc-worker flag: accept the bare form
  // `fastjoin_worker --worker-id N --connect EP` for manual runs.
  std::uint32_t id = 0;
  std::string endpoint;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--worker-id") == 0 && i + 1 < argc) {
      id = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      endpoint = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: fastjoin_worker [--multiproc-worker] "
                   "--worker-id <n> --connect <unix:path|tcp:port>\n");
      return 64;
    }
  }
  if (endpoint.empty()) {
    std::fprintf(stderr, "fastjoin_worker: --connect is required\n");
    return 64;
  }
  return fastjoin::multiproc_worker_run(id, endpoint);
}
