// Router process for the multi-process plane: generates (or will later
// accept) a stream, routes it to fastjoin_worker shards over the
// socket transport, and reports the join outcome as JSON.
//
// Demonstrates the full protocol surface from the command line:
//
//   fastjoin_router --workers 4 --records 200000 --zipf 1.2
//   fastjoin_router --workers 4 --kill 2@50000         # chaos: SIGKILL
//   fastjoin_router --workers 4 --migrate-hot 8        # live migration
//   fastjoin_router --workers 2 --endpoint tcp:0       # TCP transport
//
// Serving mode replaces the built-in generator with the client front
// door (src/server/): external fastjoin_client processes ingest
// tenant-authenticated batches and read per-key snapshot state; the
// router exits once every client has come and gone:
//
//   fastjoin_router --workers 2 --serve tcp:0 --serve-port-file ep.txt
//   fastjoin_router --workers 2 --serve tcp:7641 --verify-inproc
//
// --verify-inproc replays the router's own StreamLog through the
// in-process engine after the fact and exits nonzero unless the two
// planes' match-pair sets are byte-identical.
//
// The worker binary defaults to the sibling `fastjoin_worker` next to
// this executable; override with --worker-bin.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "datagen/keygen.hpp"
#include "runtime/live_engine.hpp"
#include "runtime/multiproc.hpp"

namespace {

using namespace fastjoin;

struct Options {
  std::uint32_t workers = 4;
  std::uint64_t records = 100'000;
  std::uint64_t keys = 10'000;
  double zipf = 1.1;
  std::uint64_t seed = 42;
  std::string endpoint = "unix:";
  std::string worker_bin;
  std::uint64_t checkpoint_every = 20'000;
  bool file_log = false;
  std::string log_dir = "streamlog-router";
  /// Chaos: SIGKILL worker `kill_worker` after `kill_after` records.
  std::int64_t kill_worker = -1;
  std::uint64_t kill_after = 0;
  /// Migrate the K hottest R-side keys away from their owners halfway.
  std::uint64_t migrate_hot = 0;
  /// Serving mode: listen for fastjoin_client on this endpoint
  /// ("tcp:0", "tcp:7641", "unix:/path"); empty = generator mode.
  std::string serve;
  /// Write the resolved serve endpoint here (tcp:0 → real port).
  std::string serve_port_file;
  /// Exit once this many clients have connected and all are gone.
  std::uint64_t serve_min_clients = 1;
  /// Hard wall-clock bound on serving (watchdog for CI).
  std::uint64_t serve_max_seconds = 120;
  /// Admission knobs forwarded to the front door.
  std::uint64_t serve_rate = 4 << 20;
  std::uint64_t serve_burst = 1 << 20;
  std::uint64_t serve_budget = 16 << 20;
  std::uint32_t serve_max_batch = 8192;
  /// Replay the StreamLog through the in-process engine afterwards and
  /// require byte-identical match sets (forces truncate_log=false).
  bool verify_inproc = false;
};

std::string sibling_worker_bin() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "fastjoin_worker";
  buf[n] = '\0';
  std::string self(buf);
  const std::size_t slash = self.find_last_of('/');
  if (slash == std::string::npos) return "fastjoin_worker";
  return self.substr(0, slash + 1) + "fastjoin_worker";
}

bool parse_args(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--workers" && (v = need(i))) {
      o.workers = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--records" && (v = need(i))) {
      o.records = std::strtoull(v, nullptr, 10);
    } else if (a == "--keys" && (v = need(i))) {
      o.keys = std::strtoull(v, nullptr, 10);
    } else if (a == "--zipf" && (v = need(i))) {
      o.zipf = std::strtod(v, nullptr);
    } else if (a == "--seed" && (v = need(i))) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--endpoint" && (v = need(i))) {
      o.endpoint = v;
    } else if (a == "--worker-bin" && (v = need(i))) {
      o.worker_bin = v;
    } else if (a == "--checkpoint-every" && (v = need(i))) {
      o.checkpoint_every = std::strtoull(v, nullptr, 10);
    } else if (a == "--file-log") {
      o.file_log = true;
    } else if (a == "--log-dir" && (v = need(i))) {
      o.log_dir = v;
      o.file_log = true;
    } else if (a == "--kill" && (v = need(i))) {
      const char* at = std::strchr(v, '@');
      if (!at) return false;
      o.kill_worker = std::strtol(v, nullptr, 10);
      o.kill_after = std::strtoull(at + 1, nullptr, 10);
    } else if (a == "--migrate-hot" && (v = need(i))) {
      o.migrate_hot = std::strtoull(v, nullptr, 10);
    } else if (a == "--serve" && (v = need(i))) {
      o.serve = v;
    } else if (a == "--serve-port-file" && (v = need(i))) {
      o.serve_port_file = v;
    } else if (a == "--serve-min-clients" && (v = need(i))) {
      o.serve_min_clients = std::strtoull(v, nullptr, 10);
    } else if (a == "--serve-max-seconds" && (v = need(i))) {
      o.serve_max_seconds = std::strtoull(v, nullptr, 10);
    } else if (a == "--serve-rate" && (v = need(i))) {
      o.serve_rate = std::strtoull(v, nullptr, 10);
    } else if (a == "--serve-burst" && (v = need(i))) {
      o.serve_burst = std::strtoull(v, nullptr, 10);
    } else if (a == "--serve-budget" && (v = need(i))) {
      o.serve_budget = std::strtoull(v, nullptr, 10);
    } else if (a == "--serve-max-batch" && (v = need(i))) {
      o.serve_max_batch =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--verify-inproc") {
      o.verify_inproc = true;
    } else {
      return false;
    }
  }
  return o.workers > 0 && (o.records > 0 || !o.serve.empty());
}

void usage() {
  std::fprintf(
      stderr,
      "usage: fastjoin_router [--workers N] [--records N] [--keys N]\n"
      "           [--zipf S] [--seed X] [--endpoint unix:|tcp:0]\n"
      "           [--worker-bin PATH] [--checkpoint-every N]\n"
      "           [--file-log] [--log-dir DIR]\n"
      "           [--kill W@N] [--migrate-hot K]\n"
      "           [--serve EP] [--serve-port-file PATH]\n"
      "           [--serve-min-clients N] [--serve-max-seconds N]\n"
      "           [--serve-rate B/s] [--serve-burst B] [--serve-budget B]\n"
      "           [--serve-max-batch N] [--verify-inproc]\n");
}

}  // namespace

int main(int argc, char** argv) {
  // This binary can serve as its own worker (useful for single-binary
  // deployments): fastjoin_router --multiproc-worker ...
  const int wrc = multiproc_worker_maybe_run(argc, argv);
  if (wrc >= 0) return wrc;

  Options o;
  if (!parse_args(argc, argv, o)) {
    usage();
    return 64;
  }
  if (o.worker_bin.empty()) o.worker_bin = sibling_worker_bin();

  MultiprocConfig cfg;
  cfg.workers = o.workers;
  cfg.endpoint = o.endpoint;
  cfg.worker_command = {o.worker_bin};
  cfg.checkpoint_every = o.checkpoint_every;
  if (o.file_log) {
    cfg.ingest.backend = SegmentBackend::kFile;
    cfg.ingest.dir = o.log_dir;
  }
  const bool serving = !o.serve.empty();
  if (serving) {
    cfg.serve = true;
    if (!net::Endpoint::parse(o.serve, cfg.serve_cfg.endpoint)) {
      std::fprintf(stderr, "fastjoin_router: bad --serve endpoint %s\n",
                   o.serve.c_str());
      return 64;
    }
    cfg.serve_cfg.admission.tenant_rate_bytes_per_sec = o.serve_rate;
    cfg.serve_cfg.admission.tenant_burst_bytes = o.serve_burst;
    cfg.serve_cfg.admission.global_budget_bytes = o.serve_budget;
    cfg.serve_cfg.admission.max_batch_records = o.serve_max_batch;
    if (o.verify_inproc) {
      // Byte-identical verification needs the workers' match pairs and
      // the complete log (front-door seq/ts stamps live only there).
      cfg.collect_matches = true;
      cfg.truncate_log = false;
    }
  }

  MultiprocRouter router(std::move(cfg));
  std::string err;
  if (!router.start(&err)) {
    std::fprintf(stderr, "fastjoin_router: start failed: %s\n", err.c_str());
    return 1;
  }
  std::fprintf(stderr, "fastjoin_router: %u workers on %s\n", o.workers,
               router.endpoint().c_str());

  bool serve_timed_out = false;
  if (serving) {
    const std::string serve_ep =
        router.frontdoor()->endpoint().to_string();
    std::fprintf(stderr, "fastjoin_router: serving clients on %s\n",
                 serve_ep.c_str());
    if (!o.serve_port_file.empty()) {
      std::FILE* f = std::fopen(o.serve_port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "fastjoin_router: cannot write %s\n",
                     o.serve_port_file.c_str());
        return 1;
      }
      std::fprintf(f, "%s\n", serve_ep.c_str());
      std::fclose(f);
    }
    // Serve until every client has come and gone (at least
    // serve_min_clients connected), with a wall-clock watchdog.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(o.serve_max_seconds);
    for (;;) {
      router.pump(std::chrono::milliseconds(10));
      const server::FrontDoorStats& fs = router.frontdoor()->stats();
      if (fs.accepted >= o.serve_min_clients &&
          router.frontdoor()->open_connections() == 0) {
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        serve_timed_out = true;
        std::fprintf(stderr, "fastjoin_router: serve watchdog fired\n");
        break;
      }
    }
  } else {
    KeyStreamSpec spec;
    spec.num_keys = o.keys;
    spec.zipf_s = o.zipf;
    spec.seed = o.seed;
    KeyGenerator gen(spec);

    std::uint64_t seq[2] = {0, 0};
    bool killed = false;
    bool migrated = false;
    for (std::uint64_t i = 0; i < o.records; ++i) {
      Record rec;
      rec.side = (i & 1) ? Side::kS : Side::kR;
      rec.key = gen();
      rec.seq = seq[static_cast<int>(rec.side)]++;
      rec.payload = i;
      rec.ts = static_cast<SimTime>(i);
      router.publish(rec);

      if (!killed && o.kill_worker >= 0 && i == o.kill_after) {
        killed = true;
        std::fprintf(stderr, "fastjoin_router: SIGKILL worker %ld at %llu\n",
                     static_cast<long>(o.kill_worker),
                     static_cast<unsigned long long>(i));
        router.kill_worker(static_cast<std::uint32_t>(o.kill_worker));
      }
      if (!migrated && o.migrate_hot > 0 && i == o.records / 2) {
        migrated = true;
        // Shed the hottest R-side keys from whichever worker owns each;
        // destination is the next worker around the ring.
        for (std::uint64_t r = 1; r <= o.migrate_hot; ++r) {
          const KeyId k = gen.key_for_rank(r);
          const std::uint32_t from = router.owner(Side::kR, k);
          const std::uint32_t to = (from + 1) % o.workers;
          router.request_migration(Side::kR, from, to, {k});
        }
      }
    }
  }
  if (!router.finish()) {
    std::fprintf(stderr, "fastjoin_router: finish timed out\n");
    return 1;
  }

  // Cross-plane verification: replay the router's own log (the only
  // holder of front-door seq/ts stamps) through the in-process engine
  // and require the byte-identical match-pair set.
  std::string verify = "skipped";
  if (o.verify_inproc) {
    std::vector<Record> trace;
    for (const LogRecord& lr : router.dump_log()) trace.push_back(lr.rec);
    LiveConfig lc;
    lc.instances = o.workers;
    lc.balancer = false;
    LiveEngine engine(lc);
    std::mutex mu;
    std::vector<MatchPair> inproc;
    engine.set_on_match([&](const MatchPair& p) {
      std::lock_guard<std::mutex> lk(mu);
      inproc.push_back(p);
    });
    engine.start();
    for (const Record& rec : trace) engine.push(rec);
    engine.finish();
    auto canon = [](std::vector<MatchPair> pairs) {
      std::vector<std::tuple<KeyId, std::uint64_t, std::uint64_t>> out;
      out.reserve(pairs.size());
      for (const MatchPair& p : pairs) {
        out.emplace_back(p.key, p.r_seq, p.s_seq);
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    verify =
        canon(router.take_matches()) == canon(std::move(inproc)) &&
                !trace.empty()
            ? "ok"
            : "mismatch";
  }

  const MultiprocStats& st = router.stats();
  std::uint64_t stores = 0, probes = 0, wmatches = 0;
  for (const auto& f : st.worker_finals) {
    stores += f.stores;
    probes += f.probes;
    wmatches += f.matches;
  }
  std::printf(
      "{\n"
      "  \"workers\": %u,\n"
      "  \"records\": %llu,\n"
      "  \"matches\": %llu,\n"
      "  \"worker_matches\": %llu,\n"
      "  \"stores\": %llu,\n"
      "  \"probes\": %llu,\n"
      "  \"records_dropped\": %llu,\n"
      "  \"worker_crashes\": %llu,\n"
      "  \"respawns\": %llu,\n"
      "  \"replayed_entries\": %llu,\n"
      "  \"suppressed_probes\": %llu,\n"
      "  \"migrations_completed\": %llu,\n"
      "  \"tuples_migrated\": %llu,\n"
      "  \"checkpoints_completed\": %llu,\n",
      o.workers, static_cast<unsigned long long>(st.records_published),
      static_cast<unsigned long long>(st.matches_total),
      static_cast<unsigned long long>(wmatches),
      static_cast<unsigned long long>(stores),
      static_cast<unsigned long long>(probes),
      static_cast<unsigned long long>(st.records_dropped),
      static_cast<unsigned long long>(st.worker_crashes),
      static_cast<unsigned long long>(st.respawns),
      static_cast<unsigned long long>(st.replayed_entries),
      static_cast<unsigned long long>(st.suppressed_probes),
      static_cast<unsigned long long>(st.migrations_completed),
      static_cast<unsigned long long>(st.tuples_migrated),
      static_cast<unsigned long long>(st.checkpoints_completed));
  if (serving) {
    const server::FrontDoorStats& fs = router.frontdoor()->stats();
    std::printf(
        "  \"serve\": {\n"
        "    \"clients\": %llu,\n"
        "    \"idle_closed\": %llu,\n"
        "    \"protocol_errors\": %llu,\n"
        "    \"backpressure_rejects\": %llu,\n"
        "    \"tenants\": {\n",
        static_cast<unsigned long long>(fs.accepted),
        static_cast<unsigned long long>(fs.idle_closed),
        static_cast<unsigned long long>(fs.protocol_errors),
        static_cast<unsigned long long>(fs.backpressure_rejects));
    std::size_t i = 0;
    for (const auto& [tenant, ts] : fs.tenants) {
      std::printf(
          "      \"%s\": {\"offered\": %llu, \"admitted\": %llu, "
          "\"rejected\": %llu, \"admitted_records\": %llu, "
          "\"queries\": %llu}%s\n",
          tenant.c_str(),
          static_cast<unsigned long long>(ts.offered_requests),
          static_cast<unsigned long long>(ts.admitted_requests),
          static_cast<unsigned long long>(ts.rejected_requests),
          static_cast<unsigned long long>(ts.admitted_records),
          static_cast<unsigned long long>(ts.queries),
          ++i == fs.tenants.size() ? "" : ",");
    }
    std::printf("    }\n  },\n");
  }
  std::printf("  \"verify\": \"%s\"\n}\n", verify.c_str());
  if (verify == "mismatch") return 3;
  if (serve_timed_out) return 4;
  return st.records_dropped == 0 ? 0 : 2;
}
