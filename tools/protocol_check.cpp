// FASTJOIN_PROTOCOL_FILE: protocol_check — deterministic-schedule
// checker for the supervised-migration / offset-replay protocol.
//
// Drives the side-effect-free protocol model (src/protocol/) through
// three exploration strategies per configuration:
//   1. a directed sweep that reaches every migration phase and injects
//      every fault kind there (guaranteed phase x fault coverage),
//   2. bounded-depth exhaustive DFS with sleep-set pruning,
//   3. seeded random walks for schedule volume.
//
// Every schedule ends in Model::drain_and_check, so each one is
// checked against the full invariant suite: zero duplicate emission,
// bounded loss with an exact drop ledger, monotone per-lane
// watermarks, abort-epoch consistency, and replay idempotence.
//
// On a violation the schedule is shrunk (ddmin) and dumped as a
// replayable trace artifact; `--replay <file>` re-runs it
// deterministically. `--self-test` verifies the checker catches
// deliberately broken transitions (route publish without HoldAck,
// absorb re-merge without seq dedup).
//
// Exit codes: 0 = clean, 1 = invariant violation (trace dumped),
// 2 = usage / coverage / self-test failure.
#include <chrono>  // fastjoin-lint: allow(protocol-clock) -- wall time
                   // is only used to *report* replay latency, never to
                   // schedule protocol steps.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "protocol/explorer.hpp"
#include "protocol/model.hpp"
#include "telemetry/flight_recorder.hpp"

namespace proto = fastjoin::protocol;
namespace tel = fastjoin::telemetry;

namespace {

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t walks = 600;        // per configuration
  std::uint32_t depth = 9;          // DFS depth
  std::uint64_t dfs_schedules = 2500;  // DFS schedule cap per config
  std::uint64_t min_schedules = 10000;  // distinct-schedule floor
  std::string artifact_dir = ".";
  std::string replay_file;
  bool self_test = false;
  bool quick = false;
};

void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --seed N            base seed for random walks (default 1)\n"
      << "  --walks N           random walks per config (default 600)\n"
      << "  --depth N           DFS depth bound (default 9)\n"
      << "  --dfs-schedules N   DFS schedule cap per config (default 2500)\n"
      << "  --min-schedules N   distinct-schedule floor (default 10000)\n"
      << "  --artifact-dir DIR  where failing traces are written\n"
      << "  --self-test         verify injected protocol bugs are caught\n"
      << "  --replay FILE       replay a dumped trace artifact\n"
      << "  --quick             reduced budgets (smoke mode)\n";
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--seed") {
      const char* v = need("--seed");
      if (!v) return false;
      o->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--walks") {
      const char* v = need("--walks");
      if (!v) return false;
      o->walks = std::strtoull(v, nullptr, 10);
    } else if (a == "--depth") {
      const char* v = need("--depth");
      if (!v) return false;
      o->depth = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--dfs-schedules") {
      const char* v = need("--dfs-schedules");
      if (!v) return false;
      o->dfs_schedules = std::strtoull(v, nullptr, 10);
    } else if (a == "--min-schedules") {
      const char* v = need("--min-schedules");
      if (!v) return false;
      o->min_schedules = std::strtoull(v, nullptr, 10);
    } else if (a == "--artifact-dir") {
      const char* v = need("--artifact-dir");
      if (!v) return false;
      o->artifact_dir = v;
    } else if (a == "--replay") {
      const char* v = need("--replay");
      if (!v) return false;
      o->replay_file = v;
    } else if (a == "--self-test") {
      o->self_test = true;
    } else if (a == "--quick") {
      o->quick = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return false;
    }
  }
  if (o->quick) {
    o->walks = std::min<std::uint64_t>(o->walks, 120);
    o->dfs_schedules = std::min<std::uint64_t>(o->dfs_schedules, 400);
    o->min_schedules = std::min<std::uint64_t>(o->min_schedules, 1500);
  }
  return true;
}

// Approximate mapping of model events onto the live flight-recorder
// vocabulary, so a checker violation leaves the same kind of
// post-mortem artifact a live crash would.
void flight_record_schedule(const std::vector<proto::Event>& sched) {
  using proto::EvKind;
  for (const auto& e : sched) {
    switch (e.kind) {
      case EvKind::kPush:
        tel::flight_record(tel::FlightEvent::kIngestAppend, e.a, 1);
        break;
      case EvKind::kData:
        tel::flight_record(tel::FlightEvent::kBatchPushed, e.a, e.b);
        break;
      case EvKind::kCtrl:
        tel::flight_record(tel::FlightEvent::kCtrlWindow, e.a, e.b);
        break;
      case EvKind::kMonitor:
        tel::flight_record(tel::FlightEvent::kMigrationStart, e.a, e.b);
        break;
      case EvKind::kCheckpoint:
        tel::flight_record(tel::FlightEvent::kCtrlCheckpoint, e.a, e.b);
        break;
      case EvKind::kCrash:
        tel::flight_record(tel::FlightEvent::kCrash, e.a, e.b);
        break;
      case EvKind::kDelay:
        tel::flight_record(tel::FlightEvent::kLaneBlocked, e.a, e.b);
        break;
      case EvKind::kRespawn:
        tel::flight_record(tel::FlightEvent::kRespawn, e.a, e.b);
        break;
    }
  }
}

std::string dump_artifacts(const Options& opts, const proto::Model& model,
                           const proto::Counterexample& ce,
                           const std::string& label) {
  const std::string trace = proto::format_trace(model, ce);
  const std::string trace_path =
      opts.artifact_dir + "/protocol_" + label + ".trace";
  std::ofstream out(trace_path);
  if (out) {
    out << trace;
    out.close();
  } else {
    std::cerr << "warning: cannot write " << trace_path << "\n";
  }
  flight_record_schedule(ce.schedule);
  tel::flight_record(tel::FlightEvent::kMigrationAbort, 0, 0);
  tel::flight_dump(opts.artifact_dir + "/protocol_" + label + ".flight");
  return trace_path;
}

int report_violation(const Options& opts, const proto::Model& model,
                     const proto::Counterexample& ce,
                     const std::string& label) {
  std::cerr << "\nINVARIANT VIOLATION: " << ce.violation.invariant << "\n"
            << "  " << ce.violation.detail << "\n"
            << "  schedule (" << ce.schedule.size() << " events";
  if (ce.walk_seed != 0) std::cerr << ", walk seed " << ce.walk_seed;
  std::cerr << "):\n";
  for (const auto& e : ce.schedule) {
    std::cerr << "    " << proto::event_name(e) << "\n";
  }
  const std::string path = dump_artifacts(opts, model, ce, label);
  std::cerr << "  trace artifact: " << path << "\n"
            << "  replay with: protocol_check --replay " << path << "\n";
  return 1;
}

// The configuration matrix explored in the main run: the axes that
// change protocol behavior (replay on/off, partition count, fault
// budgets incl. the double-fault case, back-to-back migrations).
std::vector<proto::ModelConfig> config_matrix(const Options& opts) {
  std::vector<proto::ModelConfig> out;
  proto::ModelConfig base;
  base.stream_seed = opts.seed;

  proto::ModelConfig c = base;  // replay on, 1 producer, single fault
  out.push_back(c);

  c = base;  // offset replay off: loss must be ledgered, not replayed
  c.replay = false;
  out.push_back(c);

  c = base;  // multi-partition: per-lane barriers actually diverge
  c.producers = 2;
  out.push_back(c);

  c = base;  // double fault: crash during replay/checkpoint windows
  c.max_crashes = 2;
  c.max_checkpoints = 1;
  out.push_back(c);

  c = base;  // two migrations back to back (abort then retry paths)
  c.max_migrations = 2;
  c.num_records = 12;
  out.push_back(c);

  c = base;  // delays + crash: timeout-forced crash interleavings
  c.max_delays = 2;
  out.push_back(c);
  return out;
}

// Every phase x fault cell the directed sweep can reach must have been
// injected at least once across the whole run.
bool check_coverage(const std::map<std::string, std::uint64_t>& cov) {
  const char* phases[] = {"select-wait", "hold-wait", "routed",
                          "forward-wait", "absorb", "release"};
  const char* wait_phases[] = {"select-wait", "hold-wait", "forward-wait"};
  bool ok = true;
  for (const char* p : phases) {
    for (const char* f : {"crash-src", "crash-dst"}) {
      const std::string key = std::string(p) + "/" + f;
      if (cov.find(key) == cov.end() || cov.at(key) == 0) {
        std::cerr << "coverage hole: " << key << " never exercised\n";
        ok = false;
      }
    }
  }
  for (const char* p : wait_phases) {
    const std::string key = std::string(p) + "/delay";
    if (cov.find(key) == cov.end() || cov.at(key) == 0) {
      std::cerr << "coverage hole: " << key << " never exercised\n";
      ok = false;
    }
  }
  return ok;
}

int run_main_check(const Options& opts) {
  const auto configs = config_matrix(opts);
  std::uint64_t total_schedules = 0, total_events = 0;
  std::uint64_t total_sleep = 0, total_dedup = 0;
  std::map<std::string, std::uint64_t> coverage;

  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const proto::Model model(configs[ci]);
    proto::ExplorerConfig ec;
    ec.max_depth = opts.depth;
    ec.max_schedules = opts.dfs_schedules;
    ec.seed = opts.seed + 1000 * ci;
    proto::Explorer ex(model, ec);

    std::optional<proto::Counterexample> ce = ex.directed_sweep();
    if (!ce) ce = ex.dfs();
    if (!ce) ce = ex.random_walks(opts.walks);

    const auto& st = ex.stats();
    std::cout << "config " << ci << " (replay="
              << (configs[ci].replay ? 1 : 0)
              << " producers=" << configs[ci].producers
              << " crashes=" << configs[ci].max_crashes
              << " delays=" << configs[ci].max_delays
              << " migrations=" << configs[ci].max_migrations << "): "
              << st.schedules << " schedules, " << st.events << " events, "
              << st.sleep_skips << " sleep-set prunes, " << st.dedup_skips
              << " dedup prunes\n";
    total_schedules += st.schedules;
    total_events += st.events;
    total_sleep += st.sleep_skips;
    total_dedup += st.dedup_skips;
    for (const auto& [k, v] : st.coverage) coverage[k] += v;

    if (ce) {
      return report_violation(opts, model, *ce,
                              "violation_" + ce->violation.invariant);
    }
  }

  std::cout << "\ntotal: " << total_schedules << " distinct schedules, "
            << total_events << " events applied (" << total_sleep
            << " sleep-set prunes, " << total_dedup << " dedup prunes)\n";
  std::cout << "fault coverage:\n";
  for (const auto& [k, v] : coverage) {
    std::cout << "  " << k << ": " << v << "\n";
  }

  if (!check_coverage(coverage)) return 2;
  if (total_schedules < opts.min_schedules) {
    std::cerr << "schedule floor not met: " << total_schedules << " < "
              << opts.min_schedules << "\n";
    return 2;
  }
  std::cout << "\nOK: no invariant violation in " << total_schedules
            << " schedules\n";
  return 0;
}

// Verify the checker catches a deliberately broken transition, shrinks
// it, and that the dumped artifact replays deterministically.
int run_self_test(const Options& opts) {
  struct Injection {
    const char* name;
    void (*arm)(proto::ModelConfig*);
  };
  const Injection injections[] = {
      {"skip-hold-ack",
       [](proto::ModelConfig* c) { c->skip_hold_ack = true; }},
      {"skip-absorb-dedup",
       [](proto::ModelConfig* c) { c->skip_absorb_dedup = true; }},
  };

  for (const auto& inj : injections) {
    proto::ModelConfig cfg;
    cfg.stream_seed = opts.seed;
    inj.arm(&cfg);
    // skip-absorb-dedup needs an abort re-merge to matter: allow a
    // delay so the timeout-abort path is reachable, and replay mode so
    // the restored copies exist to collide with.
    if (std::strcmp(inj.name, "skip-absorb-dedup") == 0) {
      cfg.max_delays = 2;
      cfg.max_crashes = 2;
      cfg.num_records = 12;
    }
    const proto::Model model(cfg);
    proto::ExplorerConfig ec;
    ec.max_depth = opts.depth;
    ec.max_schedules = opts.dfs_schedules;
    ec.seed = opts.seed;
    proto::Explorer ex(model, ec);

    std::optional<proto::Counterexample> ce = ex.directed_sweep();
    if (!ce) ce = ex.dfs();
    if (!ce) ce = ex.random_walks(opts.walks);
    if (!ce) {
      std::cerr << "self-test FAILED: injection " << inj.name
                << " produced no counterexample\n";
      return 2;
    }
    std::cout << "self-test " << inj.name << ": caught as '"
              << ce->violation.invariant << "', shrunk to "
              << ce->schedule.size() << " events\n";

    const std::string path =
        dump_artifacts(opts, model, *ce,
                       std::string("selftest_") + inj.name);

    // Round-trip: the artifact must reproduce the same invariant, and
    // the shrunk replay must be fast (virtual time, no sleeps).
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    proto::ModelConfig rcfg;
    std::vector<proto::Event> sched;
    std::string invariant;
    if (!proto::parse_trace(buf.str(), &rcfg, &sched, &invariant)) {
      std::cerr << "self-test FAILED: artifact " << path
                << " did not parse\n";
      return 2;
    }
    const proto::Model rmodel(rcfg);
    proto::Explorer rex(rmodel, ec);
    const auto t0 = std::chrono::steady_clock::now();  // fastjoin-lint: allow(protocol-clock) replay wall-time budget
    auto rv = rex.run_schedule(sched);
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);  // fastjoin-lint: allow(protocol-clock) replay wall-time budget
    if (!rv || rv->invariant != invariant) {
      std::cerr << "self-test FAILED: replay of " << path
                << " did not reproduce '" << invariant << "' (got "
                << (rv ? rv->invariant : std::string("clean")) << ")\n";
      return 2;
    }
    std::cout << "self-test " << inj.name << ": replayed from artifact in "
              << elapsed.count() << " ms -> '" << rv->invariant << "'\n";
    if (elapsed.count() >= 1000) {
      std::cerr << "self-test FAILED: shrunk replay took "
                << elapsed.count() << " ms (>= 1 s)\n";
      return 2;
    }
  }
  std::cout << "\nself-test OK: both injected bugs caught, shrunk, and "
               "deterministically replayed\n";
  return 0;
}

int run_replay(const Options& opts) {
  std::ifstream in(opts.replay_file);
  if (!in) {
    std::cerr << "cannot open " << opts.replay_file << "\n";
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  proto::ModelConfig cfg;
  std::vector<proto::Event> sched;
  std::string invariant;
  if (!proto::parse_trace(buf.str(), &cfg, &sched, &invariant)) {
    std::cerr << "malformed trace: " << opts.replay_file << "\n";
    return 2;
  }
  const proto::Model model(cfg);
  proto::ExplorerConfig ec;
  proto::Explorer ex(model, ec);
  std::vector<proto::Event> applied;
  auto v = ex.run_schedule(sched, &applied);
  std::cout << "replayed " << applied.size() << "/" << sched.size()
            << " events\n";
  for (const auto& e : applied) {
    std::cout << "  " << proto::event_name(e) << "\n";
  }
  if (v) {
    std::cout << "violation reproduced: " << v->invariant << " -- "
              << v->detail << "\n";
    return 1;
  }
  std::cout << "no violation (schedule is clean under this build)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, &opts)) {
    usage(argv[0]);
    return 2;
  }
  if (!opts.replay_file.empty()) return run_replay(opts);
  if (opts.self_test) return run_self_test(opts);
  return run_main_check(opts);
}
