// Load-generating client for the serving front door.
//
// Speaks the src/server/ client protocol over a blocking FrameConn:
// hello as a tenant, stream appends in fixed-size batches
// (request-response, so every ack latency is measurable), optionally
// issue per-key queries at the end, say goodbye, report JSON.
//
//   fastjoin_client --connect tcp:7641 --tenant t1 --records 100000
//   fastjoin_client --port-file ep.txt --tenant abusive --abusive
//
// A well-behaved client sleeps out every kRejected{retry_after_ms}
// before retrying the same batch; --abusive ignores the hint and
// immediately re-offers, which is how the serving-smoke CI job
// provokes a nonzero reject count without ever being silently
// dropped. Every offered request is accounted: admitted + rejected ==
// offered, always.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/keygen.hpp"
#include "net/connection.hpp"
#include "server/protocol.hpp"

namespace {

using namespace fastjoin;

struct Options {
  std::string connect;      ///< "tcp:7641" / "unix:/path"
  std::string port_file;    ///< read the endpoint from this file instead
  std::string tenant = "default";
  std::uint64_t records = 100'000;
  std::uint32_t batch = 256;
  std::uint64_t keys = 10'000;
  double zipf = 1.1;
  std::uint64_t seed = 42;
  std::uint64_t queries = 0;  ///< per-key queries issued after ingest
  /// Ignore retry_after and immediately re-offer rejected batches (up
  /// to --max-attempts per batch, so an abusive run still terminates).
  bool abusive = false;
  std::uint32_t max_attempts = 50;
  std::uint64_t connect_timeout_ms = 10'000;
};

bool parse_args(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--connect" && (v = need(i))) {
      o.connect = v;
    } else if (a == "--port-file" && (v = need(i))) {
      o.port_file = v;
    } else if (a == "--tenant" && (v = need(i))) {
      o.tenant = v;
    } else if (a == "--records" && (v = need(i))) {
      o.records = std::strtoull(v, nullptr, 10);
    } else if (a == "--batch" && (v = need(i))) {
      o.batch = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--keys" && (v = need(i))) {
      o.keys = std::strtoull(v, nullptr, 10);
    } else if (a == "--zipf" && (v = need(i))) {
      o.zipf = std::strtod(v, nullptr);
    } else if (a == "--seed" && (v = need(i))) {
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--queries" && (v = need(i))) {
      o.queries = std::strtoull(v, nullptr, 10);
    } else if (a == "--abusive") {
      o.abusive = true;
    } else if (a == "--max-attempts" && (v = need(i))) {
      o.max_attempts =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (a == "--connect-timeout-ms" && (v = need(i))) {
      o.connect_timeout_ms = std::strtoull(v, nullptr, 10);
    } else {
      return false;
    }
  }
  return (!o.connect.empty() || !o.port_file.empty()) && o.batch > 0 &&
         o.records > 0 && o.max_attempts > 0;
}

void usage() {
  std::fprintf(
      stderr,
      "usage: fastjoin_client (--connect EP | --port-file PATH)\n"
      "           [--tenant NAME] [--records N] [--batch N] [--keys N]\n"
      "           [--zipf S] [--seed X] [--queries N] [--abusive]\n"
      "           [--max-attempts N] [--connect-timeout-ms N]\n");
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, o)) {
    usage();
    return 64;
  }

  std::string ep_str = o.connect;
  if (ep_str.empty()) {
    // The router writes its resolved endpoint here (tcp:0 mode); wait
    // for the file to appear within the connect timeout.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(o.connect_timeout_ms);
    for (;;) {
      std::ifstream f(o.port_file);
      if (f && std::getline(f, ep_str) && !ep_str.empty()) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "fastjoin_client: no endpoint in %s\n",
                     o.port_file.c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  net::Endpoint ep;
  if (!net::Endpoint::parse(ep_str, ep)) {
    std::fprintf(stderr, "fastjoin_client: bad endpoint %s\n",
                 ep_str.c_str());
    return 64;
  }

  std::string err;
  net::FrameConn conn = net::FrameConn::connect(
      ep, std::chrono::milliseconds(o.connect_timeout_ms), &err);
  if (!conn.valid()) {
    std::fprintf(stderr, "fastjoin_client: connect failed: %s\n",
                 err.c_str());
    return 1;
  }

  auto send = [&](server::ClientMsgType t,
                  const std::vector<std::byte>& payload) {
    return conn.write_frame(static_cast<std::uint16_t>(t), payload);
  };
  net::Frame reply;

  server::ClientHelloMsg hello;
  hello.tenant = o.tenant;
  if (!send(server::ClientMsgType::kClientHello, encode(hello)) ||
      !conn.read_frame(reply)) {
    std::fprintf(stderr, "fastjoin_client: hello failed: %s\n",
                 conn.error().c_str());
    return 1;
  }
  server::ClientHelloAckMsg hack;
  if (static_cast<server::ClientMsgType>(reply.type) !=
          server::ClientMsgType::kClientHelloAck ||
      !decode(reply.payload, hack) || hack.ok == 0) {
    std::fprintf(stderr, "fastjoin_client: hello refused\n");
    return 1;
  }

  KeyStreamSpec spec;
  spec.num_keys = o.keys;
  spec.zipf_s = o.zipf;
  spec.seed = o.seed;
  KeyGenerator gen(spec);

  std::uint64_t offered_requests = 0, admitted_requests = 0;
  std::uint64_t rejected_requests = 0;
  std::uint64_t offered_records = 0, admitted_records = 0;
  std::uint64_t rejected_records = 0, parked_records = 0;
  std::uint64_t dropped_batches = 0;  ///< gave up after max_attempts
  std::uint64_t retry_sleep_ms = 0;
  std::uint64_t reject_by_reason[8] = {};
  std::vector<double> ack_us;
  ack_us.reserve(o.records / o.batch + 1);

  std::uint64_t next_req = 1;
  std::uint64_t produced = 0;
  const auto wall_start = std::chrono::steady_clock::now();
  while (produced < o.records) {
    server::AppendMsg msg;
    msg.req_id = next_req++;
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(o.batch, o.records - produced));
    msg.records.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      server::ClientRecord cr;
      cr.side = ((produced + i) & 1) ? Side::kS : Side::kR;
      cr.key = gen();
      cr.payload = produced + i;
      msg.records.push_back(cr);
    }
    const std::vector<std::byte> payload = encode(msg);

    bool delivered = false;
    for (std::uint32_t attempt = 0; attempt < o.max_attempts; ++attempt) {
      ++offered_requests;
      offered_records += n;
      const auto t0 = std::chrono::steady_clock::now();
      if (!send(server::ClientMsgType::kAppend, payload) ||
          !conn.read_frame(reply)) {
        std::fprintf(stderr, "fastjoin_client: append failed: %s\n",
                     conn.error().c_str());
        return 1;
      }
      const auto t1 = std::chrono::steady_clock::now();
      if (static_cast<server::ClientMsgType>(reply.type) ==
          server::ClientMsgType::kAppendAck) {
        server::AppendAckMsg ack;
        if (!decode(reply.payload, ack) || ack.req_id != msg.req_id) {
          std::fprintf(stderr, "fastjoin_client: bad append ack\n");
          return 1;
        }
        ++admitted_requests;
        admitted_records += ack.appended + ack.parked;
        parked_records += ack.parked;
        ack_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        delivered = true;
        break;
      }
      if (static_cast<server::ClientMsgType>(reply.type) !=
          server::ClientMsgType::kRejected) {
        std::fprintf(stderr, "fastjoin_client: unexpected reply %u\n",
                     reply.type);
        return 1;
      }
      server::RejectedMsg rej;
      if (!decode(reply.payload, rej) || rej.req_id != msg.req_id) {
        std::fprintf(stderr, "fastjoin_client: bad reject\n");
        return 1;
      }
      ++rejected_requests;
      rejected_records += n;
      if (rej.reason < 8) ++reject_by_reason[rej.reason];
      if (!o.abusive && rej.retry_after_ms > 0) {
        retry_sleep_ms += rej.retry_after_ms;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(rej.retry_after_ms));
      }
    }
    if (!delivered) ++dropped_batches;
    produced += n;
  }

  std::uint64_t query_matches = 0;
  std::vector<double> query_us;
  for (std::uint64_t i = 0; i < o.queries; ++i) {
    server::QueryMsg q;
    q.req_id = next_req++;
    q.key = gen();
    q.max_recent = 16;
    const auto t0 = std::chrono::steady_clock::now();
    if (!send(server::ClientMsgType::kQuery, encode(q)) ||
        !conn.read_frame(reply)) {
      std::fprintf(stderr, "fastjoin_client: query failed: %s\n",
                   conn.error().c_str());
      return 1;
    }
    const auto t1 = std::chrono::steady_clock::now();
    server::QueryResultMsg res;
    if (static_cast<server::ClientMsgType>(reply.type) !=
            server::ClientMsgType::kQueryResult ||
        !decode(reply.payload, res) || res.req_id != q.req_id) {
      std::fprintf(stderr, "fastjoin_client: bad query result\n");
      return 1;
    }
    query_matches += res.recent.size();
    query_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  send(server::ClientMsgType::kClientBye, {});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::sort(ack_us.begin(), ack_us.end());
  std::sort(query_us.begin(), query_us.end());
  std::printf(
      "{\n"
      "  \"tenant\": \"%s\",\n"
      "  \"offered_requests\": %llu,\n"
      "  \"admitted_requests\": %llu,\n"
      "  \"rejected_requests\": %llu,\n"
      "  \"offered_records\": %llu,\n"
      "  \"admitted_records\": %llu,\n"
      "  \"rejected_records\": %llu,\n"
      "  \"parked_records\": %llu,\n"
      "  \"dropped_batches\": %llu,\n"
      "  \"rejects_by_reason\": {\"tenant_rate\": %llu, "
      "\"global_bytes\": %llu, \"batch_too_large\": %llu, "
      "\"backpressure\": %llu},\n"
      "  \"retry_sleep_ms\": %llu,\n"
      "  \"queries\": %llu,\n"
      "  \"query_recent_matches\": %llu,\n"
      "  \"ack_p50_us\": %.1f,\n"
      "  \"ack_p999_us\": %.1f,\n"
      "  \"query_p50_us\": %.1f,\n"
      "  \"query_p999_us\": %.1f,\n"
      "  \"admitted_records_per_sec\": %.0f,\n"
      "  \"wall_seconds\": %.3f\n"
      "}\n",
      o.tenant.c_str(), static_cast<unsigned long long>(offered_requests),
      static_cast<unsigned long long>(admitted_requests),
      static_cast<unsigned long long>(rejected_requests),
      static_cast<unsigned long long>(offered_records),
      static_cast<unsigned long long>(admitted_records),
      static_cast<unsigned long long>(rejected_records),
      static_cast<unsigned long long>(parked_records),
      static_cast<unsigned long long>(dropped_batches),
      static_cast<unsigned long long>(
          reject_by_reason[static_cast<int>(
              server::RejectReason::kTenantRate)]),
      static_cast<unsigned long long>(
          reject_by_reason[static_cast<int>(
              server::RejectReason::kGlobalBytes)]),
      static_cast<unsigned long long>(
          reject_by_reason[static_cast<int>(
              server::RejectReason::kBatchTooLarge)]),
      static_cast<unsigned long long>(
          reject_by_reason[static_cast<int>(
              server::RejectReason::kBackpressure)]),
      static_cast<unsigned long long>(retry_sleep_ms),
      static_cast<unsigned long long>(o.queries),
      static_cast<unsigned long long>(query_matches),
      percentile(ack_us, 0.50), percentile(ack_us, 0.999),
      percentile(query_us, 0.50), percentile(query_us, 0.999),
      wall_s > 0 ? static_cast<double>(admitted_records) / wall_s : 0.0,
      wall_s);

  // Accounting invariant the smoke job leans on.
  if (admitted_requests + rejected_requests != offered_requests) {
    std::fprintf(stderr, "fastjoin_client: accounting violation\n");
    return 3;
  }
  return 0;
}
