// A simulated single-threaded service station (one CPU worker).
//
// Jobs queue FIFO and are served one at a time; each job declares its own
// service time, which is how the engine expresses the paper's cost model
// (probing costs grow with the instance's stored-tuple count). pause()
// models the paper's migration protocol, where the source instance
// "stops executing the store and join operations" during key selection
// and transfer.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "simnet/simulator.hpp"

namespace fastjoin {

class Server {
 public:
  Server(Simulator& sim, std::string name = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue a job taking `service_time`; `on_complete` fires when it
  /// finishes service.
  void submit(SimTime service_time, std::function<void()> on_complete);

  /// Stop starting new jobs. A job already in service completes.
  void pause();

  /// Resume serving queued jobs.
  void resume();

  bool paused() const { return paused_; }
  bool busy() const { return busy_; }

  /// Jobs waiting (not counting the one in service).
  std::size_t queue_length() const { return queue_.size(); }

  /// Cumulative time spent serving jobs (utilization numerator).
  SimTime busy_time() const { return busy_time_; }

  std::uint64_t jobs_completed() const { return completed_; }

  const std::string& name() const { return name_; }

 private:
  struct Job {
    SimTime service;
    std::function<void()> on_complete;
  };

  void maybe_start();
  void finish(Job job);

  Simulator& sim_;
  std::string name_;
  std::deque<Job> queue_;
  bool busy_ = false;
  bool paused_ = false;
  SimTime busy_time_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace fastjoin
