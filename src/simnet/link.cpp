#include "simnet/link.hpp"

#include <algorithm>

namespace fastjoin {

Link::Link(Simulator& sim, SimTime latency, double bytes_per_sec)
    : sim_(sim), latency_(latency), bytes_per_sec_(bytes_per_sec) {}

void Link::send(std::uint64_t bytes, std::function<void()> on_delivered) {
  const SimTime start = std::max(sim_.now(), next_free_);
  SimTime tx = 0;
  if (bytes_per_sec_ > 0.0) {
    tx = static_cast<SimTime>(static_cast<double>(bytes) /
                              bytes_per_sec_ * 1e9);
  }
  next_free_ = start + tx;
  bytes_sent_ += bytes;
  ++messages_sent_;
  sim_.schedule_at(start + tx + latency_, std::move(on_delivered));
}

}  // namespace fastjoin
