// Deterministic discrete-event simulator.
//
// The cluster substrate for every experiment: join instances are Servers
// (simnet/server.hpp), inter-node transfers are Links (simnet/link.hpp),
// and everything executes in virtual time on this event queue. Events at
// equal timestamps run in scheduling order, so a run is a pure function
// of its seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace fastjoin {

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Token for cancelling a scheduled event.
  struct Handle {
    std::uint64_t id = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  Handle schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` `delay` after now().
  Handle schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. No-op if it already ran or was cancelled.
  void cancel(Handle h) { cancelled_.insert(h.id); }

  /// Execute the next event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue drains or virtual time would pass `until`.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime until = std::numeric_limits<SimTime>::max());

  bool empty() const { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break at equal times
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace fastjoin
