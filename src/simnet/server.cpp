#include "simnet/server.hpp"

#include <utility>

namespace fastjoin {

Server::Server(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void Server::submit(SimTime service_time,
                    std::function<void()> on_complete) {
  queue_.push_back(Job{service_time, std::move(on_complete)});
  maybe_start();
}

void Server::pause() { paused_ = true; }

void Server::resume() {
  if (!paused_) return;
  paused_ = false;
  maybe_start();
}

void Server::maybe_start() {
  if (busy_ || paused_ || queue_.empty()) return;
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  busy_time_ += job.service;
  sim_.schedule_after(job.service,
                      [this, job = std::move(job)]() mutable {
                        finish(std::move(job));
                      });
}

void Server::finish(Job job) {
  busy_ = false;
  ++completed_;
  if (job.on_complete) job.on_complete();
  maybe_start();
}

}  // namespace fastjoin
