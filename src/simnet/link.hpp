// A simulated network link with propagation latency and serialization
// bandwidth.
//
// Transfers serialize: a message starts transmitting when the link head
// is free, occupies it for bytes/bandwidth, then arrives after the
// propagation latency. Models the 1 Gbps NICs of the paper's testbed;
// migration bulk transfers and per-tuple dispatches share the same model.
#pragma once

#include <cstdint>
#include <functional>

#include "simnet/simulator.hpp"

namespace fastjoin {

class Link {
 public:
  /// `latency`: one-way propagation delay; `bytes_per_sec`: bandwidth
  /// (0 = infinite, latency-only link).
  Link(Simulator& sim, SimTime latency, double bytes_per_sec);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Send `bytes`; `on_delivered` fires at the receiver when the whole
  /// message has arrived.
  void send(std::uint64_t bytes, std::function<void()> on_delivered);

  /// Earliest time a new transfer could start transmitting.
  SimTime next_free() const { return next_free_; }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  Simulator& sim_;
  SimTime latency_;
  double bytes_per_sec_;
  SimTime next_free_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace fastjoin
