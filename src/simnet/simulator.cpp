#include "simnet/simulator.hpp"

#include <cassert>

namespace fastjoin {

Simulator::Handle Simulator::schedule_at(SimTime t, Callback fn) {
  assert(t >= now_ && "cannot schedule into the past");
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{t, id, std::move(fn)});
  return Handle{id};
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // The priority_queue's top is const; copy the small header and move
    // the callback out via const_cast — safe because we pop immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(ev.seq)) continue;  // skip cancelled events
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    if (queue_.top().time > until) break;
    if (step()) ++n;
  }
  return n;
}

}  // namespace fastjoin
