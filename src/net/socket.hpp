// FASTJOIN_NET_FILE — raw socket syscalls are confined to the net
// layer; everything else speaks frames through Connection/FrameConn.
//
// Thin RAII + error-code-free wrappers over Unix-domain and TCP
// sockets. Every call is EINTR-safe (the syscall is retried), failures
// surface as a disarmed Socket plus a human-readable reason, and the
// nonblocking/blocking mode is explicit at creation. TCP listeners
// bind 127.0.0.1 only: the transport is a local process fabric, not an
// exposed service (authentication is out of scope by design — see
// docs/architecture.md, "Process model").
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fastjoin::net {

/// Where a router listens / a worker connects. Rendered as
/// "unix:<path>" or "tcp:<port>" on worker command lines.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         ///< kUnix: filesystem socket path
  std::uint16_t port = 0;   ///< kTcp: port on 127.0.0.1

  std::string to_string() const;
  /// Parse the to_string() form; returns false on malformed input.
  static bool parse(const std::string& s, Endpoint& out);
};

/// Move-only fd owner. A default-constructed Socket is empty.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Close now (idempotent). EINTR on close is ignored per POSIX: the
  /// fd is gone either way.
  void close();
  /// Release ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Outcome of one read/write attempt on a socket.
struct IoResult {
  std::size_t n = 0;        ///< bytes moved
  bool would_block = false; ///< nonblocking socket had no room/data
  bool eof = false;         ///< peer closed (reads only)
  int err = 0;              ///< errno on hard failure, else 0
  bool ok() const { return err == 0; }
};

/// One read attempt (EINTR retried). Blocking sockets park in the
/// kernel until data, EOF, or a hard error.
IoResult read_some(Socket& s, void* buf, std::size_t len);
/// One write attempt (EINTR retried, SIGPIPE suppressed).
IoResult write_some(Socket& s, const void* buf, std::size_t len);
/// Write the whole buffer on a blocking socket (EINTR/short writes
/// retried). False on hard error or closed peer.
bool send_all(Socket& s, const void* buf, std::size_t len);

bool set_nonblocking(Socket& s, bool on);

/// Create a listener for `ep`. For kTcp with port 0 the kernel picks;
/// the chosen port is written back into `ep`. For kUnix a stale socket
/// file at the path is unlinked first.
Socket listen_endpoint(Endpoint& ep, int backlog, std::string* err);
/// Accept one pending connection (nonblocking listener: would_block ->
/// empty socket with empty *err).
Socket accept_conn(Socket& listener, std::string* err);
/// Blocking connect to `ep`.
Socket connect_endpoint(const Endpoint& ep, std::string* err);
/// connect_endpoint with bounded exponential backoff until `deadline`
/// — workers come up before/while the router is binding, and a
/// respawned worker reconnects through the same path.
Socket connect_with_retry(const Endpoint& ep,
                          std::chrono::milliseconds timeout,
                          std::string* err);

}  // namespace fastjoin::net
