// CRC32C (Castagnoli) over byte ranges — the frame-integrity checksum
// of the net layer.
//
// Software table-driven (slice-by-4): fast enough that framing cost is
// dominated by the memcpy into the write queue, and dependency-free so
// the wire format is identical on every build. The polynomial matches
// iSCSI/ext4 (0x1EDC6F41, reflected 0x82F63B78), so frames can be
// checked with any standard crc32c tool when debugging captures.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fastjoin::net {

/// CRC32C of `len` bytes at `data`, seeded with `seed` (pass a previous
/// result to continue a running checksum; 0 for a fresh one).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

}  // namespace fastjoin::net
