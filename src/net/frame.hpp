// The wire frame: length-prefixed, CRC-checked message envelope.
//
// Every byte that crosses a fastjoin socket travels inside one frame:
//
//   offset 0   u32  magic      0x464A4E31 ("FJN1")
//   offset 4   u16  type       FrameType (wire.hpp taxonomy)
//   offset 6   u16  flags      reserved, must be 0
//   offset 8   u32  len        payload bytes (<= max_payload)
//   offset 12  u32  crc        CRC32C over the payload bytes
//   offset 16  ...  payload
//
// All integers are little-endian (serialized field-by-field with
// memcpy, same idiom as ingest/log_record.hpp — the toolchain targets
// are all little-endian and the format is independent of struct
// padding).
//
// FrameDecoder is incremental: feed it whatever the socket produced —
// single bytes, half a header, three frames and a torn fourth — and it
// emits complete validated frames. Any violation (bad magic, nonzero
// flags, oversized length, CRC mismatch) is sticky: the decoder stops,
// reports the error, and the connection must be torn down — a stream
// that has lost framing cannot be resynchronized safely. A torn frame
// at EOF is detected by `mid_frame()`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fastjoin::net {

inline constexpr std::uint32_t kFrameMagic = 0x464A4E31u;  // "FJN1"
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Default payload ceiling. Checkpoints ship whole store snapshots, so
/// this is generous; anything larger is a protocol bug or corruption.
inline constexpr std::uint32_t kDefaultMaxPayload = 64u << 20;

/// One complete, CRC-validated frame as produced by the decoder.
struct Frame {
  std::uint16_t type = 0;
  std::vector<std::byte> payload;
};

/// Serialize a frame: header + payload, ready for the socket.
std::vector<std::byte> encode_frame(std::uint16_t type,
                                    const void* payload, std::size_t len);
inline std::vector<std::byte> encode_frame(
    std::uint16_t type, const std::vector<std::byte>& payload) {
  return encode_frame(type, payload.data(), payload.size());
}

class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  /// Consume `len` raw bytes. Complete frames are appended to `out`.
  /// Returns false once the stream is broken (error() explains); the
  /// decoder then ignores further input.
  bool feed(const void* data, std::size_t len, std::vector<Frame>& out);

  /// True when bytes of an incomplete frame are buffered — at EOF this
  /// means the peer died mid-frame (the truncated tail is discarded,
  /// never delivered).
  bool mid_frame() const { return !broken_ && buf_.size() > 0; }

  bool broken() const { return broken_; }
  const std::string& error() const { return error_; }

  std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  bool fail(std::string msg);

  std::uint32_t max_payload_;
  std::vector<std::byte> buf_;
  bool broken_ = false;
  std::string error_;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace fastjoin::net
