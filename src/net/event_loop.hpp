// Nonblocking reactor: epoll + a steady-clock timer heap + a deferred
// task queue, all single-threaded.
//
// The router's whole control plane runs on one EventLoop thread:
// accepting workers, reading/writing frames, migration timeouts,
// checkpoint cadence, and child-death polling all dispatch here, so
// router state needs no locks. Callbacks may freely add/modify/remove
// fds and timers — removal during dispatch is safe (entries are
// tombstoned and reaped after the dispatch pass), and `defer()` runs a
// task after the current pass, which is how connections are destroyed
// from inside their own close callback.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hpp"

namespace fastjoin::net {

class EventLoop {
 public:
  /// Bitmask passed to io callbacks.
  static constexpr std::uint32_t kReadable = 1;
  static constexpr std::uint32_t kWritable = 2;
  static constexpr std::uint32_t kError = 4;

  using IoCallback = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool ok() const { return epfd_ >= 0; }

  /// Watch `fd`. The callback receives kReadable/kWritable/kError.
  /// The fd must stay open until del_fd().
  bool add_fd(int fd, bool want_read, bool want_write, IoCallback cb);
  bool mod_fd(int fd, bool want_read, bool want_write);
  void del_fd(int fd);

  /// One-shot timer on the steady clock. Fires during a later
  /// run_once(); never from inside add_timer.
  TimerId add_timer(std::chrono::steady_clock::time_point deadline,
                    std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// Run `fn` after the current dispatch pass (or on the next
  /// run_once() when called outside one).
  void defer(std::function<void()> fn);

  /// Dispatch ready io events, due timers, and deferred tasks. Blocks
  /// at most `max_wait` (less when a timer is due sooner). Returns the
  /// number of callbacks dispatched.
  std::size_t run_once(std::chrono::milliseconds max_wait);

 private:
  struct FdEntry {
    int fd = -1;
    IoCallback cb;
    bool dead = false;
  };
  struct Timer {
    std::chrono::steady_clock::time_point deadline;
    TimerId id = 0;
    std::function<void()> fn;
  };

  int epfd_ = -1;
  LOOP_CONFINED std::unordered_map<int, std::unique_ptr<FdEntry>> fds_;
  LOOP_CONFINED std::vector<std::unique_ptr<FdEntry>> graveyard_;
  /// unsorted; scanned per tick (small N)
  LOOP_CONFINED std::vector<Timer> timers_;
  LOOP_CONFINED TimerId next_timer_ = 1;
  LOOP_CONFINED std::vector<std::function<void()>> deferred_;
};

}  // namespace fastjoin::net
