// FASTJOIN_PARSE_FILE — worker wire codecs; decoders must stay total
// over arbitrary bytes (see parse-surface lint rule).
#include "net/wire.hpp"

namespace fastjoin::net {
namespace {

// Per-element sizes used for pre-reserving and for sanity-checking
// vector counts against the remaining payload before allocating.
constexpr std::size_t kWireTupleBytes = 1 + 8 + 8 + 8 + 8 + 4;
constexpr std::size_t kDataEntryBytes = 8 + 1 + 8 + 8 + 8 + 8 + 1;
constexpr std::size_t kMatchPairBytes = 8 + 8 + 8;

void put_tuple(ByteWriter& w, const WireTuple& t) {
  w.u8(static_cast<std::uint8_t>(t.side));
  w.u64(t.key);
  w.u64(t.tuple.seq);
  w.u64(t.tuple.payload);
  w.i64(t.tuple.ts);
  w.u32(t.tuple.subwindow);
}

bool get_tuple(ByteReader& r, WireTuple& t) {
  std::uint8_t side = 0;
  if (!r.u8(side) || side > 1) return false;
  t.side = static_cast<Side>(side);
  return r.u64(t.key) && r.u64(t.tuple.seq) && r.u64(t.tuple.payload) &&
         r.i64(t.tuple.ts) && r.u32(t.tuple.subwindow);
}

void put_record(ByteWriter& w, const Record& rec) {
  w.u64(rec.key);
  w.u64(rec.seq);
  w.u64(rec.payload);
  w.i64(rec.ts);
  w.u8(static_cast<std::uint8_t>(rec.side));
}

bool get_record(ByteReader& r, Record& rec) {
  std::uint8_t side = 0;
  if (!(r.u64(rec.key) && r.u64(rec.seq) && r.u64(rec.payload) &&
        r.i64(rec.ts) && r.u8(side))) {
    return false;
  }
  if (side > 1) return false;
  rec.side = static_cast<Side>(side);
  return true;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "Hello";
    case MsgType::kHelloAck: return "HelloAck";
    case MsgType::kData: return "Data";
    case MsgType::kExtract: return "Extract";
    case MsgType::kExtractBatch: return "ExtractBatch";
    case MsgType::kAbsorb: return "Absorb";
    case MsgType::kAbsorbAck: return "AbsorbAck";
    case MsgType::kCheckpoint: return "Checkpoint";
    case MsgType::kCheckpointDone: return "CheckpointDone";
    case MsgType::kRestore: return "Restore";
    case MsgType::kMatches: return "Matches";
    case MsgType::kFinish: return "Finish";
    case MsgType::kFinal: return "Final";
  }
  return "?";
}

std::vector<std::byte> encode(const HelloMsg& m) {
  ByteWriter w;
  w.u32(m.worker_id);
  w.u64(m.pid);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, HelloMsg& m) {
  ByteReader r(p);
  return r.u32(m.worker_id) && r.u64(m.pid) && r.done();
}

std::vector<std::byte> encode(const HelloAckMsg& m) {
  ByteWriter w;
  w.u32(m.worker_id);
  w.u32(m.workers);
  w.u8(m.collect_matches);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, HelloAckMsg& m) {
  ByteReader r(p);
  return r.u32(m.worker_id) && r.u32(m.workers) &&
         r.u8(m.collect_matches) && r.done();
}

std::vector<std::byte> encode(const DataBatchMsg& m) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const DataEntry& e : m.entries) {
    w.u64(e.offset);
    w.u8(e.flags);
    put_record(w, e.rec);
  }
  return w.take();
}

bool decode(const std::vector<std::byte>& p, DataBatchMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!read_count(r, kDataEntryBytes, n)) return false;
  m.entries.resize(n);
  for (DataEntry& e : m.entries) {
    if (!r.u64(e.offset) || !r.u8(e.flags) || !get_record(r, e.rec)) {
      return false;
    }
    if ((e.flags & (kDeliverStore | kDeliverProbe)) == 0) return false;
  }
  return r.done();
}

std::vector<std::byte> encode(const ExtractMsg& m) {
  ByteWriter w;
  w.u64(m.mig_id);
  w.u8(static_cast<std::uint8_t>(m.side));
  w.u32(static_cast<std::uint32_t>(m.keys.size()));
  for (KeyId k : m.keys) w.u64(k);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, ExtractMsg& m) {
  ByteReader r(p);
  std::uint8_t side = 0;
  std::uint32_t n = 0;
  if (!r.u64(m.mig_id) || !r.u8(side) || side > 1 ||
      !read_count(r, 8, n)) {
    return false;
  }
  m.side = static_cast<Side>(side);
  m.keys.resize(n);
  for (KeyId& k : m.keys) {
    if (!r.u64(k)) return false;
  }
  return r.done();
}

std::vector<std::byte> encode(const ExtractBatchMsg& m) {
  ByteWriter w;
  w.u64(m.mig_id);
  w.u64(m.consumed_offset);
  w.u32(static_cast<std::uint32_t>(m.tuples.size()));
  for (const WireTuple& t : m.tuples) put_tuple(w, t);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, ExtractBatchMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!r.u64(m.mig_id) || !r.u64(m.consumed_offset) ||
      !read_count(r, kWireTupleBytes, n)) {
    return false;
  }
  m.tuples.resize(n);
  for (WireTuple& t : m.tuples) {
    if (!get_tuple(r, t)) return false;
  }
  return r.done();
}

std::vector<std::byte> encode(const AbsorbMsg& m) {
  ByteWriter w;
  w.u64(m.mig_id);
  w.u32(static_cast<std::uint32_t>(m.tuples.size()));
  for (const WireTuple& t : m.tuples) put_tuple(w, t);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, AbsorbMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!r.u64(m.mig_id) || !read_count(r, kWireTupleBytes, n)) return false;
  m.tuples.resize(n);
  for (WireTuple& t : m.tuples) {
    if (!get_tuple(r, t)) return false;
  }
  return r.done();
}

std::vector<std::byte> encode(const AbsorbAckMsg& m) {
  ByteWriter w;
  w.u64(m.mig_id);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, AbsorbAckMsg& m) {
  ByteReader r(p);
  return r.u64(m.mig_id) && r.done();
}

std::vector<std::byte> encode(const CheckpointMsg& m) {
  ByteWriter w;
  w.u64(m.ckpt_id);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, CheckpointMsg& m) {
  ByteReader r(p);
  return r.u64(m.ckpt_id) && r.done();
}

std::vector<std::byte> encode(const SnapshotMsg& m) {
  ByteWriter w;
  w.u64(m.ckpt_id);
  w.u64(m.consumed_offset);
  w.u64(m.emit_offset);
  w.u32(static_cast<std::uint32_t>(m.tuples.size()));
  for (const WireTuple& t : m.tuples) put_tuple(w, t);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, SnapshotMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!r.u64(m.ckpt_id) || !r.u64(m.consumed_offset) ||
      !r.u64(m.emit_offset) || !read_count(r, kWireTupleBytes, n)) {
    return false;
  }
  m.tuples.resize(n);
  for (WireTuple& t : m.tuples) {
    if (!get_tuple(r, t)) return false;
  }
  return r.done();
}

std::vector<std::byte> encode(const MatchBatchMsg& m) {
  ByteWriter w;
  w.u64(m.emit_offset);
  w.u64(m.count);
  w.u32(static_cast<std::uint32_t>(m.pairs.size()));
  for (const MatchPair& pr : m.pairs) {
    w.u64(pr.key);
    w.u64(pr.r_seq);
    w.u64(pr.s_seq);
  }
  return w.take();
}

bool decode(const std::vector<std::byte>& p, MatchBatchMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!r.u64(m.emit_offset) || !r.u64(m.count) ||
      !read_count(r, kMatchPairBytes, n)) {
    return false;
  }
  m.pairs.resize(n);
  for (MatchPair& pr : m.pairs) {
    if (!r.u64(pr.key) || !r.u64(pr.r_seq) || !r.u64(pr.s_seq)) {
      return false;
    }
  }
  return r.done();
}

std::vector<std::byte> encode(const FinalMsg& m) {
  ByteWriter w;
  w.u64(m.stores);
  w.u64(m.probes);
  w.u64(m.matches);
  w.u64(m.suppressed);
  w.u64(m.dedup_skipped);
  w.u64(m.absorbed);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, FinalMsg& m) {
  ByteReader r(p);
  return r.u64(m.stores) && r.u64(m.probes) && r.u64(m.matches) &&
         r.u64(m.suppressed) && r.u64(m.dedup_skipped) &&
         r.u64(m.absorbed) && r.done();
}

}  // namespace fastjoin::net
