// FASTJOIN_PARSE_FILE — frame reassembly over raw socket bytes; must
// stay total over arbitrary input (see parse-surface lint rule).
#include "net/frame.hpp"

#include <cstring>

#include "net/crc32.hpp"

namespace fastjoin::net {
namespace {

void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

std::vector<std::byte> encode_frame(std::uint16_t type,
                                    const void* payload,
                                    std::size_t len) {
  std::vector<std::byte> out(kFrameHeaderBytes + len);
  put_u32(out.data(), kFrameMagic);
  put_u16(out.data() + 4, type);
  put_u16(out.data() + 6, 0);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(len));
  put_u32(out.data() + 12, crc32c(payload, len));
  if (len) std::memcpy(out.data() + kFrameHeaderBytes, payload, len);
  return out;
}

bool FrameDecoder::fail(std::string msg) {
  broken_ = true;
  error_ = std::move(msg);
  buf_.clear();
  return false;
}

bool FrameDecoder::feed(const void* data, std::size_t len,
                        std::vector<Frame>& out) {
  if (broken_) return false;
  const auto* p = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), p, p + len);
  std::size_t pos = 0;
  while (buf_.size() - pos >= kFrameHeaderBytes) {
    const std::byte* h = buf_.data() + pos;
    if (get_u32(h) != kFrameMagic) return fail("bad frame magic");
    if (get_u16(h + 6) != 0) return fail("nonzero frame flags");
    const std::uint32_t plen = get_u32(h + 8);
    if (plen > max_payload_) {
      return fail("oversized frame: " + std::to_string(plen) +
                  " > max " + std::to_string(max_payload_));
    }
    if (buf_.size() - pos < kFrameHeaderBytes + plen) break;  // torn
    const std::uint32_t want = get_u32(h + 12);
    const std::byte* body = h + kFrameHeaderBytes;
    if (crc32c(body, plen) != want) return fail("frame CRC mismatch");
    Frame f;
    f.type = get_u16(h + 4);
    f.payload.assign(body, body + plen);
    out.push_back(std::move(f));
    ++frames_decoded_;
    pos += kFrameHeaderBytes + plen;
  }
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

}  // namespace fastjoin::net
