#include "net/connection.hpp"

#include <cstring>

#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace fastjoin::net {
namespace {

namespace tel = fastjoin::telemetry;

struct NetMetrics {
  tel::Counter& bytes_sent;
  tel::Counter& bytes_recv;
  tel::Counter& frames_sent;
  tel::Counter& frames_recv;
  tel::Counter& accepts;
  tel::Counter& connects;
  tel::Counter& decode_errors;
};

NetMetrics& net_metrics() {
  auto& reg = tel::MetricRegistry::global();
  static NetMetrics m{
      reg.counter("net.bytes_sent"),   reg.counter("net.bytes_recv"),
      reg.counter("net.frames_sent"),  reg.counter("net.frames_recv"),
      reg.counter("net.accepts"),      reg.counter("net.connects"),
      reg.counter("net.decode_errors"),
  };
  return m;
}

constexpr std::size_t kReadChunk = 64 * 1024;
/// Coalesce at most this many queued bytes into one write syscall.
constexpr std::size_t kWriteBurst = 256 * 1024;

}  // namespace

NetCounters net_counters() {
  NetCounters c;
  c.bytes_sent = net_metrics().bytes_sent.value();
  c.bytes_recv = net_metrics().bytes_recv.value();
  c.frames_sent = net_metrics().frames_sent.value();
  c.frames_recv = net_metrics().frames_recv.value();
  c.accepts = net_metrics().accepts.value();
  c.connects = net_metrics().connects.value();
  c.decode_errors = net_metrics().decode_errors.value();
  return c;
}

void note_sent(std::size_t bytes, std::size_t frames) {
  net_metrics().bytes_sent.add(bytes);
  net_metrics().frames_sent.add(frames);
}
void note_recv(std::size_t bytes, std::size_t frames) {
  net_metrics().bytes_recv.add(bytes);
  net_metrics().frames_recv.add(frames);
}
void note_accept() { net_metrics().accepts.add(1); }
void note_connect() { net_metrics().connects.add(1); }
void note_decode_error() { net_metrics().decode_errors.add(1); }

// ---------------------------------------------------------------------------
// Connection (nonblocking, event-loop driven)
// ---------------------------------------------------------------------------

Connection::Connection(EventLoop& loop, Socket sock, Options opts)
    : loop_(loop),
      sock_(std::move(sock)),
      opts_(opts),
      decoder_(opts.max_payload),
      rdbuf_(kReadChunk) {
  set_nonblocking(sock_, true);
  loop_.add_fd(sock_.fd(), /*want_read=*/true, /*want_write=*/false,
               [this](std::uint32_t ev) { on_events(ev); });
}

Connection::~Connection() {
  if (!closed_ && sock_.valid()) {
    loop_.del_fd(sock_.fd());
  }
}

void Connection::start(FrameHandler on_frame, CloseHandler on_close) {
  on_frame_ = std::move(on_frame);
  on_close_ = std::move(on_close);
}

void Connection::close(const std::string& reason, bool clean) {
  if (closed_) return;
  closed_ = true;
  loop_.del_fd(sock_.fd());
  sock_.close();
  out_.clear();
  head_ = 0;
  if (on_close_) on_close_(reason, clean);
}

void Connection::send(std::uint16_t type, const void* payload,
                      std::size_t len) {
  if (closed_) return;
  const auto bytes = encode_frame(type, payload, len);
  // Compact the consumed prefix before growing (amortized O(1)).
  if (head_ > 0 && head_ >= out_.size() / 2) {
    out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  out_.insert(out_.end(), bytes.begin(), bytes.end());
  note_sent(0, 1);
  flush_writes();
  if (!closed_) update_interest();
}

void Connection::on_events(std::uint32_t events) {
  in_dispatch_ = true;
  if (events & EventLoop::kError) {
    in_dispatch_ = false;
    close("socket error", /*clean=*/false);
    return;
  }
  if (events & EventLoop::kWritable) {
    flush_writes();
  }
  if (!closed_ && (events & EventLoop::kReadable)) {
    drain_reads();
  }
  in_dispatch_ = false;
  if (!closed_) update_interest();
}

void Connection::drain_reads() {
  for (;;) {
    const IoResult r = read_some(sock_, rdbuf_.data(), rdbuf_.size());
    if (r.n > 0) {
      note_recv(r.n, 0);
      std::vector<Frame> frames;
      if (!decoder_.feed(rdbuf_.data(), r.n, frames)) {
        note_decode_error();
        close("frame decode: " + decoder_.error(), /*clean=*/false);
        return;
      }
      note_recv(0, frames.size());
      for (Frame& f : frames) {
        if (on_frame_) on_frame_(f);
        if (closed_) return;  // handler closed us mid-batch
      }
      continue;
    }
    if (r.would_block) return;
    if (r.eof) {
      const bool clean =
          !decoder_.mid_frame() && head_ >= out_.size();
      if (decoder_.mid_frame()) note_decode_error();
      close(decoder_.mid_frame() ? "eof mid-frame (torn frame)" : "eof",
            clean);
      return;
    }
    close("read error", /*clean=*/false);
    return;
  }
}

void Connection::flush_writes() {
  while (head_ < out_.size()) {
    const std::size_t burst =
        std::min(out_.size() - head_, kWriteBurst);
    const IoResult r = write_some(sock_, out_.data() + head_, burst);
    if (r.n > 0) {
      note_sent(r.n, 0);
      head_ += r.n;
      continue;
    }
    if (r.would_block) break;
    close("write error", /*clean=*/false);
    return;
  }
  if (head_ >= out_.size()) {
    out_.clear();
    head_ = 0;
  }
}

void Connection::update_interest() {
  const bool want = head_ < out_.size();
  if (want != want_write_) {
    want_write_ = want;
    loop_.mod_fd(sock_.fd(), /*want_read=*/true, want_write_);
  }
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

Acceptor::Acceptor(EventLoop& loop, Endpoint& ep,
                   AcceptHandler on_accept)
    : loop_(loop), on_accept_(std::move(on_accept)) {
  sock_ = listen_endpoint(ep, /*backlog=*/64, &error_);
  if (!sock_.valid()) return;
  set_nonblocking(sock_, true);
  loop_.add_fd(sock_.fd(), /*want_read=*/true, /*want_write=*/false,
               [this](std::uint32_t) {
                 for (;;) {
                   std::string err;
                   Socket peer = accept_conn(sock_, &err);
                   if (!peer.valid()) {
                     if (!err.empty()) {
                       FJ_WARN("net") << "accept failed: " << err;
                     }
                     return;  // drained (or transient failure)
                   }
                   note_accept();
                   on_accept_(std::move(peer));
                 }
               });
}

Acceptor::~Acceptor() {
  if (sock_.valid()) loop_.del_fd(sock_.fd());
}

// ---------------------------------------------------------------------------
// FrameConn (blocking, worker side)
// ---------------------------------------------------------------------------

FrameConn FrameConn::connect(const Endpoint& ep,
                             std::chrono::milliseconds timeout,
                             std::string* err) {
  Socket s = connect_with_retry(ep, timeout, err);
  if (!s.valid()) return {};
  note_connect();
  return FrameConn(std::move(s));
}

bool FrameConn::read_frame(Frame& out) {
  for (;;) {
    if (!ready_.empty()) {
      out = std::move(ready_.front());
      ready_.pop_front();
      return true;
    }
    std::byte buf[kReadChunk];
    const IoResult r = read_some(sock_, buf, sizeof(buf));
    if (r.n > 0) {
      note_recv(r.n, 0);
      std::vector<Frame> frames;
      if (!decoder_.feed(buf, r.n, frames)) {
        note_decode_error();
        error_ = decoder_.error();
        return false;
      }
      note_recv(0, frames.size());
      for (Frame& f : frames) ready_.push_back(std::move(f));
      continue;
    }
    if (r.eof) {
      if (decoder_.mid_frame()) {
        note_decode_error();
        error_ = "eof mid-frame (torn frame)";
      }
      return false;
    }
    if (!r.ok()) {
      error_ = "read error (errno " + std::to_string(r.err) + ")";
      return false;
    }
    // would_block on a blocking socket: retry (spurious wakeup).
  }
}

bool FrameConn::write_frame(std::uint16_t type, const void* payload,
                            std::size_t len) {
  const auto bytes = encode_frame(type, payload, len);
  if (!send_all(sock_, bytes.data(), bytes.size())) {
    error_ = "write failed (peer gone?)";
    return false;
  }
  note_sent(bytes.size(), 1);
  return true;
}

}  // namespace fastjoin::net
