// FASTJOIN_PARSE_FILE — byte decoders at the trust boundary: every
// decode() here must be total over arbitrary bytes (fastjoin-lint
// `parse-surface` bans asserts/throws, unchecked reads and unguarded
// multiplied length arithmetic, and requires a fuzz harness per type).
//
// Wire message taxonomy for the multi-process runtime.
//
// The router and its workers exchange exactly these messages, each
// carried in one frame (frame.hpp). Serialization is field-by-field
// little-endian memcpy (the log_record.hpp idiom) via ByteWriter /
// ByteReader; decode never trusts lengths — a reader that runs out of
// bytes fails the whole message and the connection is torn down.
//
// Direction legend: W→R worker to router, R→W router to worker.
//
//   kHello          W→R  worker_id + pid, first frame after connect
//   kHelloAck       R→W  cluster shape + match-collection mode
//   kData           R→W  a batch of log-stamped deliveries
//   kExtract        R→W  migration: remove these keys' tuples (one side)
//   kExtractBatch   W→R  the extracted tuples + consumed watermark
//   kAbsorb         R→W  merge these tuples (migration or re-inject)
//   kAbsorbAck      W→R  merge done
//   kCheckpoint     R→W  snapshot request
//   kCheckpointDone W→R  store snapshot + consumed/emitted watermarks
//   kRestore        R→W  respawn: reload this snapshot before any data
//   kMatches        W→R  match results up to an emit watermark
//   kFinish         R→W  drain and report
//   kFinal          W→R  final per-worker counters; worker exits after
//
// See docs/migration_protocol.md ("Wire mapping") for how these
// correspond to the in-process supervised-migration phases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/record.hpp"
#include "engine/tuple.hpp"

namespace fastjoin::net {

enum class MsgType : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kData = 3,
  kExtract = 4,
  kExtractBatch = 5,
  kAbsorb = 6,
  kAbsorbAck = 7,
  kCheckpoint = 8,
  kCheckpointDone = 9,
  kRestore = 10,
  kMatches = 11,
  kFinish = 12,
  kFinal = 13,
};

const char* msg_type_name(MsgType t);

// --------------------------------------------------------------------------
// Byte cursor helpers
// --------------------------------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::byte* data, std::size_t len)
      : p_(data), end_(data + len) {}
  explicit ByteReader(const std::vector<std::byte>& v)
      : ByteReader(v.data(), v.size()) {}

  bool u8(std::uint8_t& v) { return raw(&v, 1); }
  bool u16(std::uint16_t& v) { return raw(&v, 2); }
  bool u32(std::uint32_t& v) { return raw(&v, 4); }
  bool u64(std::uint64_t& v) { return raw(&v, 8); }
  bool i64(std::int64_t& v) { return raw(&v, 8); }
  bool done() const { return p_ == end_; }
  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  bool raw(void* out, std::size_t n) {
    if (static_cast<std::size_t>(end_ - p_) < n) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    return true;
  }
  const std::byte* p_;
  const std::byte* end_;
};

/// Read a u32 element count and admit it only when the remaining bytes
/// can hold `n` elements of `elem_bytes` each. The bound divides instead
/// of multiplying so a hostile count can never overflow std::size_t or
/// drive a huge reserve() before truncation is detected.
inline bool read_count(ByteReader& r, std::size_t elem_bytes,
                       std::uint32_t& n) {
  if (!r.u32(n)) return false;
  return static_cast<std::size_t>(n) <= r.remaining() / elem_bytes;
}

// --------------------------------------------------------------------------
// Messages
// --------------------------------------------------------------------------

/// One stored tuple with its full identity — what migrations and
/// checkpoints ship.
struct WireTuple {
  Side side = Side::kR;
  KeyId key = 0;
  StoredTuple tuple;
};

/// Delivery-half flags on a DataEntry.
inline constexpr std::uint8_t kDeliverStore = 1;   ///< insert rec into rec.side's store
inline constexpr std::uint8_t kDeliverProbe = 2;   ///< probe other_side(rec.side)'s store
inline constexpr std::uint8_t kSuppressEmit = 4;   ///< probe half: count but
                                                   ///< do not emit (matches
                                                   ///< already delivered by a
                                                   ///< dead incarnation)
inline constexpr std::uint8_t kDedupStore = 8;     ///< store half: skip if a
                                                   ///< tuple with this seq is
                                                   ///< already in the bucket

struct DataEntry {
  std::uint64_t offset = 0;  ///< StreamLog partition offset
  std::uint8_t flags = 0;    ///< kDeliver*/kSuppressEmit/kDedupStore
  Record rec;
};

struct HelloMsg {
  std::uint32_t worker_id = 0;
  std::uint64_t pid = 0;
};

struct HelloAckMsg {
  std::uint32_t worker_id = 0;
  std::uint32_t workers = 0;
  std::uint8_t collect_matches = 0;  ///< ship pairs (1) or counts only (0)
};

struct DataBatchMsg {
  std::vector<DataEntry> entries;
};

struct ExtractMsg {
  std::uint64_t mig_id = 0;
  Side side = Side::kR;
  std::vector<KeyId> keys;
};

struct ExtractBatchMsg {
  std::uint64_t mig_id = 0;
  /// The worker's processed watermark (exclusive) when the batch was
  /// cut: every delivery for the extracted keys below this offset is
  /// covered by `tuples` (connection FIFO: the worker had processed
  /// its whole inbound queue before answering).
  std::uint64_t consumed_offset = 0;
  std::vector<WireTuple> tuples;
};

/// Migration transfer and crash-recovery re-injection share this
/// shape; mig_id == 0 marks a re-inject (no ack expected).
struct AbsorbMsg {
  std::uint64_t mig_id = 0;
  std::vector<WireTuple> tuples;
};

struct AbsorbAckMsg {
  std::uint64_t mig_id = 0;
};

struct CheckpointMsg {
  std::uint64_t ckpt_id = 0;
};

/// CheckpointDone (W→R) and Restore (R→W) carry the same snapshot
/// shape: the full store plus the watermarks that anchor replay.
struct SnapshotMsg {
  std::uint64_t ckpt_id = 0;
  /// Exclusive: deliveries of log offsets below this are reflected in
  /// `tuples` (0 = nothing consumed yet).
  std::uint64_t consumed_offset = 0;
  /// Exclusive: matches of probe deliveries below this offset were
  /// flushed to the router before the snapshot was cut (equal to
  /// consumed_offset by the flush-before-checkpoint rule).
  std::uint64_t emit_offset = 0;
  std::vector<WireTuple> tuples;
};

struct MatchBatchMsg {
  /// Exclusive: all matches produced by probe deliveries below this
  /// offset are contained in match frames up to and including this one.
  std::uint64_t emit_offset = 0;
  /// Matches this frame accounts for (== pairs.size() when pairs are
  /// collected; the count stands alone in counts-only mode).
  std::uint64_t count = 0;
  std::vector<MatchPair> pairs;
};

struct FinalMsg {
  std::uint64_t stores = 0;
  std::uint64_t probes = 0;
  std::uint64_t matches = 0;
  std::uint64_t suppressed = 0;    ///< probe halves with kSuppressEmit
  std::uint64_t dedup_skipped = 0; ///< store halves / absorb tuples skipped
  std::uint64_t absorbed = 0;      ///< tuples merged via kAbsorb
};

// Encode/decode pairs. Decoders return false on any truncation or
// trailing garbage; the caller must treat that as a fatal protocol
// error on the connection.

std::vector<std::byte> encode(const HelloMsg& m);
bool decode(const std::vector<std::byte>& p, HelloMsg& m);
std::vector<std::byte> encode(const HelloAckMsg& m);
bool decode(const std::vector<std::byte>& p, HelloAckMsg& m);
std::vector<std::byte> encode(const DataBatchMsg& m);
bool decode(const std::vector<std::byte>& p, DataBatchMsg& m);
std::vector<std::byte> encode(const ExtractMsg& m);
bool decode(const std::vector<std::byte>& p, ExtractMsg& m);
std::vector<std::byte> encode(const ExtractBatchMsg& m);
bool decode(const std::vector<std::byte>& p, ExtractBatchMsg& m);
std::vector<std::byte> encode(const AbsorbMsg& m);
bool decode(const std::vector<std::byte>& p, AbsorbMsg& m);
std::vector<std::byte> encode(const AbsorbAckMsg& m);
bool decode(const std::vector<std::byte>& p, AbsorbAckMsg& m);
std::vector<std::byte> encode(const CheckpointMsg& m);
bool decode(const std::vector<std::byte>& p, CheckpointMsg& m);
std::vector<std::byte> encode(const SnapshotMsg& m);
bool decode(const std::vector<std::byte>& p, SnapshotMsg& m);
std::vector<std::byte> encode(const MatchBatchMsg& m);
bool decode(const std::vector<std::byte>& p, MatchBatchMsg& m);
std::vector<std::byte> encode(const FinalMsg& m);
bool decode(const std::vector<std::byte>& p, FinalMsg& m);

}  // namespace fastjoin::net
