// FASTJOIN_NET_FILE — the home of every raw socket syscall in the
// tree (fastjoin-lint `net-socket` enforces this).
#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace fastjoin::net {
namespace {

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + std::to_string(port);
}

bool Endpoint::parse(const std::string& s, Endpoint& out) {
  if (s.rfind("unix:", 0) == 0) {
    out.kind = Kind::kUnix;
    out.path = s.substr(5);
    return !out.path.empty();
  }
  if (s.rfind("tcp:", 0) == 0) {
    const std::string p = s.substr(4);
    if (p.empty()) return false;
    char* end = nullptr;
    const long v = std::strtol(p.c_str(), &end, 10);
    // Port 0 is legal for listeners: the kernel picks and
    // listen_endpoint() writes the choice back.
    if (end == nullptr || *end != '\0' || v < 0 || v > 65535 || p == "-0") {
      return false;
    }
    out.kind = Kind::kTcp;
    out.port = static_cast<std::uint16_t>(v);
    return true;
  }
  return false;
}

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

IoResult read_some(Socket& s, void* buf, std::size_t len) {
  IoResult r;
  for (;;) {
    const ssize_t n = ::recv(s.fd(), buf, len, 0);
    if (n > 0) {
      r.n = static_cast<std::size_t>(n);
      return r;
    }
    if (n == 0) {
      r.eof = true;
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.would_block = true;
      return r;
    }
    r.err = errno;
    return r;
  }
}

IoResult write_some(Socket& s, const void* buf, std::size_t len) {
  IoResult r;
  for (;;) {
    const ssize_t n = ::send(s.fd(), buf, len, MSG_NOSIGNAL);
    if (n >= 0) {
      r.n = static_cast<std::size_t>(n);
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.would_block = true;
      return r;
    }
    r.err = errno;
    return r;
  }
}

bool send_all(Socket& s, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (len > 0) {
    const IoResult r = write_some(s, p, len);
    if (!r.ok() || r.would_block || r.n == 0) {
      // would_block on a blocking socket means misuse; treat as error.
      return false;
    }
    p += r.n;
    len -= r.n;
  }
  return true;
}

bool set_nonblocking(Socket& s, bool on) {
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(s.fd(), F_SETFL, want) == 0;
}

Socket listen_endpoint(Endpoint& ep, int backlog, std::string* err) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!s.valid()) {
      *err = errno_str("socket(AF_UNIX)");
      return {};
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      *err = "unix socket path too long: " + ep.path;
      return {};
    }
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      *err = errno_str("bind(unix)");
      return {};
    }
    if (::listen(s.fd(), backlog) != 0) {
      *err = errno_str("listen(unix)");
      return {};
    }
    return s;
  }
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) {
    *err = errno_str("socket(AF_INET)");
    return {};
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *err = errno_str("bind(tcp)");
    return {};
  }
  if (::listen(s.fd(), backlog) != 0) {
    *err = errno_str("listen(tcp)");
    return {};
  }
  socklen_t alen = sizeof(addr);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &alen) == 0) {
    ep.port = ntohs(addr.sin_port);
  }
  return s;
}

Socket accept_conn(Socket& listener, std::string* err) {
  err->clear();
  for (;;) {
    const int fd =
        ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      Socket s(fd);
      const int one = 1;
      // Harmless on AF_UNIX (fails silently); batching in the
      // connection layer does the coalescing, so no Nagle on TCP.
      ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return s;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {};
    *err = errno_str("accept");
    return {};
  }
}

Socket connect_endpoint(const Endpoint& ep, std::string* err) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    Socket s(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!s.valid()) {
      *err = errno_str("socket(AF_UNIX)");
      return {};
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      *err = "unix socket path too long: " + ep.path;
      return {};
    }
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    for (;;) {
      if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return s;
      }
      if (errno == EINTR) continue;
      *err = errno_str("connect(unix)");
      return {};
    }
  }
  Socket s(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!s.valid()) {
    *err = errno_str("socket(AF_INET)");
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);
  for (;;) {
    if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return s;
    }
    if (errno == EINTR) continue;
    *err = errno_str("connect(tcp)");
    return {};
  }
}

Socket connect_with_retry(const Endpoint& ep,
                          std::chrono::milliseconds timeout,
                          std::string* err) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  auto backoff = std::chrono::milliseconds(1);
  for (;;) {
    Socket s = connect_endpoint(ep, err);
    if (s.valid()) return s;
    if (std::chrono::steady_clock::now() + backoff > deadline) {
      *err = "connect retry timeout (" + *err + ")";
      return {};
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(100));
  }
}

}  // namespace fastjoin::net
