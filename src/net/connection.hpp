// Framed connections over the socket layer.
//
// Two peers for the two process roles:
//  * Connection — nonblocking, event-loop-driven; what the router
//    holds per worker. Reads are drained to EAGAIN and decoded
//    incrementally; writes go through an outbound queue that coalesces
//    many small frames into large contiguous writes (one syscall per
//    flush, not per frame). The queue depth is the backpressure
//    signal: `writable()` turns false past the high-watermark and the
//    router stops pulling ingest until the kernel drains it.
//  * FrameConn — blocking; what a worker uses. One frame in, one frame
//    out, EINTR-safe, with connect-retry/backoff so a worker spawned
//    before the router finishes binding (or respawned after a crash)
//    finds its way in.
//
// Connection close discipline: every close lands in the CloseHandler
// exactly once with a reason and a `clean` flag (clean = EOF at a
// frame boundary). EOF is how worker death is detected — the
// supervisor treats any unexpected close as a crash (the "EOF as
// crash" rule in docs/migration_protocol.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace fastjoin::net {

/// Transport counters (telemetry registry, "net." prefix): bytes and
/// frames in both directions, accepts/connects, decode errors.
struct NetCounters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_recv = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_recv = 0;
  std::uint64_t accepts = 0;
  std::uint64_t connects = 0;
  std::uint64_t decode_errors = 0;
};
/// Snapshot of the process-wide net counters.
NetCounters net_counters();
/// Internal: bump helpers used by the connection classes.
void note_sent(std::size_t bytes, std::size_t frames);
void note_recv(std::size_t bytes, std::size_t frames);
void note_accept();
void note_connect();
void note_decode_error();

class Connection {
 public:
  using FrameHandler = std::function<void(Frame&)>;
  /// `clean`: the peer shut down at a frame boundary with nothing
  /// queued — anything else is a crash/protocol error.
  using CloseHandler =
      std::function<void(const std::string& reason, bool clean)>;

  struct Options {
    std::uint32_t max_payload = kDefaultMaxPayload;
    /// Outbound queue depth at which writable() turns false.
    std::size_t high_watermark = 4u << 20;
  };

  /// Takes ownership of `sock` (made nonblocking) and registers with
  /// the loop. Call start() to install handlers before the first
  /// run_once().
  Connection(EventLoop& loop, Socket sock, Options opts);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void start(FrameHandler on_frame, CloseHandler on_close);

  /// Queue one frame (coalesced with neighbors at flush). Safe to call
  /// after close (dropped silently — the close handler already fired).
  void send(std::uint16_t type, const void* payload, std::size_t len);
  void send(std::uint16_t type, const std::vector<std::byte>& payload) {
    send(type, payload.data(), payload.size());
  }

  /// Backpressure probe: false while the outbound queue is above the
  /// high-watermark.
  bool writable() const {
    return !closed_ && out_.size() <= opts_.high_watermark;
  }
  std::size_t queued_bytes() const { return out_.size(); }
  bool closed() const { return closed_; }
  /// True while bytes of an incomplete inbound frame are buffered —
  /// how an idle sweep tells a slowloris (stalled mid-frame) from a
  /// merely quiet peer.
  bool mid_frame() const { return decoder_.mid_frame(); }

  /// Tear down now; fires the close handler (once).
  void close(const std::string& reason, bool clean);

 private:
  void on_events(std::uint32_t events);
  void drain_reads();
  void flush_writes();
  void update_interest();

  EventLoop& loop_;
  Socket sock_;
  Options opts_;
  LOOP_CONFINED FrameHandler on_frame_;
  LOOP_CONFINED CloseHandler on_close_;
  LOOP_CONFINED FrameDecoder decoder_;
  LOOP_CONFINED std::vector<std::byte> rdbuf_;
  /// Outbound bytes: encoded frames appended, drained from the front.
  /// head_ avoids O(n) erases on partial writes.
  LOOP_CONFINED std::vector<std::byte> out_;
  LOOP_CONFINED std::size_t head_ = 0;
  LOOP_CONFINED bool want_write_ = false;
  LOOP_CONFINED bool closed_ = false;
  LOOP_CONFINED bool in_dispatch_ = false;
};

/// Listening socket plus accept dispatch on the loop.
class Acceptor {
 public:
  using AcceptHandler = std::function<void(Socket peer)>;

  /// Binds and listens on `ep` (kTcp port 0 is replaced with the bound
  /// port). ok() is false on failure, with the reason in error().
  Acceptor(EventLoop& loop, Endpoint& ep, AcceptHandler on_accept);
  ~Acceptor();

  bool ok() const { return sock_.valid(); }
  const std::string& error() const { return error_; }

 private:
  EventLoop& loop_;
  Socket sock_;
  AcceptHandler on_accept_;
  std::string error_;
};

/// Blocking framed peer (worker side).
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(Socket sock, std::uint32_t max_payload =
                                      kDefaultMaxPayload)
      : sock_(std::move(sock)), decoder_(max_payload) {}

  /// Connect with retry/backoff until `timeout` elapses.
  static FrameConn connect(const Endpoint& ep,
                           std::chrono::milliseconds timeout,
                           std::string* err);

  bool valid() const { return sock_.valid(); }

  /// Block until one complete frame arrives. False on EOF or a broken
  /// stream (error() distinguishes; EOF with no partial frame leaves
  /// error() empty).
  bool read_frame(Frame& out);
  bool write_frame(std::uint16_t type, const void* payload,
                   std::size_t len);
  bool write_frame(std::uint16_t type,
                   const std::vector<std::byte>& payload) {
    return write_frame(type, payload.data(), payload.size());
  }

  const std::string& error() const { return error_; }

 private:
  Socket sock_;
  FrameDecoder decoder_;
  std::deque<Frame> ready_;
  std::string error_;
};

}  // namespace fastjoin::net
