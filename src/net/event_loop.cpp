// FASTJOIN_NET_FILE — epoll syscalls live here.
#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/logging.hpp"

namespace fastjoin::net {
namespace {

std::uint32_t to_epoll(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}

}  // namespace

EventLoop::EventLoop() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (epfd_ < 0) FJ_ERROR("net") << "epoll_create1 failed";
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

bool EventLoop::add_fd(int fd, bool want_read, bool want_write,
                       IoCallback cb) {
  auto entry = std::make_unique<FdEntry>();
  entry->fd = fd;
  entry->cb = std::move(cb);
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.ptr = entry.get();
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  fds_[fd] = std::move(entry);
  return true;
}

bool EventLoop::mod_fd(int fd, bool want_read, bool want_write) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return false;
  epoll_event ev{};
  ev.events = to_epoll(want_read, want_write);
  ev.data.ptr = it->second.get();
  return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::del_fd(int fd) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  it->second->dead = true;
  // The entry may be referenced by the epoll_event array of an
  // in-flight dispatch pass; keep it alive until the pass ends.
  graveyard_.push_back(std::move(it->second));
  fds_.erase(it);
}

EventLoop::TimerId EventLoop::add_timer(
    std::chrono::steady_clock::time_point deadline,
    std::function<void()> fn) {
  const TimerId id = next_timer_++;
  timers_.push_back(Timer{deadline, id, std::move(fn)});
  return id;
}

void EventLoop::cancel_timer(TimerId id) {
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [id](const Timer& t) {
                                 return t.id == id;
                               }),
                timers_.end());
}

void EventLoop::defer(std::function<void()> fn) {
  deferred_.push_back(std::move(fn));
}

std::size_t EventLoop::run_once(std::chrono::milliseconds max_wait) {
  using clock = std::chrono::steady_clock;
  auto wait = max_wait;
  const auto now = clock::now();
  for (const Timer& t : timers_) {
    const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
        t.deadline - now);
    wait = std::min(wait, std::max(std::chrono::milliseconds(0), until));
  }

  epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epfd_, events, 64,
                     static_cast<int>(wait.count()));
  } while (n < 0 && errno == EINTR);

  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    auto* entry = static_cast<FdEntry*>(events[i].data.ptr);
    if (entry->dead || !entry->cb) continue;
    std::uint32_t ev = 0;
    if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP)) {
      ev |= kReadable;
    }
    if (events[i].events & EPOLLOUT) ev |= kWritable;
    if (events[i].events & EPOLLERR) ev |= kError;
    if (ev) {
      entry->cb(ev);
      ++dispatched;
    }
  }

  // Timers due as of *after* the poll; a callback that adds a timer in
  // the past fires next tick, never recursively.
  const auto fire_now = clock::now();
  std::vector<Timer> due;
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [&](Timer& t) {
                                 if (t.deadline <= fire_now) {
                                   due.push_back(std::move(t));
                                   return true;
                                 }
                                 return false;
                               }),
                timers_.end());
  std::sort(due.begin(), due.end(), [](const Timer& a, const Timer& b) {
    return a.deadline < b.deadline ||
           (a.deadline == b.deadline && a.id < b.id);
  });
  for (Timer& t : due) {
    t.fn();
    ++dispatched;
  }

  while (!deferred_.empty()) {
    std::vector<std::function<void()>> run;
    run.swap(deferred_);
    for (auto& fn : run) {
      fn();
      ++dispatched;
    }
  }
  graveyard_.clear();
  return dispatched;
}

}  // namespace fastjoin::net
