#include "net/crc32.hpp"

#include <array>

namespace fastjoin::net {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected

struct Tables {
  // t[0] is the classic byte table; t[1..3] extend it so four input
  // bytes fold in one round (slice-by-4).
  std::uint32_t t[4][256];
};

Tables make_tables() {
  Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
    tb.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tb.t[0][i];
    for (int s = 1; s < 4; ++s) {
      c = tb.t[0][c & 0xff] ^ (c >> 8);
      tb.t[s][i] = c;
    }
  }
  return tb;
}

const Tables& tables() {
  static const Tables tb = make_tables();
  return tb;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed) {
  const auto& tb = tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (len >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xff] ^ tb.t[2][(c >> 8) & 0xff] ^
        tb.t[1][(c >> 16) & 0xff] ^ tb.t[0][c >> 24];
    p += 4;
    len -= 4;
  }
  while (len--) c = tb.t[0][(c ^ *p++) & 0xff] ^ (c >> 8);
  return ~c;
}

}  // namespace fastjoin::net
