#include "server/admission.hpp"

#include <algorithm>

namespace fastjoin::server {

AdmissionController::AdmissionController(AdmissionConfig cfg)
    : cfg_(cfg), clock_(cfg.clock ? cfg.clock : &real_clock()) {}

AdmissionController::Bucket& AdmissionController::bucket_for(
    const std::string& tenant) {
  auto [it, inserted] = buckets_.try_emplace(tenant);
  if (inserted) {
    // A fresh tenant starts with a full bucket: its first burst up to
    // capacity is admitted, which is what the boundary tests pin.
    it->second.scaled_tokens = cfg_.tenant_burst_bytes * kTokenScale;
    it->second.last_refill = clock_->now();
  }
  return it->second;
}

void AdmissionController::refill(Bucket& b) {
  const std::chrono::nanoseconds now = clock_->now();
  if (now <= b.last_refill) return;
  const std::uint64_t dt_ns =
      static_cast<std::uint64_t>((now - b.last_refill).count());
  // rate [bytes/s] * dt [ns] * scale / 1e9, ordered to keep precision
  // without overflowing: rates are << 2^34, dt realistically << 2^40.
  const std::uint64_t earned =
      cfg_.tenant_rate_bytes_per_sec * kTokenScale / 1'000'000 *
      (dt_ns / 1'000);
  const std::uint64_t cap = cfg_.tenant_burst_bytes * kTokenScale;
  b.scaled_tokens = std::min(cap, b.scaled_tokens + earned);
  b.last_refill = now;
}

void AdmissionController::refund(const std::string& tenant,
                                 std::uint64_t payload_bytes) {
  Bucket& b = bucket_for(tenant);
  const std::uint64_t cap = cfg_.tenant_burst_bytes * kTokenScale;
  b.scaled_tokens =
      std::min(cap, b.scaled_tokens + payload_bytes * kTokenScale);
}

std::uint64_t AdmissionController::tenant_tokens(const std::string& tenant) {
  Bucket& b = bucket_for(tenant);
  refill(b);
  return b.scaled_tokens / kTokenScale;
}

AdmissionDecision AdmissionController::admit_append(
    const std::string& tenant, std::uint64_t payload_bytes,
    std::uint64_t records, std::uint64_t inflight_bytes) {
  AdmissionDecision d;
  if (records > cfg_.max_batch_records) {
    d.reason = RejectReason::kBatchTooLarge;
    d.retry_after_ms = 0;  // resize the batch, don't wait
    return d;
  }
  if (inflight_bytes > cfg_.global_budget_bytes) {
    d.reason = RejectReason::kGlobalBytes;
    // The budget drains at fabric speed, which we can't see from here;
    // a short fixed backoff spreads the retries without lying about a
    // rate we don't know.
    d.retry_after_ms = 10;
    return d;
  }
  Bucket& b = bucket_for(tenant);
  refill(b);
  const std::uint64_t cost = payload_bytes * kTokenScale;
  if (b.scaled_tokens >= cost) {
    b.scaled_tokens -= cost;
    d.admitted = true;
    return d;
  }
  d.reason = RejectReason::kTenantRate;
  const std::uint64_t deficit = cost - b.scaled_tokens;
  const std::uint64_t rate_scaled_per_ms =
      std::max<std::uint64_t>(1, cfg_.tenant_rate_bytes_per_sec *
                                     kTokenScale / 1'000);
  d.retry_after_ms = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      60'000, (deficit + rate_scaled_per_ms - 1) / rate_scaled_per_ms));
  // A zero retry_after on a refusal would read as "retry immediately"
  // and melt into a hot loop; the deficit was nonzero, so the wait is
  // at least a millisecond.
  d.retry_after_ms = std::max<std::uint32_t>(1, d.retry_after_ms);
  return d;
}

}  // namespace fastjoin::server
