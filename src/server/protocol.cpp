// FASTJOIN_PARSE_FILE — client protocol codecs; decoders must stay
// total over arbitrary bytes (see parse-surface lint rule).
#include "server/protocol.hpp"

namespace fastjoin::server {
namespace {

using net::ByteReader;
using net::ByteWriter;
using net::read_count;

constexpr std::size_t kClientRecordBytes = 1 + 8 + 8;
constexpr std::size_t kMatchPairBytes = 8 + 8 + 8;
/// Tenant ids are routing/accounting keys, not documents.
constexpr std::size_t kMaxTenantBytes = 256;

void put_string(ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) w.u8(static_cast<std::uint8_t>(c));
}

bool get_string(ByteReader& r, std::string& s) {
  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxTenantBytes || n > r.remaining()) return false;
  s.clear();
  s.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t c = 0;
    if (!r.u8(c)) return false;
    s.push_back(static_cast<char>(c));
  }
  return true;
}

}  // namespace

const char* client_msg_type_name(ClientMsgType t) {
  switch (t) {
    case ClientMsgType::kClientHello: return "ClientHello";
    case ClientMsgType::kClientHelloAck: return "ClientHelloAck";
    case ClientMsgType::kAppend: return "Append";
    case ClientMsgType::kAppendAck: return "AppendAck";
    case ClientMsgType::kRejected: return "Rejected";
    case ClientMsgType::kQuery: return "Query";
    case ClientMsgType::kQueryResult: return "QueryResult";
    case ClientMsgType::kClientBye: return "ClientBye";
  }
  return "?";
}

const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kTenantRate: return "tenant-rate";
    case RejectReason::kGlobalBytes: return "global-bytes";
    case RejectReason::kBatchTooLarge: return "batch-too-large";
    case RejectReason::kBackpressure: return "backpressure";
    case RejectReason::kBadTenant: return "bad-tenant";
  }
  return "?";
}

std::vector<std::byte> encode(const ClientHelloMsg& m) {
  ByteWriter w;
  put_string(w, m.tenant);
  w.u32(m.proto_version);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, ClientHelloMsg& m) {
  ByteReader r(p);
  return get_string(r, m.tenant) && r.u32(m.proto_version) && r.done();
}

std::vector<std::byte> encode(const ClientHelloAckMsg& m) {
  ByteWriter w;
  w.u8(m.ok);
  w.u8(m.reason);
  w.u32(m.max_batch_records);
  w.u64(m.rate_bytes_per_sec);
  w.u64(m.burst_bytes);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, ClientHelloAckMsg& m) {
  ByteReader r(p);
  return r.u8(m.ok) && r.u8(m.reason) && r.u32(m.max_batch_records) &&
         r.u64(m.rate_bytes_per_sec) && r.u64(m.burst_bytes) && r.done();
}

std::vector<std::byte> encode(const AppendMsg& m) {
  ByteWriter w;
  w.u64(m.req_id);
  w.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const ClientRecord& rec : m.records) {
    w.u8(static_cast<std::uint8_t>(rec.side));
    w.u64(rec.key);
    w.u64(rec.payload);
  }
  return w.take();
}

bool decode(const std::vector<std::byte>& p, AppendMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!r.u64(m.req_id) || !read_count(r, kClientRecordBytes, n)) {
    return false;
  }
  m.records.clear();
  m.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ClientRecord rec;
    std::uint8_t side = 0;
    if (!r.u8(side) || side > 1 || !r.u64(rec.key) || !r.u64(rec.payload)) {
      return false;
    }
    rec.side = static_cast<Side>(side);
    m.records.push_back(rec);
  }
  return r.done();
}

std::size_t append_payload_bytes(std::size_t n) {
  return 8 + 4 + n * kClientRecordBytes;
}

std::vector<std::byte> encode(const AppendAckMsg& m) {
  ByteWriter w;
  w.u64(m.req_id);
  w.u64(m.first_offset);
  w.u64(m.appended);
  w.u64(m.parked);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, AppendAckMsg& m) {
  ByteReader r(p);
  return r.u64(m.req_id) && r.u64(m.first_offset) && r.u64(m.appended) &&
         r.u64(m.parked) && r.done();
}

std::vector<std::byte> encode(const RejectedMsg& m) {
  ByteWriter w;
  w.u64(m.req_id);
  w.u8(m.reason);
  w.u32(m.retry_after_ms);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, RejectedMsg& m) {
  ByteReader r(p);
  return r.u64(m.req_id) && r.u8(m.reason) && r.u32(m.retry_after_ms) &&
         r.done();
}

std::vector<std::byte> encode(const QueryMsg& m) {
  ByteWriter w;
  w.u64(m.req_id);
  w.u64(m.key);
  w.u32(m.max_recent);
  return w.take();
}

bool decode(const std::vector<std::byte>& p, QueryMsg& m) {
  ByteReader r(p);
  return r.u64(m.req_id) && r.u64(m.key) && r.u32(m.max_recent) && r.done();
}

std::vector<std::byte> encode(const QueryResultMsg& m) {
  ByteWriter w;
  w.u64(m.req_id);
  w.u64(m.key);
  w.u64(m.r_tuples);
  w.u64(m.s_tuples);
  w.u32(m.owner_r);
  w.u32(m.owner_s);
  w.u64(m.as_of_ckpt);
  w.u64(m.matches_total);
  w.u32(static_cast<std::uint32_t>(m.recent.size()));
  for (const MatchPair& p : m.recent) {
    w.u64(p.key);
    w.u64(p.r_seq);
    w.u64(p.s_seq);
  }
  return w.take();
}

bool decode(const std::vector<std::byte>& p, QueryResultMsg& m) {
  ByteReader r(p);
  std::uint32_t n = 0;
  if (!(r.u64(m.req_id) && r.u64(m.key) && r.u64(m.r_tuples) &&
        r.u64(m.s_tuples) && r.u32(m.owner_r) && r.u32(m.owner_s) &&
        r.u64(m.as_of_ckpt) && r.u64(m.matches_total) &&
        read_count(r, kMatchPairBytes, n))) {
    return false;
  }
  m.recent.clear();
  m.recent.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MatchPair mp;
    if (!r.u64(mp.key) || !r.u64(mp.r_seq) || !r.u64(mp.s_seq)) {
      return false;
    }
    m.recent.push_back(mp);
  }
  return r.done();
}

}  // namespace fastjoin::server
