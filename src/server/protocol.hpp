// FASTJOIN_PARSE_FILE — client-facing byte decoders at the trust
// boundary; every decode() must be total over arbitrary bytes
// (fastjoin-lint `parse-surface` enforces the construct bans and the
// one-fuzz-harness-per-type parity check).
//
// Client-facing wire protocol of the serving front door.
//
// Clients (tools/fastjoin_client, external load generators) speak the
// same length-prefixed CRC frames as the worker fabric (net/frame.hpp)
// but a disjoint message taxonomy, carried on a separate listener — a
// client can never inject worker-protocol frames and vice versa. The
// type space starts at 100 so a frame from the wrong port is
// unmistakably a protocol error, not a lucky alias.
//
// Direction legend: C→S client to server, S→C server to client.
//
//   kClientHello    C→S  tenant id; first frame after connect
//   kClientHelloAck S→C  admission parameters for this tenant
//   kAppend         C→S  a batch of records to ingest (side/key/payload;
//                        seq and ts are stamped by the router — the
//                        single ingest point owns the stream order)
//   kAppendAck      S→C  assigned offsets for an admitted batch
//   kRejected       S→C  admission refusal with an explicit retry_after
//                        (the front door never silently drops)
//   kQuery          C→S  per-key read over JoinStore snapshot state
//   kQueryResult    S→C  stored-tuple counts, owners, recent matches
//   kClientBye      C→S  clean goodbye; the server closes after this
//
// Serialization is the ByteWriter/ByteReader idiom from net/wire.hpp:
// field-by-field little-endian, decoders fail the whole message on any
// truncation or trailing garbage and the connection is torn down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/record.hpp"
#include "engine/tuple.hpp"
#include "net/wire.hpp"

namespace fastjoin::server {

enum class ClientMsgType : std::uint16_t {
  kClientHello = 100,
  kClientHelloAck = 101,
  kAppend = 102,
  kAppendAck = 103,
  kRejected = 104,
  kQuery = 105,
  kQueryResult = 106,
  kClientBye = 107,
};

const char* client_msg_type_name(ClientMsgType t);

/// Why an append was refused. Carried in RejectedMsg::reason.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kTenantRate = 1,     ///< per-tenant token bucket empty
  kGlobalBytes = 2,    ///< global in-flight byte budget exhausted
  kBatchTooLarge = 3,  ///< more records than max_batch_records
  kBackpressure = 4,   ///< downstream (worker fabric / log) not draining
  kBadTenant = 5,      ///< empty or oversized tenant id at hello
};

const char* reject_reason_name(RejectReason r);

struct ClientHelloMsg {
  /// Tenant identity — the admission-control and SLO-accounting key.
  /// Authentication is by assertion (the fabric binds 127.0.0.1 only;
  /// see docs/architecture.md "Serving front door").
  std::string tenant;
  std::uint32_t proto_version = 1;
};

struct ClientHelloAckMsg {
  std::uint8_t ok = 0;          ///< 0 => the hello was refused; reason set
  std::uint8_t reason = 0;      ///< RejectReason when ok == 0
  std::uint32_t max_batch_records = 0;
  std::uint64_t rate_bytes_per_sec = 0;  ///< this tenant's refill rate
  std::uint64_t burst_bytes = 0;         ///< this tenant's bucket capacity
};

/// One record as a client offers it. The router stamps seq (per side)
/// and ts (global arrival order) at admission — clients cannot forge
/// stream positions.
struct ClientRecord {
  Side side = Side::kR;
  KeyId key = 0;
  std::uint64_t payload = 0;
};

struct AppendMsg {
  std::uint64_t req_id = 0;  ///< echoed in the ack/reject
  std::vector<ClientRecord> records;
};

struct AppendAckMsg {
  std::uint64_t req_id = 0;
  /// StreamLog offset of the first record of this batch that was
  /// appended immediately. Records parked by an in-flight migration
  /// receive offsets when the migration resolves; they are counted in
  /// `parked` and no offset is promised for them here.
  std::uint64_t first_offset = 0;
  std::uint64_t appended = 0;  ///< records logged immediately
  std::uint64_t parked = 0;    ///< records held by a migration park
};

struct RejectedMsg {
  std::uint64_t req_id = 0;
  std::uint8_t reason = 0;  ///< RejectReason
  /// Milliseconds until the tenant's bucket (or the global budget) can
  /// cover a batch of this size again. 0 means "retry immediately"
  /// (e.g. kBatchTooLarge wants a smaller batch, not a wait).
  std::uint32_t retry_after_ms = 0;
};

struct QueryMsg {
  std::uint64_t req_id = 0;
  KeyId key = 0;
  /// Maximum recent matches to return (server caps this further).
  std::uint32_t max_recent = 0;
};

struct QueryResultMsg {
  std::uint64_t req_id = 0;
  KeyId key = 0;
  /// Stored-tuple counts for the key per side, from the latest
  /// completed checkpoint snapshots (a consistent per-worker cut).
  std::uint64_t r_tuples = 0;
  std::uint64_t s_tuples = 0;
  std::uint32_t owner_r = 0;  ///< worker owning the key's R-side store
  std::uint32_t owner_s = 0;
  /// Smallest checkpoint id across live workers whose snapshots back
  /// this answer (0 = no checkpoint has completed yet).
  std::uint64_t as_of_ckpt = 0;
  std::uint64_t matches_total = 0;  ///< cluster-wide emitted matches
  std::vector<MatchPair> recent;    ///< recent matches for this key
};

std::vector<std::byte> encode(const ClientHelloMsg& m);
bool decode(const std::vector<std::byte>& p, ClientHelloMsg& m);
std::vector<std::byte> encode(const ClientHelloAckMsg& m);
bool decode(const std::vector<std::byte>& p, ClientHelloAckMsg& m);
std::vector<std::byte> encode(const AppendMsg& m);
bool decode(const std::vector<std::byte>& p, AppendMsg& m);
std::vector<std::byte> encode(const AppendAckMsg& m);
bool decode(const std::vector<std::byte>& p, AppendAckMsg& m);
std::vector<std::byte> encode(const RejectedMsg& m);
bool decode(const std::vector<std::byte>& p, RejectedMsg& m);
std::vector<std::byte> encode(const QueryMsg& m);
bool decode(const std::vector<std::byte>& p, QueryMsg& m);
std::vector<std::byte> encode(const QueryResultMsg& m);
bool decode(const std::vector<std::byte>& p, QueryResultMsg& m);

/// Exact encoded payload size of an AppendMsg with `n` records —
/// admission cost accounting and the rate-limit boundary tests both
/// need the byte-exact figure.
std::size_t append_payload_bytes(std::size_t n);

}  // namespace fastjoin::server
