// Admission control for the serving front door: per-tenant token
// buckets plus a global in-flight byte budget, with priority classes so
// load shedding hits bulk ingest before reads and never touches the
// worker fabric's own control traffic (which doesn't pass through here
// at all — checkpoint/migration frames ride the router↔worker
// connections directly; refusing ingest is precisely what keeps those
// queues drainable).
//
// Policy, in order:
//   1. Batch shape: more records than max_batch_records → kBatchTooLarge
//      (retry_after 0: resize, don't wait).
//   2. Global budget: admitted ingest bytes still queued toward the
//      worker fabric above `global_budget_bytes` → kGlobalBytes. Queries
//      are exempt (they are answered locally and shedding them saves
//      nothing downstream).
//   3. Tenant bucket: the batch's wire bytes are charged against the
//      tenant's token bucket; an empty bucket → kTenantRate with a
//      retry_after computed from the deficit and the refill rate.
//
// Every refusal is explicit — the caller frames a kRejected reply; the
// front door never silently drops — and deterministic under an injected
// Clock, which is how the boundary tests pin "burst exactly at capacity
// admits; +1 rejects".
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/clock.hpp"
#include "server/protocol.hpp"

namespace fastjoin::server {

struct AdmissionConfig {
  /// Steady-state refill, bytes of append payload per second.
  std::uint64_t tenant_rate_bytes_per_sec = 4 << 20;
  /// Bucket capacity: the largest burst a tenant can spend at once.
  std::uint64_t tenant_burst_bytes = 1 << 20;
  /// Ceiling on ingest bytes admitted but not yet drained downstream.
  std::uint64_t global_budget_bytes = 16 << 20;
  std::uint32_t max_batch_records = 8192;
  /// Time source; nullptr = real_clock(). Tests inject a VirtualClock.
  Clock* clock = nullptr;
};

struct AdmissionDecision {
  bool admitted = false;
  RejectReason reason = RejectReason::kNone;
  std::uint32_t retry_after_ms = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg);

  /// Decide one append of `payload_bytes` wire bytes and `records`
  /// records for `tenant`, with `inflight_bytes` currently queued
  /// toward the worker fabric. Charges the tenant's bucket only when
  /// admitted — a rejected request costs the tenant nothing.
  AdmissionDecision admit_append(const std::string& tenant,
                                 std::uint64_t payload_bytes,
                                 std::uint64_t records,
                                 std::uint64_t inflight_bytes);

  /// Return an admitted batch's tokens (capped at burst). Used when the
  /// downstream sink refuses a batch the bucket already paid for — the
  /// refusal becomes kBackpressure and the tenant is not billed.
  void refund(const std::string& tenant, std::uint64_t payload_bytes);

  /// Tokens currently in `tenant`'s bucket (refilled to now); a tenant
  /// never seen before reports a full bucket.
  std::uint64_t tenant_tokens(const std::string& tenant);

  const AdmissionConfig& config() const { return cfg_; }

 private:
  struct Bucket {
    /// Token balance in fractional bytes (scaled by kTokenScale) so
    /// slow refill rates don't round to zero between close-together
    /// requests.
    std::uint64_t scaled_tokens = 0;
    std::chrono::nanoseconds last_refill{0};
  };
  static constexpr std::uint64_t kTokenScale = 1024;

  Bucket& bucket_for(const std::string& tenant);
  void refill(Bucket& b);

  AdmissionConfig cfg_;
  Clock* clock_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace fastjoin::server
