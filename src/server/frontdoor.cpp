#include "server/frontdoor.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/flight_recorder.hpp"

namespace fastjoin::server {

namespace {

/// Backoff handed out when the data plane itself (not admission)
/// refuses a batch: worker queues drain at fabric speed, a few ms away.
constexpr std::uint32_t kBackpressureRetryMs = 5;

constexpr std::uint16_t wire(ClientMsgType t) {
  return static_cast<std::uint16_t>(t);
}

}  // namespace

FrontDoor::FrontDoor(net::EventLoop& loop, FrontDoorConfig cfg)
    : loop_(loop),
      cfg_(std::move(cfg)),
      clock_(cfg_.clock ? cfg_.clock : &real_clock()),
      admission_(cfg_.admission) {}

FrontDoor::~FrontDoor() {
  stop();
  *alive_ = false;  // disarm deferred limbo sweeps still queued on the loop
}

bool FrontDoor::start(IngestSink sink, QueryHandler query, LoadProbe load,
                      std::string* err) {
  sink_ = std::move(sink);
  query_ = std::move(query);
  load_ = std::move(load);
  acceptor_ = std::make_unique<net::Acceptor>(
      loop_, cfg_.endpoint,
      [this](net::Socket peer) { on_accept(std::move(peer)); });
  if (!acceptor_->ok()) {
    if (err != nullptr) *err = acceptor_->error();
    acceptor_.reset();
    return false;
  }
  if (cfg_.idle_timeout.count() > 0 && cfg_.sweep_interval.count() > 0) {
    arm_sweep();
  }
  return true;
}

void FrontDoor::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (sweep_timer_ != 0) {
    loop_.cancel_timer(sweep_timer_);
    sweep_timer_ = 0;
  }
  acceptor_.reset();
  // close_conn moves entries out of conns_; snapshot the targets first.
  std::vector<ClientConn*> open;
  open.reserve(conns_.size());
  for (auto& c : conns_) {
    if (!c->dead) open.push_back(c.get());
  }
  for (ClientConn* c : open) close_conn(c, "front door shutdown", true);
}

void FrontDoor::arm_sweep() {
  sweep_timer_ = loop_.add_timer(
      std::chrono::steady_clock::now() + cfg_.sweep_interval, [this] {
        sweep_timer_ = 0;
        if (stopped_) return;
        sweep_idle();
        arm_sweep();
      });
}

void FrontDoor::sweep_idle() {
  const std::chrono::nanoseconds now = clock_->now();
  const std::chrono::nanoseconds limit = cfg_.idle_timeout;
  std::vector<ClientConn*> victims;
  for (auto& c : conns_) {
    if (c->dead) continue;
    if (now - c->last_activity > limit) victims.push_back(c.get());
  }
  for (ClientConn* c : victims) {
    ++stats_.idle_closed;
    const bool stalled = c->conn->mid_frame();
    close_conn(c,
               stalled ? "idle timeout (stalled mid-frame)"
                       : "idle timeout",
               false);
  }
}

void FrontDoor::on_accept(net::Socket peer) {
  if (stopped_) return;
  if (conns_.size() >= cfg_.max_connections) {
    ++stats_.refused_capacity;
    return;  // peer socket closes on scope exit; the refusal is the signal
  }
  auto cc = std::make_unique<ClientConn>();
  ClientConn* c = cc.get();
  net::Connection::Options opts;
  opts.max_payload = cfg_.max_frame_payload;
  c->conn = std::make_unique<net::Connection>(loop_, std::move(peer), opts);
  c->last_activity = clock_->now();
  c->conn->start(
      [this, c](net::Frame& f) { on_frame(c, f); },
      [this, c](const std::string& reason, bool clean) {
        (void)reason;
        if (c->dead) return;  // close_conn already accounted for it
        c->dead = true;
        if (!clean) ++stats_.protocol_errors;
        ++stats_.closed;
        reap(c);
      });
  conns_.push_back(std::move(cc));
  ++stats_.accepted;
}

void FrontDoor::reap(ClientConn* c) {
  // Move the slot to limbo now (the Connection may be inside one of its
  // own callbacks) and destroy it after the dispatch pass.
  auto it = std::find_if(
      conns_.begin(), conns_.end(),
      [c](const std::unique_ptr<ClientConn>& p) { return p.get() == c; });
  if (it == conns_.end()) return;
  limbo_.push_back(std::move(*it));
  conns_.erase(it);
  loop_.defer([this, alive = alive_] {
    if (*alive) limbo_.clear();
  });
}

void FrontDoor::close_conn(ClientConn* c, const std::string& reason,
                           bool clean) {
  if (c->dead) return;
  c->dead = true;
  ++stats_.closed;
  c->conn->close(reason, clean);  // fires the close handler; dead guards it
  reap(c);
}

void FrontDoor::on_frame(ClientConn* c, net::Frame& f) {
  if (c->dead || stopped_) return;
  c->last_activity = clock_->now();
  switch (static_cast<ClientMsgType>(f.type)) {
    case ClientMsgType::kClientHello:
      handle_hello(c, f);
      return;
    case ClientMsgType::kAppend:
      handle_append(c, f);
      return;
    case ClientMsgType::kQuery:
      handle_query(c, f);
      return;
    case ClientMsgType::kClientBye:
      close_conn(c, "client bye", true);
      return;
    default:
      protocol_error(c, "unexpected client frame type " +
                            std::to_string(f.type));
      return;
  }
}

void FrontDoor::handle_hello(ClientConn* c, const net::Frame& f) {
  ClientHelloMsg m;
  if (!decode(f.payload, m)) {
    protocol_error(c, "bad hello");
    return;
  }
  if (c->helloed) {
    protocol_error(c, "duplicate hello");
    return;
  }
  ClientHelloAckMsg ack;
  if (m.tenant.empty() || m.proto_version != 1) {
    // Refused, not dropped: the ack says why, the client closes. The
    // idle sweep reaps clients that linger anyway.
    ack.ok = 0;
    ack.reason = static_cast<std::uint8_t>(RejectReason::kBadTenant);
    c->conn->send(wire(ClientMsgType::kClientHelloAck), encode(ack));
    return;
  }
  c->tenant = m.tenant;
  c->helloed = true;
  ack.ok = 1;
  ack.max_batch_records = cfg_.admission.max_batch_records;
  ack.rate_bytes_per_sec = cfg_.admission.tenant_rate_bytes_per_sec;
  ack.burst_bytes = cfg_.admission.tenant_burst_bytes;
  c->conn->send(wire(ClientMsgType::kClientHelloAck), encode(ack));
}

void FrontDoor::handle_append(ClientConn* c, const net::Frame& f) {
  if (!c->helloed) {
    protocol_error(c, "append before hello");
    return;
  }
  AppendMsg m;
  if (!decode(f.payload, m)) {
    protocol_error(c, "bad append");
    return;
  }
  const std::chrono::nanoseconds t0 = clock_->now();
  TenantStats& ts = tenant_stats(c->tenant);
  TenantMetrics& tm = tenant_metrics(c->tenant);
  const std::uint64_t payload_bytes = f.payload.size();
  const std::uint64_t records = m.records.size();
  ++ts.offered_requests;
  ts.offered_records += records;

  const std::uint64_t inflight = load_ ? load_() : 0;
  AdmissionDecision d =
      admission_.admit_append(c->tenant, payload_bytes, records, inflight);
  if (shedding_ != (d.reason == RejectReason::kGlobalBytes)) {
    note_shed(!shedding_, inflight);
  }

  if (d.admitted) {
    AppendAckMsg ack;
    if (sink_(c->tenant, m.records, &ack)) {
      ack.req_id = m.req_id;
      c->conn->send(wire(ClientMsgType::kAppendAck), encode(ack));
      ++ts.admitted_requests;
      ts.admitted_records += records;
      ts.admitted_bytes += payload_bytes;
      tm.admitted->add();
      tm.bytes->add(payload_bytes);
      tm.ingest_ack_ns->record(
          static_cast<double>((clock_->now() - t0).count()));
      return;
    }
    // The data plane refused a batch admission already billed; undo the
    // charge and answer with an explicit retryable refusal.
    admission_.refund(c->tenant, payload_bytes);
    d.admitted = false;
    d.reason = RejectReason::kBackpressure;
    d.retry_after_ms = kBackpressureRetryMs;
    ++stats_.backpressure_rejects;
  }

  RejectedMsg rej;
  rej.req_id = m.req_id;
  rej.reason = static_cast<std::uint8_t>(d.reason);
  rej.retry_after_ms = d.retry_after_ms;
  c->conn->send(wire(ClientMsgType::kRejected), encode(rej));
  ++ts.rejected_requests;
  ts.rejected_records += records;
  tm.rejected->add();
  telemetry::flight_record(telemetry::FlightEvent::kServeReject,
                           static_cast<std::uint64_t>(d.reason),
                           d.retry_after_ms);
}

void FrontDoor::handle_query(ClientConn* c, const net::Frame& f) {
  if (!c->helloed) {
    protocol_error(c, "query before hello");
    return;
  }
  QueryMsg q;
  if (!decode(f.payload, q)) {
    protocol_error(c, "bad query");
    return;
  }
  const std::chrono::nanoseconds t0 = clock_->now();
  q.max_recent = std::min(q.max_recent, cfg_.max_query_recent);
  QueryResultMsg out;
  out.key = q.key;
  if (query_) query_(q, &out);
  out.req_id = q.req_id;
  c->conn->send(wire(ClientMsgType::kQueryResult), encode(out));
  TenantStats& ts = tenant_stats(c->tenant);
  ++ts.queries;
  tenant_metrics(c->tenant)
      .query_ns->record(static_cast<double>((clock_->now() - t0).count()));
}

void FrontDoor::protocol_error(ClientConn* c, const std::string& what) {
  ++stats_.protocol_errors;
  close_conn(c, what, false);
}

void FrontDoor::note_shed(bool shedding, std::uint64_t inflight) {
  shedding_ = shedding;
  ++stats_.shed_transitions;
  telemetry::flight_record(telemetry::FlightEvent::kServeShed,
                           shedding ? 1 : 0, inflight);
}

FrontDoor::TenantMetrics& FrontDoor::tenant_metrics(
    const std::string& tenant) {
  auto [it, inserted] = metrics_.try_emplace(tenant);
  if (inserted) {
    auto& reg = telemetry::MetricRegistry::global();
    const std::string base = "server.tenant." + tenant;
    it->second.admitted = &reg.counter(base + ".admitted_requests");
    it->second.rejected = &reg.counter(base + ".rejected_requests");
    it->second.bytes = &reg.counter(base + ".admitted_bytes");
    it->second.ingest_ack_ns = &reg.histogram(base + ".ingest_ack_ns");
    it->second.query_ns = &reg.histogram(base + ".query_ns");
  }
  return it->second;
}

TenantStats& FrontDoor::tenant_stats(const std::string& tenant) {
  return stats_.tenants[tenant];
}

}  // namespace fastjoin::server
