// FrontDoor: the serving surface of the router process.
//
// One net::Acceptor plus per-client net::Connections on the SAME event
// loop that drives the worker fabric — a third fd family next to worker
// conns and lifecycle timers, not a second thread. Everything here is
// therefore loop-thread-only and lock-free by construction.
//
// The front door owns protocol and policy; it does not know how records
// become joins. The host (MultiprocRouter, or a test harness) plugs in
// three callbacks:
//   * IngestSink     — an admitted batch of ClientRecords; returns false
//                      when the data plane cannot take them right now
//                      (worker conns unwritable), which the front door
//                      surfaces as an explicit kBackpressure rejection.
//                      The sink MUST NOT pump the event loop: it runs
//                      inside a dispatch callback.
//   * QueryHandler   — answers a per-key read from snapshot state;
//                      non-blocking, never touches the data plane.
//   * LoadProbe      — bytes admitted but not yet drained toward the
//                      workers; input to the global budget check.
//
// Per request: hello authenticates a tenant (by assertion — the fabric
// binds loopback; see docs/architecture.md), appends pass through
// AdmissionController and are either acked with assigned offsets or
// refused with an explicit kRejected{retry_after} frame (never a silent
// drop), queries bypass the tenant bucket and the global budget
// (shedding a locally-answered read saves nothing downstream). A
// periodic sweep closes connections idle past idle_timeout, which is
// what bounds a slowloris client trickling one byte per frame header.
//
// SLO telemetry lands in MetricRegistry::global() under "server.*"
// (per-tenant admitted/rejected/bytes counters, ingest→ack and query
// latency histograms) and in a loop-thread FrontDoorStats the tests
// read directly; reject and shed transitions hit the flight recorder.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/thread_safety.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "server/admission.hpp"
#include "server/protocol.hpp"
#include "telemetry/metrics.hpp"

namespace fastjoin::server {

struct FrontDoorConfig {
  /// Listen endpoint. kTcp port 0 picks an ephemeral port; the bound
  /// port is readable via FrontDoor::endpoint() after start().
  net::Endpoint endpoint;
  AdmissionConfig admission;
  /// Frame-size ceiling for client connections — far below the fabric
  /// default: one append is at most max_batch_records small records.
  std::uint32_t max_frame_payload = 8u << 20;
  std::size_t max_connections = 256;
  /// A connection with no complete frame for this long is closed by the
  /// sweep (slowloris bound). Zero disables the sweep entirely.
  std::chrono::milliseconds idle_timeout{10'000};
  std::chrono::milliseconds sweep_interval{500};
  /// Cap on recent matches a query may request.
  std::uint32_t max_query_recent = 256;
  /// Time source for idle tracking and latency stamps; nullptr =
  /// real_clock(). The admission controller uses admission.clock.
  Clock* clock = nullptr;
};

/// Loop-thread-only accounting the acceptance tests assert on:
/// offered == admitted + rejected per tenant, exactly.
struct TenantStats {
  std::uint64_t offered_requests = 0;
  std::uint64_t admitted_requests = 0;
  std::uint64_t rejected_requests = 0;
  std::uint64_t offered_records = 0;
  std::uint64_t admitted_records = 0;
  std::uint64_t rejected_records = 0;
  std::uint64_t admitted_bytes = 0;
  std::uint64_t queries = 0;
};

struct FrontDoorStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t idle_closed = 0;        ///< closed by the idle sweep
  std::uint64_t refused_capacity = 0;   ///< accept() past max_connections
  std::uint64_t protocol_errors = 0;
  std::uint64_t backpressure_rejects = 0;
  std::uint64_t shed_transitions = 0;   ///< global-budget state flips
  std::map<std::string, TenantStats> tenants;
};

class FrontDoor {
 public:
  /// Admitted batch for `tenant`. Fill ack (first_offset/appended/
  /// parked); return false to refuse on downstream backpressure.
  using IngestSink = std::function<bool(
      const std::string& tenant, const std::vector<ClientRecord>& records,
      AppendAckMsg* ack)>;
  /// Answer a key read from snapshot state; fill everything but req_id.
  using QueryHandler =
      std::function<void(const QueryMsg& q, QueryResultMsg* out)>;
  /// Ingest bytes admitted but not yet drained downstream.
  using LoadProbe = std::function<std::uint64_t()>;

  FrontDoor(net::EventLoop& loop, FrontDoorConfig cfg);
  ~FrontDoor();
  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Bind, listen, and arm the idle sweep. False (with *err) on bind
  /// failure. Callbacks must outlive the front door.
  bool start(IngestSink sink, QueryHandler query, LoadProbe load,
             std::string* err);

  /// Close every client connection and stop accepting. Idempotent;
  /// also run by the destructor.
  void stop();

  /// Listen endpoint with the real bound port (valid after start()).
  const net::Endpoint& endpoint() const { return cfg_.endpoint; }

  const FrontDoorStats& stats() const { return stats_; }
  std::size_t open_connections() const { return conns_.size(); }
  AdmissionController& admission() { return admission_; }

  /// Close connections idle past idle_timeout. Normally driven by the
  /// sweep timer; public so tests with a VirtualClock can trigger it
  /// deterministically.
  void sweep_idle();

 private:
  struct ClientConn {
    std::unique_ptr<net::Connection> conn;
    std::string tenant;
    bool helloed = false;
    bool dead = false;  ///< close begun; ignore further frames
    std::chrono::nanoseconds last_activity{0};
  };

  /// Cached MetricRegistry handles, resolved once per tenant.
  struct TenantMetrics {
    telemetry::Counter* admitted = nullptr;
    telemetry::Counter* rejected = nullptr;
    telemetry::Counter* bytes = nullptr;
    telemetry::ConcurrentHistogram* ingest_ack_ns = nullptr;
    telemetry::ConcurrentHistogram* query_ns = nullptr;
  };

  void on_accept(net::Socket peer);
  /// Move c's slot from conns_ to limbo_ and schedule its destruction
  /// after the current dispatch pass.
  void reap(ClientConn* c);
  void on_frame(ClientConn* c, net::Frame& f);
  void handle_hello(ClientConn* c, const net::Frame& f);
  void handle_append(ClientConn* c, const net::Frame& f);
  void handle_query(ClientConn* c, const net::Frame& f);
  void protocol_error(ClientConn* c, const std::string& what);
  /// Close now; the ClientConn slot is reaped via loop_.defer.
  void close_conn(ClientConn* c, const std::string& reason, bool clean);
  void note_shed(bool shedding, std::uint64_t inflight);
  void arm_sweep();
  TenantMetrics& tenant_metrics(const std::string& tenant);
  TenantStats& tenant_stats(const std::string& tenant);

  net::EventLoop& loop_;
  FrontDoorConfig cfg_;
  Clock* clock_;
  LOOP_CONFINED AdmissionController admission_;
  IngestSink sink_;
  QueryHandler query_;
  LoadProbe load_;
  LOOP_CONFINED std::unique_ptr<net::Acceptor> acceptor_;
  LOOP_CONFINED std::vector<std::unique_ptr<ClientConn>> conns_;
  /// Closed connections awaiting deferred destruction (a Connection may
  /// be inside its own callback when it closes).
  LOOP_CONFINED std::vector<std::unique_ptr<ClientConn>> limbo_;
  /// Deferred limbo sweeps capture this flag by value so a sweep firing
  /// after the front door is destroyed becomes a no-op, not a UAF.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  LOOP_CONFINED FrontDoorStats stats_;
  LOOP_CONFINED std::map<std::string, TenantMetrics> metrics_;
  LOOP_CONFINED net::EventLoop::TimerId sweep_timer_ = 0;
  LOOP_CONFINED bool shedding_ = false;
  LOOP_CONFINED bool stopped_ = false;
};

}  // namespace fastjoin::server
