#include "ingest/feeder.hpp"

#include <algorithm>

#include "common/hash.hpp"
#include "engine/tuple.hpp"

namespace fastjoin {

FeedStats feed_log(RecordSource& src, StreamLog& log,
                   PartitionPolicy policy, std::uint64_t max_records,
                   std::size_t batch) {
  FeedStats fs;
  const std::uint32_t nparts = log.partitions();
  std::uint64_t rr = 0;
  std::vector<Record> buf(std::max<std::size_t>(batch, 1));
  for (;;) {
    std::size_t want = buf.size();
    if (max_records != 0) {
      want = static_cast<std::size_t>(
          std::min<std::uint64_t>(want, max_records - fs.records));
      if (want == 0) break;
    }
    const std::size_t n = src.next_batch(buf.data(), want);
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) {
      const Record& rec = buf[i];
      const std::uint32_t p =
          policy == PartitionPolicy::kByKey
              ? instance_of(rec.key, nparts)
              : static_cast<std::uint32_t>(rr++ % nparts);
      log.append(p, rec);
    }
    fs.records += n;
    ++fs.batches;
  }
  return fs;
}

std::uint64_t pump_log(const StreamLog& log,
                       std::vector<std::uint64_t> from,
                       const std::function<bool(const Record&)>& sink) {
  constexpr std::size_t kChunk = 256;
  const std::uint32_t nparts = log.partitions();
  from.resize(nparts, 0);

  struct Head {
    std::vector<LogRecord> buf;
    std::size_t i = 0;
    std::uint64_t next = 0;  ///< next offset to read on refill
    bool done = false;
  };
  std::vector<Head> heads(nparts);
  auto refill = [&](std::uint32_t p) {
    Head& h = heads[p];
    h.buf.clear();
    h.i = 0;
    if (log.read(p, h.next, kChunk, h.buf) == 0) {
      h.done = true;
    } else {
      h.next = h.buf.back().offset + 1;
    }
  };
  for (std::uint32_t p = 0; p < nparts; ++p) {
    heads[p].next = from[p];
    refill(p);
  }

  std::uint64_t delivered = 0;
  for (;;) {
    // Pick the earliest head in the engine's (ts, side, seq) total
    // order; partitions are internally ordered only by append time, so
    // the merge makes the replayed stream deterministic.
    std::int32_t best = -1;
    for (std::uint32_t p = 0; p < nparts; ++p) {
      Head& h = heads[p];
      if (h.i >= h.buf.size()) {
        if (h.done) continue;
        refill(p);
        if (h.i >= h.buf.size()) continue;
      }
      if (best < 0 ||
          precedes(h.buf[h.i].rec, heads[best].buf[heads[best].i].rec)) {
        best = static_cast<std::int32_t>(p);
      }
    }
    if (best < 0) break;
    Head& h = heads[best];
    if (!sink(h.buf[h.i].rec)) break;
    ++h.i;
    ++delivered;
  }
  return delivered;
}

}  // namespace fastjoin
