// StreamLog: the durable, replayable, partitioned ingest log — the
// Kafka stand-in between record sources and the live engine.
//
// Shape of the thing:
//  * N partitions, each an append-only chain of fixed-capacity
//    SegmentFiles (memory- or file-backed). Appends go to the active
//    (last) segment; when it lacks room it is flushed and a new one is
//    rolled.
//  * Per-partition monotone offsets: the i-th record ever appended to a
//    partition has offset i, forever — truncation removes old segments
//    but never renumbers. An (offset, partition) pair is therefore a
//    stable name for a record, which is what consumer cursors commit
//    and what crash recovery replays from.
//  * Backpressure instead of silent loss: try_append() refuses (and
//    counts) once a partition's unflushed bytes exceed
//    IngestConfig::max_unflushed_bytes; append() flushes and retries,
//    turning the bound into producer-side admission control.
//  * Retention: truncate_before() drops whole expired segments below a
//    safe offset (the engine uses the minimum checkpointed offset
//    across workers — everything below it can never be replayed).
//
// Thread safety: every public method is safe under concurrent callers;
// a per-partition mutex serializes appenders, readers and truncation of
// that partition, and distinct partitions never contend.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_safety.hpp"
#include "ingest/log_record.hpp"
#include "ingest/segment.hpp"

namespace fastjoin {

/// Configuration of the ingest log (embedded in LiveConfig as
/// `ingest`; also usable standalone).
struct IngestConfig {
  /// Master switch for the engine integration: when false the engine
  /// never instantiates a log and behaves exactly as before.
  bool enabled = false;
  /// Replay crashed workers' partitions from their last checkpointed
  /// offsets at respawn (the records_dropped == 0 mode). When false the
  /// log is write-only (an audit trail) and recovery is
  /// checkpoint-only, as before.
  bool replay = true;
  /// Partition count. The engine overrides this with its lane count
  /// (max_producers + 1) so partition order mirrors lane FIFO order.
  std::uint32_t partitions = 1;
  /// Capacity of one segment in bytes (rounded up to one record).
  std::size_t segment_bytes = 256 * 1024;
  /// Backpressure bound: a partition with more than this many unflushed
  /// bytes refuses try_append() until flushed.
  std::size_t max_unflushed_bytes = 4 * 1024 * 1024;
  SegmentBackend backend = SegmentBackend::kMemory;
  /// Directory for segment files (kFile only); created if missing.
  std::string dir = "streamlog";
};

/// Monotone counters, readable while the log is live.
struct StreamLogStats {
  std::uint64_t appended_records = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t backpressure_hits = 0;  ///< try_append refusals
  std::uint64_t flushes = 0;
  std::uint64_t segments_rolled = 0;    ///< segments created beyond the first
  std::uint64_t segments_truncated = 0;
  std::uint64_t records_truncated = 0;  ///< records dropped by retention
};

class StreamLog {
 public:
  explicit StreamLog(const IngestConfig& cfg);

  /// Recovery constructor for the file backend: scan cfg.dir for
  /// segment files written by a previous process and resume each
  /// partition after its last flushed record. Falls back to a fresh log
  /// when the directory has no segments.
  static std::unique_ptr<StreamLog> open(const IngestConfig& cfg);

  std::uint32_t partitions() const {
    return static_cast<std::uint32_t>(parts_.size());
  }
  const IngestConfig& config() const { return cfg_; }

  /// Append with admission control: returns the record's offset, or
  /// nullopt when the partition is over its unflushed-bytes bound (the
  /// caller should flush — or call append(), which does).
  std::optional<std::uint64_t> try_append(std::uint32_t partition,
                                          const Record& rec,
                                          InstanceId store_dst,
                                          InstanceId probe_dst);

  /// Append, flushing the partition to make room when backpressured.
  /// Always succeeds; returns the record's offset.
  std::uint64_t append(std::uint32_t partition, const Record& rec,
                       InstanceId store_dst = kUnroutedDst,
                       InstanceId probe_dst = kUnroutedDst);

  /// Append a run of records under ONE lock acquisition: recs[i] gets
  /// offset `return + i`. Same admission control as append() — when the
  /// unflushed bound is hit mid-run the partition is flushed in place
  /// (counted as a backpressure hit) and the run continues. The hot
  /// path for the engine's per-producer batches: one lock and one
  /// backend write per chunk instead of per record.
  std::uint64_t append_batch(std::uint32_t partition,
                             const LogRecord* recs, std::size_t n);

  void flush(std::uint32_t partition);
  void flush_all();

  /// Offset of the oldest retained record (== end_offset when empty).
  std::uint64_t start_offset(std::uint32_t partition) const;
  /// One past the newest record's offset.
  std::uint64_t end_offset(std::uint32_t partition) const;

  /// Read up to `max` records with offsets in [from, end) into `out`
  /// (appended; offsets filled in). `from` below the retention floor is
  /// clamped up to start_offset(). Returns the records read.
  std::size_t read(std::uint32_t partition, std::uint64_t from,
                   std::size_t max, std::vector<LogRecord>& out) const;

  /// Drop whole segments that lie entirely below `offset` (the active
  /// segment is never dropped). Returns records removed.
  std::uint64_t truncate_before(std::uint32_t partition,
                                std::uint64_t offset);

  StreamLogStats stats() const;

 private:
  struct Seg {
    std::unique_ptr<SegmentFile> file;
    std::uint64_t base = 0;  ///< offset of the segment's first record
    std::uint64_t records() const {
      return file->size() / kLogRecordBytes;
    }
  };
  struct Partition {
    mutable Mutex mu;
    std::deque<Seg> segments GUARDED_BY(mu);
    std::uint64_t next_offset GUARDED_BY(mu) = 0;
    /// Distinct file names across rolls.
    std::uint64_t seg_seq GUARDED_BY(mu) = 0;
  };

  std::string segment_path(std::uint32_t partition,
                           std::uint64_t base) const;
  /// Ensure the partition's active segment has room; rolls (flushing
  /// the finished segment) when needed. Caller holds p.mu.
  SegmentFile& writable_segment(std::uint32_t idx, Partition& p)
      REQUIRES(p.mu);
  std::size_t unflushed_locked(const Partition& p) const REQUIRES(p.mu);

  IngestConfig cfg_;
  std::size_t seg_capacity_ = 0;  ///< cfg.segment_bytes, record-aligned
  std::vector<std::unique_ptr<Partition>> parts_;

  mutable std::atomic<std::uint64_t> appended_records_{0};
  mutable std::atomic<std::uint64_t> appended_bytes_{0};
  mutable std::atomic<std::uint64_t> backpressure_hits_{0};
  mutable std::atomic<std::uint64_t> flushes_{0};
  mutable std::atomic<std::uint64_t> segments_rolled_{0};
  mutable std::atomic<std::uint64_t> segments_truncated_{0};
  mutable std::atomic<std::uint64_t> records_truncated_{0};
};

}  // namespace fastjoin
