// FASTJOIN_PARSE_FILE — on-disk record codec replayed from possibly
// torn segment files (see parse-surface lint rule).
//
// The StreamLog's on-disk/in-memory record format.
//
// Every record published through the live engine is made durable as one
// fixed-size LogRecord entry before it is pushed onto any data lane.
// The entry carries the *routing decision* made at publish time
// (store_dst / probe_dst) alongside the record itself, so crash
// recovery can replay exactly the deliveries the crashed worker was
// responsible for without re-deriving a routing table that has since
// moved on.
//
// Entries are fixed-size, so a partition offset maps to a byte position
// by multiplication and a segment's record count is size/kLogRecordBytes
// — no index structure is needed, which is what lets a file-backed
// partition be reopened after a process restart by just statting its
// segment files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/types.hpp"
#include "datagen/record.hpp"

namespace fastjoin {

/// `store_dst`/`probe_dst` value for records logged outside the engine
/// (e.g. by the standalone feeder): no routing decision was made.
inline constexpr InstanceId kUnroutedDst = static_cast<InstanceId>(-1);

/// One StreamLog entry: the record plus the publish-time routing
/// decision. `offset` is derived from the entry's position when read
/// back (it is not serialized).
struct LogRecord {
  Record rec;
  InstanceId store_dst = kUnroutedDst;  ///< storing instance (rec.side)
  InstanceId probe_dst = kUnroutedDst;  ///< probing instance (other side)
  std::uint64_t offset = 0;             ///< partition offset (derived)
};

/// Serialized entry size: key, seq, payload (u64), ts (i64), side (u8,
/// padded to 8), store_dst, probe_dst (u32).
inline constexpr std::size_t kLogRecordBytes = 8 * 4 + 8 + 4 + 4;

/// Serialize `lr` (excluding `offset`) into exactly kLogRecordBytes at
/// `out`. Field-by-field memcpy keeps the format independent of struct
/// padding.
inline void encode_log_record(const LogRecord& lr, std::byte* out) {
  auto put64 = [&out](std::uint64_t v) {
    std::memcpy(out, &v, 8);
    out += 8;
  };
  put64(lr.rec.key);
  put64(lr.rec.seq);
  put64(lr.rec.payload);
  put64(static_cast<std::uint64_t>(lr.rec.ts));
  put64(static_cast<std::uint64_t>(lr.rec.side));
  std::uint32_t d = lr.store_dst;
  std::memcpy(out, &d, 4);
  out += 4;
  d = lr.probe_dst;
  std::memcpy(out, &d, 4);
}

/// Inverse of encode_log_record; the caller fills `offset`.
inline LogRecord decode_log_record(const std::byte* in) {
  LogRecord lr;
  auto get64 = [&in]() {
    std::uint64_t v;
    std::memcpy(&v, in, 8);
    in += 8;
    return v;
  };
  lr.rec.key = get64();
  lr.rec.seq = get64();
  lr.rec.payload = get64();
  lr.rec.ts = static_cast<SimTime>(get64());
  // Replayed bytes may be corrupt (torn or bit-flipped segments); keep
  // the side inside its two-value domain rather than trusting the file.
  lr.rec.side = static_cast<Side>(get64() & 1);
  std::uint32_t d;
  std::memcpy(&d, in, 4);
  in += 4;
  lr.store_dst = d;
  std::memcpy(&d, in, 4);
  lr.probe_dst = d;
  return lr;
}

}  // namespace fastjoin
