// ConsumerCursor: a consumer's read position over a StreamLog, Kafka
// consumer-group style in miniature.
//
// A cursor tracks two offsets per partition: `position` (the next
// record poll() will return) and `committed` (the durability mark —
// everything below it is acknowledged as fully processed). Crash
// recovery restarts a consumer at `committed`, re-reading the
// [committed, position) window it had polled but never acknowledged;
// the live engine's equivalent of commit() is the per-partition offsets
// embedded in each worker checkpoint.
//
// A cursor belongs to one consumer thread; it is not thread-safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/stream_log.hpp"

namespace fastjoin {

class ConsumerCursor {
 public:
  ConsumerCursor(const StreamLog& log, std::string name);

  /// Read up to `max` records at `position` into `out` (appended) and
  /// advance `position` past them. Returns the records read (0 = caught
  /// up). A position below the retention floor is snapped up to
  /// start_offset() first — the records below it are gone for good.
  std::size_t poll(std::uint32_t partition, std::size_t max,
                   std::vector<LogRecord>& out);

  /// Acknowledge everything polled so far on `partition`.
  void commit(std::uint32_t partition) {
    committed_[partition] = position_[partition];
  }
  /// Acknowledge up to `offset` exclusive (bounded by `position`).
  void commit(std::uint32_t partition, std::uint64_t offset);
  void commit_all();

  /// Move the read position (e.g. back to `committed` after a crash).
  void seek(std::uint32_t partition, std::uint64_t offset) {
    position_[partition] = offset;
  }

  std::uint64_t position(std::uint32_t partition) const {
    return position_[partition];
  }
  std::uint64_t committed(std::uint32_t partition) const {
    return committed_[partition];
  }
  /// Records appended but not yet polled.
  std::uint64_t lag(std::uint32_t partition) const;

  const std::string& name() const { return name_; }

 private:
  const StreamLog& log_;
  std::string name_;
  std::vector<std::uint64_t> position_;
  std::vector<std::uint64_t> committed_;
};

}  // namespace fastjoin
