// SegmentFile: one fixed-capacity extent of a StreamLog partition.
//
// A partition is a chain of segments; only the last (active) segment
// accepts appends. Two backends share the interface: kMemory (a byte
// vector, the default for tests and for runs that only need
// crash-in-process replay) and kFile (C stdio, flushed on demand, and
// reopenable after a process restart — the entry format is fixed-size,
// so a reopened segment's record count is just size/entry bytes).
//
// A SegmentFile is not thread-safe; StreamLog serializes access with a
// per-partition mutex.
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace fastjoin {

/// Storage backend for StreamLog segments.
enum class SegmentBackend : std::uint8_t {
  kMemory,  ///< byte vector; durable for the process lifetime only
  kFile,    ///< stdio file; survives process restart after flush()
};

const char* segment_backend_name(SegmentBackend b);

class SegmentFile {
 public:
  /// Create a fresh, empty segment. For kFile the file at `path` is
  /// created (truncated); for kMemory `path` is a label only.
  SegmentFile(SegmentBackend backend, std::string path,
              std::size_t capacity_bytes);
  ~SegmentFile();

  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  /// Reopen an existing file-backed segment (recovery path). Returns
  /// null if the file cannot be opened. The size is taken from the file;
  /// whatever was not flushed before the crash is gone, which is exactly
  /// the durability contract.
  static std::unique_ptr<SegmentFile> reopen(std::string path,
                                             std::size_t capacity_bytes);

  /// Append `n` bytes; returns false (and writes nothing) when the
  /// segment lacks capacity — the caller rolls to a new segment.
  bool append(const void* data, std::size_t n);

  /// Read up to `n` bytes starting at byte position `pos` into `out`;
  /// returns the bytes actually read (bounded by size()).
  std::size_t read(std::size_t pos, void* out, std::size_t n) const;

  /// Bytes appended so far.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  bool has_room(std::size_t n) const { return size_ + n <= capacity_; }

  /// Bytes appended since the last flush() — the backpressure input.
  std::size_t unflushed_bytes() const { return size_ - flushed_; }
  /// Make appended bytes durable (fflush for kFile; bookkeeping only
  /// for kMemory, which is always as durable as it will ever be).
  void flush();

  SegmentBackend backend() const { return backend_; }
  const std::string& path() const { return path_; }

 private:
  SegmentFile() = default;

  SegmentBackend backend_ = SegmentBackend::kMemory;
  std::string path_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  std::size_t flushed_ = 0;
  std::vector<std::byte> mem_;
  /// kFile only. mutable: read() seeks, which C stdio counts as
  /// mutation; logical const-ness is "does not change contents".
  mutable std::FILE* file_ = nullptr;
};

}  // namespace fastjoin
