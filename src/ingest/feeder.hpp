// Feeder: the RecordSource -> StreamLog bridge (the "Kafka producer"),
// and pump_log, the merged reader that plays a log back in stream order
// (the "spout").
//
// feed_log drains any RecordSource into the log in batches, choosing a
// partition per record. pump_log k-way-merges all partitions by the
// engine's total order (ts, side, seq) and hands records to a caller
// sink — a callback rather than a LiveEngine reference, so the ingest
// library stays below the runtime in the layering.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "datagen/trace.hpp"
#include "ingest/cursor.hpp"
#include "ingest/stream_log.hpp"

namespace fastjoin {

/// How feed_log spreads records over partitions.
enum class PartitionPolicy : std::uint8_t {
  kByKey,       ///< hash(key) % partitions: per-key order preserved
  kRoundRobin,  ///< even spread; per-key order NOT preserved across
                ///< partitions — only for order-insensitive consumers
};

struct FeedStats {
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
};

/// Drain `src` into `log` (at most `max_records`; 0 = until the source
/// ends), appending each record to the partition chosen by `policy`.
/// Records are logged unrouted (kUnroutedDst): routing happens at
/// publish time, not ingest time.
FeedStats feed_log(RecordSource& src, StreamLog& log,
                   PartitionPolicy policy = PartitionPolicy::kByKey,
                   std::uint64_t max_records = 0,
                   std::size_t batch = 512);

/// Replay `log` through `sink` in (ts, side, seq) order, starting each
/// partition at `from[p]` (short vectors are zero-extended). Stops when
/// the sink returns false or every partition is exhausted; returns the
/// records delivered. Reads a snapshot: records appended after the call
/// starts may or may not be included.
std::uint64_t pump_log(const StreamLog& log,
                       std::vector<std::uint64_t> from,
                       const std::function<bool(const Record&)>& sink);

}  // namespace fastjoin
