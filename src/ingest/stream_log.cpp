#include "ingest/stream_log.hpp"

#include <algorithm>
#include <filesystem>

#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace fastjoin {

namespace tel = telemetry;

namespace {
/// Records per read() refill; bounds stack/heap churn on big scans.
constexpr std::size_t kReadChunk = 256;

/// Cached registry handles (no-ops under FASTJOIN_NO_TELEMETRY).
struct IngestMetrics {
  tel::Counter& appended;
  tel::Counter& backpressure;
  tel::Counter& truncated;
  tel::Counter& flushes;
};

IngestMetrics& ingest_metrics() {
  auto& reg = tel::MetricRegistry::global();
  static IngestMetrics m{
      reg.counter("ingest.appended"),
      reg.counter("ingest.backpressure"),
      reg.counter("ingest.truncated"),
      reg.counter("ingest.flushes"),
  };
  return m;
}
}  // namespace

StreamLog::StreamLog(const IngestConfig& cfg) : cfg_(cfg) {
  if (cfg_.partitions == 0) cfg_.partitions = 1;
  // At least one record per segment, and whole records only: a record
  // never straddles a segment boundary.
  seg_capacity_ = std::max(cfg_.segment_bytes, kLogRecordBytes);
  seg_capacity_ -= seg_capacity_ % kLogRecordBytes;
  // A bound below one record would make append() flush-and-retry
  // forever: flushing zeroes unflushed bytes, yet one record still
  // overflows the bound.
  cfg_.max_unflushed_bytes =
      std::max(cfg_.max_unflushed_bytes, kLogRecordBytes);
  if (cfg_.backend == SegmentBackend::kFile) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);
    if (ec) {
      FJ_ERROR("ingest") << "cannot create " << cfg_.dir << " ("
                         << ec.message()
                         << "); using the memory backend";
      cfg_.backend = SegmentBackend::kMemory;
    }
  }
  parts_.reserve(cfg_.partitions);
  for (std::uint32_t p = 0; p < cfg_.partitions; ++p) {
    parts_.push_back(std::make_unique<Partition>());
  }
}

std::unique_ptr<StreamLog> StreamLog::open(const IngestConfig& cfg) {
  auto log = std::make_unique<StreamLog>(cfg);
  if (log->cfg_.backend != SegmentBackend::kFile) return log;
  // Segment files are named p<partition>_<base>.seg; base is the offset
  // of the first record, so sorting by base rebuilds the chain and the
  // last segment's base + records() restores next_offset.
  struct Found {
    std::uint64_t base;
    std::filesystem::path path;
  };
  std::vector<std::vector<Found>> found(log->cfg_.partitions);
  std::error_code ec;
  for (const auto& ent :
       std::filesystem::directory_iterator(log->cfg_.dir, ec)) {
    const std::string name = ent.path().filename().string();
    unsigned p = 0;
    unsigned long long base = 0;
    if (std::sscanf(name.c_str(), "p%u_%llu.seg", &p, &base) != 2) {
      continue;
    }
    if (p >= log->cfg_.partitions) continue;
    found[p].push_back({base, ent.path()});
  }
  for (std::uint32_t p = 0; p < log->cfg_.partitions; ++p) {
    auto& fs = found[p];
    std::sort(fs.begin(), fs.end(),
              [](const Found& a, const Found& b) { return a.base < b.base; });
    Partition& part = *log->parts_[p];
    // Recovery is single-threaded, but the lock keeps the analysis'
    // (and TSan's) view uniform: segments are only ever touched under
    // the partition mutex.
    MutexLock lock(part.mu);
    for (auto& f : fs) {
      auto seg = SegmentFile::reopen(f.path.string(), log->seg_capacity_);
      if (!seg) continue;
      // Drop a trailing torn write (crash mid-record).
      const std::uint64_t n = seg->size() / kLogRecordBytes;
      // A hostile or corrupted directory can present segments whose
      // base overlaps the chain rebuilt so far (which would march
      // next_offset backwards and alias offsets) or sits so close to
      // 2^64 that appends would wrap the offset counter. Drop those;
      // gaps (base > next_offset) are tolerated — offsets stay
      // strictly monotone either way. The headroom bound is stable
      // under appends (it depends on base only), so a chain that
      // recovers once recovers identically after more writes.
      constexpr std::uint64_t kOffsetHeadroom = std::uint64_t{1} << 32;
      if (!part.segments.empty() && f.base < part.next_offset) continue;
      if (f.base > ~std::uint64_t{0} - kOffsetHeadroom) continue;
      if (n > ~std::uint64_t{0} - kOffsetHeadroom - f.base) continue;
      part.segments.push_back(Seg{std::move(seg), f.base});
      part.next_offset = f.base + n;
      part.seg_seq = part.segments.size();
    }
  }
  return log;
}

std::string StreamLog::segment_path(std::uint32_t partition,
                                    std::uint64_t base) const {
  return cfg_.dir + "/p" + std::to_string(partition) + "_" +
         std::to_string(base) + ".seg";
}

SegmentFile& StreamLog::writable_segment(std::uint32_t idx, Partition& p) {
  if (p.segments.empty() ||
      !p.segments.back().file->has_room(kLogRecordBytes)) {
    if (!p.segments.empty()) {
      p.segments.back().file->flush();
      flushes_.fetch_add(1, std::memory_order_relaxed);
      segments_rolled_.fetch_add(1, std::memory_order_relaxed);
    }
    Seg seg;
    seg.base = p.next_offset;
    seg.file = std::make_unique<SegmentFile>(
        cfg_.backend, segment_path(idx, seg.base), seg_capacity_);
    ++p.seg_seq;
    p.segments.push_back(std::move(seg));
  }
  return *p.segments.back().file;
}

std::size_t StreamLog::unflushed_locked(const Partition& p) const {
  // Only the active segment can hold unflushed bytes: rolls flush the
  // segment they retire.
  return p.segments.empty() ? 0
                            : p.segments.back().file->unflushed_bytes();
}

std::optional<std::uint64_t> StreamLog::try_append(std::uint32_t partition,
                                                   const Record& rec,
                                                   InstanceId store_dst,
                                                   InstanceId probe_dst) {
  Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  if (unflushed_locked(p) + kLogRecordBytes > cfg_.max_unflushed_bytes) {
    backpressure_hits_.fetch_add(1, std::memory_order_relaxed);
    ingest_metrics().backpressure.add(1);
    tel::flight_record(tel::FlightEvent::kIngestBackpressure, partition);
    return std::nullopt;
  }
  SegmentFile& seg = writable_segment(partition, p);
  std::byte buf[kLogRecordBytes];
  encode_log_record(LogRecord{rec, store_dst, probe_dst, 0}, buf);
  seg.append(buf, kLogRecordBytes);
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  appended_bytes_.fetch_add(kLogRecordBytes, std::memory_order_relaxed);
  ingest_metrics().appended.add(1);
  tel::flight_record(tel::FlightEvent::kIngestAppend, partition, 1);
  return p.next_offset++;
}

std::uint64_t StreamLog::append(std::uint32_t partition, const Record& rec,
                                InstanceId store_dst,
                                InstanceId probe_dst) {
  for (;;) {
    if (auto off = try_append(partition, rec, store_dst, probe_dst)) {
      return *off;
    }
    flush(partition);
  }
}

std::uint64_t StreamLog::append_batch(std::uint32_t partition,
                                      const LogRecord* recs,
                                      std::size_t n) {
  // One encode buffer per chunk keeps the stack bounded while letting
  // the backend see multi-record writes (one fwrite per chunk on the
  // file backend instead of one per record).
  constexpr std::size_t kChunk = 64;
  std::byte buf[kChunk * kLogRecordBytes];

  Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  const std::uint64_t base = p.next_offset;
  std::size_t done = 0;
  while (done < n) {
    if (unflushed_locked(p) + kLogRecordBytes >
        cfg_.max_unflushed_bytes) {
      // Admission control mid-run: we already hold the partition lock,
      // so flush in place rather than unlocking and retrying.
      backpressure_hits_.fetch_add(1, std::memory_order_relaxed);
      ingest_metrics().backpressure.add(1);
      tel::flight_record(tel::FlightEvent::kIngestBackpressure,
                         partition);
      p.segments.back().file->flush();
      flushes_.fetch_add(1, std::memory_order_relaxed);
      ingest_metrics().flushes.add(1);
    }
    SegmentFile& seg = writable_segment(partition, p);
    const std::size_t seg_room =
        (seg.capacity() - seg.size()) / kLogRecordBytes;
    const std::size_t bp_room =
        (cfg_.max_unflushed_bytes - seg.unflushed_bytes()) /
        kLogRecordBytes;
    const std::size_t k =
        std::min({n - done, seg_room, bp_room, kChunk});
    if (k == 0) continue;  // next turn flushes or rolls to make room
    for (std::size_t i = 0; i < k; ++i) {
      encode_log_record(recs[done + i], buf + i * kLogRecordBytes);
    }
    seg.append(buf, k * kLogRecordBytes);
    done += k;
    p.next_offset += k;
  }
  appended_records_.fetch_add(n, std::memory_order_relaxed);
  appended_bytes_.fetch_add(n * kLogRecordBytes,
                            std::memory_order_relaxed);
  ingest_metrics().appended.add(n);
  tel::flight_record(tel::FlightEvent::kIngestAppend, partition, n);
  return base;
}

void StreamLog::flush(std::uint32_t partition) {
  Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  if (!p.segments.empty()) {
    p.segments.back().file->flush();
    flushes_.fetch_add(1, std::memory_order_relaxed);
  }
}

void StreamLog::flush_all() {
  for (std::uint32_t p = 0; p < partitions(); ++p) flush(p);
}

std::uint64_t StreamLog::start_offset(std::uint32_t partition) const {
  const Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  return p.segments.empty() ? p.next_offset : p.segments.front().base;
}

std::uint64_t StreamLog::end_offset(std::uint32_t partition) const {
  const Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  return p.next_offset;
}

std::size_t StreamLog::read(std::uint32_t partition, std::uint64_t from,
                            std::size_t max,
                            std::vector<LogRecord>& out) const {
  const Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  if (p.segments.empty() || max == 0) return 0;
  from = std::max(from, p.segments.front().base);
  std::size_t got = 0;
  std::byte buf[kReadChunk * kLogRecordBytes];
  for (const Seg& seg : p.segments) {
    const std::uint64_t seg_end = seg.base + seg.records();
    if (seg_end <= from) continue;
    std::uint64_t off = std::max(from, seg.base);
    while (off < seg_end && got < max) {
      const std::size_t want =
          std::min<std::uint64_t>({seg_end - off, max - got, kReadChunk});
      const std::size_t bytes =
          seg.file->read((off - seg.base) * kLogRecordBytes, buf,
                         want * kLogRecordBytes);
      const std::size_t n = bytes / kLogRecordBytes;
      if (n == 0) return got;  // torn tail / IO error: stop cleanly
      for (std::size_t i = 0; i < n; ++i) {
        LogRecord lr = decode_log_record(buf + i * kLogRecordBytes);
        lr.offset = off + i;
        out.push_back(lr);
      }
      off += n;
      got += n;
    }
    if (got >= max) break;
  }
  if (got > 0) {
    tel::flight_record(tel::FlightEvent::kIngestReplayRead, partition,
                       got);
  }
  return got;
}

std::uint64_t StreamLog::truncate_before(std::uint32_t partition,
                                         std::uint64_t offset) {
  Partition& p = *parts_[partition];
  MutexLock lock(p.mu);
  std::uint64_t removed = 0;
  while (p.segments.size() > 1) {
    const Seg& front = p.segments.front();
    if (front.base + front.records() > offset) break;
    removed += front.records();
    if (front.file->backend() == SegmentBackend::kFile) {
      std::error_code ec;
      std::filesystem::remove(front.file->path(), ec);
    }
    p.segments.pop_front();
    segments_truncated_.fetch_add(1, std::memory_order_relaxed);
  }
  if (removed > 0) {
    records_truncated_.fetch_add(removed, std::memory_order_relaxed);
    ingest_metrics().truncated.add(removed);
    tel::flight_record(tel::FlightEvent::kIngestTruncate, partition,
                       removed);
  }
  return removed;
}

StreamLogStats StreamLog::stats() const {
  StreamLogStats s;
  s.appended_records = appended_records_.load(std::memory_order_relaxed);
  s.appended_bytes = appended_bytes_.load(std::memory_order_relaxed);
  s.backpressure_hits =
      backpressure_hits_.load(std::memory_order_relaxed);
  s.flushes = flushes_.load(std::memory_order_relaxed);
  s.segments_rolled = segments_rolled_.load(std::memory_order_relaxed);
  s.segments_truncated =
      segments_truncated_.load(std::memory_order_relaxed);
  s.records_truncated =
      records_truncated_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fastjoin
