#include "ingest/cursor.hpp"

#include <algorithm>

namespace fastjoin {

ConsumerCursor::ConsumerCursor(const StreamLog& log, std::string name)
    : log_(log),
      name_(std::move(name)),
      position_(log.partitions(), 0),
      committed_(log.partitions(), 0) {}

std::size_t ConsumerCursor::poll(std::uint32_t partition, std::size_t max,
                                 std::vector<LogRecord>& out) {
  std::uint64_t& pos = position_[partition];
  pos = std::max(pos, log_.start_offset(partition));
  const std::size_t n = log_.read(partition, pos, max, out);
  if (n > 0) pos = out.back().offset + 1;
  return n;
}

void ConsumerCursor::commit(std::uint32_t partition, std::uint64_t offset) {
  committed_[partition] =
      std::min(std::max(committed_[partition], offset),
               position_[partition]);
}

void ConsumerCursor::commit_all() {
  for (std::uint32_t p = 0; p < position_.size(); ++p) commit(p);
}

std::uint64_t ConsumerCursor::lag(std::uint32_t partition) const {
  const std::uint64_t end = log_.end_offset(partition);
  const std::uint64_t pos = position_[partition];
  return end > pos ? end - pos : 0;
}

}  // namespace fastjoin
