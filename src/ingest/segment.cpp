#include "ingest/segment.hpp"

#include <cstring>

#include "common/logging.hpp"

namespace fastjoin {

const char* segment_backend_name(SegmentBackend b) {
  switch (b) {
    case SegmentBackend::kMemory: return "memory";
    case SegmentBackend::kFile: return "file";
  }
  return "?";
}

SegmentFile::SegmentFile(SegmentBackend backend, std::string path,
                         std::size_t capacity_bytes)
    : backend_(backend), path_(std::move(path)), capacity_(capacity_bytes) {
  if (backend_ == SegmentBackend::kMemory) {
    mem_.reserve(capacity_);
    return;
  }
  file_ = std::fopen(path_.c_str(), "wb+");
  if (file_ == nullptr) {
    FJ_ERROR("ingest") << "cannot create segment file " << path_
                       << "; falling back to the memory backend";
    backend_ = SegmentBackend::kMemory;
    mem_.reserve(capacity_);
  }
}

SegmentFile::~SegmentFile() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<SegmentFile> SegmentFile::reopen(
    std::string path, std::size_t capacity_bytes) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) return nullptr;
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    return nullptr;
  }
  auto seg = std::unique_ptr<SegmentFile>(new SegmentFile());
  seg->backend_ = SegmentBackend::kFile;
  seg->path_ = std::move(path);
  seg->capacity_ = capacity_bytes;
  seg->size_ = static_cast<std::size_t>(end);
  seg->flushed_ = seg->size_;  // on-disk bytes are durable by definition
  seg->file_ = f;
  return seg;
}

bool SegmentFile::append(const void* data, std::size_t n) {
  if (!has_room(n)) return false;
  if (backend_ == SegmentBackend::kMemory) {
    const auto* p = static_cast<const std::byte*>(data);
    mem_.insert(mem_.end(), p, p + n);
  } else {
    std::fseek(file_, static_cast<long>(size_), SEEK_SET);
    if (std::fwrite(data, 1, n, file_) != n) {
      FJ_ERROR("ingest") << "short write to segment " << path_;
      return false;
    }
  }
  size_ += n;
  return true;
}

std::size_t SegmentFile::read(std::size_t pos, void* out,
                              std::size_t n) const {
  if (pos >= size_) return 0;
  const std::size_t avail = std::min(n, size_ - pos);
  if (backend_ == SegmentBackend::kMemory) {
    std::memcpy(out, mem_.data() + pos, avail);
    return avail;
  }
  // Unflushed bytes live in stdio's buffer; flush so the positional
  // read below sees them. (read() is logically const.)
  if (flushed_ < size_) std::fflush(file_);
  std::fseek(file_, static_cast<long>(pos), SEEK_SET);
  return std::fread(out, 1, avail, file_);
}

void SegmentFile::flush() {
  if (backend_ == SegmentBackend::kFile && file_ != nullptr) {
    std::fflush(file_);
  }
  flushed_ = size_;
}

}  // namespace fastjoin
