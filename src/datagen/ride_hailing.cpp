#include "datagen/ride_hailing.hpp"

namespace fastjoin {

namespace {

KeyStreamSpec order_spec(const RideHailingConfig& cfg, double s) {
  KeyStreamSpec spec;
  spec.dist = KeyDist::kZipf;
  spec.num_keys = cfg.num_locations;
  spec.zipf_s = s;
  spec.seed = cfg.seed * 2 + 1;
  // Same scramble for both streams => same location-key universe.
  spec.scramble = cfg.seed ^ 0x9e3779b97f4a7c15ULL;
  return spec;
}

KeyStreamSpec track_spec(const RideHailingConfig& cfg, double s) {
  KeyStreamSpec spec = order_spec(cfg, s);
  spec.zipf_s = s;
  spec.seed = cfg.seed * 2 + 2;
  spec.rank_offset = static_cast<std::uint64_t>(
      cfg.popularity_rotation * static_cast<double>(cfg.num_locations));
  return spec;
}

TraceConfig trace_config(const RideHailingConfig& cfg) {
  TraceConfig tc;
  tc.r_rate = cfg.order_rate;
  tc.s_rate = cfg.track_rate;
  tc.total_records = cfg.total_records;
  tc.arrivals = cfg.arrivals;
  tc.seed = cfg.seed;
  return tc;
}

}  // namespace

RideHailingGenerator::RideHailingGenerator(const RideHailingConfig& cfg)
    : cfg_(cfg),
      order_s_(ZipfDistribution::fit_exponent(
          cfg.num_locations, cfg.order_top_frac, cfg.top_mass)),
      track_s_(ZipfDistribution::fit_exponent(
          cfg.num_locations, cfg.track_top_frac, cfg.top_mass)),
      trace_(order_spec(cfg, order_s_), track_spec(cfg, track_s_),
             trace_config(cfg)),
      payload_rng_(cfg.seed ^ 0xabcdefULL) {}

std::optional<Record> RideHailingGenerator::next() {
  auto rec = trace_.next();
  if (!rec) return std::nullopt;
  if (rec->side == Side::kR) {
    // Passenger order: payload = order id (the sequence number works).
    rec->payload = rec->seq;
  } else {
    // Taxi track point: payload = taxi id.
    rec->payload = payload_rng_.next_below(cfg_.num_taxis);
  }
  return rec;
}

}  // namespace fastjoin
