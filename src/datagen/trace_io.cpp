#include <cstdio>
#include "datagen/trace_io.hpp"

#include <cstring>
#include <stdexcept>

namespace fastjoin {

namespace {

struct TraceHeader {
  std::uint32_t magic = kTraceMagic;
  std::uint32_t version = kTraceVersion;
  std::uint64_t count = 0;
};

// On-disk record layout (packed manually to stay ABI-independent).
struct WireRecord {
  std::uint64_t key;
  std::uint64_t seq;
  std::uint64_t payload;
  std::int64_t ts;
  std::uint8_t side;
  std::uint8_t pad[7];
};
static_assert(sizeof(WireRecord) == 40);

WireRecord to_wire(const Record& r) {
  WireRecord w{};
  w.key = r.key;
  w.seq = r.seq;
  w.payload = r.payload;
  w.ts = r.ts;
  w.side = static_cast<std::uint8_t>(r.side);
  return w;
}

Record from_wire(const WireRecord& w) {
  Record r;
  r.key = w.key;
  r.seq = w.seq;
  r.payload = w.payload;
  r.ts = w.ts;
  r.side = static_cast<Side>(w.side);
  return r;
}

void write_all(std::ofstream& out, const void* data, std::size_t n,
               const std::string& path) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(n));
  if (!out) throw std::runtime_error("trace write failed: " + path);
}

}  // namespace

std::uint64_t write_trace_binary(const std::string& path,
                                 RecordSource& source) {
  std::vector<Record> records;
  while (auto rec = source.next()) records.push_back(*rec);
  return write_trace_binary(path, records);
}

std::uint64_t write_trace_binary(const std::string& path,
                                 const std::vector<Record>& records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  TraceHeader hdr;
  hdr.count = records.size();
  write_all(out, &hdr, sizeof hdr, path);
  for (const auto& rec : records) {
    const WireRecord w = to_wire(rec);
    write_all(out, &w, sizeof w, path);
  }
  return records.size();
}

std::uint64_t write_trace_csv(const std::string& path,
                              const std::vector<Record>& records) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << "side,key,seq,payload,ts\n";
  for (const auto& rec : records) {
    out << side_name(rec.side) << ',' << rec.key << ',' << rec.seq << ','
        << rec.payload << ',' << rec.ts << '\n';
  }
  if (!out) throw std::runtime_error("trace write failed: " + path);
  return records.size();
}

std::vector<Record> read_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "side,key,seq,payload,ts") {
    throw std::runtime_error("bad CSV trace header: " + path);
  }
  std::vector<Record> out;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Record rec;
    char side_ch = 0;
    unsigned long long key = 0, seq = 0, payload = 0;
    long long ts = 0;
    if (std::sscanf(line.c_str(), "%c,%llu,%llu,%llu,%lld", &side_ch,
                    &key, &seq, &payload, &ts) != 5 ||
        (side_ch != 'R' && side_ch != 'S')) {
      throw std::runtime_error("malformed CSV trace row " +
                               std::to_string(line_no) + " in " + path);
    }
    rec.side = side_ch == 'R' ? Side::kR : Side::kS;
    rec.key = key;
    rec.seq = seq;
    rec.payload = payload;
    rec.ts = ts;
    out.push_back(rec);
  }
  return out;
}

std::vector<Record> read_trace_binary(const std::string& path) {
  TraceFileSource src(path);
  std::vector<Record> out;
  out.reserve(src.total_records());
  while (auto rec = src.next()) out.push_back(*rec);
  if (out.size() != src.total_records()) {
    throw std::runtime_error("truncated trace: " + path);
  }
  return out;
}

TraceFileSource::TraceFileSource(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("cannot open trace: " + path);
  TraceHeader hdr;
  in_.read(reinterpret_cast<char*>(&hdr), sizeof hdr);
  if (!in_ || hdr.magic != kTraceMagic) {
    throw std::runtime_error("bad trace header: " + path);
  }
  if (hdr.version != kTraceVersion) {
    throw std::runtime_error("unsupported trace version: " + path);
  }
  total_ = hdr.count;
}

std::optional<Record> TraceFileSource::next() {
  if (read_ >= total_) return std::nullopt;
  WireRecord w;
  in_.read(reinterpret_cast<char*>(&w), sizeof w);
  if (!in_) return std::nullopt;  // truncated; caller sees short count
  ++read_;
  return from_wire(w);
}

}  // namespace fastjoin
