// Trace persistence: write generated traces to disk and replay them.
//
// Two formats:
//  * binary (.fjt) — fixed-size little-endian records behind a small
//    header with magic/version/count; fast, exact round trip.
//  * CSV — "side,key,seq,payload,ts" with a header row; for inspection
//    and interop with external tooling.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "datagen/trace.hpp"

namespace fastjoin {

/// Binary-format constants.
inline constexpr std::uint32_t kTraceMagic = 0x464a5431;  // "FJT1"
inline constexpr std::uint32_t kTraceVersion = 1;

/// Write `source` (drained to its end) to a binary trace file.
/// Returns the number of records written; throws std::runtime_error on
/// I/O failure.
std::uint64_t write_trace_binary(const std::string& path,
                                 RecordSource& source);

/// Write a vector of records to a binary trace file.
std::uint64_t write_trace_binary(const std::string& path,
                                 const std::vector<Record>& records);

/// Write records as CSV.
std::uint64_t write_trace_csv(const std::string& path,
                              const std::vector<Record>& records);

/// Read a CSV trace (as produced by write_trace_csv). Throws
/// std::runtime_error on a missing file, bad header, or malformed row.
std::vector<Record> read_trace_csv(const std::string& path);

/// Read an entire binary trace into memory. Throws std::runtime_error
/// on missing file, bad magic, or truncation.
std::vector<Record> read_trace_binary(const std::string& path);

/// Streaming reader over a binary trace file; a RecordSource, so it
/// plugs straight into SimJoinEngine::run.
class TraceFileSource final : public RecordSource {
 public:
  explicit TraceFileSource(const std::string& path);

  std::optional<Record> next() override;

  std::uint64_t total_records() const { return total_; }
  std::uint64_t records_read() const { return read_; }

 private:
  std::ifstream in_;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace fastjoin
