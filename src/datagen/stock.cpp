#include "datagen/stock.hpp"

namespace fastjoin {

namespace {
KeyStreamSpec symbol_spec(const StockConfig& cfg, bool sell) {
  KeyStreamSpec spec;
  spec.dist = KeyDist::kZipf;
  spec.num_keys = cfg.num_symbols;
  spec.zipf_s = cfg.volume_zipf;
  spec.seed = cfg.seed * 2 + (sell ? 1 : 0);
  spec.scramble = cfg.seed ^ 0x570c4eefULL;
  return spec;
}

TraceConfig trace_config(const StockConfig& cfg) {
  TraceConfig tc;
  tc.r_rate = cfg.buy_rate;
  tc.s_rate = cfg.sell_rate;
  tc.total_records = cfg.total_records;
  tc.arrivals = cfg.arrivals;
  tc.seed = cfg.seed;
  return tc;
}
}  // namespace

StockGenerator::StockGenerator(const StockConfig& cfg)
    : cfg_(cfg),
      trace_(symbol_spec(cfg, false), symbol_spec(cfg, true),
             trace_config(cfg)),
      rng_(cfg.seed ^ 0xfeedULL) {}

std::optional<Record> StockGenerator::next() {
  auto rec = trace_.next();
  if (!rec) return std::nullopt;
  const std::uint64_t price = 100 + rng_.next_below(99'900);  // cents
  const std::uint64_t qty = 1 + rng_.next_below(1'000);
  rec->payload = (price << 16) | qty;
  return rec;
}

}  // namespace fastjoin
