// Synthetic ride-hailing trace calibrated to the DiDi GAIA statistics
// the paper publishes.
//
// The real dataset (Chengdu, Nov 2016) is proprietary; the paper reports
// the properties the experiments actually depend on, and we match them:
//   * passenger-order keys:  top 20% of locations hold 80% of orders
//   * taxi-track keys:       top 24% of locations hold 80% of tracks
//   * mean tuples/key c:     ~14 for orders, >> 1e4 for tracks
//   * track stream is orders of magnitude faster than the order stream
// Keys are grid-cell ids (GPS locations snapped to a city grid); an order
// joins every track that visits its cell, which is the paper's simplified
// dispatch model.
#pragma once

#include <cstdint>
#include <optional>

#include "datagen/trace.hpp"

namespace fastjoin {

struct RideHailingConfig {
  std::uint64_t num_locations = 10'000;  ///< grid cells (key universe)
  double order_rate = 20'000.0;          ///< orders/sec (stream R)
  double track_rate = 200'000.0;         ///< track points/sec (stream S)
  std::uint64_t total_records = 2'000'000;
  std::uint64_t num_taxis = 5'000;       ///< taxi-id payload pool
  ArrivalKind arrivals = ArrivalKind::kFixed;
  std::uint64_t seed = 2016;
  /// Skew calibration targets (paper Fig. 1a/1b).
  double order_top_frac = 0.20;
  double track_top_frac = 0.24;
  double top_mass = 0.80;
  /// How far the track stream's popularity ranking is rotated relative
  /// to the order stream's, as a fraction of the key universe. 0 makes
  /// the same cells hottest in both streams (maximally correlated);
  /// the default models the empirical reality that the busiest pickup
  /// cells are not the busiest through-traffic cells.
  double popularity_rotation = 1.0 / 3.0;
};

/// Two-stream ride-hailing source. Stream R = passenger orders,
/// stream S = taxi track points; key = location cell.
class RideHailingGenerator final : public RecordSource {
 public:
  explicit RideHailingGenerator(const RideHailingConfig& cfg);

  std::optional<Record> next() override;

  /// The zipf exponents the calibration produced (exposed for tests and
  /// for the Fig. 1a/1b skew-CDF bench).
  double order_exponent() const { return order_s_; }
  double track_exponent() const { return track_s_; }

  const RideHailingConfig& config() const { return cfg_; }

 private:
  RideHailingConfig cfg_;
  double order_s_;
  double track_s_;
  TraceGenerator trace_;
  Xoshiro256 payload_rng_;
};

}  // namespace fastjoin
