#include "datagen/zipf.hpp"

#include <cassert>
#include <cmath>

namespace fastjoin {

namespace {
// exp(x)-1 and log(1+x) with good small-x behaviour.
double expm1_safe(double x) { return std::expm1(x); }
double log1p_safe(double x) { return std::log1p(x); }

// Helper used by rejection-inversion: (exp(t*x)-1)/t, continuous at t=0.
double helper1(double t, double x) {
  return t == 0.0 ? x : expm1_safe(t * x) / t;
}
}  // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s)
    : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  ss_ = 1.0 - s_;
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
  // Quick-acceptance threshold from Hörmann & Derflinger: samples with
  // k - x <= accept_s_ need no h-evaluation.
  accept_s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

// H(x) = integral of x^-s: ((x^(1-s)) - 1)/(1-s) for s != 1, ln(x) for s=1,
// expressed via helper1 for continuity near s == 1.
double ZipfDistribution::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper1(ss_, log_x);
}

double ZipfDistribution::h(double x) const {
  return std::exp(-s_ * std::log(x));
}

double ZipfDistribution::h_integral_inverse(double x) const {
  double t = x * ss_;
  if (t < -1.0) t = -1.0;  // numeric guard
  // exp((log1p(t)/t) * x); the ratio is 1 at t == 0, giving exp(x) —
  // the s == 1 case where H(x) = ln x.
  const double ratio = (t == 0.0) ? 1.0 : log1p_safe(t) / t;
  return std::exp(ratio * x);
}

std::uint64_t ZipfDistribution::operator()(Xoshiro256& rng) {
  if (n_ == 1) return 1;
  // Hörmann-Derflinger rejection-inversion.
  for (;;) {
    const double u =
        h_integral_n_ + rng.next_double() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= accept_s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

void ZipfDistribution::ensure_norm() const {
  if (norm_ready_) return;
  double sum = 0.0;
  for (std::uint64_t k = n_; k >= 1; --k) {  // small terms first
    sum += std::pow(static_cast<double>(k), -s_);
  }
  norm_ = sum;
  norm_ready_ = true;
}

double ZipfDistribution::pmf(std::uint64_t k) const {
  assert(k >= 1 && k <= n_);
  ensure_norm();
  return std::pow(static_cast<double>(k), -s_) / norm_;
}

double ZipfDistribution::top_mass(double frac) const {
  ensure_norm();
  const auto top =
      static_cast<std::uint64_t>(frac * static_cast<double>(n_));
  double mass = 0.0;
  for (std::uint64_t k = 1; k <= top; ++k) {
    mass += std::pow(static_cast<double>(k), -s_);
  }
  return mass / norm_;
}

double ZipfDistribution::fit_exponent(std::uint64_t n, double top_frac,
                                      double mass) {
  double lo = 0.0;
  double hi = 4.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = (lo + hi) / 2.0;
    ZipfDistribution z(n, mid);
    if (z.top_mass(top_frac) < mass) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace fastjoin
