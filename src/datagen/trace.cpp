#include "datagen/trace.hpp"

#include <cmath>

namespace fastjoin {

TraceGenerator::TraceGenerator(const KeyStreamSpec& r_keys,
                               const KeyStreamSpec& s_keys,
                               const TraceConfig& cfg)
    : cfg_(cfg),
      r_gen_(r_keys),
      s_gen_(s_keys),
      arrival_rng_(cfg.seed),
      r_next_(cfg.start),
      s_next_(cfg.start) {}

SimTime TraceGenerator::next_gap(double rate) {
  if (rate <= 0.0) return kNanosPerSec;  // degenerate: 1 tuple/sec
  const double mean_gap = 1e9 / rate;
  if (cfg_.arrivals == ArrivalKind::kFixed) {
    return static_cast<SimTime>(mean_gap);
  }
  // Exponential inter-arrival (Poisson process).
  const double u = arrival_rng_.next_double();
  return static_cast<SimTime>(-mean_gap * std::log(1.0 - u)) + 1;
}

std::optional<Record> TraceGenerator::next() {
  if (emitted_ >= cfg_.total_records) return std::nullopt;
  ++emitted_;

  Record rec;
  if (r_next_ <= s_next_) {
    rec.side = Side::kR;
    rec.key = r_gen_();
    rec.seq = r_seq_++;
    rec.ts = r_next_;
    r_next_ += next_gap(cfg_.r_rate);
  } else {
    rec.side = Side::kS;
    rec.key = s_gen_();
    rec.seq = s_seq_++;
    rec.ts = s_next_;
    s_next_ += next_gap(cfg_.s_rate);
  }
  rec.payload = rec.seq;
  return rec;
}

}  // namespace fastjoin
