// High-frequency-trading workload: join a buy-order stream with a
// sell-order stream on the stock symbol. Trading volume per symbol is
// strongly heavy-tailed (a handful of tickers dominate), giving another
// realistic skewed-key scenario from the paper's introduction.
#pragma once

#include <cstdint>
#include <optional>

#include "datagen/trace.hpp"

namespace fastjoin {

struct StockConfig {
  std::uint64_t num_symbols = 8'000;  ///< listed tickers
  double volume_zipf = 1.3;           ///< per-symbol volume skew
  double buy_rate = 120'000.0;        ///< buy orders/sec (stream R)
  double sell_rate = 120'000.0;       ///< sell orders/sec (stream S)
  std::uint64_t total_records = 2'000'000;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  std::uint64_t seed = 1987;
};

/// Stream R = buy orders, stream S = sell orders; key = symbol id;
/// payload packs (price_cents << 16 | quantity).
class StockGenerator final : public RecordSource {
 public:
  explicit StockGenerator(const StockConfig& cfg);

  std::optional<Record> next() override;

  const StockConfig& config() const { return cfg_; }

  /// Decode helpers for the packed payload.
  static std::uint32_t price_cents(std::uint64_t payload) {
    return static_cast<std::uint32_t>(payload >> 16);
  }
  static std::uint16_t quantity(std::uint64_t payload) {
    return static_cast<std::uint16_t>(payload & 0xffff);
  }

 private:
  StockConfig cfg_;
  TraceGenerator trace_;
  Xoshiro256 rng_;
};

}  // namespace fastjoin
