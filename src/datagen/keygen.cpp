#include "datagen/keygen.hpp"

namespace fastjoin {

KeyGenerator::KeyGenerator(const KeyStreamSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.dist == KeyDist::kZipf && spec_.zipf_s > 0.0) {
    zipf_ = std::make_unique<ZipfDistribution>(spec_.num_keys, spec_.zipf_s);
  }
}

KeyId KeyGenerator::key_for_rank(std::uint64_t rank) const {
  // Optional popularity rotation within the shared universe.
  rank = (rank - 1 + spec_.rank_offset) % spec_.num_keys + 1;
  // Bijective scramble of the rank within the 64-bit space; the key
  // universe is the image of {1..num_keys}. mix64 is invertible so
  // distinct ranks always map to distinct keys. The salt is mixed first
  // so that nearby salts produce (practically) disjoint universes.
  return mix64(rank ^ mix64(spec_.scramble));
}

KeyId KeyGenerator::operator()() {
  std::uint64_t rank;
  if (zipf_) {
    rank = (*zipf_)(rng_);
  } else {
    rank = 1 + rng_.next_below(spec_.num_keys);
  }
  return key_for_rank(rank);
}

}  // namespace fastjoin
