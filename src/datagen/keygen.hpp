// Key-stream generators: map a frequency distribution over ranks to a
// stream of KeyIds.
//
// Ranks are scrambled through a bijective mixer so that the hottest keys
// are not numerically adjacent — otherwise hash partitioning could get
// accidentally lucky (or unlucky) in a way real attribute values never are.
#pragma once

#include <cstdint>
#include <memory>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "datagen/zipf.hpp"

namespace fastjoin {

/// Distribution family for a key stream.
enum class KeyDist : std::uint8_t { kUniform, kZipf };

/// Declarative spec for one stream's key distribution.
struct KeyStreamSpec {
  KeyDist dist = KeyDist::kZipf;
  std::uint64_t num_keys = 1'000'000;  ///< size of the key universe
  double zipf_s = 1.0;                 ///< exponent (ignored for uniform)
  std::uint64_t seed = 42;             ///< RNG seed for this stream
  std::uint64_t scramble = 0x5bd1e995; ///< rank -> key scrambling salt
  /// Rotates this stream's popularity ranking within the shared key
  /// universe: rank r maps to the key of rank (r + offset) mod N. Two
  /// streams with the same scramble but different offsets join on the
  /// same keys while having (partially) different hot keys — e.g. the
  /// hottest pickup locations are not the busiest through-traffic cells.
  std::uint64_t rank_offset = 0;
};

/// Draws KeyIds according to a KeyStreamSpec.  Two generators built from
/// specs with equal (num_keys, scramble) produce the *same* key universe,
/// so R and S streams join on common keys even with different skews —
/// exactly how the paper's Gxy synthetic groups are constructed.
class KeyGenerator {
 public:
  explicit KeyGenerator(const KeyStreamSpec& spec);

  /// Next key id.
  KeyId operator()();

  /// The key id corresponding to popularity rank r (1 = hottest).
  KeyId key_for_rank(std::uint64_t rank) const;

  const KeyStreamSpec& spec() const { return spec_; }

 private:
  KeyStreamSpec spec_;
  Xoshiro256 rng_;
  std::unique_ptr<ZipfDistribution> zipf_;  // null for uniform
};

}  // namespace fastjoin
