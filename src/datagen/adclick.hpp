// Photon-style advertisement analytics workload: join a search-query
// stream with an ad-click stream on the advertisement (campaign) id.
//
// Campaign popularity is heavy-tailed — a few large advertisers dominate
// impressions — which is exactly the skew FastJoin targets. Clicks are a
// thinned, delayed echo of queries (click-through), so stream S lags R.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "datagen/trace.hpp"

namespace fastjoin {

struct AdClickConfig {
  std::uint64_t num_campaigns = 100'000;  ///< ad-id key universe
  double campaign_zipf = 1.1;             ///< impression skew
  double query_rate = 150'000.0;          ///< queries/sec (stream R)
  double click_through = 0.2;             ///< P(click | query)
  SimTime click_delay = 500 * kNanosPerMilli;  ///< mean query->click lag
  std::uint64_t total_records = 2'000'000;
  std::uint64_t seed = 99;
};

/// Stream R = queries (ad impressions), stream S = clicks. A click
/// record carries the seq of the query that caused it in its payload.
class AdClickGenerator final : public RecordSource {
 public:
  explicit AdClickGenerator(const AdClickConfig& cfg);

  std::optional<Record> next() override;

  const AdClickConfig& config() const { return cfg_; }

 private:
  struct PendingClick {
    KeyId key;
    std::uint64_t query_seq;
    SimTime ts;
  };

  AdClickConfig cfg_;
  KeyGenerator keys_;
  Xoshiro256 rng_;
  std::deque<PendingClick> pending_;  // time-ordered future clicks
  SimTime query_next_ = 0;
  std::uint64_t q_seq_ = 0;
  std::uint64_t c_seq_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace fastjoin
