#include "datagen/adclick.hpp"

#include <cmath>

namespace fastjoin {

namespace {
KeyStreamSpec campaign_spec(const AdClickConfig& cfg) {
  KeyStreamSpec spec;
  spec.dist = KeyDist::kZipf;
  spec.num_keys = cfg.num_campaigns;
  spec.zipf_s = cfg.campaign_zipf;
  spec.seed = cfg.seed;
  spec.scramble = cfg.seed ^ 0xad5ee12fULL;
  return spec;
}
}  // namespace

AdClickGenerator::AdClickGenerator(const AdClickConfig& cfg)
    : cfg_(cfg), keys_(campaign_spec(cfg)), rng_(cfg.seed ^ 0xc11cc5ULL) {}

std::optional<Record> AdClickGenerator::next() {
  if (emitted_ >= cfg_.total_records) return std::nullopt;
  ++emitted_;

  // Emit whichever is earlier: the next query, or the next due click.
  if (!pending_.empty() && pending_.front().ts <= query_next_) {
    const PendingClick c = pending_.front();
    pending_.pop_front();
    Record rec;
    rec.side = Side::kS;
    rec.key = c.key;
    rec.seq = c_seq_++;
    rec.payload = c.query_seq;
    rec.ts = c.ts;
    return rec;
  }

  Record rec;
  rec.side = Side::kR;
  rec.key = keys_();
  rec.seq = q_seq_++;
  rec.payload = rec.seq;
  rec.ts = query_next_;

  // Maybe schedule the click echo for this query.
  if (rng_.next_double() < cfg_.click_through) {
    const double u = rng_.next_double();
    const auto delay = static_cast<SimTime>(
        -static_cast<double>(cfg_.click_delay) * std::log(1.0 - u));
    PendingClick c{rec.key, rec.seq, rec.ts + delay + 1};
    // Insert keeping the deque time-ordered; delays are exponential so
    // most insertions are near the back.
    auto it = pending_.end();
    while (it != pending_.begin() && (it - 1)->ts > c.ts) --it;
    pending_.insert(it, c);
  }

  query_next_ += static_cast<SimTime>(1e9 / cfg_.query_rate);
  return rec;
}

}  // namespace fastjoin
