// Zipf(s, N) sampler over ranks {1..N}.
//
// Uses Hörmann & Derflinger rejection-inversion: O(1) amortized per
// sample for any N, exact for all s >= 0 (s == 0 degenerates to the
// uniform distribution). This is the generator behind the paper's
// synthetic Gxy datasets (zipf coefficient x, y in {0, 1.0, 2.0}).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace fastjoin {

class ZipfDistribution {
 public:
  /// `n` ranks, exponent `s >= 0`.
  ZipfDistribution(std::uint64_t n, double s);

  /// Sample a rank in [1, n]; rank 1 is the most frequent.
  std::uint64_t operator()(Xoshiro256& rng);

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

  /// Exact probability mass of rank k (computes the normalizer lazily,
  /// O(n) once). Intended for tests and analytic calibration.
  double pmf(std::uint64_t k) const;

  /// Fraction of total mass held by the top `frac` of ranks
  /// (e.g. top_mass(0.2) ~ 0.8 reproduces the 80/20 rule).
  double top_mass(double frac) const;

  /// Find the exponent s such that the top `top_frac` of `n` ranks hold
  /// `mass` of the distribution (bisection). Used to calibrate the
  /// ride-hailing generator to the paper's published skew statistics.
  static double fit_exponent(std::uint64_t n, double top_frac, double mass);

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;
  void ensure_norm() const;

  std::uint64_t n_;
  double s_;
  // Rejection-inversion precomputed constants.
  double h_integral_x1_;
  double h_integral_n_;
  double ss_;
  double accept_s_;
  // Lazy exact normalizer for pmf()/top_mass().
  mutable double norm_ = 0.0;
  mutable bool norm_ready_ = false;
};

}  // namespace fastjoin
