// Trace generation: merge two key streams into one time-ordered arrival
// sequence, the input the dispatcher consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "datagen/keygen.hpp"
#include "datagen/record.hpp"

namespace fastjoin {

/// Pull-based record source; every generator implements this so spouts,
/// the simulator and the live runtime are agnostic to the workload.
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  /// Next record in timestamp order, or nullopt when the trace ends.
  virtual std::optional<Record> next() = 0;
  /// Fill up to `max` records into `out`; returns how many were
  /// produced (0 = source exhausted). The default loops next(); bulk
  /// sources (trace files, the StreamLog feeder) may override.
  virtual std::size_t next_batch(Record* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      auto rec = next();
      if (!rec) break;
      out[n++] = *rec;
    }
    return n;
  }
};

/// Inter-arrival process for a stream.
enum class ArrivalKind : std::uint8_t {
  kFixed,    ///< deterministic 1/rate gaps
  kPoisson,  ///< exponential gaps with mean 1/rate
};

/// Configuration for a synthetic two-stream trace.
struct TraceConfig {
  double r_rate = 100'000.0;       ///< stream R tuples/sec
  double s_rate = 100'000.0;       ///< stream S tuples/sec
  std::uint64_t total_records = 1'000'000;  ///< combined length
  ArrivalKind arrivals = ArrivalKind::kFixed;
  std::uint64_t seed = 7;          ///< arrival-jitter seed
  SimTime start = 0;
};

/// Interleaves records of R and S, each keyed by its own KeyGenerator,
/// into a single stream ordered by timestamp.
class TraceGenerator final : public RecordSource {
 public:
  TraceGenerator(const KeyStreamSpec& r_keys, const KeyStreamSpec& s_keys,
                 const TraceConfig& cfg);

  std::optional<Record> next() override;

  const TraceConfig& config() const { return cfg_; }

 private:
  SimTime next_gap(double rate);

  TraceConfig cfg_;
  KeyGenerator r_gen_;
  KeyGenerator s_gen_;
  Xoshiro256 arrival_rng_;
  SimTime r_next_;
  SimTime s_next_;
  std::uint64_t r_seq_ = 0;
  std::uint64_t s_seq_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Dataset-size bookkeeping: the paper slices the DiDi trace into
/// 10..70 "GB" datasets. We reproduce the *relative* scale by mapping a
/// nominal GB figure to a tuple count through bytes/tuple and a global
/// down-scale factor that keeps simulations laptop-sized.
struct DatasetScale {
  double bytes_per_tuple = 48.0;  ///< order id + GPS + timestamp
  double sim_scale = 2e-4;        ///< fraction of real volume simulated

  std::uint64_t tuples_for_gb(double gb) const {
    return static_cast<std::uint64_t>(gb * 1e9 / bytes_per_tuple *
                                      sim_scale);
  }
};

}  // namespace fastjoin
