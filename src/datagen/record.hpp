// The wire-level record exchanged between generators, spouts and the
// join engine.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace fastjoin {

/// Which of the two joining streams a record belongs to (paper: R and S).
enum class Side : std::uint8_t { kR = 0, kS = 1 };

constexpr Side other_side(Side s) {
  return s == Side::kR ? Side::kS : Side::kR;
}

constexpr const char* side_name(Side s) { return s == Side::kR ? "R" : "S"; }

/// One stream tuple. `seq` is a stream-unique sequence number (used by
/// the completeness tests to identify join pairs); `payload` carries
/// application data (order id, taxi id, price, ...).
struct Record {
  KeyId key = 0;
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
  SimTime ts = 0;
  Side side = Side::kR;
};

}  // namespace fastjoin
