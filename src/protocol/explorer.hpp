// FASTJOIN_PROTOCOL_FILE: schedule explorer for the protocol model.
//
// Three complementary strategies over Model's event interleavings:
//  * directed_sweep(): deterministically drives the migration to each
//    phase and injects each fault kind there — guarantees the
//    phase × {crash-src, crash-dst, crash-other, delay} grid is covered
//    regardless of search luck.
//  * dfs(): bounded-depth exhaustive enumeration with sleep-set
//    pruning (independent-event reorderings explored once) and
//    visited-state deduplication.
//  * random_walks(): seeded Xoshiro256 walks for schedule volume and
//    depths the DFS budget cannot reach.
//
// After the choice prefix every schedule is run to quiescence by
// Model::drain_and_check, so each counted schedule ends with the full
// invariant suite. On a violation the explorer shrinks the schedule
// (ddmin-style, preserving the invariant name) and the caller can dump
// a replayable trace artifact.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "protocol/model.hpp"

namespace fastjoin::protocol {

struct ExplorerConfig {
  std::uint32_t max_depth = 12;      ///< choice events before the drain
  std::uint64_t max_schedules = 0;   ///< 0 = no cap (DFS budget)
  std::uint32_t walk_steps = 48;     ///< choice events per random walk
  std::uint64_t seed = 1;            ///< base seed for random walks
  bool shrink = true;
};

struct Counterexample {
  Violation violation;
  std::vector<Event> schedule;  ///< choice prefix (drain not included)
  std::uint64_t walk_seed = 0;  ///< 0 when found by DFS/directed
};

struct ExploreStats {
  std::uint64_t schedules = 0;    ///< distinct completed schedules
  std::uint64_t events = 0;       ///< events applied (incl. drains)
  std::uint64_t sleep_skips = 0;  ///< subtrees pruned by sleep sets
  std::uint64_t dedup_skips = 0;  ///< subtrees pruned by state dedup
  /// "phase/fault" -> times injected, e.g. "hold-wait/crash-dst".
  std::map<std::string, std::uint64_t> coverage;
};

class Explorer {
 public:
  Explorer(const Model& model, const ExplorerConfig& cfg);

  /// Deterministic phase × fault grid. Returns the first
  /// counterexample, if any.
  std::optional<Counterexample> directed_sweep();

  /// Bounded exhaustive search. Honors cfg.max_schedules.
  std::optional<Counterexample> dfs();

  /// `walks` seeded random walks (seeds cfg.seed, cfg.seed+1, ...).
  std::optional<Counterexample> random_walks(std::uint64_t walks);

  const ExploreStats& stats() const { return stats_; }

  /// Replay a schedule: apply each event if it is currently enabled
  /// (unmatched events are skipped — this is what makes shrinking
  /// candidates replayable), then drain and run the final checks.
  /// `applied`/`final_state` are optional out-params.
  std::optional<Violation> run_schedule(const std::vector<Event>& sched,
                                        std::vector<Event>* applied = nullptr,
                                        State* final_state = nullptr);

  /// ddmin-style minimization: greedily drop events while the replay
  /// still violates the same invariant.
  std::vector<Event> shrink(const std::vector<Event>& sched,
                            const std::string& invariant);

 private:
  std::optional<Counterexample> dfs_rec(const State& s,
                                        const std::vector<Event>& sleep,
                                        std::uint32_t depth,
                                        std::vector<Event>& path);
  std::optional<Counterexample> finish(const State& s,
                                       const std::vector<Event>& path,
                                       std::uint64_t walk_seed);
  void note_fault(const State& before, const Event& e);
  bool budget_exhausted() const;

  const Model& model_;
  ExplorerConfig cfg_;
  ExploreStats stats_;
  std::unordered_map<std::uint64_t, std::uint32_t> visited_;
  std::set<std::uint64_t> schedule_hashes_;
};

/// Human-readable, machine-parsable counterexample artifact.
std::string format_trace(const Model& model, const Counterexample& ce);
/// Parse a trace produced by format_trace back into a config +
/// schedule. Returns false on malformed input.
bool parse_trace(const std::string& text, ModelConfig* cfg,
                 std::vector<Event>* schedule, std::string* invariant);

}  // namespace fastjoin::protocol
