// FASTJOIN_PROTOCOL_FILE: see model.hpp.
#include "protocol/model.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "common/rng.hpp"

namespace fastjoin::protocol {

namespace {

constexpr std::uint32_t kNoOverride = 0xffffffffu;
constexpr std::uint64_t kStepNs = 1'000;  // every event costs 1 us

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

bool bucket_has_seq(const std::vector<PRecord>& bucket,
                    std::uint32_t seq) {
  for (const auto& r : bucket) {
    if (r.seq == seq) return true;
  }
  return false;
}

}  // namespace

const char* mon_phase_name(MonPhase p) {
  switch (p) {
    case MonPhase::kIdle: return "idle";
    case MonPhase::kSelectWait: return "select-wait";
    case MonPhase::kHoldWait: return "hold-wait";
    case MonPhase::kRouted: return "routed";
    case MonPhase::kForwardWait: return "forward-wait";
    case MonPhase::kAbsorb: return "absorb";
    case MonPhase::kRelease: return "release";
  }
  return "?";
}

std::string event_name(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EvKind::kPush: os << "push(p" << e.a << ")"; break;
    case EvKind::kData: os << "data(w" << e.a << ",p" << e.b << ")"; break;
    case EvKind::kCtrl: os << "ctrl(w" << e.a << ")"; break;
    case EvKind::kMonitor: os << "monitor"; break;
    case EvKind::kCheckpoint: os << "checkpoint"; break;
    case EvKind::kCrash: os << "crash(w" << e.a << ")"; break;
    case EvKind::kDelay: os << "delay"; break;
    case EvKind::kRespawn: os << "respawn(w" << e.a << ")"; break;
  }
  return os.str();
}

Model::Model(const ModelConfig& cfg) : cfg_(cfg) {
  // Seeded skewed stream: key 0 is hot (so the monitor's argmax/argmin
  // pair selection has something to migrate), keys are producer-affine
  // (partition = key mod producers) so per-key order is well defined.
  Xoshiro256 rng{cfg_.stream_seed};
  stream_.reserve(cfg_.num_records);
  by_producer_.resize(cfg_.producers);
  for (std::uint32_t i = 0; i < cfg_.num_records; ++i) {
    PRecord r;
    r.key = (rng.next_below(2) == 0)
                ? 0u
                : static_cast<std::uint32_t>(rng.next_below(cfg_.num_keys));
    r.seq = i;
    r.store_side = rng.next_below(2) == 0;
    stream_.push_back(r);
    by_producer_[r.key % cfg_.producers].push_back(i);
  }
}

State Model::initial() const {
  State s;
  s.workers.resize(cfg_.workers);
  for (auto& w : s.workers) {
    w.lanes.resize(cfg_.producers);
    w.consumed.assign(cfg_.producers, 0);
  }
  s.log.resize(cfg_.producers);
  s.cursor.assign(cfg_.producers, 0);
  s.backlog.resize(cfg_.workers);
  return s;
}

std::uint32_t Model::route(const State& s, std::uint32_t key) const {
  auto it = s.overrides.find(key);
  if (it != s.overrides.end()) return it->second;
  return key % cfg_.workers;
}

std::vector<std::uint64_t> Model::capture_barrier(const State& s,
                                                  std::uint32_t w) const {
  std::vector<std::uint64_t> b(cfg_.producers, 0);
  for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
    b[p] = s.workers[w].lanes[p].pushed;
  }
  return b;
}

bool Model::send_ctrl(State& s, std::uint32_t w, Ctrl c) const {
  if (s.workers[w].crashed) return false;
  s.workers[w].ctrl.push_back(std::move(c));
  return true;
}

void Model::ledger_batch(State& s, const Batch& b) const {
  for (const auto& [key, rec] : b.stored) {
    (void)key;
    s.lost.insert(rec.seq);
  }
}

void Model::ledger_records(State& s,
                           const std::vector<PRecord>& recs) const {
  for (const auto& r : recs) s.lost.insert(r.seq);
}

std::optional<Violation> Model::emit(State& s, std::uint32_t r_seq,
                                     std::uint32_t s_seq) const {
  if (!s.emitted.insert({r_seq, s_seq}).second) {
    std::ostringstream os;
    os << "pair (r" << r_seq << ", s" << s_seq << ") emitted twice";
    return Violation{"duplicate-emission", os.str()};
  }
  return std::nullopt;
}

// Full processing of one record at worker `w` (LiveEngine `process`):
// store-side records are inserted blindly — a duplicate here IS a
// protocol bug — and probe-side records emit against every strictly
// preceding stored tuple of their key.
std::optional<Violation> Model::worker_process(State& s, std::uint32_t w,
                                               const PRecord& rec) const {
  auto& wk = s.workers[w];
  if (rec.store_side) {
    auto& bucket = wk.store[rec.key];
    if (bucket_has_seq(bucket, rec.seq)) {
      std::ostringstream os;
      os << "store r" << rec.seq << " (key " << rec.key
         << ") inserted twice at w" << w;
      return Violation{"store-duplicate", os.str()};
    }
    bucket.push_back(rec);
    return std::nullopt;
  }
  auto it = wk.store.find(rec.key);
  if (it != wk.store.end()) {
    for (const auto& r : it->second) {
      if (r.seq < rec.seq) {
        if (auto v = emit(s, r.seq, rec.seq)) return v;
      }
    }
  }
  return std::nullopt;
}

// Seq-deduped merge (JoinInstance::merge_tuple): used by Absorb and
// Abort re-merges, where meeting an already-present tuple is expected.
// With skip_absorb_dedup injected the blind insert surfaces as a
// store-duplicate the checker must catch.
std::optional<Violation> Model::worker_merge(State& s, std::uint32_t w,
                                             std::uint32_t key,
                                             const PRecord& rec,
                                             const char* what) const {
  auto& bucket = s.workers[w].store[key];
  const bool dup = bucket_has_seq(bucket, rec.seq);
  if (dup && !cfg_.skip_absorb_dedup) return std::nullopt;
  bucket.push_back(rec);
  if (dup) {
    std::ostringstream os;
    os << what << " re-merged r" << rec.seq << " without dedup at w" << w;
    return Violation{"store-duplicate", os.str()};
  }
  return std::nullopt;
}

std::optional<Violation> Model::worker_handle_ctrl(State& s,
                                                   std::uint32_t w) const {
  auto& wk = s.workers[w];
  Ctrl c = std::move(wk.ctrl.front());
  wk.ctrl.pop_front();
  auto& mon = s.mon;
  // A reply is live only if it answers the *current* request (in the
  // engine this is a per-request promise/future pair).
  const bool reply_live = c.epoch == mon.started;

  switch (c.kind) {
    case CtrlKind::kSelectExtract: {
      // Extract the heaviest key (ties to the smallest id).
      std::uint32_t best = 0;
      std::size_t best_n = 0;
      for (const auto& [k, recs] : wk.store) {
        if (recs.size() > best_n) {
          best = k;
          best_n = recs.size();
        }
      }
      Batch b;
      wk.pending_extract.clear();
      if (best_n > 0) {
        b.keys.push_back(best);
        for (const auto& r : wk.store[best]) b.stored.push_back({best, r});
        wk.pending_extract[best] = wk.store[best];
        wk.store.erase(best);
        wk.forwarding.insert(best);
      }
      if (reply_live && mon.phase == MonPhase::kSelectWait && mon.src == w) {
        mon.batch = std::move(b);
        mon.have_batch = true;
      }
      break;
    }
    case CtrlKind::kHold: {
      for (auto k : c.keys) wk.held.insert(k);
      if (reply_live && mon.phase == MonPhase::kHoldWait && mon.dst == w) {
        mon.hold_acked = true;
      }
      break;
    }
    case CtrlKind::kTakeForward: {
      // Honor the take only while the monitor is still waiting for it.
      // A stale request (the monitor timed out and the Abort is queued
      // right behind us) must be a strict no-op: clearing the forward
      // buffer here would discard diverted records the coming Abort
      // re-processes, and nothing would ledger them (found by the
      // schedule explorer).
      if (reply_live && mon.phase == MonPhase::kForwardWait &&
          mon.src == w) {
        wk.forwarding.clear();
        mon.forwarded = std::move(wk.fwd_buf);
        mon.have_forwarded = true;
        wk.fwd_buf.clear();
      }
      break;
    }
    case CtrlKind::kAbsorb: {
      for (const auto& [key, rec] : c.batch.stored) {
        if (auto v = worker_merge(s, w, key, rec, "absorb")) return v;
      }
      break;
    }
    case CtrlKind::kRelease: {
      wk.held.clear();
      // Flush the barrier in stream (seq) order, not arrival order:
      // the held buffer interleaves lane arrivals with retargeted
      // replay from a recovered source, which can put a probe ahead of
      // the smaller-seq store it should match (found by the schedule
      // explorer). Seq order is the per-key delivery order the
      // completeness invariant is defined over.
      std::vector<PRecord> flush = c.forwarded;
      flush.insert(flush.end(), wk.held_buf.begin(), wk.held_buf.end());
      wk.held_buf.clear();
      std::stable_sort(
          flush.begin(), flush.end(),
          [](const PRecord& a, const PRecord& b) { return a.seq < b.seq; });
      // A divert buffer can interleave exactly-once lane records with
      // at-least-once retargeted replay (which may duplicate a record
      // the absorb already carried), so store-side entries merge
      // seq-deduped. Probes stay strict: a duplicated probe duplicates
      // emissions, which the emission invariant catches end to end.
      for (const auto& r : flush) {
        if (r.store_side) {
          if (auto v = worker_merge(s, w, r.key, r, "release-flush"))
            return v;
        } else if (auto v = worker_process(s, w, r)) {
          return v;
        }
      }
      break;
    }
    case CtrlKind::kAbort: {
      // Re-merge the extracted batch (seq-deduped: the tuples may have
      // been restored already by a crash replay), stop diverting, then
      // replay forwarded records and the local forward buffer.
      for (const auto& [key, rec] : c.batch.stored) {
        if (auto v = worker_merge(s, w, key, rec, "abort")) return v;
      }
      wk.pending_extract.clear();
      wk.forwarding.clear();
      // Same stream-order flush as Release: the forward buffer can
      // hold retargeted replay from a recovered target next to lane
      // arrivals.
      std::vector<PRecord> flush;
      if (c.has_forwarded) flush = c.forwarded;
      flush.insert(flush.end(), wk.fwd_buf.begin(), wk.fwd_buf.end());
      wk.fwd_buf.clear();
      std::stable_sort(
          flush.begin(), flush.end(),
          [](const PRecord& a, const PRecord& b) { return a.seq < b.seq; });
      // Same dedup rationale as the Release flush.
      for (const auto& r : flush) {
        if (r.store_side) {
          if (auto v = worker_merge(s, w, r.key, r, "abort-flush"))
            return v;
        } else if (auto v = worker_process(s, w, r)) {
          return v;
        }
      }
      break;
    }
    case CtrlKind::kCheckpoint: {
      wk.has_ckpt = true;
      wk.ckpt_store = wk.store;
      // Fold the in-flight extracted batch back in (seq-deduped): the
      // snapshot's offsets cover those records, so a snapshot without
      // them would shadow the batch — a post-crash restore would
      // neither hold nor replay it (found by the schedule explorer).
      for (const auto& [key, recs] : wk.pending_extract) {
        auto& bucket = wk.ckpt_store[key];
        for (const auto& r : recs) {
          if (!bucket_has_seq(bucket, r.seq)) bucket.push_back(r);
        }
      }
      wk.ckpt_offsets = wk.consumed;
      break;
    }
    case CtrlKind::kReplay: {
      // Retargeted deliveries go through the same divert checks as lane
      // data; store-side ones seq-dedup (replay_store), probe-side ones
      // were verifiably never served and process normally.
      for (const auto& r : c.replay) {
        if (wk.forwarding.count(r.key)) {
          wk.fwd_buf.push_back(r);
          continue;
        }
        if (wk.held.count(r.key)) {
          wk.held_buf.push_back(r);
          continue;
        }
        if (r.store_side) {
          auto& bucket = wk.store[r.key];
          if (!bucket_has_seq(bucket, r.seq)) bucket.push_back(r);
        } else {
          if (auto v = worker_process(s, w, r)) return v;
        }
      }
      break;
    }
  }
  return std::nullopt;
}

std::optional<Violation> Model::apply_crash(State& s,
                                            std::uint32_t w) const {
  auto& wk = s.workers[w];
  wk.crashed = true;
  wk.lanes_open = false;
  // All loss accounting and queue forensics happen at respawn, exactly
  // like LiveEngine (crash() only closes the slot; respawn() drains).
  return std::nullopt;
}

std::optional<Violation> Model::apply_respawn(State& s,
                                              std::uint32_t w) const {
  WorkerState dead = std::move(s.workers[w]);
  auto& mon = s.mon;

  // Buffered diverted records die with the worker.
  ledger_records(s, dead.fwd_buf);
  ledger_records(s, dead.held_buf);

  // Queue forensics (drain_dead_queue): break promises the monitor is
  // still waiting on, charge dead control payloads to the ledger,
  // salvage replay deliveries.
  std::vector<PRecord> salvaged;
  for (auto& c : dead.ctrl) {
    const bool reply_live = c.epoch == mon.started;
    switch (c.kind) {
      case CtrlKind::kSelectExtract:
        if (reply_live && mon.phase == MonPhase::kSelectWait &&
            mon.src == w) {
          mon.reply_dead = true;
        }
        break;
      case CtrlKind::kHold:
        if (reply_live && mon.phase == MonPhase::kHoldWait &&
            mon.dst == w) {
          mon.reply_dead = true;
        }
        break;
      case CtrlKind::kTakeForward:
        if (reply_live && mon.phase == MonPhase::kForwardWait &&
            mon.src == w) {
          mon.reply_dead = true;
        }
        break;
      case CtrlKind::kAbsorb:
        // Unrecoverable: routing points here, the log entries point at
        // the source, and the source's restore filter skips keys routed
        // away — so neither side's replay resurrects these tuples.
        ledger_batch(s, c.batch);
        break;
      case CtrlKind::kRelease:
        ledger_records(s, c.forwarded);
        break;
      case CtrlKind::kAbort:
        // The batch itself is restored by checkpoint+replay after the
        // rollback (the log still owns every stored record and routing
        // points back at the source); the forwarded probes are not:
        // their offsets sit below the consumed marks, so replay
        // suppresses them.
        if (c.has_forwarded) ledger_records(s, c.forwarded);
        if (!cfg_.replay) ledger_batch(s, c.batch);
        break;
      case CtrlKind::kCheckpoint:
        break;
      case CtrlKind::kReplay:
        if (cfg_.replay) {
          salvaged.insert(salvaged.end(), c.replay.begin(),
                          c.replay.end());
        } else {
          ledger_records(s, c.replay);
        }
        break;
    }
  }

  // Lane residue: advance the popped watermarks so barrier arithmetic
  // stays coherent. With replay on, the residue is re-driven from the
  // log; without it, the records are lost.
  for (auto& lane : dead.lanes) {
    lane.popped += lane.q.size();
    if (!cfg_.replay) {
      for (const auto& d : lane.q) s.lost.insert(d.rec.seq);
    }
    lane.q.clear();
  }

  WorkerState fresh;
  fresh.gen = dead.gen + 1;
  fresh.lanes = std::move(dead.lanes);  // keeps pushed/popped counters
  fresh.consumed.assign(cfg_.producers, 0);
  fresh.has_ckpt = dead.has_ckpt;
  fresh.ckpt_store = dead.ckpt_store;
  fresh.ckpt_offsets = dead.ckpt_offsets;

  // If this slot is the TARGET of an in-flight migration whose hold is
  // already supposed to be installed, re-install it BEFORE replay and
  // before the lanes reopen. Without this the fresh worker serves
  // rerouted probes against a store that does not have the batch yet
  // (Absorb arrives later) — silently missing pairs with nothing in
  // the drop ledger. The pending Release flushes the held buffer.
  const bool inflight_dst =
      mon.dst == w &&
      ((mon.phase == MonPhase::kHoldWait && mon.hold_acked) ||
       mon.phase == MonPhase::kRouted ||
       mon.phase == MonPhase::kForwardWait ||
       mon.phase == MonPhase::kAbsorb || mon.phase == MonPhase::kRelease);
  if (inflight_dst) {
    for (auto k : mon.batch.keys) fresh.held.insert(k);
  }

  // Checkpoint restore, filtered by the *current* routing table.
  if (fresh.has_ckpt) {
    for (const auto& [key, recs] : fresh.ckpt_store) {
      if (route(s, key) == w) fresh.store[key] = recs;
    }
  }

  std::map<std::uint32_t, std::vector<PRecord>> retarget;
  std::optional<Violation> viol;
  if (cfg_.replay) {
    std::vector<std::uint64_t> from =
        fresh.has_ckpt ? fresh.ckpt_offsets
                       : std::vector<std::uint64_t>(cfg_.producers, 0);
    const auto& marks = dead.consumed;
    std::set<std::uint32_t> own_log;  // seqs durable in this slot's entries
    // k-way merge of the log partitions in global (seq) order.
    struct Pos {
      std::uint32_t p;
      std::uint64_t off;
    };
    std::vector<Pos> heads;
    for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
      heads.push_back({p, from[p]});
    }
    for (;;) {
      int pick = -1;
      std::uint32_t best_seq = 0;
      for (std::size_t i = 0; i < heads.size(); ++i) {
        const auto& h = heads[i];
        if (h.off >= s.log[h.p].size()) continue;
        std::uint32_t seq = s.log[h.p][h.off].rec.seq;
        if (pick < 0 || seq < best_seq) {
          pick = static_cast<int>(i);
          best_seq = seq;
        }
      }
      if (pick < 0) break;
      auto& h = heads[static_cast<std::size_t>(pick)];
      const LogEntry le = s.log[h.p][h.off];
      const bool fresh_band = h.off >= marks[h.p];
      ++h.off;
      if (le.dst != w) continue;
      own_log.insert(le.rec.seq);
      const PRecord& rec = le.rec;
      const std::uint32_t cur = route(s, rec.key);
      // Divert first, exactly like the lane drain: a re-installed hold
      // must capture replayed records of the migrating key too.
      if (cur == w && fresh.held.count(rec.key)) {
        if (rec.store_side || fresh_band) fresh.held_buf.push_back(rec);
        if (!rec.store_side && !fresh_band) ++s.suppressed;
        continue;
      }
      if (rec.store_side) {
        if (cur == w) {
          auto& bucket = fresh.store[rec.key];
          if (!bucket_has_seq(bucket, rec.seq)) {
            bucket.push_back(rec);
            ++s.replayed;
          }
        } else {
          // Store-side records retarget regardless of band: a
          // stale-band store may have been consumed into the dead
          // worker's forward buffer and died with it, and re-merging
          // at the current owner is idempotent (seq-deduped). Probes
          // stay band-gated — replaying a served probe would duplicate
          // emissions.
          retarget[cur].push_back(rec);
          ++s.retargeted;
        }
      } else {
        if (!fresh_band) {
          ++s.suppressed;
        } else if (cur == w) {
          // Probe against the rebuilt store; emissions here are real.
          auto it = fresh.store.find(rec.key);
          if (it != fresh.store.end()) {
            for (const auto& r : it->second) {
              if (r.seq < rec.seq) {
                if (auto v = emit(s, r.seq, rec.seq)) {
                  if (!viol) viol = v;
                }
              }
            }
          }
          ++s.replayed;
        } else {
          retarget[cur].push_back(rec);
          ++s.retargeted;
        }
      }
    }
    for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
      fresh.consumed[p] = s.log[p].size();
    }
    // Crash-after-absorb accounting. A tuple migrated INTO this slot
    // is durable only in its origin partition — logged under the
    // SOURCE worker's dst marker — and in checkpoint images. The merge
    // above scans this slot's own entries only, so an absorbed tuple
    // that the checkpoint restore did not resurrect has no remaining
    // driver: the source is alive (its log is not replayed) and
    // exactly-once replay cannot re-read another worker's partitions.
    // The loss window is bounded by the checkpoint cadence; charge it
    // to the drop ledger so the miss is explained, not silent.
    for (const auto& [key, recs] : dead.store) {
      for (const auto& rec : recs) {
        if (own_log.count(rec.seq)) continue;
        if (route(s, key) == w) {
          const auto it = fresh.store.find(key);
          if (it != fresh.store.end() &&
              bucket_has_seq(it->second, rec.seq)) {
            continue;
          }
        }
        s.lost.insert(rec.seq);
      }
    }
  } else {
    // No log: whatever the dead store had beyond the restored image is
    // gone (records consumed after the snapshot).
    for (const auto& [key, recs] : dead.store) {
      if (route(s, key) != w) continue;
      const auto& have = fresh.store[key];
      for (const auto& rec : recs) {
        if (!bucket_has_seq(have, rec.seq)) s.lost.insert(rec.seq);
      }
    }
  }

  // Salvaged replay deliveries re-route by the current table: live
  // targets get a fresh ReplayReq, dead ones (and this slot itself)
  // park in the retarget backlog.
  if (cfg_.replay) {
    for (const auto& rec : salvaged) {
      const std::uint32_t cur = route(s, rec.key);
      if (cur != w && !s.workers[cur].crashed) {
        retarget[cur].push_back(rec);
      } else {
        s.backlog[cur].push_back(rec);
      }
    }
  }

  for (auto& [t, recs] : retarget) {
    if (t != w && !s.workers[t].crashed) {
      Ctrl c;
      c.kind = CtrlKind::kReplay;
      c.replay = std::move(recs);
      send_ctrl(s, t, std::move(c));
    } else {
      s.backlog[t].insert(s.backlog[t].end(), recs.begin(), recs.end());
    }
  }

  s.workers[w] = std::move(fresh);
  s.workers[w].crashed = false;
  s.workers[w].lanes_open = true;

  // Flush this slot's parked backlog into the fresh worker.
  if (!s.backlog[w].empty()) {
    Ctrl c;
    c.kind = CtrlKind::kReplay;
    c.replay = std::move(s.backlog[w]);
    s.backlog[w].clear();
    send_ctrl(s, w, std::move(c));
  }
  return viol;
}

std::optional<Violation> Model::apply_monitor(State& s) const {
  auto& mon = s.mon;
  const auto timeout = [&] { return s.now_ns >= mon.deadline_ns; };

  // Abort helper: notify the source (re-merge + stop diverting). A
  // failed send means the source is itself down; with replay on the
  // batch is rebuilt from the log after its respawn, without it (and
  // for already-consumed forwarded probes either way) the records are
  // genuinely lost.
  auto abort_to_src = [&](bool replay_pending, bool with_forwarded) {
    Ctrl c;
    c.kind = CtrlKind::kAbort;
    c.epoch = mon.started;
    c.batch = mon.batch;
    c.replay_pending = replay_pending;
    c.has_forwarded = with_forwarded;
    if (with_forwarded) c.forwarded = mon.forwarded;
    if (!send_ctrl(s, mon.src, std::move(c))) {
      if (!cfg_.replay) ledger_batch(s, mon.batch);
      if (with_forwarded) ledger_records(s, mon.forwarded);
    } else if (!cfg_.replay &&
               s.workers[mon.src].gen != mon.src_gen) {
      // Delivered, but to a slot rebuilt since the extraction. The
      // fresh slot had no forwarding set, so probes for the batch's
      // keys may already have been served against the missing bucket,
      // and without the log nothing re-drives them. The re-merge still
      // lands (future probes match); the batch is superset-ledgered to
      // explain any pair that slipped through the window.
      ledger_batch(s, mon.batch);
    }
    ++mon.aborted;
    mon.phase = MonPhase::kIdle;
  };
  auto rollback_routes = [&] {
    for (const auto& [k, prev] : mon.prev_over) {
      if (prev == kNoOverride) {
        s.overrides.erase(k);
      } else {
        s.overrides[k] = prev;
      }
    }
  };

  switch (mon.phase) {
    case MonPhase::kIdle: {
      // Skew pair selection: heaviest store -> lightest store.
      std::uint32_t src = 0, dst = 0;
      std::size_t src_n = 0;
      std::size_t dst_n = SIZE_MAX;
      for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
        if (s.workers[i].crashed) continue;
        std::size_t n = 0;
        for (const auto& [k, recs] : s.workers[i].store) n += recs.size();
        if (n > src_n) {
          src = i;
          src_n = n;
        }
        if (n < dst_n) {
          dst = i;
          dst_n = n;
        }
      }
      mon.src = src;
      mon.dst = dst;
      mon.src_gen = s.workers[src].gen;
      ++mon.started;
      mon.have_batch = false;
      mon.hold_acked = false;
      mon.have_forwarded = false;
      mon.reply_dead = false;
      mon.batch = Batch{};
      mon.forwarded.clear();
      mon.prev_over.clear();
      mon.deadline_ns = s.now_ns + cfg_.migration_timeout_ns;
      Ctrl c;
      c.kind = CtrlKind::kSelectExtract;
      c.epoch = mon.started;
      c.barrier = capture_barrier(s, src);
      send_ctrl(s, src, std::move(c));
      mon.phase = MonPhase::kSelectWait;
      break;
    }
    case MonPhase::kSelectWait: {
      if (mon.have_batch) {
        if (mon.batch.keys.empty()) {
          // Nothing extractable: nothing was installed, just give up.
          ++mon.aborted;
          mon.phase = MonPhase::kIdle;
          break;
        }
        Ctrl c;
        c.kind = CtrlKind::kHold;
        c.epoch = mon.started;
        c.keys = mon.batch.keys;
        if (!send_ctrl(s, mon.dst, std::move(c))) {
          // Target died before the hold: abort at the source; routing
          // was never touched, the pending probes were never seen by
          // the target.
          abort_to_src(/*replay_pending=*/true, /*with_forwarded=*/false);
          break;
        }
        mon.hold_acked = cfg_.skip_hold_ack;  // injected bug: don't wait
        mon.reply_dead = false;
        mon.deadline_ns = s.now_ns + cfg_.migration_timeout_ns;
        mon.phase = MonPhase::kHoldWait;
      } else if (mon.reply_dead) {
        // Source's queue died with the request unprocessed: nothing was
        // extracted, nothing to roll back.
        ++mon.aborted;
        mon.phase = MonPhase::kIdle;
      } else if (timeout()) {
        if (!s.workers[mon.src].crashed) apply_crash(s, mon.src);
        ++mon.aborted;
        mon.phase = MonPhase::kIdle;
      }
      break;
    }
    case MonPhase::kHoldWait: {
      if (mon.hold_acked) {
        if (s.workers[mon.src].gen != mon.src_gen) {
          // The source slot was rebuilt since the extraction: the batch
          // belongs to a worker generation that no longer exists and
          // the fresh source's replay restored the tuples from the log.
          // Publishing would strand them — abort instead; the abort
          // re-merge seq-dedups against the restored copies. The target
          // is alive and holding, so release its hold explicitly (an
          // empty Release: no forwarded records, just un-divert).
          Ctrl r;
          r.kind = CtrlKind::kRelease;
          r.epoch = mon.started;
          r.has_forwarded = false;
          send_ctrl(s, mon.dst, std::move(r));
          abort_to_src(/*replay_pending=*/true, /*with_forwarded=*/false);
          break;
        }
        // RoutePublish: save the prior overrides, flip the key.
        for (auto k : mon.batch.keys) {
          auto it = s.overrides.find(k);
          mon.prev_over.push_back(
              {k, it == s.overrides.end() ? kNoOverride : it->second});
          if (k % cfg_.workers == mon.dst) {
            s.overrides.erase(k);
          } else {
            s.overrides[k] = mon.dst;
          }
        }
        mon.phase = MonPhase::kRouted;
      } else if (mon.reply_dead) {
        abort_to_src(/*replay_pending=*/true, /*with_forwarded=*/false);
      } else if (timeout()) {
        if (!s.workers[mon.dst].crashed) apply_crash(s, mon.dst);
        abort_to_src(/*replay_pending=*/true, /*with_forwarded=*/false);
      }
      break;
    }
    case MonPhase::kRouted: {
      Ctrl c;
      c.kind = CtrlKind::kTakeForward;
      c.epoch = mon.started;
      c.barrier = capture_barrier(s, mon.src);
      if (!send_ctrl(s, mon.src, std::move(c))) {
        // Source died after the routes flipped: roll FORWARD with an
        // empty forward buffer (its replay redelivers the diverted
        // records to the new owner).
        mon.forwarded.clear();
        mon.have_forwarded = true;
        mon.phase = MonPhase::kAbsorb;
        break;
      }
      mon.have_forwarded = false;
      mon.reply_dead = false;
      mon.deadline_ns = s.now_ns + cfg_.migration_timeout_ns;
      mon.phase = MonPhase::kForwardWait;
      break;
    }
    case MonPhase::kForwardWait: {
      if (mon.have_forwarded) {
        mon.phase = MonPhase::kAbsorb;
      } else if (mon.reply_dead) {
        mon.forwarded.clear();
        mon.have_forwarded = true;
        mon.phase = MonPhase::kAbsorb;
      } else if (timeout()) {
        if (!s.workers[mon.src].crashed) apply_crash(s, mon.src);
        mon.forwarded.clear();
        mon.have_forwarded = true;
        mon.phase = MonPhase::kAbsorb;
      }
      break;
    }
    case MonPhase::kAbsorb: {
      if (s.workers[mon.src].crashed) break;  // gated in enabled()
      Ctrl a;
      a.kind = CtrlKind::kAbsorb;
      a.epoch = mon.started;
      a.batch = mon.batch;
      if (!send_ctrl(s, mon.dst, std::move(a))) {
        // Target crashed before the absorb. Roll the routing back
        // FIRST so the target's recovery replay retargets by the
        // restored table, resupervise it (its retargets enqueue at the
        // source AHEAD of the abort, so the abort's flush sees them),
        // then abort at the source. Phase goes idle before the respawn
        // so no in-flight hold is re-installed on the fresh target.
        rollback_routes();
        mon.phase = MonPhase::kIdle;
        if (auto v = apply_respawn(s, mon.dst)) return v;
        abort_to_src(/*replay_pending=*/true, /*with_forwarded=*/true);
        break;
      }
      mon.phase = MonPhase::kRelease;
      break;
    }
    case MonPhase::kRelease: {
      if (s.workers[mon.src].crashed) break;  // gated in enabled()
      Ctrl r;
      r.kind = CtrlKind::kRelease;
      r.epoch = mon.started;
      r.has_forwarded = true;
      r.forwarded = mon.forwarded;
      if (!send_ctrl(s, mon.dst, std::move(r))) {
        // Target crashed between the two sends: the absorb may have
        // been served, so its pending probes are not replayed. Same
        // ordering as the absorb failure: rollback, resupervise the
        // target, then abort.
        rollback_routes();
        mon.phase = MonPhase::kIdle;
        if (auto v = apply_respawn(s, mon.dst)) return v;
        abort_to_src(/*replay_pending=*/false, /*with_forwarded=*/true);
        break;
      }
      ++mon.done;
      mon.phase = MonPhase::kIdle;
      break;
    }
  }
  return std::nullopt;
}

std::vector<Event> Model::enabled(const State& s, bool drain) const {
  std::vector<Event> out;
  const auto& mon = s.mon;

  // Respawns first: the drain driver applies events in list order.
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    if (s.workers[w].crashed) out.push_back({EvKind::kRespawn, w, 0});
  }

  // Monitor progress.
  bool mon_ready = false;
  switch (mon.phase) {
    case MonPhase::kIdle: {
      if (drain || mon.started >= cfg_.max_migrations) break;
      bool any_crashed = false;
      for (const auto& w : s.workers) any_crashed |= w.crashed;
      if (any_crashed) break;  // supervise() runs before try_migrate
      std::size_t max_n = 0;
      std::size_t min_n = SIZE_MAX;
      for (const auto& w : s.workers) {
        std::size_t n = 0;
        for (const auto& [k, recs] : w.store) n += recs.size();
        max_n = std::max(max_n, n);
        min_n = std::min(min_n, n);
      }
      mon_ready = cfg_.workers >= 2 && max_n > min_n;
      break;
    }
    case MonPhase::kSelectWait:
      mon_ready = mon.have_batch || mon.reply_dead ||
                  s.now_ns >= mon.deadline_ns;
      break;
    case MonPhase::kHoldWait:
      mon_ready = mon.hold_acked || mon.reply_dead ||
                  s.now_ns >= mon.deadline_ns;
      break;
    case MonPhase::kForwardWait:
      mon_ready = mon.have_forwarded || mon.reply_dead ||
                  s.now_ns >= mon.deadline_ns;
      break;
    case MonPhase::kRouted:
      mon_ready = true;
      break;
    case MonPhase::kAbsorb:
    case MonPhase::kRelease:
      // Completion barrier: while the source slot is down (roll-forward
      // after a source death, or a crash injected between the sends),
      // the monitor does not absorb/release. The source must be
      // resupervised first so its recovery replay — retargeted to the
      // new owner — is enqueued BEFORE the Release drops the hold
      // barrier; otherwise the target serves probes that the replayed
      // stores should have matched (found by the schedule explorer).
      mon_ready = !s.workers[mon.src].crashed;
      break;
  }
  if (mon_ready) out.push_back({EvKind::kMonitor, 0, 0});

  // Worker control.
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    const auto& wk = s.workers[w];
    if (wk.crashed || wk.ctrl.empty()) continue;
    const auto& barrier = wk.ctrl.front().barrier;
    bool ok = true;
    for (std::uint32_t p = 0; p < barrier.size(); ++p) {
      if (wk.lanes[p].popped < barrier[p]) ok = false;
    }
    if (ok) out.push_back({EvKind::kCtrl, w, 0});
  }

  // Worker data.
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    const auto& wk = s.workers[w];
    if (wk.crashed) continue;
    for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
      if (!wk.lanes[p].q.empty()) out.push_back({EvKind::kData, w, p});
    }
  }

  // Producers.
  for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
    if (s.cursor[p] >= by_producer_[p].size()) continue;
    const PRecord& rec = stream_[by_producer_[p][s.cursor[p]]];
    const std::uint32_t dst = route(s, rec.key);
    // With replay on, a closed slot blocks the producer (the respawn
    // reopens it); without it the push drops — still an event.
    if (cfg_.replay && !s.workers[dst].lanes_open) continue;
    out.push_back({EvKind::kPush, p, 0});
  }

  if (!drain) {
    if (s.checkpoints < cfg_.max_checkpoints) {
      out.push_back({EvKind::kCheckpoint, 0, 0});
    }
    if (s.crashes < cfg_.max_crashes) {
      for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
        if (!s.workers[w].crashed) out.push_back({EvKind::kCrash, w, 0});
      }
    }
    const bool waiting = (mon.phase == MonPhase::kSelectWait &&
                          !mon.have_batch && !mon.reply_dead) ||
                         (mon.phase == MonPhase::kHoldWait &&
                          !mon.hold_acked && !mon.reply_dead) ||
                         (mon.phase == MonPhase::kForwardWait &&
                          !mon.have_forwarded && !mon.reply_dead);
    if (waiting && s.delays < cfg_.max_delays &&
        s.now_ns < mon.deadline_ns) {
      out.push_back({EvKind::kDelay, 0, 0});
    }
  }
  return out;
}

std::optional<Violation> Model::apply(State& s, const Event& e) const {
  s.now_ns += kStepNs;
  std::optional<Violation> viol;
  switch (e.kind) {
    case EvKind::kPush: {
      const std::uint32_t p = e.a;
      const PRecord rec = stream_[by_producer_[p][s.cursor[p]]];
      ++s.cursor[p];
      const std::uint32_t dst = route(s, rec.key);
      const std::uint64_t offset = s.log[p].size();
      s.log[p].push_back({rec, dst});
      auto& wk = s.workers[dst];
      if (!wk.lanes_open) {
        // Non-replay mode only: the delivery is dropped on the floor
        // and charged to the ledger (note_drop in the engine).
        s.lost.insert(rec.seq);
        break;
      }
      wk.lanes[p].q.push_back({rec, p, offset});
      ++wk.lanes[p].pushed;
      break;
    }
    case EvKind::kData: {
      auto& wk = s.workers[e.a];
      auto& lane = wk.lanes[e.b];
      const Delivery d = lane.q.front();
      lane.q.pop_front();
      ++lane.popped;
      if (cfg_.replay) {
        if (d.offset < wk.consumed[e.b]) break;  // replay already served
        wk.consumed[e.b] = d.offset + 1;
      }
      if (wk.forwarding.count(d.rec.key)) {
        wk.fwd_buf.push_back(d.rec);
      } else if (wk.held.count(d.rec.key)) {
        wk.held_buf.push_back(d.rec);
      } else {
        viol = worker_process(s, e.a, d.rec);
      }
      break;
    }
    case EvKind::kCtrl:
      viol = worker_handle_ctrl(s, e.a);
      break;
    case EvKind::kMonitor:
      viol = apply_monitor(s);
      break;
    case EvKind::kCheckpoint: {
      ++s.checkpoints;
      for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
        if (s.workers[w].crashed) continue;
        Ctrl c;
        c.kind = CtrlKind::kCheckpoint;
        // The engine's checkpoint is lane-prefix consistent: it runs
        // in-thread behind whatever was already queued; no barrier.
        send_ctrl(s, w, std::move(c));
      }
      break;
    }
    case EvKind::kCrash:
      ++s.crashes;
      viol = apply_crash(s, e.a);
      break;
    case EvKind::kDelay:
      ++s.delays;
      s.now_ns = std::max(s.now_ns, s.mon.deadline_ns);
      break;
    case EvKind::kRespawn:
      viol = apply_respawn(s, e.a);
      break;
  }
  if (viol) return viol;
  return structural_check(s);
}

std::optional<Violation> Model::structural_check(const State& s) const {
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    const auto& wk = s.workers[w];
    for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
      const auto& lane = wk.lanes[p];
      if (lane.popped > lane.pushed ||
          lane.pushed - lane.popped != lane.q.size()) {
        std::ostringstream os;
        os << "lane (w" << w << ",p" << p << ") watermark skew: pushed "
           << lane.pushed << " popped " << lane.popped << " queued "
           << lane.q.size();
        return Violation{"watermark-regression", os.str()};
      }
      if (cfg_.replay && wk.consumed[p] > s.log[p].size()) {
        std::ostringstream os;
        os << "w" << w << " consumed[" << p << "]=" << wk.consumed[p]
           << " beyond log end " << s.log[p].size();
        return Violation{"watermark-regression", os.str()};
      }
    }
  }
  return std::nullopt;
}

bool Model::quiescent(const State& s) const {
  for (std::uint32_t p = 0; p < cfg_.producers; ++p) {
    if (s.cursor[p] < by_producer_[p].size()) return false;
  }
  for (const auto& wk : s.workers) {
    if (wk.crashed || !wk.ctrl.empty()) return false;
    for (const auto& lane : wk.lanes) {
      if (!lane.q.empty()) return false;
    }
  }
  for (const auto& b : s.backlog) {
    if (!b.empty()) return false;
  }
  return s.mon.phase == MonPhase::kIdle;
}

std::optional<Violation> Model::drain_and_check(State& s) const {
  // Generous bound: every record is pushed, delivered, and possibly
  // replayed a constant number of times.
  const std::uint64_t cap =
      10'000 + 50ull * cfg_.num_records * (cfg_.workers + 1);
  for (std::uint64_t i = 0; i < cap; ++i) {
    auto evs = enabled(s, /*drain=*/true);
    if (evs.empty()) {
      if (quiescent(s)) return final_check(s);
      std::ostringstream os;
      os << "no enabled event but not quiescent (mon phase "
         << mon_phase_name(s.mon.phase) << ")";
      return Violation{"wedged", os.str()};
    }
    if (auto v = apply(s, evs.front())) return v;
  }
  return Violation{"wedged", "drain did not reach quiescence"};
}

std::set<std::pair<std::uint32_t, std::uint32_t>> Model::expected_pairs()
    const {
  std::set<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& probe : stream_) {
    if (probe.store_side) continue;
    for (const auto& r : stream_) {
      if (r.store_side && r.key == probe.key && r.seq < probe.seq) {
        out.insert({r.seq, probe.seq});
      }
    }
  }
  return out;
}

std::optional<Violation> Model::final_check(const State& s) const {
  // Abort-epoch consistency: no diversion machinery survives
  // quiescence.
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    const auto& wk = s.workers[w];
    if (!wk.forwarding.empty() || !wk.held.empty() ||
        !wk.fwd_buf.empty() || !wk.held_buf.empty()) {
      std::ostringstream os;
      os << "w" << w << " still diverting at quiescence (forwarding "
         << wk.forwarding.size() << ", held " << wk.held.size()
         << ", fwd_buf " << wk.fwd_buf.size() << ", held_buf "
         << wk.held_buf.size() << ")";
      return Violation{"abort-epoch", os.str()};
    }
    // Routing/store consistency: every live stored tuple is reachable.
    for (const auto& [key, recs] : wk.store) {
      if (!recs.empty() && route(s, key) != w) {
        std::ostringstream os;
        os << "key " << key << " stored at w" << w << " but routed to w"
           << route(s, key);
        return Violation{"orphan-store", os.str()};
      }
    }
  }
  // Bounded loss with an exact ledger: every expected-but-missing pair
  // must be explained by a ledgered record; with an empty ledger the
  // emitted set must equal the expected set exactly.
  const auto expected = expected_pairs();
  for (const auto& pr : expected) {
    if (s.emitted.count(pr)) continue;
    if (s.lost.count(pr.first) || s.lost.count(pr.second)) continue;
    std::ostringstream os;
    os << "pair (r" << pr.first << ", s" << pr.second
       << ") missing with neither record in the drop ledger";
    return Violation{"exact-ledger", os.str()};
  }
  for (const auto& pr : s.emitted) {
    if (!expected.count(pr)) {
      std::ostringstream os;
      os << "pair (r" << pr.first << ", s" << pr.second
         << ") emitted but never expected";
      return Violation{"phantom-emission", os.str()};
    }
  }
  return std::nullopt;
}

bool Model::independent(const Event& x, const Event& y) const {
  auto global = [](const Event& e) {
    switch (e.kind) {
      case EvKind::kMonitor:
      case EvKind::kCheckpoint:
      case EvKind::kCrash:
      case EvKind::kDelay:
      case EvKind::kRespawn:
        return true;
      default:
        return false;
    }
  };
  if (global(x) || global(y)) return false;
  const Event& a = static_cast<int>(x.kind) <= static_cast<int>(y.kind)
                       ? x
                       : y;
  const Event& b = static_cast<int>(x.kind) <= static_cast<int>(y.kind)
                       ? y
                       : x;
  if (a.kind == EvKind::kPush && b.kind == EvKind::kPush) {
    return a.a != b.a;
  }
  if (a.kind == EvKind::kPush && b.kind == EvKind::kData) {
    return a.a != b.b;  // different partitions: different lanes
  }
  if (a.kind == EvKind::kPush && b.kind == EvKind::kCtrl) return true;
  if (a.kind == EvKind::kData && b.kind == EvKind::kData) {
    return a.a != b.a;
  }
  if (a.kind == EvKind::kData && b.kind == EvKind::kCtrl) {
    return a.a != b.a;
  }
  // Two ctrl handlers may both write monitor reply flags.
  return false;
}

std::uint64_t Model::digest(const State& s) const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](std::uint64_t v) { h = fnv_mix(h, v); };
  auto mix_rec = [&](const PRecord& r) {
    mix(r.key);
    mix(r.seq);
    mix(r.store_side ? 1 : 0);
  };
  for (const auto& wk : s.workers) {
    mix(0x5157);
    mix(wk.crashed ? 1 : 0);
    mix(wk.lanes_open ? 1 : 0);
    mix(wk.gen);
    for (const auto& c : wk.ctrl) {
      mix(static_cast<std::uint64_t>(c.kind));
      mix(c.epoch);
      mix(c.keys.size());
      mix(c.forwarded.size());
      for (const auto& [k, r] : c.batch.stored) {
        mix(k);
        mix_rec(r);
      }
      for (const auto& r : c.replay) mix_rec(r);
    }
    for (const auto& lane : wk.lanes) {
      mix(lane.pushed);
      mix(lane.popped);
      for (const auto& d : lane.q) {
        mix_rec(d.rec);
        mix(d.offset);
      }
    }
    for (const auto& [k, recs] : wk.store) {
      mix(k);
      for (const auto& r : recs) mix_rec(r);
    }
    for (auto k : wk.forwarding) mix(k);
    for (auto k : wk.held) mix(k);
    for (const auto& r : wk.fwd_buf) mix_rec(r);
    for (const auto& r : wk.held_buf) mix_rec(r);
    for (auto c : wk.consumed) mix(c);
    for (const auto& [k, recs] : wk.pending_extract) {
      mix(k);
      mix(recs.size());
    }
    mix(wk.has_ckpt ? 1 : 0);
    for (const auto& [k, recs] : wk.ckpt_store) {
      mix(k);
      mix(recs.size());
    }
  }
  mix(static_cast<std::uint64_t>(s.mon.phase));
  mix(s.mon.src);
  mix(s.mon.dst);
  mix(s.mon.started);
  mix(s.mon.src_gen);
  mix(s.mon.have_batch ? 1 : 0);
  mix(s.mon.hold_acked ? 1 : 0);
  mix(s.mon.reply_dead ? 1 : 0);
  mix(s.mon.have_forwarded ? 1 : 0);
  mix(s.mon.batch.stored.size());
  mix(s.mon.forwarded.size());
  for (const auto& [k, d] : s.overrides) {
    mix(k);
    mix(d);
  }
  for (auto c : s.cursor) mix(c);
  for (const auto& part : s.log) {
    mix(0xa9);
    for (const auto& le : part) {
      mix_rec(le.rec);
      mix(le.dst);
    }
  }
  for (const auto& pr : s.emitted) {
    mix(pr.first);
    mix(pr.second);
  }
  for (auto seq : s.lost) mix(seq);
  for (const auto& b : s.backlog) {
    mix(0xb1);
    for (const auto& r : b) mix_rec(r);
  }
  mix(s.crashes);
  mix(s.delays);
  mix(s.checkpoints);
  return h;
}

}  // namespace fastjoin::protocol
