// FASTJOIN_PROTOCOL_FILE: deterministic model of the supervised
// migration / offset-replay protocol.
//
// This is the side-effect-free twin of LiveEngine's control plane
// (src/runtime/live_engine.cpp), with docs/migration_protocol.md as
// the spec: the same events (SelectExtract, Hold/HoldAck,
// RoutePublish, TakeForward, Absorb/Release, Abort, Checkpoint,
// Crash, Respawn, Replay), the same guards, and the same
// recovery arithmetic (consumed watermarks, checkpoint+log replay,
// retarget backlog), but over pure value-type state on virtual time.
// Every decision the live monitor or a worker thread can make is an
// explicit Event; the explorer (explorer.hpp) enumerates event
// interleavings and checks the protocol's invariants after every
// step.
//
// Modeling scope (documented in docs/migration_protocol.md,
// "Checked model"):
//  * One biclique group is modeled (the R-store group): store-side
//    records are stored, probe-side records probe it. The S group is
//    the mirror image and adds no protocol behavior.
//  * Producers are key-affine (key k always rides partition k mod P),
//    so per-key delivery order — the property the protocol must
//    preserve — is well-defined independent of the schedule.
//  * The routing publish is atomic (the seqlock producer critical
//    section and grace period live below this abstraction; they are
//    verified by the TSan chaos suite, not here).
//  * Log retention (truncate_ingest) is not modeled; the virtual log
//    keeps every record.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace fastjoin::protocol {

// ---------------------------------------------------------------------
// Records and streams

/// One modeled record. `seq` is the record's global stream index and
/// doubles as its timestamp: the `precedes` total order of the engine
/// collapses to integer comparison.
struct PRecord {
  std::uint32_t key = 0;
  std::uint32_t seq = 0;
  bool store_side = false;  ///< true: stored; false: probes the store
};

/// A record delivered over a lane, with its virtual-log coordinates
/// (mirrors LiveEngine::DataMsg).
struct Delivery {
  PRecord rec;
  std::uint32_t partition = 0;
  std::uint64_t offset = 0;
};

/// A virtual StreamLog entry: the record plus its publish-time
/// destination (mirrors LogRecord's store_dst/probe_dst, collapsed to
/// one group).
struct LogEntry {
  PRecord rec;
  std::uint32_t dst = 0;
};

// ---------------------------------------------------------------------
// Control plane

/// Control-message vocabulary, one per LiveEngine request type that
/// participates in the migration/replay protocol.
enum class CtrlKind : std::uint8_t {
  kSelectExtract,
  kHold,
  kTakeForward,
  kAbsorb,
  kRelease,
  kAbort,
  kCheckpoint,
  kReplay,
};

struct Batch {
  std::vector<std::uint32_t> keys;
  std::vector<std::pair<std::uint32_t, PRecord>> stored;
};

struct Ctrl {
  CtrlKind kind = CtrlKind::kCheckpoint;
  /// Which migration this request belongs to (MonState::started at
  /// send time). A reply only lands if the epoch still matches — the
  /// model of the engine's per-request promise/future pair.
  std::uint32_t epoch = 0;
  /// Per-partition watermark barrier: the worker must have popped at
  /// least barrier[p] deliveries from lane p before handling this.
  std::vector<std::uint64_t> barrier;
  std::vector<std::uint32_t> keys;   ///< kHold
  Batch batch;                       ///< kAbsorb / kAbort
  bool replay_pending = false;       ///< kAbort
  bool has_forwarded = false;        ///< kRelease / kAbort
  std::vector<PRecord> forwarded;    ///< kRelease / kAbort
  std::vector<PRecord> replay;       ///< kReplay (retargeted deliveries)
};

// ---------------------------------------------------------------------
// Actors

struct Lane {
  std::deque<Delivery> q;
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
};

struct WorkerState {
  bool crashed = false;
  bool lanes_open = true;
  /// Respawn generation: bumped every time the slot is rebuilt. The
  /// monitor compares it against the generation it extracted from to
  /// detect a source that died-and-respawned mid-migration.
  std::uint32_t gen = 0;
  std::deque<Ctrl> ctrl;
  std::vector<Lane> lanes;  ///< one per partition/producer
  /// key -> stored records, in arrival order.
  std::map<std::uint32_t, std::vector<PRecord>> store;
  std::set<std::uint32_t> forwarding;
  std::set<std::uint32_t> held;
  std::vector<PRecord> fwd_buf;
  std::vector<PRecord> held_buf;
  std::vector<std::uint64_t> consumed;  ///< per-partition watermark
  /// Shadow copy of the batch this worker extracted for an in-flight
  /// migration. A checkpoint taken after SelectExtract would otherwise
  /// snapshot a store *missing* the batch while its offsets already
  /// cover the batch's records ("checkpoint shadowing") — a crash then
  /// neither restores nor replays them. Folded (seq-deduped) into
  /// every checkpoint; cleared by the Abort re-merge or the next
  /// extract. A stale copy after a committed migration is harmless:
  /// restore filters by the current routing table, and re-merges
  /// seq-dedup.
  std::map<std::uint32_t, std::vector<PRecord>> pending_extract;
  bool has_ckpt = false;
  std::map<std::uint32_t, std::vector<PRecord>> ckpt_store;
  std::vector<std::uint64_t> ckpt_offsets;
};

/// Monitor phases. The *Wait phases are the supervised waits of
/// try_migrate (await_reply); kRouted and kAbsorb are the points where
/// the monitor acts without waiting.
enum class MonPhase : std::uint8_t {
  kIdle,
  kSelectWait,   ///< SelectExtract sent, awaiting the batch
  kHoldWait,     ///< Hold sent, awaiting the ack
  kRouted,       ///< routes published, TakeForward not yet sent
  kForwardWait,  ///< TakeForward sent, awaiting the forward buffer
  kAbsorb,       ///< forward buffer collected, Absorb send next
  kRelease,      ///< Absorb sent, Release send next (a crash can land
                 ///< between the two sends, exactly as in the engine)
};

const char* mon_phase_name(MonPhase p);

struct MonState {
  MonPhase phase = MonPhase::kIdle;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  Batch batch;
  bool have_batch = false;
  bool hold_acked = false;
  /// Set when the outstanding request died unprocessed in a crashed
  /// worker's queue (the model's "broken promise": in LiveEngine the
  /// respawn destroys the queue and the future throws future_error).
  bool reply_dead = false;
  std::vector<PRecord> forwarded;
  bool have_forwarded = false;
  /// Saved override state for rollback (route key -> prior override;
  /// UINT32_MAX = no override existed).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> prev_over;
  std::uint64_t deadline_ns = 0;
  /// Source generation at SelectExtract time: if the source slot was
  /// rebuilt before RoutePublish, the extracted batch belongs to a
  /// worker that no longer exists and the migration must abort (the
  /// fresh source's log replay restored the tuples; the abort re-merge
  /// seq-dedups against them).
  std::uint32_t src_gen = 0;
  std::uint32_t started = 0;
  std::uint32_t done = 0;
  std::uint32_t aborted = 0;
};

// ---------------------------------------------------------------------
// Events

enum class EvKind : std::uint8_t {
  kPush,        ///< producer `a` pushes its next record
  kData,        ///< worker `a` pops one delivery from lane `b`
  kCtrl,        ///< worker `a` handles its next control message
  kMonitor,     ///< the monitor advances the migration protocol
  kCheckpoint,  ///< the monitor broadcasts a checkpoint round
  kCrash,       ///< fault: worker `a` crashes
  kDelay,       ///< fault: the awaited reply stalls past the timeout
  kRespawn,     ///< the supervisor respawns crashed worker `a`
};

struct Event {
  EvKind kind = EvKind::kMonitor;
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  bool operator==(const Event& o) const {
    return kind == o.kind && a == o.a && b == o.b;
  }
};

std::string event_name(const Event& e);

// ---------------------------------------------------------------------
// Model configuration and state

struct ModelConfig {
  std::uint32_t workers = 3;
  std::uint32_t producers = 1;   ///< also the partition count
  std::uint32_t num_keys = 4;
  std::uint32_t num_records = 10;
  bool replay = true;            ///< offset replay on (StreamLog mode)
  std::uint32_t max_crashes = 1;
  std::uint32_t max_delays = 1;
  std::uint32_t max_checkpoints = 1;
  std::uint32_t max_migrations = 1;
  /// Virtual migration_timeout. Normal events advance time by 1 us, so
  /// with the 30 s default only an explicit kDelay event reaches it —
  /// timeouts are schedule choices, not accidents.
  std::uint64_t migration_timeout_ns = 30'000'000'000ull;
  std::uint64_t stream_seed = 1;
  // --- deliberately broken transitions (checker self-tests) ----------
  /// Publish the routing table without waiting for the HoldAck
  /// (violates generating rule 2; the checker must catch it).
  bool skip_hold_ack = false;
  /// Re-merge batches without sequence dedup (violates the "stored
  /// re-merge is always safe IF seq-deduped" abort rule).
  bool skip_absorb_dedup = false;
};

struct Violation {
  std::string invariant;  ///< stable name, e.g. "duplicate-emission"
  std::string detail;
};

struct State {
  std::vector<WorkerState> workers;
  MonState mon;
  std::vector<std::vector<LogEntry>> log;  ///< per partition
  std::vector<std::uint32_t> cursor;       ///< per-producer stream cursor
  /// Routing overrides for the modeled group (base route = key mod W).
  std::map<std::uint32_t, std::uint32_t> overrides;
  std::uint64_t now_ns = 0;
  /// Emitted match pairs (r.seq, s.seq); duplicates are violations.
  std::set<std::pair<std::uint32_t, std::uint32_t>> emitted;
  /// Exact drop ledger: global seqs of records whose deliveries died.
  std::set<std::uint32_t> lost;
  /// Replay deliveries parked for a crashed target's own respawn.
  std::vector<std::vector<PRecord>> backlog;
  std::uint32_t crashes = 0;
  std::uint32_t delays = 0;
  std::uint32_t checkpoints = 0;
  std::uint64_t replayed = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t retargeted = 0;
};

// ---------------------------------------------------------------------
// The state machine

class Model {
 public:
  explicit Model(const ModelConfig& cfg);

  const ModelConfig& config() const { return cfg_; }
  const std::vector<PRecord>& stream() const { return stream_; }

  /// The initial state (no record pushed, everything idle).
  State initial() const;

  /// Events applicable in `s`. `drain` restricts to progress-only
  /// events (no new faults, checkpoints, or migrations) so a bounded
  /// schedule prefix can always be run to quiescence deterministically.
  std::vector<Event> enabled(const State& s, bool drain = false) const;

  /// Apply one event in place. Returns a violation if an invariant
  /// breaks during the step (duplicate emission, store duplicate,
  /// watermark regression). The event must be enabled.
  std::optional<Violation> apply(State& s, const Event& e) const;

  /// Deterministic quiescence driver: repeatedly applies the first
  /// enabled drain-mode event until none remains, then runs the final
  /// invariants (completeness against the drop ledger, abort-epoch
  /// consistency, routing/store consistency). Also fails if the system
  /// wedges (non-quiescent state with no enabled event).
  std::optional<Violation> drain_and_check(State& s) const;

  /// True when two events commute from any state (conservative actor-
  /// footprint disjointness); used for sleep-set pruning.
  bool independent(const Event& x, const Event& y) const;

  /// Order-sensitive FNV-1a digest of the protocol-relevant state,
  /// for visited-state deduplication.
  std::uint64_t digest(const State& s) const;

  /// Expected match pairs of the full stream (every (r, s) with equal
  /// key and r.seq < s.seq).
  std::set<std::pair<std::uint32_t, std::uint32_t>> expected_pairs() const;

 private:
  std::uint32_t route(const State& s, std::uint32_t key) const;
  std::vector<std::uint64_t> capture_barrier(const State& s,
                                             std::uint32_t w) const;
  bool send_ctrl(State& s, std::uint32_t w, Ctrl c) const;
  void ledger_batch(State& s, const Batch& b) const;
  void ledger_records(State& s, const std::vector<PRecord>& recs) const;
  std::optional<Violation> emit(State& s, std::uint32_t r_seq,
                                std::uint32_t s_seq) const;
  std::optional<Violation> worker_process(State& s, std::uint32_t w,
                                          const PRecord& rec) const;
  std::optional<Violation> worker_merge(State& s, std::uint32_t w,
                                        std::uint32_t key,
                                        const PRecord& rec,
                                        const char* what) const;
  std::optional<Violation> worker_handle_ctrl(State& s,
                                              std::uint32_t w) const;
  std::optional<Violation> apply_crash(State& s, std::uint32_t w) const;
  std::optional<Violation> apply_respawn(State& s, std::uint32_t w) const;
  std::optional<Violation> apply_monitor(State& s) const;
  std::optional<Violation> structural_check(const State& s) const;
  std::optional<Violation> final_check(const State& s) const;
  bool quiescent(const State& s) const;

  ModelConfig cfg_;
  std::vector<PRecord> stream_;                   ///< global order
  std::vector<std::vector<std::uint32_t>> by_producer_;  ///< stream idx
};

}  // namespace fastjoin::protocol
