// FASTJOIN_PROTOCOL_FILE: see explorer.hpp.
#include "protocol/explorer.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/rng.hpp"

namespace fastjoin::protocol {

namespace {

std::uint64_t hash_schedule(const std::vector<Event>& path) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const auto& e : path) {
    h ^= (static_cast<std::uint64_t>(e.kind) << 40) ^
         (static_cast<std::uint64_t>(e.a) << 20) ^ e.b;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool contains(const std::vector<Event>& v, const Event& e) {
  return std::find(v.begin(), v.end(), e) != v.end();
}

}  // namespace

Explorer::Explorer(const Model& model, const ExplorerConfig& cfg)
    : model_(model), cfg_(cfg) {}

bool Explorer::budget_exhausted() const {
  return cfg_.max_schedules > 0 && stats_.schedules >= cfg_.max_schedules;
}

void Explorer::note_fault(const State& before, const Event& e) {
  if (e.kind != EvKind::kCrash && e.kind != EvKind::kDelay) return;
  const auto& mon = before.mon;
  std::string phase = mon_phase_name(mon.phase);
  std::string fault;
  if (e.kind == EvKind::kDelay) {
    fault = "delay";
  } else if (mon.phase != MonPhase::kIdle && e.a == mon.src) {
    fault = "crash-src";
  } else if (mon.phase != MonPhase::kIdle && e.a == mon.dst) {
    fault = "crash-dst";
  } else {
    fault = "crash";
  }
  ++stats_.coverage[phase + "/" + fault];
}

std::optional<Counterexample> Explorer::finish(
    const State& s, const std::vector<Event>& path,
    std::uint64_t walk_seed) {
  State t = s;
  auto v = model_.drain_and_check(t);
  if (schedule_hashes_.insert(hash_schedule(path)).second) {
    ++stats_.schedules;
  }
  if (v) {
    Counterexample ce;
    ce.violation = *v;
    ce.schedule = path;
    ce.walk_seed = walk_seed;
    if (cfg_.shrink) {
      ce.schedule = shrink(ce.schedule, ce.violation.invariant);
      // Re-derive the (possibly sharper) violation of the shrunk form.
      std::vector<Event> applied;
      if (auto sv = run_schedule(ce.schedule, &applied)) {
        ce.violation = *sv;
        ce.schedule = applied;
      }
    }
    return ce;
  }
  return std::nullopt;
}

std::optional<Counterexample> Explorer::directed_sweep() {
  struct Target {
    MonPhase phase;
    enum { kCrashSrc, kCrashDst, kCrashOther, kDelay } fault;
  };
  std::vector<Target> targets;
  const MonPhase phases[] = {MonPhase::kSelectWait, MonPhase::kHoldWait,
                             MonPhase::kRouted, MonPhase::kForwardWait,
                             MonPhase::kAbsorb, MonPhase::kRelease};
  for (MonPhase p : phases) {
    targets.push_back({p, Target::kCrashSrc});
    targets.push_back({p, Target::kCrashDst});
    targets.push_back({p, Target::kCrashOther});
    const bool wait_phase = p == MonPhase::kSelectWait ||
                            p == MonPhase::kHoldWait ||
                            p == MonPhase::kForwardWait;
    if (wait_phase) targets.push_back({p, Target::kDelay});
  }

  for (const auto& tgt : targets) {
    State s = model_.initial();
    std::vector<Event> path;
    bool reached = false;
    // Drive deterministically (first enabled non-fault event) until
    // the monitor sits in the target phase.
    for (std::uint32_t step = 0; step < 4096; ++step) {
      if (s.mon.phase == tgt.phase) {
        reached = true;
        break;
      }
      auto evs = model_.enabled(s, /*drain=*/false);
      const Event* pick = nullptr;
      for (const auto& e : evs) {
        if (e.kind == EvKind::kCrash || e.kind == EvKind::kDelay ||
            e.kind == EvKind::kCheckpoint) {
          continue;
        }
        pick = &e;
        break;
      }
      if (pick == nullptr) break;
      path.push_back(*pick);
      ++stats_.events;
      if (auto v = model_.apply(s, *pick)) {
        Counterexample ce{*v, path, 0};
        return ce;
      }
    }
    if (!reached) continue;  // e.g. phase needs a reply timing we skip

    Event fault{EvKind::kCrash, 0, 0};
    switch (tgt.fault) {
      case Target::kCrashSrc: fault.a = s.mon.src; break;
      case Target::kCrashDst: fault.a = s.mon.dst; break;
      case Target::kCrashOther: {
        std::uint32_t other = 0;
        for (std::uint32_t w = 0; w < model_.config().workers; ++w) {
          if (w != s.mon.src && w != s.mon.dst) other = w;
        }
        fault.a = other;
        break;
      }
      case Target::kDelay: fault = {EvKind::kDelay, 0, 0}; break;
    }
    auto evs = model_.enabled(s, /*drain=*/false);
    if (!contains(evs, fault)) continue;  // budget or state disallows
    note_fault(s, fault);
    path.push_back(fault);
    ++stats_.events;
    auto v = model_.apply(s, fault);
    if (!v) {
      if (auto ce = finish(s, path, 0)) return ce;
    } else {
      return Counterexample{*v, path, 0};
    }
  }
  return std::nullopt;
}

std::optional<Counterexample> Explorer::dfs() {
  State s = model_.initial();
  std::vector<Event> path;
  visited_.clear();
  return dfs_rec(s, {}, cfg_.max_depth, path);
}

std::optional<Counterexample> Explorer::dfs_rec(
    const State& s, const std::vector<Event>& sleep, std::uint32_t depth,
    std::vector<Event>& path) {
  if (budget_exhausted()) return std::nullopt;
  auto enabled = model_.enabled(s, /*drain=*/false);
  if (depth == 0 || enabled.empty()) {
    return finish(s, path, 0);
  }
  std::vector<Event> explored;
  for (const auto& e : enabled) {
    if (budget_exhausted()) return std::nullopt;
    if (contains(sleep, e)) {
      ++stats_.sleep_skips;
      continue;
    }
    State t = s;
    note_fault(s, e);
    ++stats_.events;
    auto v = model_.apply(t, e);
    path.push_back(e);
    if (v) {
      Counterexample ce{*v, path, 0};
      if (cfg_.shrink) {
        ce.schedule = shrink(ce.schedule, ce.violation.invariant);
        std::vector<Event> applied;
        if (auto sv = run_schedule(ce.schedule, &applied)) {
          ce.violation = *sv;
          ce.schedule = applied;
        }
      }
      path.pop_back();
      return ce;
    }
    const std::uint64_t dig = model_.digest(t);
    auto it = visited_.find(dig);
    if (it != visited_.end() && it->second >= depth) {
      ++stats_.dedup_skips;
      path.pop_back();
      explored.push_back(e);
      continue;
    }
    if (visited_.size() < 4'000'000) visited_[dig] = depth;
    std::vector<Event> next_sleep;
    for (const auto& x : sleep) {
      if (model_.independent(x, e)) next_sleep.push_back(x);
    }
    for (const auto& x : explored) {
      if (model_.independent(x, e)) next_sleep.push_back(x);
    }
    if (auto ce = dfs_rec(t, next_sleep, depth - 1, path)) {
      path.pop_back();
      return ce;
    }
    path.pop_back();
    explored.push_back(e);
  }
  return std::nullopt;
}

std::optional<Counterexample> Explorer::random_walks(
    std::uint64_t walks) {
  for (std::uint64_t i = 0; i < walks; ++i) {
    const std::uint64_t seed = cfg_.seed + i;
    Xoshiro256 rng{seed};
    State s = model_.initial();
    std::vector<Event> path;
    std::optional<Violation> v;
    for (std::uint32_t step = 0; step < cfg_.walk_steps; ++step) {
      auto evs = model_.enabled(s, /*drain=*/false);
      if (evs.empty()) break;
      const Event e = evs[rng.next_below(evs.size())];
      note_fault(s, e);
      path.push_back(e);
      ++stats_.events;
      v = model_.apply(s, e);
      if (v) break;
    }
    if (v) {
      Counterexample ce{*v, path, seed};
      if (cfg_.shrink) {
        ce.schedule = shrink(ce.schedule, ce.violation.invariant);
        std::vector<Event> applied;
        if (auto sv = run_schedule(ce.schedule, &applied)) {
          ce.violation = *sv;
          ce.schedule = applied;
        }
      }
      return ce;
    }
    if (auto ce = finish(s, path, seed)) return ce;
  }
  return std::nullopt;
}

std::optional<Violation> Explorer::run_schedule(
    const std::vector<Event>& sched, std::vector<Event>* applied,
    State* final_state) {
  State s = model_.initial();
  for (const auto& e : sched) {
    auto evs = model_.enabled(s, /*drain=*/false);
    if (!contains(evs, e)) continue;  // shrink tolerance
    if (applied) applied->push_back(e);
    ++stats_.events;
    if (auto v = model_.apply(s, e)) {
      if (final_state) *final_state = std::move(s);
      return v;
    }
  }
  auto v = model_.drain_and_check(s);
  if (final_state) *final_state = std::move(s);
  return v;
}

std::vector<Event> Explorer::shrink(const std::vector<Event>& sched,
                                    const std::string& invariant) {
  std::vector<Event> best = sched;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < best.size(); ++i) {
      std::vector<Event> cand = best;
      cand.erase(cand.begin() + static_cast<std::ptrdiff_t>(i));
      auto v = run_schedule(cand);
      if (v && v->invariant == invariant) {
        best = std::move(cand);
        changed = true;
        break;
      }
    }
  }
  return best;
}

std::string format_trace(const Model& model, const Counterexample& ce) {
  const auto& cfg = model.config();
  std::ostringstream os;
  os << "# fastjoin protocol_check counterexample\n";
  os << "config workers=" << cfg.workers << " producers=" << cfg.producers
     << " num_keys=" << cfg.num_keys << " num_records=" << cfg.num_records
     << " replay=" << (cfg.replay ? 1 : 0)
     << " max_crashes=" << cfg.max_crashes
     << " max_delays=" << cfg.max_delays
     << " max_checkpoints=" << cfg.max_checkpoints
     << " max_migrations=" << cfg.max_migrations
     << " stream_seed=" << cfg.stream_seed
     << " skip_hold_ack=" << (cfg.skip_hold_ack ? 1 : 0)
     << " skip_absorb_dedup=" << (cfg.skip_absorb_dedup ? 1 : 0) << "\n";
  os << "invariant " << ce.violation.invariant << "\n";
  os << "detail " << ce.violation.detail << "\n";
  os << "walk_seed " << ce.walk_seed << "\n";
  for (const auto& e : ce.schedule) {
    os << "event " << static_cast<int>(e.kind) << " " << e.a << " " << e.b
       << "  # " << event_name(e) << "\n";
  }
  return os.str();
}

bool parse_trace(const std::string& text, ModelConfig* cfg,
                 std::vector<Event>* schedule, std::string* invariant) {
  std::istringstream is(text);
  std::string line;
  bool have_config = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "config") {
      std::string kv;
      while (ls >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string k = kv.substr(0, eq);
        const std::uint64_t v = std::strtoull(kv.c_str() + eq + 1,
                                              nullptr, 10);
        if (k == "workers") cfg->workers = static_cast<std::uint32_t>(v);
        else if (k == "producers") cfg->producers = static_cast<std::uint32_t>(v);
        else if (k == "num_keys") cfg->num_keys = static_cast<std::uint32_t>(v);
        else if (k == "num_records") cfg->num_records = static_cast<std::uint32_t>(v);
        else if (k == "replay") cfg->replay = v != 0;
        else if (k == "max_crashes") cfg->max_crashes = static_cast<std::uint32_t>(v);
        else if (k == "max_delays") cfg->max_delays = static_cast<std::uint32_t>(v);
        else if (k == "max_checkpoints") cfg->max_checkpoints = static_cast<std::uint32_t>(v);
        else if (k == "max_migrations") cfg->max_migrations = static_cast<std::uint32_t>(v);
        else if (k == "stream_seed") cfg->stream_seed = v;
        else if (k == "skip_hold_ack") cfg->skip_hold_ack = v != 0;
        else if (k == "skip_absorb_dedup") cfg->skip_absorb_dedup = v != 0;
      }
      have_config = true;
    } else if (tag == "invariant") {
      if (invariant) ls >> *invariant;
    } else if (tag == "event") {
      int kind = 0;
      std::uint32_t a = 0, b = 0;
      if (!(ls >> kind >> a >> b)) return false;
      if (kind < 0 || kind > static_cast<int>(EvKind::kRespawn)) {
        return false;
      }
      schedule->push_back({static_cast<EvKind>(kind), a, b});
    }
  }
  return have_config;
}

}  // namespace fastjoin::protocol
