// Shared telemetry base: the common timestamp epoch and dense thread
// identity used by metrics shards, trace tids, and flight-recorder
// rings. See telemetry.hpp for the subsystem overview.
#pragma once

#include <chrono>
#include <cstdint>

namespace fastjoin::telemetry {

/// Nanoseconds on the steady clock since the first call in this
/// process. All telemetry timestamps (metric samples, span times,
/// flight-recorder events) share this epoch so artifacts line up.
inline std::uint64_t now_ns() {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

#ifndef FASTJOIN_NO_TELEMETRY

/// Small dense id for the calling thread (0, 1, 2, ... in first-use
/// order). Shards counters and keys flight-recorder rings / trace tids.
std::uint32_t thread_index();

/// Human label attached to the calling thread in flight-recorder dumps
/// and traces (e.g. "monitor", "worker-R3"). Keeps the first
/// kLabelBytes-1 characters.
void set_thread_label(const char* label);

#else  // FASTJOIN_NO_TELEMETRY

inline std::uint32_t thread_index() { return 0; }
inline void set_thread_label(const char*) {}

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace fastjoin::telemetry
