#ifndef FASTJOIN_NO_TELEMETRY

#include "telemetry/trace.hpp"

#include <fstream>
#include <ostream>

namespace fastjoin::telemetry {

std::uint64_t TraceLog::begin(std::string_view name,
                              std::string_view cat) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return kInvalid;
  }
  TraceSpan s;
  s.name.assign(name);
  s.cat.assign(cat);
  s.start_ns = now_ns();
  s.tid = thread_index();
  spans_.push_back(std::move(s));
  return spans_.size() - 1;
}

void TraceLog::end(std::uint64_t handle) {
  MutexLock lock(mu_);
  if (handle >= spans_.size()) return;
  TraceSpan& s = spans_[handle];
  if (!s.open) return;
  s.open = false;
  s.dur_ns = now_ns() - s.start_ns;
}

void TraceLog::arg(std::uint64_t handle, std::string_view key,
                   std::int64_t value) {
  MutexLock lock(mu_);
  if (handle >= spans_.size()) return;
  spans_[handle].args.push_back({std::string(key), value});
}

void TraceLog::instant(std::string_view name, std::string_view cat) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  TraceSpan s;
  s.name.assign(name);
  s.cat.assign(cat);
  s.start_ns = now_ns();
  s.tid = thread_index();
  s.instant = true;
  s.open = false;
  spans_.push_back(std::move(s));
}

std::size_t TraceLog::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

std::uint64_t TraceLog::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void TraceLog::clear() {
  MutexLock lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

namespace {
void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}
}  // namespace

void TraceLog::write_chrome_trace(std::ostream& os) const {
  MutexLock lock(mu_);
  const std::uint64_t now = now_ns();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const auto& s : spans_) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"";
    json_escape(os, s.name);
    os << "\", \"cat\": \"";
    json_escape(os, s.cat);
    os << "\", \"ph\": \"" << (s.instant ? 'i' : 'X')
       << "\", \"pid\": 1, \"tid\": " << s.tid
       << ", \"ts\": " << static_cast<double>(s.start_ns) / 1e3;
    if (s.instant) {
      os << ", \"s\": \"t\"";
    } else {
      const std::uint64_t dur =
          s.open ? now - s.start_ns : s.dur_ns;
      os << ", \"dur\": " << static_cast<double>(dur) / 1e3;
    }
    if (!s.args.empty()) {
      os << ", \"args\": {";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (i) os << ", ";
        os << '"';
        json_escape(os, s.args[i].key);
        os << "\": " << s.args[i].value;
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool TraceLog::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

TraceLog& TraceLog::global() {
  static TraceLog* t = new TraceLog();  // leaked: outlives worker threads
  return *t;
}

}  // namespace fastjoin::telemetry

#endif  // FASTJOIN_NO_TELEMETRY
