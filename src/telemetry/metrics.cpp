#ifndef FASTJOIN_NO_TELEMETRY

#include "telemetry/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace fastjoin::telemetry {

namespace {
std::atomic<std::uint32_t> g_next_thread_index{0};
}  // namespace

std::uint32_t thread_index() {
  thread_local const std::uint32_t idx =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

ConcurrentHistogram::ConcurrentHistogram(const HistogramParams& params)
    : params_(params), n_buckets_(params.bucket_count()) {
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(n_buckets_);
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void ConcurrentHistogram::record(double value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[params_.index(value)].fetch_add(count,
                                           std::memory_order_relaxed);
  const std::uint64_t prev =
      total_.fetch_add(count, std::memory_order_relaxed);
  {
    double cur = sum_.load(std::memory_order_relaxed);
    const double d = value * static_cast<double>(count);
    while (!sum_.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
    }
  }
  if (prev == 0) {
    // First recorder seeds both extremes; racers below converge via
    // the min/max CAS loops, so the worst case is one sample's worth
    // of pessimism in the seed.
    min_seen_.store(value, std::memory_order_relaxed);
    max_seen_.store(value, std::memory_order_relaxed);
  }
  double mn = min_seen_.load(std::memory_order_relaxed);
  while (value < mn && !min_seen_.compare_exchange_weak(
                           mn, value, std::memory_order_relaxed)) {
  }
  double mx = max_seen_.load(std::memory_order_relaxed);
  while (value > mx && !max_seen_.compare_exchange_weak(
                           mx, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot ConcurrentHistogram::snapshot() const {
  std::vector<std::uint64_t> buckets(n_buckets_);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += buckets[i];
  }
  // Summing the buckets (rather than reading total_) keeps the
  // snapshot internally consistent: percentile math divides by the
  // bucket mass it iterates.
  return HistogramSnapshot(params_, std::move(buckets), total,
                           sum_.load(std::memory_order_relaxed),
                           min_seen_.load(std::memory_order_relaxed),
                           max_seen_.load(std::memory_order_relaxed));
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"at_ns\": " << at_ns << ", \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? ", " : "") << '"' << counters[i].name
       << "\": " << static_cast<std::uint64_t>(counters[i].value);
  }
  os << "}, \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? ", " : "") << '"' << gauges[i].name
       << "\": " << gauges[i].value;
  }
  os << "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i].snapshot;
    os << (i ? ", " : "") << '"' << histograms[i].name
       << "\": {\"count\": " << h.count() << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.value_at_percentile(50)
       << ", \"p99\": " << h.value_at_percentile(99)
       << ", \"p999\": " << h.value_at_percentile(99.9) << "}";
  }
  os << "}}";
  return os.str();
}

Counter& MetricRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  for (auto& e : counters_) {
    if (e->name == name) return e->metric;
  }
  counters_.push_back(
      std::make_unique<Entry<Counter>>(std::string(name)));
  return counters_.back()->metric;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  for (auto& e : gauges_) {
    if (e->name == name) return e->metric;
  }
  gauges_.push_back(std::make_unique<Entry<Gauge>>(std::string(name)));
  return gauges_.back()->metric;
}

ConcurrentHistogram& MetricRegistry::histogram(
    std::string_view name, const HistogramParams& params) {
  MutexLock lock(mu_);
  for (auto& e : histograms_) {
    if (e->name == name) return e->metric;
  }
  histograms_.push_back(std::make_unique<Entry<ConcurrentHistogram>>(
      std::string(name), params));
  return histograms_.back()->metric;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.at_ns = now_ns();
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_) {
    snap.counters.push_back(
        {e->name, static_cast<double>(e->metric.value())});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& e : gauges_) {
    snap.gauges.push_back({e->name, e->metric.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_) {
    snap.histograms.push_back({e->name, e->metric.snapshot()});
  }
  return snap;
}

void MetricRegistry::sample(std::uint64_t at_ns) {
  MutexLock lock(mu_);
  const auto t = static_cast<SimTime>(at_ns);
  for (auto& e : counters_) {
    if (e->series.size() >= kMaxSeriesPoints) continue;
    e->series.record(t, static_cast<double>(e->metric.value()));
  }
  for (auto& e : gauges_) {
    if (e->series.size() >= kMaxSeriesPoints) continue;
    e->series.record(t, e->metric.value());
  }
  for (auto& e : histograms_) {
    if (e->series.size() >= kMaxSeriesPoints) continue;
    // One representative point per sample: the p99 so far. Full
    // distributions come from snapshot(), not the series.
    e->series.record(t, e->metric.snapshot().value_at_percentile(99));
  }
}

const TimeSeries* MetricRegistry::series(std::string_view name) const {
  MutexLock lock(mu_);
  for (const auto& e : counters_) {
    if (e->name == name) return &e->series;
  }
  for (const auto& e : gauges_) {
    if (e->name == name) return &e->series;
  }
  for (const auto& e : histograms_) {
    if (e->name == name) return &e->series;
  }
  return nullptr;
}

void MetricRegistry::reset_series() {
  MutexLock lock(mu_);
  for (auto& e : counters_) e->series = TimeSeries{e->name};
  for (auto& e : gauges_) e->series = TimeSeries{e->name};
  for (auto& e : histograms_) e->series = TimeSeries{e->name};
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* r = new MetricRegistry();  // leaked: outlives
  return *r;                                        // worker threads
}

}  // namespace fastjoin::telemetry

#endif  // FASTJOIN_NO_TELEMETRY
