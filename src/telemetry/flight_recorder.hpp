// FlightRecorder: per-thread fixed-size ring buffers of recent
// data/control-plane events, dumped on crash, migration abort, or test
// failure.
//
// Recording is a handful of relaxed atomic stores into the calling
// thread's own ring — wait-free, no branches on shared state, cheap
// enough for the data plane's per-batch (not per-record) granularity.
// Rings of exited threads are retained (a crashed worker's last events
// are exactly what a dump is for) up to kMaxRings, after which the
// least-recently-retired ring is recycled.
//
// The dump is a racy-but-safe read: every field is a relaxed atomic,
// so a dump taken while threads are still recording sees a torn but
// well-defined picture — fine for diagnostics, clean under TSan.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace fastjoin::telemetry {

/// Event vocabulary of the live runtime's two planes plus ingest.
/// Codes are stable small ints so dumps from different builds line up.
enum class FlightEvent : std::uint16_t {
  kNone = 0,
  // --- data plane ---------------------------------------------------
  kBatchPushed,      ///< a=records in batch, b=delivered deliveries
  kLaneBlocked,      ///< backpressure wait began; a=side/worker, b=lane
  kLaneClosedDrop,   ///< push hit a closed/crashed lane; a=side/worker
  // --- control plane ------------------------------------------------
  kCtrlSelect,       ///< a=side/worker
  kCtrlHold,         ///< a=side/worker, b=keys held
  kCtrlHoldAck,      ///< a=side/worker
  kCtrlRoutePublish, ///< a=side/group, b=keys rerouted
  kCtrlTakeForward,  ///< a=side/worker, b=records forwarded
  kCtrlAbsorb,       ///< a=side/worker, b=tuples in batch
  kCtrlRelease,      ///< a=side/worker, b=records released
  kCtrlAbort,        ///< a=side/worker, b=replay_pending
  kCtrlCheckpoint,   ///< a=side/worker, b=tuples snapshotted
  kCtrlWindow,       ///< window advance; a=side/worker
  // --- fault tolerance ----------------------------------------------
  kCrash,            ///< a=side/worker
  kRespawn,          ///< a=side/worker, b=tuples restored
  kReplay,           ///< a=side/worker, b=records replayed
  kMigrationStart,   ///< a=side/src, b=side/dst
  kMigrationDone,    ///< a=side/src, b=tuples moved
  kMigrationAbort,   ///< a=side/src, b=side/dst
  // --- ingest -------------------------------------------------------
  kIngestAppend,     ///< a=partition, b=records appended
  kIngestBackpressure, ///< a=partition
  kIngestTruncate,   ///< a=partition, b=records retired
  kIngestReplayRead, ///< a=partition, b=records read
  // --- serving front door --------------------------------------------
  kServeReject,      ///< a=reject reason (server::RejectReason),
                     ///< b=retry_after_ms
  kServeShed,        ///< global-budget shed state flip; a=1 entering
                     ///< shed, 0 leaving, b=inflight bytes at the flip
};

const char* flight_event_name(FlightEvent ev);

/// Pack a (side, instance) pair into one event argument.
inline std::uint64_t flight_id(int side, std::uint64_t instance) {
  return (static_cast<std::uint64_t>(side) << 32) | instance;
}

#ifndef FASTJOIN_NO_TELEMETRY

/// Record one event into the calling thread's ring. Wait-free.
void flight_record(FlightEvent ev, std::uint64_t a = 0,
                   std::uint64_t b = 0);

/// Merge every thread's ring (live and retired) into `os`, oldest
/// event first per thread, with thread labels and ns timestamps.
void flight_dump(std::ostream& os);

/// flight_dump to a file; returns false when the file cannot be
/// opened. The dump is complete (not appended).
bool flight_dump(const std::string& path);

/// Total events ever recorded by this process (post-wrap events still
/// count; used by tests and the overhead bench).
std::uint64_t flight_recorded_total();

/// Events kept per thread ring.
inline constexpr std::size_t kFlightRingCapacity = 1024;
/// Retained rings (live + retired) before recycling.
inline constexpr std::size_t kFlightMaxRings = 128;

#else  // FASTJOIN_NO_TELEMETRY

inline void flight_record(FlightEvent, std::uint64_t = 0,
                          std::uint64_t = 0) {}
void flight_dump(std::ostream& os);  // prints a "compiled out" note
inline bool flight_dump(const std::string&) { return false; }
inline std::uint64_t flight_recorded_total() { return 0; }
inline constexpr std::size_t kFlightRingCapacity = 0;
inline constexpr std::size_t kFlightMaxRings = 0;

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace fastjoin::telemetry
