// MetricRegistry: named lock-free counters, gauges, and log2-bucketed
// concurrent histograms with wait-free hot-path updates.
//
// Shape:
//  * Counter — kShards cache-line-padded atomics; add() is one relaxed
//    fetch_add on the caller's thread shard (wait-free, no sharing
//    between threads that stay on their shard). value() sums shards.
//  * Gauge — a single padded atomic double (set/add/value).
//  * ConcurrentHistogram — atomic buckets over the same HistogramParams
//    geometry as common/histogram; snapshot() materializes a
//    HistogramSnapshot so merge/percentile math is shared with
//    LogHistogram (one implementation in the whole codebase).
//  * MetricRegistry — owns metrics by name (stable addresses; call
//    sites resolve once and cache the reference), snapshots them, and
//    on sample() appends every metric's current value to a per-metric
//    TimeSeries (called periodically from the engine monitor thread).
//
// With FASTJOIN_NO_TELEMETRY defined every type below becomes an
// inline no-op of identical shape.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/timeseries.hpp"

#ifndef FASTJOIN_NO_TELEMETRY

#include <atomic>
#include <deque>
#include <memory>

#include "common/mutex.hpp"
#include "common/thread_safety.hpp"
#include "telemetry/clock.hpp"

namespace fastjoin::telemetry {

// FASTJOIN_HOT_PATH_BEGIN
// Counter / Gauge / ConcurrentHistogram updates run on the per-tuple
// data plane: fastjoin-lint forbids mutexes, condition variables, and
// allocation-in-loop in this region. (MetricRegistry, below the END
// marker, is registration/sampling-rate code and may lock.)

/// Wait-free sharded counter. Threads hash to shards by their dense
/// telemetry thread index, so steady-state updates never contend.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;  // power of two

  void add(std::uint64_t n = 1) {
    shards_[thread_index() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> v_{0.0};
};

/// Log2-bucketed histogram safe for concurrent recorders. record() is
/// lock-free: relaxed fetch_adds on the bucket/total/sum plus a CAS
/// loop for min/max (contended only while the extremes are moving).
class ConcurrentHistogram {
 public:
  explicit ConcurrentHistogram(const HistogramParams& params = {});

  void record(double value, std::uint64_t count = 1);

  std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Materialize the current state. Counts are read relaxed: a
  /// snapshot taken while recorders run is approximately consistent,
  /// exactly consistent once they are quiesced.
  HistogramSnapshot snapshot() const;

  const HistogramParams& params() const { return params_; }

 private:
  HistogramParams params_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::size_t n_buckets_;
  alignas(64) std::atomic<std::uint64_t> total_{0};
  alignas(64) std::atomic<double> sum_{0.0};
  std::atomic<double> min_seen_{0.0};
  std::atomic<double> max_seen_{0.0};
};

// FASTJOIN_HOT_PATH_END

/// One named metric's value at snapshot time.
struct MetricValue {
  std::string name;
  double value = 0.0;
};
struct HistogramValue {
  std::string name;
  HistogramSnapshot snapshot;
};

/// Point-in-time view of a whole registry.
struct MetricsSnapshot {
  std::uint64_t at_ns = 0;
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Render as a JSON object (counters/gauges flat, histograms with
  /// count/mean/p50/p99/p999).
  std::string to_json() const;
};

class MetricRegistry {
 public:
  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime; resolve once at setup, then update lock-free.
  Counter& counter(std::string_view name) EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) EXCLUDES(mu_);
  ConcurrentHistogram& histogram(std::string_view name,
                                 const HistogramParams& params = {})
      EXCLUDES(mu_);

  MetricsSnapshot snapshot() const EXCLUDES(mu_);

  /// Append every metric's current value to its TimeSeries at time
  /// `at_ns` (defaults to now). Intended to be driven by one
  /// low-frequency thread (the engine monitor); series longer than
  /// kMaxSeriesPoints stop growing so long-lived processes stay
  /// bounded.
  void sample(std::uint64_t at_ns = now_ns()) EXCLUDES(mu_);

  /// Recorded series for a metric (nullptr when never sampled).
  const TimeSeries* series(std::string_view name) const EXCLUDES(mu_);

  /// Drop all recorded series points (metric values are untouched).
  /// Tests and benches use this to isolate runs on the global registry.
  void reset_series() EXCLUDES(mu_);

  static constexpr std::size_t kMaxSeriesPoints = 1 << 16;

  /// Process-wide registry: layers as far apart as ingest and the
  /// bench harness meet here without threading a handle through every
  /// constructor.
  static MetricRegistry& global();

 private:
  // Metrics hold atomics (non-movable), so entries live behind
  // unique_ptr: stable addresses across registration, movable nodes.
  template <typename T>
  struct Entry {
    template <typename... Args>
    explicit Entry(std::string n, Args&&... args)
        : name(std::move(n)),
          metric(std::forward<Args>(args)...),
          series(name) {}
    std::string name;
    T metric;
    TimeSeries series;
  };
  mutable Mutex mu_;  // registration + sampling; never hot-path
  std::deque<std::unique_ptr<Entry<Counter>>> counters_ GUARDED_BY(mu_);
  std::deque<std::unique_ptr<Entry<Gauge>>> gauges_ GUARDED_BY(mu_);
  std::deque<std::unique_ptr<Entry<ConcurrentHistogram>>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace fastjoin::telemetry

#else  // FASTJOIN_NO_TELEMETRY ------------------------------------------

namespace fastjoin::telemetry {

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
};

class ConcurrentHistogram {
 public:
  explicit ConcurrentHistogram(const HistogramParams& = {}) {}
  void record(double, std::uint64_t = 1) {}
  std::uint64_t count() const { return 0; }
  HistogramSnapshot snapshot() const { return HistogramSnapshot{}; }
  const HistogramParams& params() const {
    static const HistogramParams p{};
    return p;
  }
};

struct MetricValue {
  std::string name;
  double value = 0.0;
};
struct HistogramValue {
  std::string name;
  HistogramSnapshot snapshot;
};
struct MetricsSnapshot {
  std::uint64_t at_ns = 0;
  std::vector<MetricValue> counters;
  std::vector<MetricValue> gauges;
  std::vector<HistogramValue> histograms;
  std::string to_json() const { return "{}"; }
};

class MetricRegistry {
 public:
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  ConcurrentHistogram& histogram(std::string_view,
                                 const HistogramParams& = {}) {
    return histogram_;
  }
  MetricsSnapshot snapshot() const { return {}; }
  void sample(std::uint64_t = 0) {}
  const TimeSeries* series(std::string_view) const { return nullptr; }
  void reset_series() {}
  static constexpr std::size_t kMaxSeriesPoints = 0;
  static MetricRegistry& global() {
    static MetricRegistry r;
    return r;
  }

 private:
  Counter counter_;
  Gauge gauge_;
  ConcurrentHistogram histogram_;
};

}  // namespace fastjoin::telemetry

#endif  // FASTJOIN_NO_TELEMETRY
