// Telemetry: always-on, overhead-bounded observability for the live
// runtime (and the simulated engine's exports).
//
// Three cooperating pieces, all reachable from this umbrella header:
//  * MetricRegistry (metrics.hpp) — named, sharded, cache-line-padded
//    lock-free counters/gauges and log2-bucketed concurrent histograms.
//    Hot-path updates are wait-free (one relaxed fetch_add on a
//    per-thread shard); the monitor thread periodically snapshots the
//    registry into per-metric TimeSeries.
//  * TraceLog (trace.hpp) — span-based tracing exported as
//    chrome://tracing / Perfetto-compatible JSON. Used for the
//    migration protocol (one span per phase), checkpoints, respawns,
//    and replay.
//  * FlightRecorder (flight_recorder.hpp) — a per-thread fixed-size
//    ring buffer of recent data/control-plane events, dumped on crash,
//    migration abort, or test failure so chaos regressions are
//    diagnosable from the artifact alone.
//
// Compile-time kill switch: building with -DFASTJOIN_NO_TELEMETRY
// (CMake option of the same name) replaces every API below with inline
// no-op stubs of identical shape, so call sites compile unchanged and
// the instrumentation costs literally nothing. bench/telemetry_overhead
// proves the *enabled* cost is <= 3% against that build.
#pragma once

#include "telemetry/clock.hpp"           // IWYU pragma: export
#include "telemetry/flight_recorder.hpp" // IWYU pragma: export
#include "telemetry/metrics.hpp"         // IWYU pragma: export
#include "telemetry/trace.hpp"           // IWYU pragma: export
