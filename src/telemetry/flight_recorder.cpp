#include "telemetry/flight_recorder.hpp"

#include <ostream>

#ifndef FASTJOIN_NO_TELEMETRY
#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_safety.hpp"
#include "telemetry/clock.hpp"
#endif

namespace fastjoin::telemetry {

const char* flight_event_name(FlightEvent ev) {
  switch (ev) {
    case FlightEvent::kNone: return "none";
    case FlightEvent::kBatchPushed: return "batch_pushed";
    case FlightEvent::kLaneBlocked: return "lane_blocked";
    case FlightEvent::kLaneClosedDrop: return "lane_closed_drop";
    case FlightEvent::kCtrlSelect: return "ctrl_select";
    case FlightEvent::kCtrlHold: return "ctrl_hold";
    case FlightEvent::kCtrlHoldAck: return "ctrl_hold_ack";
    case FlightEvent::kCtrlRoutePublish: return "ctrl_route_publish";
    case FlightEvent::kCtrlTakeForward: return "ctrl_take_forward";
    case FlightEvent::kCtrlAbsorb: return "ctrl_absorb";
    case FlightEvent::kCtrlRelease: return "ctrl_release";
    case FlightEvent::kCtrlAbort: return "ctrl_abort";
    case FlightEvent::kCtrlCheckpoint: return "ctrl_checkpoint";
    case FlightEvent::kCtrlWindow: return "ctrl_window";
    case FlightEvent::kCrash: return "crash";
    case FlightEvent::kRespawn: return "respawn";
    case FlightEvent::kReplay: return "replay";
    case FlightEvent::kMigrationStart: return "migration_start";
    case FlightEvent::kMigrationDone: return "migration_done";
    case FlightEvent::kMigrationAbort: return "migration_abort";
    case FlightEvent::kIngestAppend: return "ingest_append";
    case FlightEvent::kIngestBackpressure: return "ingest_backpressure";
    case FlightEvent::kIngestTruncate: return "ingest_truncate";
    case FlightEvent::kIngestReplayRead: return "ingest_replay_read";
    case FlightEvent::kServeReject: return "serve_reject";
    case FlightEvent::kServeShed: return "serve_shed";
  }
  return "?";
}

#ifndef FASTJOIN_NO_TELEMETRY

namespace {

constexpr std::size_t kLabelBytes = 32;

// FASTJOIN_HOT_PATH_BEGIN
// Slot / ThreadRing are written from the data plane (flight_record
// below): all-atomic fields, no locks, no allocation.

/// One slot in a ring. All-atomic so the dumper's cross-thread reads
/// are TSan-clean; relaxed everywhere because torn events are
/// acceptable in a diagnostic artifact.
struct Slot {
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<std::uint16_t> code{0};
};

struct ThreadRing {
  Slot slots[kFlightRingCapacity];
  // The whole ring is single-writer (the owning thread); the dumper
  // reads cross-thread only at crash time, so these atomics are never
  // contended and padding each would bloat every per-thread ring.
  std::atomic<std::uint64_t> head{0};      ///< events ever recorded  // fastjoin-lint: allow(atomic-padding) single-writer ring
  std::atomic<bool> retired{false};
  std::atomic<std::uint64_t> retired_at{0};  // fastjoin-lint: allow(atomic-padding) single-writer ring
  std::uint32_t tid = 0;
  char label[kLabelBytes] = {};

  void reset_for(std::uint32_t new_tid) {
    head.store(0, std::memory_order_relaxed);
    retired.store(false, std::memory_order_relaxed);
    tid = new_tid;
    label[0] = '\0';
  }
};

// FASTJOIN_HOT_PATH_END

struct Recorder {
  Mutex mu;  // ring registration/recycling only
  std::vector<std::unique_ptr<ThreadRing>> rings GUARDED_BY(mu);
  std::atomic<std::uint64_t> total{0};

  ThreadRing* acquire(std::uint32_t tid) EXCLUDES(mu) {
    MutexLock lock(mu);
    if (rings.size() >= kFlightMaxRings) {
      // Recycle the least-recently-retired ring; a live set this large
      // means we are churning workers, and the oldest corpse is the
      // least diagnostic.
      ThreadRing* oldest = nullptr;
      for (auto& r : rings) {
        if (!r->retired.load(std::memory_order_relaxed)) continue;
        if (oldest == nullptr ||
            r->retired_at.load(std::memory_order_relaxed) <
                oldest->retired_at.load(std::memory_order_relaxed)) {
          oldest = r.get();
        }
      }
      if (oldest != nullptr) {
        oldest->reset_for(tid);
        return oldest;
      }
    }
    rings.push_back(std::make_unique<ThreadRing>());
    rings.back()->tid = tid;
    return rings.back().get();
  }
};

Recorder& recorder() {
  static Recorder* r = new Recorder();  // leaked: threads outlive main
  return *r;
}

/// Retires the thread's ring at thread exit so it becomes recyclable
/// while its contents stay dumpable.
struct TlsSlot {
  ThreadRing* ring = nullptr;
  ~TlsSlot() {
    if (ring != nullptr) {
      ring->retired_at.store(now_ns(), std::memory_order_relaxed);
      ring->retired.store(true, std::memory_order_release);
    }
  }
};

ThreadRing& thread_ring() {
  thread_local TlsSlot tls;
  if (tls.ring == nullptr) {
    tls.ring = recorder().acquire(thread_index());
  }
  return *tls.ring;
}

}  // namespace

void set_thread_label(const char* label) {
  ThreadRing& ring = thread_ring();
  std::strncpy(ring.label, label, kLabelBytes - 1);
  ring.label[kLabelBytes - 1] = '\0';
}

// FASTJOIN_HOT_PATH_BEGIN
// Per-batch record call on the data plane: relaxed stores into the
// caller's own ring, wait-free (ring acquisition above is once per
// thread, outside this region).
void flight_record(FlightEvent ev, std::uint64_t a, std::uint64_t b) {
  ThreadRing& ring = thread_ring();
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& s = ring.slots[h % kFlightRingCapacity];
  s.ns.store(now_ns(), std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.code.store(static_cast<std::uint16_t>(ev),
               std::memory_order_relaxed);
  ring.head.store(h + 1, std::memory_order_release);
  recorder().total.fetch_add(1, std::memory_order_relaxed);
}
// FASTJOIN_HOT_PATH_END

std::uint64_t flight_recorded_total() {
  return recorder().total.load(std::memory_order_relaxed);
}

void flight_dump(std::ostream& os) {
  Recorder& rec = recorder();
  MutexLock lock(rec.mu);
  os << "=== flight recorder dump @ " << now_ns() << " ns ("
     << rec.rings.size() << " thread rings, "
     << rec.total.load(std::memory_order_relaxed)
     << " events recorded) ===\n";
  for (const auto& ring : rec.rings) {
    const std::uint64_t head =
        ring->head.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(head, kFlightRingCapacity);
    os << "--- thread " << ring->tid;
    if (ring->label[0] != '\0') os << " [" << ring->label << "]";
    if (ring->retired.load(std::memory_order_relaxed)) os << " (exited)";
    os << ": " << head << " events, last " << kept << " kept ---\n";
    for (std::uint64_t i = head - kept; i < head; ++i) {
      const Slot& s = ring->slots[i % kFlightRingCapacity];
      const auto code = static_cast<FlightEvent>(
          s.code.load(std::memory_order_relaxed));
      if (code == FlightEvent::kNone) continue;
      os << "  " << s.ns.load(std::memory_order_relaxed) << "ns "
         << flight_event_name(code) << " a="
         << s.a.load(std::memory_order_relaxed) << " b="
         << s.b.load(std::memory_order_relaxed) << "\n";
    }
  }
  os << "=== end flight recorder dump ===\n";
}

bool flight_dump(const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  flight_dump(f);
  return static_cast<bool>(f);
}

#else  // FASTJOIN_NO_TELEMETRY

void flight_dump(std::ostream& os) {
  os << "=== flight recorder compiled out (FASTJOIN_NO_TELEMETRY) ===\n";
}

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace fastjoin::telemetry
