// TraceLog: span-based tracing exported as chrome://tracing /
// Perfetto-compatible JSON.
//
// Spans are rare, structural events — migration phases, checkpoints,
// respawns, replays — so recording takes a mutex (no hot-path
// concern; data-plane visibility comes from MetricRegistry and the
// FlightRecorder instead). Storage is bounded: beyond kMaxSpans the
// log counts drops instead of growing.
//
// Export format: the Chrome Trace Event JSON array ("ph":"X" complete
// events with microsecond ts/dur, plus "ph":"i" instants and "ph":"M"
// thread-name metadata). Load the file at https://ui.perfetto.dev or
// chrome://tracing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#ifndef FASTJOIN_NO_TELEMETRY

#include <vector>

#include "common/mutex.hpp"
#include "common/thread_safety.hpp"
#include "telemetry/clock.hpp"

namespace fastjoin::telemetry {

/// One completed or in-flight span / instant event.
struct TraceSpan {
  std::string name;
  std::string cat;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;          ///< 0 while open
  std::uint32_t tid = 0;
  bool instant = false;
  bool open = true;
  /// Up to kMaxArgs small numeric args, rendered into the span's
  /// "args" object.
  struct Arg {
    std::string key;
    std::int64_t value = 0;
  };
  std::vector<Arg> args;
};

class TraceLog {
 public:
  static constexpr std::size_t kMaxSpans = 1 << 16;

  /// Open a span on the calling thread's track. Returns a handle for
  /// end()/arg(); kInvalid when the log is full (all ops on it no-op).
  std::uint64_t begin(std::string_view name, std::string_view cat)
      EXCLUDES(mu_);
  void end(std::uint64_t handle) EXCLUDES(mu_);
  /// Attach a numeric argument (visible in the Perfetto side panel).
  void arg(std::uint64_t handle, std::string_view key, std::int64_t value)
      EXCLUDES(mu_);
  /// Zero-duration marker.
  void instant(std::string_view name, std::string_view cat) EXCLUDES(mu_);

  static constexpr std::uint64_t kInvalid = ~0ull;

  std::size_t size() const EXCLUDES(mu_);
  std::uint64_t dropped() const EXCLUDES(mu_);
  void clear() EXCLUDES(mu_);

  /// Write the Chrome Trace Event JSON. Open spans are emitted with
  /// their current duration.
  void write_chrome_trace(std::ostream& os) const EXCLUDES(mu_);
  bool write_chrome_trace(const std::string& path) const EXCLUDES(mu_);

  static TraceLog& global();

 private:
  mutable Mutex mu_;
  std::vector<TraceSpan> spans_ GUARDED_BY(mu_);
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
};

/// RAII span: opens in the constructor, closes in the destructor.
class ScopedSpan {
 public:
  ScopedSpan(TraceLog& log, std::string_view name, std::string_view cat)
      : log_(&log), handle_(log.begin(name, cat)) {}
  ScopedSpan(std::string_view name, std::string_view cat)
      : ScopedSpan(TraceLog::global(), name, cat) {}
  ~ScopedSpan() { log_->end(handle_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(std::string_view key, std::int64_t value) {
    log_->arg(handle_, key, value);
  }

 private:
  TraceLog* log_;
  std::uint64_t handle_;
};

}  // namespace fastjoin::telemetry

#else  // FASTJOIN_NO_TELEMETRY ------------------------------------------

namespace fastjoin::telemetry {

struct TraceSpan {};

class TraceLog {
 public:
  static constexpr std::size_t kMaxSpans = 0;
  static constexpr std::uint64_t kInvalid = ~0ull;
  std::uint64_t begin(std::string_view, std::string_view) {
    return kInvalid;
  }
  void end(std::uint64_t) {}
  void arg(std::uint64_t, std::string_view, std::int64_t) {}
  void instant(std::string_view, std::string_view) {}
  std::size_t size() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  void clear() {}
  void write_chrome_trace(std::ostream&) const {}
  bool write_chrome_trace(const std::string&) const { return false; }
  static TraceLog& global() {
    static TraceLog t;
    return t;
  }
};

class ScopedSpan {
 public:
  ScopedSpan(TraceLog&, std::string_view, std::string_view) {}
  ScopedSpan(std::string_view, std::string_view) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void arg(std::string_view, std::int64_t) {}
};

}  // namespace fastjoin::telemetry

#endif  // FASTJOIN_NO_TELEMETRY
