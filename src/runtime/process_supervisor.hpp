// Child-process lifecycle for the multi-process runtime.
//
// The supervisor forks/execs worker processes and owns their reaping:
// poll_exits() collects terminations without blocking (waitpid
// WNOHANG per tracked pid — never -1, so unrelated children of the
// host process, e.g. gtest death tests, are left alone). Death
// *detection* is not its job — the router learns of a crash from the
// worker's socket EOF first and uses the supervisor to confirm
// (signal_and_reap) and respawn. Chaos testing goes through
// terminate(), which is a literal SIGKILL: no flush, no goodbye frame,
// exactly the failure the replay protocol must absorb.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace fastjoin {

class ProcessSupervisor {
 public:
  struct ExitEvent {
    pid_t pid = -1;
    int status = 0;  ///< raw waitpid status (use WIFEXITED & co.)
    bool signaled = false;
    int term_signal = 0;
    int exit_code = 0;
  };

  ProcessSupervisor() = default;
  ~ProcessSupervisor();
  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// fork + execv. argv[0] is the binary path (no PATH search). Returns
  /// the child pid, or -1 with the reason in *err. The child's stdin is
  /// /dev/null; stdout/stderr are inherited.
  pid_t spawn(const std::vector<std::string>& argv, std::string* err = nullptr);

  /// Reap every tracked child that has already exited (nonblocking).
  std::vector<ExitEvent> poll_exits();

  /// Send `sig` to a tracked child. False when the pid is not tracked
  /// or already reaped.
  bool signal(pid_t pid, int sig);

  /// SIGKILL — the chaos primitive. Blocks until the process is truly
  /// gone (waitid WNOWAIT: the zombie is left unreaped so poll_exits()
  /// still observes the exit). A bare kill() returns before the kernel
  /// finishes tearing the process down; on a loaded host that window is
  /// long enough for a second chaos kill to land on the same corpse.
  bool terminate(pid_t pid);

  /// Signal, then wait (bounded) for the exit and reap it. Returns
  /// false if the child did not exit within `timeout`.
  bool signal_and_reap(pid_t pid, int sig,
                       std::chrono::milliseconds timeout,
                       ExitEvent* ev = nullptr);

  /// True while `pid` is tracked and not yet reaped.
  bool alive(pid_t pid) const;
  std::size_t num_alive() const { return children_.size(); }

  /// SIGKILL + reap everything still tracked (destructor behavior).
  void kill_all();

 private:
  std::vector<pid_t> children_;
};

}  // namespace fastjoin
