#include "runtime/placement.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fastjoin {

Topology Topology::detect() {
  Topology t;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &mask)) t.cpu_ids.push_back(cpu);
    }
  }
#endif
  if (t.cpu_ids.empty()) {
    unsigned n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    for (unsigned cpu = 0; cpu < n; ++cpu) {
      t.cpu_ids.push_back(static_cast<int>(cpu));
    }
  }
  return t;
}

const char* pin_policy_name(PinPolicy p) {
  switch (p) {
    case PinPolicy::kNone:
      return "none";
    case PinPolicy::kCompact:
      return "compact";
    case PinPolicy::kSpread:
      return "spread";
  }
  return "?";
}

SpinPolicy SpinPolicy::derive(const PlacementConfig& cfg,
                              const Topology& topo,
                              std::uint32_t engine_threads) {
  SpinPolicy p;
  p.oversubscribed = engine_threads > topo.cpus();
  if (cfg.spin_iters != PlacementConfig::kSpinAuto) {
    p.spin_iters = cfg.spin_iters;
  } else if (p.oversubscribed) {
    // Every busy iteration runs INSTEAD of the peer we are waiting on;
    // park immediately and let the scheduler hand the core over.
    p.spin_iters = 0;
  }
  if (p.oversubscribed) p.yield_iters = 2;
  return p;
}

PlacementPlan PlacementPlan::plan(const PlacementConfig& cfg,
                                  const Topology& topo,
                                  std::uint32_t instances,
                                  std::uint32_t max_producers) {
  PlacementPlan out;
  out.worker_cpu.assign(2 * static_cast<std::size_t>(instances), -1);
  out.producer_cpu.assign(max_producers, -1);
  if (cfg.pin == PinPolicy::kNone || topo.cpu_ids.empty()) return out;

  const std::size_t ncpu = topo.cpu_ids.size();
  const std::size_t nworkers = out.worker_cpu.size();
  // Workers first. kCompact fills CPUs in order, pairing worker i of
  // side R with worker i of side S on neighboring slots (they carry
  // the two halves of the same record flow). kSpread strides so each
  // worker gets a whole CPU while they last.
  const std::size_t stride =
      cfg.pin == PinPolicy::kSpread && nworkers > 0 && ncpu > nworkers
          ? ncpu / nworkers
          : 1;
  for (std::size_t w = 0; w < nworkers; ++w) {
    out.worker_cpu[w] = topo.cpu_ids[(w * stride) % ncpu];
  }
  // Producers fill from the top end so they only share with workers
  // once the CPUs run out; on a big-enough box they get their own.
  for (std::size_t p = 0; p < out.producer_cpu.size(); ++p) {
    out.producer_cpu[p] = topo.cpu_ids[ncpu - 1 - (p % ncpu)];
  }
  if (cfg.pin_monitor) {
    // The monitor is periodic and light: co-locate with the last
    // producer slot rather than costing a worker CPU.
    out.monitor_cpu = topo.cpu_ids[ncpu - 1];
  }
  if (!cfg.pin_producers) {
    out.producer_cpu.assign(max_producers, -1);
  }
  return out;
}

bool pin_current_thread(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  return false;
#endif
}

}  // namespace fastjoin
