// LiveEngine: the join biclique on real threads.
//
// Where SimJoinEngine executes the system in virtual time for
// reproducible experiments, LiveEngine runs the same logic — join
// instances, key-hash routing with a migration routing table, GreedyFit
// balancing, the hold/forward migration protocol — on OS threads with
// bounded queues. It is the deployment-shaped embodiment of the library
// and is what the examples drive.
//
// Concurrency design (and why migration stays exactly-once):
//  * All records enter through push(), which routes under the routing
//    lock and enqueues to per-worker FIFO queues. push() is the single
//    linearization point for routing decisions.
//  * Workers only ever touch their own state; every cross-worker action
//    is a control message in the same FIFO queue as data, so "all data
//    before signal X" is guaranteed by queue order.
//  * The monitor thread orchestrates migrations:
//      1. SelectExtract at the source (it quiesces by queue order,
//         selects keys with GreedyFit, extracts tuples, starts
//         diverting the selected keys to its forward buffer);
//      2. Hold at the target;
//      3. routing-table update (under the same lock push() takes);
//      4. TakeForward at the source — every record routed to the source
//         before step 3 is already ahead of this message in its queue,
//         so the returned buffer is complete;
//      5. Absorb(batch) then Release(forwarded) at the target; records
//         routed to the target after step 3 were held since step 2 and
//         replay after the forwarded ones, preserving per-key order.
//
// Fault tolerance (see docs/migration_protocol.md, "Failure
// interactions"):
//  * crash(side, id) kills a worker: its queue closes, its thread exits
//    discarding queued records, its store is lost. Subsequent pushes to
//    it are dropped and counted in LiveStats::records_dropped.
//  * The monitor doubles as a supervisor: each tick it respawns crashed
//    workers, restoring their store from the latest checkpoint (taken
//    every checkpoint_period via a CheckpointReq control message, so
//    snapshots are consistent with queue order). Checkpointed tuples of
//    keys that have since migrated away are filtered out on restore.
//  * Migrations are supervised: every wait on a worker reply uses
//    bounded exponential backoff up to migration_timeout; an
//    unresponsive worker is declared dead (force-crashed) and the
//    migration aborts — routing overrides roll back, the target
//    releases held keys, and the surviving source replays its forward
//    buffer locally, so the exactly-once argument survives every abort.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/queues.hpp"
#include "core/planner.hpp"
#include "engine/join_store.hpp"
#include "engine/tuple.hpp"

namespace fastjoin {

/// Points in the live migration protocol where the chaos hook fires
/// (monitor thread). Tests crash workers here to exercise every abort
/// path.
enum class MigrationPhase : std::uint8_t {
  kSelected,   ///< batch extracted at the source, before Hold
  kHeld,       ///< Hold installed at the target, before routing update
  kRouted,     ///< routing table updated, before TakeForward
  kForwarded,  ///< forward buffer collected, before Absorb/Release
};

const char* migration_phase_name(MigrationPhase p);

struct LiveConfig {
  std::uint32_t instances = 4;  ///< join instances per biclique side
  bool balancer = true;         ///< FastJoin on, BiStream off
  PlannerConfig planner;        ///< theta etc.
  std::chrono::milliseconds monitor_period{20};
  double min_heaviest_load = 1000.0;
  std::size_t queue_capacity = 1 << 15;
  /// Artificial nanoseconds of work per match (lets small examples
  /// exhibit measurable load without gigantic inputs). 0 = none.
  std::uint64_t work_per_match_ns = 0;
  /// Sliding-window join: number of sub-windows kept (0 = full history)
  /// and the wall-clock length of one sub-window. The monitor thread
  /// drives window advancement (it always runs, even with the balancer
  /// disabled).
  std::uint32_t window_subwindows = 0;
  std::chrono::milliseconds subwindow_len{100};
  /// Fault tolerance: period between store snapshots (0 = off). The
  /// monitor broadcasts a CheckpointReq control message each period, so
  /// every snapshot is consistent with that worker's queue order.
  std::chrono::milliseconds checkpoint_period{0};
  /// Supervised migrations: total time the monitor waits for one worker
  /// reply (select/extract or take-forward) before declaring the worker
  /// dead and aborting the migration. Waiting uses bounded exponential
  /// backoff slices so a concurrent crash is noticed early. This is a
  /// deadlock-breaker, not a latency bound: control replies queue behind
  /// the worker's data backlog, so keep it well above the worst queue
  /// drain time or a saturated-but-healthy worker gets force-crashed.
  std::chrono::milliseconds migration_timeout{30'000};
  /// Chaos hook: called from the monitor thread at each migration phase
  /// transition. Tests use it to crash() workers at precise protocol
  /// points. Must be thread-compatible with calls into this engine's
  /// crash() only.
  std::function<void(Side group, InstanceId src, InstanceId dst,
                     MigrationPhase phase)>
      chaos;
};

struct LiveStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_dropped = 0;  ///< deliveries lost to dead workers
  std::uint64_t evicted = 0;     ///< window-expired tuples
  std::uint64_t results = 0;
  std::uint64_t probes = 0;
  std::uint64_t stores = 0;
  std::size_t migrations = 0;
  std::uint64_t tuples_migrated = 0;
  std::size_t migrations_aborted = 0;
  std::size_t crashes = 0;           ///< crash() calls that hit a live worker
  std::size_t recoveries = 0;        ///< supervisor respawns
  std::uint64_t tuples_restored = 0; ///< restored from checkpoints
  std::size_t checkpoints = 0;       ///< snapshot rounds broadcast
  double mean_recovery_ms = 0.0;     ///< crash -> respawned, mean
  double mean_latency_us = 0.0;  ///< queue+service latency per probe
  double p99_latency_us = 0.0;
  double final_li = 1.0;         ///< last LI the monitor observed
};

class LiveEngine {
 public:
  explicit LiveEngine(const LiveConfig& cfg);
  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Start worker and monitor threads. Calling twice (or after
  /// finish()) is an error: logged, ignored.
  void start();

  /// Route one record (thread-safe; callers may share). Blocks on a
  /// full worker queue (backpressure). Returns false — and counts the
  /// record in LiveStats::records_dropped — when the engine is not
  /// running or a destination worker is crashed.
  bool push(const Record& rec);

  /// Close the feed, drain every queue, stop all threads, and return
  /// the final statistics. Calling before start() or twice is an
  /// error: logged, returns empty stats.
  LiveStats finish();

  /// Kill worker `id` of `group`: its store and queued records are
  /// lost. The supervisor (monitor thread) respawns it on the next tick
  /// and restores its store from the latest checkpoint. Thread-safe;
  /// callable from tests and from the chaos hook. No-op on an unknown
  /// or already-crashed worker.
  void crash(Side group, InstanceId id);

  /// Install a match callback (before start()); called from worker
  /// threads, must be thread-safe. Used by the completeness tests.
  void set_on_match(std::function<void(const MatchPair&)> fn) {
    on_match_ = std::move(fn);
  }

  std::uint32_t instances() const { return cfg_.instances; }
  bool running() const {
    return started_.load(std::memory_order_acquire) &&
           !finished_.load(std::memory_order_acquire);
  }

 private:
  struct SelectExtractReq {
    InstanceLoad dst_load;
    std::promise<std::shared_ptr<MigrationBatch>> reply;
  };
  struct TakeForwardReq {
    std::promise<std::shared_ptr<std::vector<Record>>> reply;
  };
  struct HoldReq {
    std::vector<KeyId> keys;
  };
  struct AbsorbReq {
    std::shared_ptr<MigrationBatch> batch;
  };
  struct ReleaseReq {
    std::shared_ptr<std::vector<Record>> forwarded;
  };
  /// Migration abort at the source: re-merge the batch's stored tuples,
  /// optionally replay its pending records (only when the target never
  /// received the batch), then replay `forwarded` (when TakeForward
  /// already collected the forward buffer) and whatever is still in the
  /// local forward buffer, and stop diverting.
  struct AbortMigrationReq {
    std::shared_ptr<MigrationBatch> batch;
    bool replay_pending = false;
    std::shared_ptr<std::vector<Record>> forwarded;  ///< may be null
  };
  /// Snapshot the store for crash recovery (queue-order consistent).
  struct CheckpointReq {};
  struct AdvanceWindowReq {};
  /// A data record with its push() timestamp, so probe latency covers
  /// queueing as well as service.
  struct DataMsg {
    Record rec;
    std::chrono::steady_clock::time_point pushed_at;
  };
  using Msg = std::variant<DataMsg, SelectExtractReq, TakeForwardReq,
                           HoldReq, AbsorbReq, ReleaseReq,
                           AbortMigrationReq, CheckpointReq,
                           AdvanceWindowReq>;

  class Worker;

  void monitor_loop();
  void supervise();
  void respawn(Side group, InstanceId id);
  void broadcast_checkpoint();
  bool try_migrate(Side group);
  /// Wait for a worker reply with bounded exponential backoff; returns
  /// nullptr when the worker crashed or the wait hit
  /// cfg_.migration_timeout (in which case the worker is declared dead
  /// and force-crashed).
  template <typename T>
  std::shared_ptr<T> await_reply(std::future<std::shared_ptr<T>>& fut,
                                 Side group, InstanceId id);
  void chaos_hook(Side group, InstanceId src, InstanceId dst,
                  MigrationPhase phase);
  void note_drop(std::uint64_t n);
  Worker& worker(Side group, InstanceId id);
  InstanceId route(Side group, KeyId key) const;

  LiveConfig cfg_;
  std::function<void(const MatchPair&)> on_match_;
  std::vector<std::unique_ptr<Worker>> workers_[2];

  mutable std::mutex route_mutex_;
  std::unordered_map<KeyId, InstanceId> overrides_[2];

  std::thread monitor_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> records_dropped_{0};
  std::atomic<bool> drop_warned_{false};
  std::atomic<std::uint64_t> tuples_migrated_{0};
  std::atomic<std::size_t> crashes_{0};
  std::size_t migrations_ = 0;          // monitor thread only
  std::size_t migrations_aborted_ = 0;  // monitor thread only
  std::size_t recoveries_ = 0;          // monitor thread only
  std::uint64_t tuples_restored_ = 0;   // monitor thread only
  std::size_t checkpoints_ = 0;         // monitor thread only
  std::chrono::nanoseconds recovery_time_total_{0};  // monitor only
  /// Counters of workers that crashed and were replaced, folded into
  /// the final stats (monitor thread writes, finish() reads after join).
  struct RetiredCounters {
    std::uint64_t results = 0;
    std::uint64_t probes = 0;
    std::uint64_t stores = 0;
    std::uint64_t evicted = 0;
    LogHistogram latency{1.0, 1e12, 16};
  } retired_;
  std::vector<std::uint64_t> probe_marks_[2];
  double last_li_ = 1.0;
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace fastjoin
