// LiveEngine: the join biclique on real threads.
//
// Where SimJoinEngine executes the system in virtual time for
// reproducible experiments, LiveEngine runs the same logic — join
// instances, key-hash routing with a migration routing table, GreedyFit
// balancing, the hold/forward migration protocol — on OS threads with
// bounded queues. It is the deployment-shaped embodiment of the library
// and is what the examples drive.
//
// Concurrency design (and why migration stays exactly-once):
//  * All records enter through push(), which routes under the routing
//    lock and enqueues to per-worker FIFO queues. push() is the single
//    linearization point for routing decisions.
//  * Workers only ever touch their own state; every cross-worker action
//    is a control message in the same FIFO queue as data, so "all data
//    before signal X" is guaranteed by queue order.
//  * The monitor thread orchestrates migrations:
//      1. SelectExtract at the source (it quiesces by queue order,
//         selects keys with GreedyFit, extracts tuples, starts
//         diverting the selected keys to its forward buffer);
//      2. Hold at the target;
//      3. routing-table update (under the same lock push() takes);
//      4. TakeForward at the source — every record routed to the source
//         before step 3 is already ahead of this message in its queue,
//         so the returned buffer is complete;
//      5. Absorb(batch) then Release(forwarded) at the target; records
//         routed to the target after step 3 were held since step 2 and
//         replay after the forwarded ones, preserving per-key order.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/queues.hpp"
#include "core/planner.hpp"
#include "engine/join_store.hpp"
#include "engine/tuple.hpp"

namespace fastjoin {

struct LiveConfig {
  std::uint32_t instances = 4;  ///< join instances per biclique side
  bool balancer = true;         ///< FastJoin on, BiStream off
  PlannerConfig planner;        ///< theta etc.
  std::chrono::milliseconds monitor_period{20};
  double min_heaviest_load = 1000.0;
  std::size_t queue_capacity = 1 << 15;
  /// Artificial nanoseconds of work per match (lets small examples
  /// exhibit measurable load without gigantic inputs). 0 = none.
  std::uint64_t work_per_match_ns = 0;
  /// Sliding-window join: number of sub-windows kept (0 = full history)
  /// and the wall-clock length of one sub-window. The monitor thread
  /// drives window advancement, so the balancer must be enabled for
  /// windows to expire.
  std::uint32_t window_subwindows = 0;
  std::chrono::milliseconds subwindow_len{100};
};

struct LiveStats {
  std::uint64_t records_in = 0;
  std::uint64_t evicted = 0;     ///< window-expired tuples
  std::uint64_t results = 0;
  std::uint64_t probes = 0;
  std::uint64_t stores = 0;
  std::size_t migrations = 0;
  std::uint64_t tuples_migrated = 0;
  double mean_latency_us = 0.0;  ///< queue+service latency per probe
  double p99_latency_us = 0.0;
  double final_li = 1.0;         ///< last LI the monitor observed
};

class LiveEngine {
 public:
  explicit LiveEngine(const LiveConfig& cfg);
  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Start worker and monitor threads.
  void start();

  /// Route one record (thread-safe; callers may share). Blocks on a
  /// full worker queue (backpressure).
  void push(const Record& rec);

  /// Close the feed, drain every queue, stop all threads, and return
  /// the final statistics.
  LiveStats finish();

  /// Install a match callback (before start()); called from worker
  /// threads, must be thread-safe. Used by the completeness tests.
  void set_on_match(std::function<void(const MatchPair&)> fn) {
    on_match_ = std::move(fn);
  }

  std::uint32_t instances() const { return cfg_.instances; }

 private:
  struct SelectExtractReq {
    InstanceLoad dst_load;
    std::promise<std::shared_ptr<MigrationBatch>> reply;
  };
  struct TakeForwardReq {
    std::promise<std::shared_ptr<std::vector<Record>>> reply;
  };
  struct HoldReq {
    std::vector<KeyId> keys;
  };
  struct AbsorbReq {
    std::shared_ptr<MigrationBatch> batch;
  };
  struct ReleaseReq {
    std::shared_ptr<std::vector<Record>> forwarded;
  };
  struct AdvanceWindowReq {};
  /// A data record with its push() timestamp, so probe latency covers
  /// queueing as well as service.
  struct DataMsg {
    Record rec;
    std::chrono::steady_clock::time_point pushed_at;
  };
  using Msg = std::variant<DataMsg, SelectExtractReq, TakeForwardReq,
                           HoldReq, AbsorbReq, ReleaseReq,
                           AdvanceWindowReq>;

  class Worker;

  void monitor_loop();
  bool try_migrate(Side group);
  Worker& worker(Side group, InstanceId id);
  InstanceId route(Side group, KeyId key) const;

  LiveConfig cfg_;
  std::function<void(const MatchPair&)> on_match_;
  std::vector<std::unique_ptr<Worker>> workers_[2];

  mutable std::mutex route_mutex_;
  std::unordered_map<KeyId, InstanceId> overrides_[2];

  std::thread monitor_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> tuples_migrated_{0};
  std::size_t migrations_ = 0;
  std::vector<std::uint64_t> probe_marks_[2];
  double last_li_ = 1.0;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace fastjoin
