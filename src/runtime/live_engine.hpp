// LiveEngine: the join biclique on real threads.
//
// Where SimJoinEngine executes the system in virtual time for
// reproducible experiments, LiveEngine runs the same logic — join
// instances, key-hash routing with a migration routing table, GreedyFit
// balancing, the hold/forward migration protocol — on OS threads. It is
// the deployment-shaped embodiment of the library and is what the
// examples drive.
//
// Data plane vs control plane (see docs/architecture.md):
//  * The hot path is lock-free. Routing reads go through an immutable
//    RouteTable snapshot published via an atomic pointer (copy-on-write
//    by the monitor under route_mutex_; producers never lock). Records
//    travel over per-(producer, worker) SpscRing lanes; producers
//    register with register_producer() for a private lane set, and a
//    mutex-serialized fallback lane covers unregistered callers.
//    push_batch() amortizes the snapshot load and counters over a whole
//    batch, and latency timestamps are sampled 1-in-N instead of taken
//    per record.
//  * Control messages (migration steps, checkpoints, window ticks) use
//    a per-worker BoundedQueue. Because control no longer shares a FIFO
//    with data, every control message that needs the old "all data
//    before signal X" queue-order guarantee carries per-lane sequence
//    *watermarks*: the worker drains each lane past the stamped
//    watermark before acting. Producers bracket route-read + enqueue in
//    a seqlock-style critical section; after publishing a new routing
//    table the monitor waits for a grace period (every producer's
//    critical section observed outside or re-entered), so watermarks
//    captured afterwards cover every record routed with the old table.
//  * The pre-optimization data plane (route under a global mutex, data
//    and control in one mutex+condvar queue) is preserved as
//    DataPlane::kLegacyLocked so bench/live_throughput can measure the
//    before/after in a single run.
//
// Concurrency design (and why migration stays exactly-once):
//  * push() routes against the current snapshot and enqueues to the
//    destination lanes inside one producer critical section.
//  * Workers only ever touch their own state; every cross-worker action
//    is a control message, ordered against data by lane watermarks
//    (laned mode) or queue FIFO (legacy mode).
//  * The monitor thread orchestrates migrations:
//      1. SelectExtract at the source (stamped with the source's lane
//         watermarks, so selection sees everything routed before it;
//         the source then starts diverting selected keys to its
//         forward buffer);
//      2. Hold at the target — *acknowledged* before step 3, so the
//         hold is active before any record can be routed to the target
//         under the new table;
//      3. routing-table publish (copy-on-write under route_mutex_)
//         followed by a producer grace period;
//      4. TakeForward at the source, stamped with watermarks captured
//         after the grace period — every record routed to the source
//         under the old table is drained (hence forwarded) before the
//         forward buffer is returned;
//      5. Absorb(batch) then Release(forwarded) at the target; records
//         routed to the target after step 3 were held since step 2 and
//         replay after the forwarded ones, preserving per-key order.
//
// Fault tolerance (see docs/migration_protocol.md, "Failure
// interactions"):
//  * crash(side, id) kills a worker: its lanes stop accepting records
//    (subsequent pushes are dropped and counted), its thread exits
//    discarding whatever was queued, its store is lost.
//  * The monitor doubles as a supervisor: each tick it respawns crashed
//    workers, restoring their store from the latest checkpoint and
//    draining (dropping, counting) lane residue left from the crash
//    window before the fresh worker starts.
//  * With LiveConfig::ingest enabled, every published record is first
//    appended — together with its publish-time routing decision — to a
//    StreamLog partition (one per producer lane). Worker checkpoints
//    then carry per-partition consumed offsets, and a respawn *replays*
//    the crashed worker's deliveries from those offsets instead of
//    dropping the crash window: deliveries the dead worker had already
//    processed are suppressed (per-partition consumed watermarks), the
//    rest are re-processed or redirected to the instance that now owns
//    the key. Chaos runs report records_dropped == 0 in this mode; see
//    docs/migration_protocol.md, "Offset replay".
//  * Migrations are supervised: every wait on a worker reply uses
//    bounded exponential backoff up to migration_timeout; an
//    unresponsive worker is declared dead (force-crashed) and the
//    migration aborts — routing overrides roll back, the target
//    releases held keys, and the surviving source replays its forward
//    buffer locally, so joins are never duplicated by an abort.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/arena.hpp"
#include "common/clock.hpp"
#include "common/hash.hpp"
#include "common/histogram.hpp"
#include "common/mutex.hpp"
#include "common/queues.hpp"
#include "common/rng.hpp"
#include "common/thread_safety.hpp"
#include "core/planner.hpp"
#include "engine/join_store.hpp"
#include "engine/tuple.hpp"
#include "ingest/stream_log.hpp"
#include "runtime/placement.hpp"

namespace fastjoin {

/// DataMsg::partition value when the record was not logged (ingest
/// disabled, or the legacy data plane).
inline constexpr std::uint32_t kNoIngestPartition = 0xffffffffu;

/// Points in the live migration protocol where the chaos hook fires
/// (monitor thread). Tests crash workers here to exercise every abort
/// path.
enum class MigrationPhase : std::uint8_t {
  kSelected,   ///< batch extracted at the source, before Hold
  kHeld,       ///< Hold acknowledged by the target, before routing update
  kRouted,     ///< routing table updated, before TakeForward
  kForwarded,  ///< forward buffer collected, before Absorb/Release
};

const char* migration_phase_name(MigrationPhase p);

/// Which data plane the engine runs. kLaned is the real one; the legacy
/// plane is kept as the measured baseline for bench/live_throughput.
enum class DataPlane : std::uint8_t {
  kLaned,         ///< lock-free routing snapshot + SPSC lanes (default)
  kLegacyLocked,  ///< global route mutex + mutex/condvar unified queue
};

struct LiveConfig {
  std::uint32_t instances = 4;  ///< join instances per biclique side
  bool balancer = true;         ///< FastJoin on, BiStream off
  PlannerConfig planner;        ///< theta etc.
  std::chrono::milliseconds monitor_period{20};
  double min_heaviest_load = 1000.0;
  /// Capacity bound of each per-worker control queue (and of the whole
  /// per-worker data queue in kLegacyLocked mode).
  std::size_t queue_capacity = 1 << 15;
  /// Data plane selection; see DataPlane.
  DataPlane data_plane = DataPlane::kLaned;
  /// Registered-producer slots (each gets a private SPSC lane per
  /// worker). Callers beyond this many, and unregistered callers, share
  /// the mutex-serialized fallback lane.
  std::uint32_t max_producers = 8;
  /// Capacity of each data lane (records), rounded up to a power of
  /// two. Full lanes exert backpressure on the producer.
  std::size_t lane_capacity = 1 << 12;
  /// Sample a latency timestamp on every Nth record per producer
  /// (1 = every record, the pre-optimization behavior; 0 = never).
  /// LiveStats::mean_latency_us / p99_latency_us are computed from the
  /// sampled population and stay populated for any N >= 1.
  std::uint32_t latency_sample_every = 64;
  /// Artificial nanoseconds of work per match (lets small examples
  /// exhibit measurable load without gigantic inputs). 0 = none.
  std::uint64_t work_per_match_ns = 0;
  /// Sliding-window join: number of sub-windows kept (0 = full history)
  /// and the wall-clock length of one sub-window. The monitor thread
  /// drives window advancement (it always runs, even with the balancer
  /// disabled).
  std::uint32_t window_subwindows = 0;
  std::chrono::milliseconds subwindow_len{100};
  /// Fault tolerance: period between store snapshots (0 = off). The
  /// monitor broadcasts a CheckpointReq control message each period;
  /// each snapshot is a lane-prefix-consistent view of that worker's
  /// processed stream.
  std::chrono::milliseconds checkpoint_period{0};
  /// Supervised migrations: total time the monitor waits for one worker
  /// reply (select/extract, hold ack, or take-forward) before declaring
  /// the worker dead and aborting the migration. Waiting uses bounded
  /// exponential backoff slices so a concurrent crash is noticed early.
  /// This is a deadlock-breaker, not a latency bound: control replies
  /// queue behind the worker's data backlog, so keep it well above the
  /// worst queue drain time or a saturated-but-healthy worker gets
  /// force-crashed.
  std::chrono::milliseconds migration_timeout{30'000};
  /// Time source for every protocol wait: migration reply backoff,
  /// producer blocked-waits on a crashed slot, the grace-period and
  /// monitor-tick sleeps, and the migration_timeout deadline itself.
  /// Null selects the process-wide real clock. Tests and the protocol
  /// checker inject a VirtualClock so timeouts and backoff fire on
  /// virtual time with no wall-clock sleeps. Must outlive the engine.
  Clock* clock = nullptr;
  /// Chaos hook: called from the monitor thread at each migration phase
  /// transition. Tests use it to crash() workers at precise protocol
  /// points. Must be thread-compatible with calls into this engine's
  /// crash() only.
  std::function<void(Side group, InstanceId src, InstanceId dst,
                     MigrationPhase phase)>
      chaos;
  /// Thread placement and idle-spin discipline: optional core pinning
  /// for workers/producers/monitor (a topology-aware layout computed at
  /// start) and the data-plane spin budget. The default pins nothing
  /// and auto-tunes spinning: when the engine's threads outnumber the
  /// usable CPUs, idle loops park immediately on the lane doorbell
  /// instead of burning the quantum the busy thread needs.
  PlacementConfig placement;
  /// StreamLog ingest (requires DataPlane::kLaned). When enabled, the
  /// engine owns a StreamLog with one partition per producer lane
  /// (max_producers + 1; the `partitions` field is overridden), every
  /// push is appended before it is laned, and — with `ingest.replay` —
  /// crashed workers are replayed from their last checkpointed offsets
  /// instead of dropping the crash window.
  IngestConfig ingest;
};

struct LiveStats {
  std::uint64_t records_in = 0;
  /// Deliveries (a record makes two: store + probe) that were lost
  /// before reaching a live worker: pushes while the engine was not
  /// running, pushes to a crashed worker's closed lanes, legacy-mode
  /// sends into a closed queue, and lane residue discarded at respawn.
  /// With ingest replay enabled, every one of those paths is covered by
  /// the log and this reads 0; the remaining (bounded, documented) loss
  /// is records that died *inside* migration machinery — see
  /// `buffered_lost`.
  std::uint64_t records_dropped = 0;
  std::uint64_t evicted = 0;     ///< window-expired tuples
  std::uint64_t results = 0;
  std::uint64_t probes = 0;
  std::uint64_t stores = 0;
  std::size_t migrations = 0;
  std::uint64_t tuples_migrated = 0;
  std::size_t migrations_aborted = 0;
  std::size_t crashes = 0;           ///< crash() calls that hit a live worker
  std::size_t recoveries = 0;        ///< supervisor respawns
  std::uint64_t tuples_restored = 0; ///< restored from checkpoints
  std::size_t checkpoints = 0;       ///< snapshot rounds broadcast
  double mean_recovery_ms = 0.0;     ///< crash -> respawned, mean
  /// Queue+service latency per probe, over the sampled records only
  /// (LiveConfig::latency_sample_every); 0 when sampling is disabled.
  /// Percentiles come from the merged per-worker telemetry histogram
  /// (common/histogram geometry), not a raw sample vector.
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
  std::uint64_t latency_samples = 0;  ///< probes with a sampled timestamp
  double final_li = 1.0;         ///< last LI the monitor observed
  // --- StreamLog ingest (all 0 when LiveConfig::ingest is off) ------
  std::uint64_t ingest_appended = 0;    ///< records made durable in the log
  std::uint64_t ingest_backpressure = 0;///< appends refused by the
                                        ///< unflushed-bytes bound
  std::uint64_t log_truncated = 0;      ///< records retired by retention
  std::uint64_t records_replayed = 0;   ///< log deliveries re-processed
                                        ///< (or redirected) at respawn
  std::uint64_t replay_suppressed = 0;  ///< probe deliveries skipped at
                                        ///< replay because the crashed
                                        ///< worker had emitted them
  std::uint64_t replay_retargeted = 0;  ///< replay deliveries redirected
                                        ///< to the key's current owner
  /// Records that died inside migration machinery at a crash: the dead
  /// worker's forward/held buffers, and batch/release payloads stuck in
  /// its control queue. Bounded by the migration window; never
  /// duplicated; NOT covered by offset replay (the log replays lane
  /// deliveries, not cross-worker transfers).
  std::uint64_t buffered_lost = 0;
};

class LiveEngine {
 public:
  /// Producer id of unregistered callers: routes through the shared,
  /// mutex-serialized fallback lane.
  static constexpr int kUnregistered = -1;

  explicit LiveEngine(const LiveConfig& cfg);
  ~LiveEngine();

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Start worker and monitor threads. Calling twice (or after
  /// finish()) is an error: logged, ignored.
  void start();

  /// Claim a dedicated producer slot (a private SPSC lane to every
  /// worker, no locks on push). Returns the producer id to pass to
  /// push()/push_batch(), or kUnregistered once all
  /// LiveConfig::max_producers slots are taken (such callers fall back
  /// to the shared lane — correct, just slower). A slot must be used
  /// by one thread at a time; slots live for the engine's lifetime.
  int register_producer();

  /// Route one record (thread-safe; unregistered callers may share).
  /// Blocks (bounded backoff) on a full destination lane
  /// (backpressure). Returns false — and counts the record in
  /// LiveStats::records_dropped — when the engine is not running or a
  /// destination worker is crashed.
  bool push(const Record& rec) { return push(rec, kUnregistered); }
  bool push(const Record& rec, int producer) {
    return push_batch(&rec, 1, producer) == 1;
  }

  /// Route a batch of records under a single routing snapshot and
  /// producer critical section. Returns how many records were delivered
  /// to all of their destinations (partial deliveries are counted in
  /// records_dropped, as with push()).
  std::size_t push_batch(const Record* recs, std::size_t n,
                         int producer = kUnregistered);
  std::size_t push_batch(const std::vector<Record>& recs,
                         int producer = kUnregistered) {
    return push_batch(recs.data(), recs.size(), producer);
  }

  /// Close the feed, drain every queue, stop all threads, and return
  /// the final statistics. Calling before start() or twice is an
  /// error: logged, returns empty stats.
  LiveStats finish();

  /// Kill worker `id` of `group`: its store and queued records are
  /// lost. The supervisor (monitor thread) respawns it on the next tick
  /// and restores its store from the latest checkpoint. Thread-safe;
  /// callable from tests and from the chaos hook. No-op on an unknown
  /// or already-crashed worker.
  void crash(Side group, InstanceId id);

  /// Install a match callback (before start()); called from worker
  /// threads, must be thread-safe. Used by the completeness tests.
  void set_on_match(std::function<void(const MatchPair&)> fn) {
    on_match_ = std::move(fn);
  }

  std::uint32_t instances() const { return cfg_.instances; }
  /// The ingest log (null when LiveConfig::ingest is disabled). Owned
  /// by the engine; safe to read concurrently (offsets, stats).
  const StreamLog* ingest_log() const { return log_.get(); }
  bool running() const {
    return started_.load(std::memory_order_acquire) &&
           !finished_.load(std::memory_order_acquire);
  }

 private:
  struct SelectExtractReq {
    InstanceLoad dst_load;
    std::promise<std::shared_ptr<MigrationBatch>> reply;
  };
  struct TakeForwardReq {
    /// Must match the worker's current extraction epoch
    /// (MigrationBatch::extract_epoch of the batch this migration cut);
    /// a stale request is answered empty WITHOUT touching the
    /// forwarding set or the forward buffer — the diverted records
    /// belong to whichever migration installed the current set.
    std::uint64_t extract_epoch = 0;
    std::promise<std::shared_ptr<std::vector<Record>>> reply;
  };
  struct HoldAck {};
  struct HoldReq {
    std::vector<KeyId> keys;
    /// Acknowledged once the hold is installed: the monitor must not
    /// publish the new routing table before this fires (data and
    /// control travel on different channels, so "hold before rerouted
    /// records" is no longer implied by queue order).
    std::promise<std::shared_ptr<HoldAck>> reply;
  };
  struct AbsorbReq {
    std::shared_ptr<MigrationBatch> batch;
  };
  struct ReleaseReq {
    std::shared_ptr<std::vector<Record>> forwarded;
  };
  /// Migration abort at the source: re-merge the batch's stored tuples,
  /// optionally replay its pending records (only when the target never
  /// received the batch), then replay `forwarded` (when TakeForward
  /// already collected the forward buffer) and whatever is still in the
  /// local forward buffer, and stop diverting.
  struct AbortMigrationReq {
    std::shared_ptr<MigrationBatch> batch;
    bool replay_pending = false;
    std::shared_ptr<std::vector<Record>> forwarded;  ///< may be null
  };
  /// Snapshot the store for crash recovery (lane-prefix consistent).
  struct CheckpointReq {};
  struct AdvanceWindowReq {};
  /// One logged delivery redirected during crash replay to the
  /// instance that now owns the key (the crashed worker's replay pass
  /// found the key migrated away). Only "fresh" deliveries — ones the
  /// crashed worker verifiably never processed — are ever retargeted.
  struct ReplayDelivery {
    Record rec;
    bool store_side = false;
  };
  struct ReplayReq {
    std::vector<ReplayDelivery> deliveries;
  };
  /// A data record with its push() timestamp when it was sampled for
  /// latency measurement (pushed_at == epoch means unsampled). In
  /// ingest mode it also carries the record's StreamLog coordinates so
  /// the worker can advance its consumed watermark (and skip deliveries
  /// a replay already covered).
  struct DataMsg {
    Record rec;
    std::chrono::steady_clock::time_point pushed_at{};
    std::uint32_t partition = kNoIngestPartition;
    std::uint64_t offset = 0;
  };
  using Msg = std::variant<DataMsg, SelectExtractReq, TakeForwardReq,
                           HoldReq, AbsorbReq, ReleaseReq,
                           AbortMigrationReq, CheckpointReq,
                           AdvanceWindowReq, ReplayReq>;
  /// Control (and, in legacy mode, data) envelope. A non-empty barrier
  /// holds one watermark per lane: the worker drains each lane until it
  /// has consumed at least that many records before handling the
  /// message.
  struct Envelope {
    Msg msg;
    std::vector<std::uint64_t> barrier;
  };

  /// One SPSC data lane plus the sequence counters backing the
  /// watermark barrier. `pushed` is bumped by the producer after each
  /// successful ring push; `popped` by the consumer after processing.
  struct DataLane {
    explicit DataLane(std::size_t cap) : ring(cap) {}
    SpscRing<DataMsg> ring;
    alignas(64) std::atomic<std::uint64_t> pushed{0};
    alignas(64) std::atomic<std::uint64_t> popped{0};
  };
  /// All lanes feeding one worker slot. Owned by the engine (not the
  /// Worker) so producers keep stable pointers across respawns; `open`
  /// is cleared while the slot's worker is down so pushes fail fast.
  ///
  /// The doorbell is the slot's idle wake-up channel: an idle worker
  /// arms it and parks on `bell`; a producer that lands records (or a
  /// control send, crash, or shutdown) rings it. It lives here — not in
  /// the Worker — because producers must hold a stable pointer across
  /// respawns. The arm/ring handshake uses seq_cst fences (Dekker): the
  /// worker arms, fences, and re-checks for work before sleeping; the
  /// ringer publishes work, fences, and reads `armed` — so either the
  /// ringer sees the arm and takes the mutex to notify, or the worker's
  /// re-check sees the work. A short timed backstop bounds the blast
  /// radius of any missed edge.
  struct LaneSet {
    std::vector<std::unique_ptr<DataLane>> lanes;  ///< [max_producers]+fallback
    std::atomic<bool> open{true};
    alignas(64) std::atomic<std::uint32_t> armed{0};
    Mutex bell_mutex;
    CondVar bell;
  };
  /// Seqlock-style producer critical-section counter (odd = inside
  /// push). The monitor's grace period waits these out after a routing
  /// publish; see wait_for_producers(). The rest of the slot is
  /// owner-thread-only state: the latency-sampling countdown (counts
  /// down to the next sampled record — no divide per record) and the
  /// per-destination staging buffers push_batch() reuses batch over
  /// batch, so the steady-state hot path performs no allocation.
  struct ProducerSlot {
    alignas(64) std::atomic<std::uint64_t> cs{0};
    std::uint32_t sample_countdown = 0;  ///< owner thread only
    /// One staging buffer per destination worker: the DataMsgs routed
    /// there this batch and the batch-local index of each source record
    /// (for exact per-record delivery accounting).
    struct Stage {
      std::vector<DataMsg> msgs;
      std::vector<std::uint32_t> idx;
    };
    std::vector<Stage> stages;         ///< [2 * instances]
    std::vector<std::uint8_t> failed;  ///< per-record scratch, [batch n]
  };
  /// Immutable routing snapshot; replaced wholesale on every change.
  struct RouteTable {
    std::unordered_map<KeyId, InstanceId> overrides[2];
  };

  class Worker;

  void monitor_loop();
  void supervise();
  void respawn(Side group, InstanceId id);
  /// Offset replay at respawn (ingest mode): scan the log from the
  /// checkpointed offsets, re-process the crashed worker's deliveries
  /// into `fresh` (not yet started), suppressing what the dead worker
  /// had already processed (`marks` = its consumed watermarks) and
  /// redirecting deliveries whose key has since migrated away.
  void replay_worker(Side group, InstanceId id, Worker& fresh,
                     const std::vector<std::uint64_t>& from_offsets,
                     const std::vector<std::uint64_t>& marks);
  /// Retention: drop log segments below the minimum checkpointed offset
  /// across all workers (nothing below it can ever be replayed).
  void truncate_ingest();
  void broadcast_checkpoint();
  bool try_migrate(Side group);
  /// Wait for a worker reply with bounded exponential backoff; returns
  /// nullptr when the worker crashed or the wait hit
  /// cfg_.migration_timeout (in which case the worker is declared dead
  /// and force-crashed).
  template <typename T>
  std::shared_ptr<T> await_reply(std::future<std::shared_ptr<T>>& fut,
                                 Side group, InstanceId id);
  void chaos_hook(Side group, InstanceId src, InstanceId dst,
                  MigrationPhase phase);
  /// Uniform duration in [base/2, base]: de-synchronizes the monitor's
  /// retry cadence from worker-side periodic activity so a whole fleet
  /// of waits cannot retry in lockstep. Monitor thread only (uses
  /// backoff_rng_).
  std::chrono::nanoseconds jittered(std::chrono::nanoseconds base);
  void note_drop(std::uint64_t n);
  Worker& worker(Side group, InstanceId id);

  /// Route against a snapshot (data plane) or the current table
  /// (monitor thread, which is the sole mutator).
  InstanceId route(const RouteTable& table, Side group, KeyId key) const;
  InstanceId route_current(Side group, KeyId key) const;
  /// Copy-on-write routing update: clone, mutate, publish (under
  /// route_mutex_), then wait a producer grace period and reclaim the
  /// old table. Monitor thread only.
  template <typename Mutate>
  void publish_routes(Mutate&& mutate);
  /// Grace period: returns once every producer critical section that
  /// could have read a routing table older than the current one has
  /// exited (seqlock counters observed even or advanced).
  void wait_for_producers();
  /// Per-lane pushed-counts of one worker slot, for barrier stamping.
  /// Empty in legacy mode (queue FIFO already orders control vs data).
  std::vector<std::uint64_t> capture_watermarks(Side group,
                                                InstanceId id) const;
  /// Push a run of DataMsgs — all bound for one destination lane, in
  /// batch order — with blocking backoff on a full ring. Marks the
  /// batch-local index of every message that could not be delivered
  /// (closed/crashed slot) in `failed`; `msgs` is moved-from on
  /// success. Rings the destination's doorbell when anything landed.
  void lane_push_batch(Side group, InstanceId id, std::size_t lane,
                       ProducerSlot::Stage& stage,
                       std::vector<std::uint8_t>& failed);
  /// Wake a parked worker after making new work visible to it. The
  /// seq_cst fence pairs with the arm sequence in the worker's park;
  /// see LaneSet.
  static void ring_doorbell(LaneSet& ls);
  std::size_t push_batch_legacy(const Record* recs, std::size_t n);
  bool laned() const { return cfg_.data_plane == DataPlane::kLaned; }
  /// CPU this worker thread should pin to (-1 = unpinned).
  int worker_cpu(Side group, InstanceId id) const {
    const std::size_t w =
        static_cast<std::size_t>(group) * cfg_.instances + id;
    return w < plan_.worker_cpu.size() ? plan_.worker_cpu[w] : -1;
  }

  LiveConfig cfg_;
  Clock* clk_;  ///< cfg_.clock or the real clock; never null
  /// Placement products, computed once in the constructor: what the
  /// process may run on, where each thread goes, and how hard idle
  /// loops may spin before parking (collapsed to zero when the engine's
  /// threads outnumber the CPUs — the oversubscription regression).
  Topology topo_;
  PlacementPlan plan_;
  SpinPolicy spin_;
  /// Recycled drain-scratch buffers. Workers acquire at thread start
  /// and release at exit, so a respawned worker reuses its dead
  /// predecessor's buffer (cross-thread return) instead of paying a
  /// fresh allocation on the recovery path. mutable: internally
  /// synchronized, and workers only hold a const engine reference.
  mutable BufferPool<DataMsg> msg_pool_;
  /// Backoff jitter source for the monitor's supervised waits
  /// (monitor thread only; producers use a thread-local twin).
  Xoshiro256 backoff_rng_{0x9e3779b97f4a7c15ull};
  std::function<void(const MatchPair&)> on_match_;
  std::vector<std::unique_ptr<Worker>> workers_[2];
  std::vector<std::unique_ptr<LaneSet>> lane_sets_[2];
  std::vector<ProducerSlot> producer_slots_;  ///< [max_producers]+fallback
  std::atomic<std::uint32_t> producers_registered_{0};
  /// Serializes unregistered producers. A pure serialization capability
  /// (it guards the fallback lane's producer side and the fallback
  /// ProducerSlot, which are indexed, not named, so GUARDED_BY cannot
  /// express them); see docs/static_analysis.md.
  Mutex fallback_mutex_;

  /// Current routing table; readers load the pointer (no lock) inside
  /// their producer critical section, the monitor swaps it under
  /// route_mutex_ and reclaims after a grace period. route_mutex_ also
  /// pins worker slots against concurrent crash()/respawn(), and in
  /// legacy mode serializes the whole push path (the measured
  /// pre-optimization behavior). route_table_ itself is deliberately
  /// NOT GUARDED_BY(route_mutex_): the data plane reads it lock-free by
  /// design; the mutex only serializes writers.
  std::atomic<const RouteTable*> route_table_;
  mutable Mutex route_mutex_;

  std::thread monitor_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> records_in_{0};
  std::atomic<std::uint64_t> records_dropped_{0};
  std::atomic<bool> drop_warned_{false};
  std::atomic<std::uint64_t> tuples_migrated_{0};
  std::atomic<std::size_t> crashes_{0};
  std::size_t migrations_ = 0;          // monitor thread only
  std::size_t migrations_aborted_ = 0;  // monitor thread only
  std::size_t recoveries_ = 0;          // monitor thread only
  std::uint64_t tuples_restored_ = 0;   // monitor thread only
  std::size_t checkpoints_ = 0;         // monitor thread only
  /// StreamLog ingest. log_ is created in the constructor and never
  /// reassigned, so lock-free producer reads of the pointer are safe.
  /// The remaining fields are monitor-thread-only (finish() reads them
  /// after joining the monitor).
  std::unique_ptr<StreamLog> log_;
  std::vector<std::vector<ReplayDelivery>> retarget_backlog_[2];
  std::uint64_t records_replayed_ = 0;
  std::uint64_t replay_suppressed_ = 0;
  std::uint64_t replay_retargeted_ = 0;
  std::uint64_t buffered_lost_ = 0;
  std::uint64_t log_truncated_ = 0;
  std::chrono::nanoseconds recovery_time_total_{0};  // monitor only
  /// Counters of workers that crashed and were replaced, folded into
  /// the final stats (monitor thread writes, finish() reads after join).
  struct RetiredCounters {
    std::uint64_t results = 0;
    std::uint64_t probes = 0;
    std::uint64_t stores = 0;
    std::uint64_t evicted = 0;
    LogHistogram latency{1.0, 1e12, 16};
  } retired_;
  std::vector<std::uint64_t> probe_marks_[2];
  /// Per-slot respawn generation, bumped by respawn(). try_migrate
  /// records the source's generation at extraction time and re-checks
  /// it before the routing publish: a source slot rebuilt in between
  /// (supervise() runs inside the supervised waits) has already
  /// regenerated the extracted tuples from checkpoint + log replay, so
  /// publishing would fork the key's history between the monitor's
  /// batch copy and the fresh source's restored copy. Monitor thread
  /// only.
  std::vector<std::uint64_t> slot_gen_[2];
  /// The one migration hold that may be installed at a target right now
  /// (set when the HoldReq is sent, cleared when the target is released
  /// or the migration aborts). respawn() consults it so a target
  /// rebuilt mid-migration gets the hold re-installed before its lanes
  /// reopen — without it the fresh target serves rerouted probes
  /// against a store that does not have the batch yet (the Absorb
  /// arrives later), silently missing pairs with nothing in the drop
  /// ledger to explain them. Monitor thread only.
  struct InflightHold {
    bool active = false;
    int group = 0;
    InstanceId dst = 0;
    std::vector<KeyId> keys;
  } inflight_hold_;
  double last_li_ = 1.0;
  std::atomic<bool> started_{false};
  std::atomic<bool> finished_{false};
};

}  // namespace fastjoin
