#include "runtime/process_supervisor.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "common/logging.hpp"

namespace fastjoin {
namespace {

ProcessSupervisor::ExitEvent make_event(pid_t pid, int status) {
  ProcessSupervisor::ExitEvent ev;
  ev.pid = pid;
  ev.status = status;
  if (WIFSIGNALED(status)) {
    ev.signaled = true;
    ev.term_signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    ev.exit_code = WEXITSTATUS(status);
  }
  return ev;
}

}  // namespace

ProcessSupervisor::~ProcessSupervisor() { kill_all(); }

pid_t ProcessSupervisor::spawn(const std::vector<std::string>& argv,
                               std::string* err) {
  if (argv.empty()) {
    if (err) *err = "empty argv";
    return -1;
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (err) *err = std::string("fork: ") + std::strerror(errno);
    return -1;
  }
  if (pid == 0) {
    // Child. Detach stdin; leave stdout/stderr shared with the parent
    // so worker logs land in the same terminal/CI capture.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 0);
      if (devnull > 2) ::close(devnull);
    }
    ::execv(cargv[0], cargv.data());
    // exec failed — nothing sane to do in the forked image but exit
    // loudly; the parent sees a fast nonzero exit.
    ::fprintf(stderr, "execv %s: %s\n", cargv[0], std::strerror(errno));
    ::_exit(127);
  }
  children_.push_back(pid);
  return pid;
}

std::vector<ProcessSupervisor::ExitEvent> ProcessSupervisor::poll_exits() {
  std::vector<ExitEvent> out;
  for (auto it = children_.begin(); it != children_.end();) {
    int status = 0;
    const pid_t r = ::waitpid(*it, &status, WNOHANG);
    if (r == *it) {
      out.push_back(make_event(*it, status));
      it = children_.erase(it);
    } else if (r < 0 && errno == ECHILD) {
      // Reaped elsewhere (shouldn't happen) — stop tracking.
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

bool ProcessSupervisor::signal(pid_t pid, int sig) {
  if (!alive(pid)) return false;
  return ::kill(pid, sig) == 0;
}

bool ProcessSupervisor::terminate(pid_t pid) {
  if (!signal(pid, SIGKILL)) return false;
  // Wait for the zombie but do NOT reap it (WNOWAIT): the exit must
  // stay visible to poll_exits(), which owns crash bookkeeping — both
  // the attached case (force the connection down) and the
  // died-before-handshake case have to flow through that one path.
  siginfo_t info;
  std::memset(&info, 0, sizeof(info));
  while (::waitid(P_PID, static_cast<id_t>(pid), &info,
                  WEXITED | WNOWAIT) != 0) {
    if (errno != EINTR) break;
  }
  return true;
}

bool ProcessSupervisor::signal_and_reap(pid_t pid, int sig,
                                        std::chrono::milliseconds timeout,
                                        ExitEvent* ev) {
  if (!alive(pid)) return false;
  ::kill(pid, sig);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid || (r < 0 && errno == ECHILD)) {
      children_.erase(std::remove(children_.begin(), children_.end(), pid),
                      children_.end());
      if (ev && r == pid) *ev = make_event(pid, status);
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool ProcessSupervisor::alive(pid_t pid) const {
  return std::find(children_.begin(), children_.end(), pid) !=
         children_.end();
}

void ProcessSupervisor::kill_all() {
  for (const pid_t pid : children_) ::kill(pid, SIGKILL);
  for (const pid_t pid : children_) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  children_.clear();
}

}  // namespace fastjoin
