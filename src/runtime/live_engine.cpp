#include "runtime/live_engine.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/logging.hpp"

namespace fastjoin {

namespace {
/// Busy-wait for `ns` nanoseconds (simulated per-match work).
void spin_for(std::uint64_t ns) {
  if (ns == 0) return;
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
  }
}
}  // namespace

const char* migration_phase_name(MigrationPhase p) {
  switch (p) {
    case MigrationPhase::kSelected: return "selected";
    case MigrationPhase::kHeld: return "held";
    case MigrationPhase::kRouted: return "routed";
    case MigrationPhase::kForwarded: return "forwarded";
  }
  return "?";
}

/// One join instance on its own thread.
class LiveEngine::Worker {
 public:
  using Checkpoint = std::vector<std::pair<KeyId, StoredTuple>>;

  Worker(const LiveEngine& engine, InstanceId id, Side store_side,
         std::size_t queue_capacity, std::uint32_t max_subwindows)
      : engine_(engine),
        id_(id),
        store_side_(store_side),
        queue_(queue_capacity),
        store_(max_subwindows) {}

  void start() {
    thread_ = std::thread([this] { loop(); });
  }

  void stop_and_join() {
    queue_.close();
    if (thread_.joinable()) thread_.join();
  }

  bool send(Msg msg) { return queue_.push(std::move(msg)); }

  /// Kill this worker: the thread exits at the next message boundary,
  /// discarding its queue; the store is lost. Thread-safe.
  void crash() {
    crashed_at_ = std::chrono::steady_clock::now();
    crashed_.store(true, std::memory_order_release);
    queue_.close();
  }

  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }
  /// Only meaningful after crashed() returned true.
  std::chrono::steady_clock::time_point crashed_at() const {
    return crashed_at_;
  }

  /// Latest queue-order-consistent snapshot (null if none was taken).
  std::shared_ptr<const Checkpoint> latest_checkpoint() const {
    std::lock_guard<std::mutex> lock(ckpt_mutex_);
    return checkpoint_;
  }
  /// Carry a predecessor's snapshot into a respawned worker so a second
  /// crash before the next checkpoint round still has a restore point.
  void seed_checkpoint(std::shared_ptr<const Checkpoint> ckpt) {
    std::lock_guard<std::mutex> lock(ckpt_mutex_);
    checkpoint_ = std::move(ckpt);
  }
  /// Pre-start restore of one checkpointed tuple (respawn path only;
  /// the worker thread must not be running).
  void restore_tuple(KeyId key, const StoredTuple& st) {
    store_.insert(key, st);
    stored_count_.store(store_.size(), std::memory_order_relaxed);
  }

  // --- monitor-visible statistics (atomics) -------------------------
  std::uint64_t stored_count() const {
    return stored_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_done() const {
    return probes_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t stores_done() const {
    return stores_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t results() const {
    return results_.load(std::memory_order_relaxed);
  }
  std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  std::size_t queue_length() const { return queue_.size(); }

  /// Only valid after stop_and_join().
  const LogHistogram& latency_hist() const { return latency_; }

  InstanceId id() const { return id_; }

 private:
  void loop() {
    for (;;) {
      auto msg = queue_.pop_for(std::chrono::milliseconds(250));
      if (crashed_.load(std::memory_order_acquire)) return;  // discard all
      if (!msg) {
        if (queue_.closed()) return;  // closed and drained
        continue;                     // idle tick; re-check liveness
      }
      std::visit([this](auto&& m) { handle(std::move(m)); },
                 std::move(*msg));
    }
  }

  void handle(DataMsg msg) {
    const Record& rec = msg.rec;
    if (!forwarding_keys_.empty() && forwarding_keys_.count(rec.key)) {
      forward_buffer_.push_back(rec);
      return;
    }
    if (!held_keys_.empty() && held_keys_.count(rec.key)) {
      held_buffer_.push_back(rec);
      return;
    }
    process(rec, msg.pushed_at);
  }

  void process(const Record& rec,
               std::chrono::steady_clock::time_point pushed_at =
                   std::chrono::steady_clock::now()) {
    const auto t0 = pushed_at;
    if (rec.side == store_side_) {
      StoredTuple st;
      st.seq = rec.seq;
      st.payload = rec.payload;
      st.ts = rec.ts;
      store_.insert(rec.key, st);
      stored_count_.store(store_.size(), std::memory_order_relaxed);
      stores_done_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Probe.
    std::uint64_t matches = 0;
    if (const auto* bucket = store_.find(rec.key)) {
      if (engine_.on_match_) {
        for (const auto& st : *bucket) {
          if (precedes(st.ts, store_side_, st.seq, rec.ts, rec.side,
                       rec.seq)) {
            ++matches;
            MatchPair p;
            p.key = rec.key;
            p.r_seq = store_side_ == Side::kR ? st.seq : rec.seq;
            p.s_seq = store_side_ == Side::kR ? rec.seq : st.seq;
            engine_.on_match_(p);
          }
        }
      } else {
        // Buckets are timestamp ordered, so non-preceding tuples form a
        // suffix: exact count in O(1 + suffix length).
        matches = bucket->size();
        for (auto it = bucket->rbegin(); it != bucket->rend(); ++it) {
          if (precedes(it->ts, store_side_, it->seq, rec.ts, rec.side,
                       rec.seq)) {
            break;
          }
          --matches;
        }
      }
    }
    spin_for(engine_.cfg_.work_per_match_ns * matches);
    ++probe_window_[rec.key];
    results_.fetch_add(matches, std::memory_order_relaxed);
    probes_done_.fetch_add(1, std::memory_order_relaxed);
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    latency_.add(static_cast<double>(std::max<std::int64_t>(dt, 1)));
  }

  void handle(SelectExtractReq req) {
    KeySelectionInput in;
    in.src.stored = store_.size();
    in.dst = req.dst_load;
    in.theta_gap = engine_.cfg_.planner.theta_gap;

    std::unordered_map<KeyId, KeyLoad> by_key;
    for (KeyId k : store_.keys()) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.stored = store_.count_for(k);
    }
    std::uint64_t probe_total = 0;
    for (const auto& [k, n] : probe_window_) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.queued = n;
      probe_total += n;
    }
    in.src.queued = probe_total;
    in.keys.reserve(by_key.size());
    for (auto& [_, kl] : by_key) in.keys.push_back(kl);
    std::sort(in.keys.begin(), in.keys.end(),
              [](const KeyLoad& a, const KeyLoad& b) {
                return a.key < b.key;
              });

    const KeySelectionResult sel = select_keys(in, engine_.cfg_.planner);

    auto batch = std::make_shared<MigrationBatch>();
    for (const auto& kl : sel.selection) {
      batch->keys.push_back(kl.key);
      for (auto& st : store_.extract_key(kl.key)) {
        batch->stored.emplace_back(kl.key, st);
      }
      forwarding_keys_.insert(kl.key);
      probe_window_.erase(kl.key);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    req.reply.set_value(std::move(batch));
  }

  void handle(TakeForwardReq req) {
    forwarding_keys_.clear();
    auto out = std::make_shared<std::vector<Record>>();
    out->swap(forward_buffer_);
    req.reply.set_value(std::move(out));
  }

  void handle(HoldReq req) {
    held_keys_.insert(req.keys.begin(), req.keys.end());
  }

  void handle(AbsorbReq req) {
    for (const auto& [key, st] : req.batch->stored) {
      store_.insert(key, st);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    for (const auto& rec : req.batch->pending) process(rec);
  }

  void handle(ReleaseReq req) {
    held_keys_.clear();
    for (const auto& rec : *req.forwarded) process(rec);
    std::vector<Record> held;
    held.swap(held_buffer_);
    for (const auto& rec : held) process(rec);
  }

  /// Source-side migration abort. Per-key order is preserved: batch
  /// pending (oldest, only when the target never received the batch) ->
  /// collected-forwarded -> local forward buffer -> records routed back
  /// here after the rollback (they queue behind this message).
  void handle(AbortMigrationReq req) {
    for (const auto& [key, st] : req.batch->stored) {
      store_.insert(key, st);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    forwarding_keys_.clear();
    if (req.replay_pending) {
      for (const auto& rec : req.batch->pending) process(rec);
    }
    if (req.forwarded) {
      for (const auto& rec : *req.forwarded) process(rec);
    }
    std::vector<Record> fwd;
    fwd.swap(forward_buffer_);
    for (const auto& rec : fwd) process(rec);
  }

  void handle(CheckpointReq) {
    auto snap = std::make_shared<Checkpoint>();
    snap->reserve(store_.size());
    std::vector<KeyId> keys = store_.keys();
    std::sort(keys.begin(), keys.end());  // deterministic snapshot order
    for (KeyId k : keys) {
      if (const auto* bucket = store_.find(k)) {
        for (const auto& st : *bucket) snap->emplace_back(k, st);
      }
    }
    std::lock_guard<std::mutex> lock(ckpt_mutex_);
    checkpoint_ = std::move(snap);
  }

  void handle(AdvanceWindowReq) {
    evicted_.fetch_add(store_.advance_subwindow(),
                       std::memory_order_relaxed);
    stored_count_.store(store_.size(), std::memory_order_relaxed);
  }

  const LiveEngine& engine_;
  InstanceId id_;
  Side store_side_;
  BoundedQueue<Msg> queue_;
  std::thread thread_;

  JoinStore store_;
  std::unordered_map<KeyId, std::uint64_t> probe_window_;
  std::unordered_set<KeyId> forwarding_keys_;
  std::vector<Record> forward_buffer_;
  std::unordered_set<KeyId> held_keys_;
  std::vector<Record> held_buffer_;
  LogHistogram latency_{1.0, 1e12, 16};

  std::atomic<bool> crashed_{false};
  std::chrono::steady_clock::time_point crashed_at_{};
  mutable std::mutex ckpt_mutex_;
  std::shared_ptr<const Checkpoint> checkpoint_;

  std::atomic<std::uint64_t> stored_count_{0};
  std::atomic<std::uint64_t> probes_done_{0};
  std::atomic<std::uint64_t> stores_done_{0};
  std::atomic<std::uint64_t> results_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

LiveEngine::LiveEngine(const LiveConfig& cfg) : cfg_(cfg) {
  for (int g = 0; g < 2; ++g) {
    workers_[g].reserve(cfg_.instances);
    for (InstanceId i = 0; i < cfg_.instances; ++i) {
      workers_[g].push_back(std::make_unique<Worker>(
          *this, i, static_cast<Side>(g), cfg_.queue_capacity,
          cfg_.window_subwindows));
    }
  }
}

LiveEngine::~LiveEngine() {
  if (running()) finish();
}

LiveEngine::Worker& LiveEngine::worker(Side group, InstanceId id) {
  return *workers_[static_cast<int>(group)][id];
}

void LiveEngine::start() {
  if (finished_.load(std::memory_order_acquire) ||
      started_.exchange(true, std::memory_order_acq_rel)) {
    FJ_ERROR("live") << "start() on an already-started or finished engine";
    return;
  }
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) w->start();
  }
  // The monitor doubles as the supervisor and the window/checkpoint
  // driver, so it runs even when the balancer is off.
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

InstanceId LiveEngine::route(Side group, KeyId key) const {
  const auto& ov = overrides_[static_cast<int>(group)];
  const auto it = ov.find(key);
  if (it != ov.end()) return it->second;
  return instance_of(key, cfg_.instances);
}

void LiveEngine::note_drop(std::uint64_t n) {
  records_dropped_.fetch_add(n, std::memory_order_relaxed);
  if (!drop_warned_.exchange(true, std::memory_order_relaxed)) {
    FJ_WARN("live") << "dropping records (engine not running, or worker "
                       "crashed and not yet respawned); see "
                       "LiveStats::records_dropped for the total";
  }
}

bool LiveEngine::push(const Record& rec) {
  if (!running()) {
    note_drop(1);
    return false;
  }
  records_in_.fetch_add(1, std::memory_order_relaxed);
  // The enqueue must happen under the same lock as the route lookup:
  // otherwise a record routed before a migration's routing-table update
  // could be enqueued at the source after its TakeForward drained the
  // forward buffer, stranding the record at the wrong instance.
  std::lock_guard<std::mutex> lock(route_mutex_);
  const InstanceId store_dst = route(rec.side, rec.key);
  const InstanceId probe_dst = route(other_side(rec.side), rec.key);
  const auto now = std::chrono::steady_clock::now();
  bool ok = true;
  if (!worker(rec.side, store_dst).send(DataMsg{rec, now})) {
    note_drop(1);
    ok = false;
  }
  if (!worker(other_side(rec.side), probe_dst).send(DataMsg{rec, now})) {
    note_drop(1);
    ok = false;
  }
  return ok;
}

void LiveEngine::crash(Side group, InstanceId id) {
  if (!running()) return;
  const int g = static_cast<int>(group);
  // The routing lock pins the worker slot against a concurrent respawn.
  std::lock_guard<std::mutex> lock(route_mutex_);
  if (id >= workers_[g].size()) return;
  Worker& w = *workers_[g][id];
  if (w.crashed()) return;
  w.crash();
  crashes_.fetch_add(1, std::memory_order_relaxed);
  FJ_WARN("live") << side_name(group) << "-" << id << " crashed";
}

void LiveEngine::chaos_hook(Side group, InstanceId src, InstanceId dst,
                            MigrationPhase phase) {
  if (cfg_.chaos) cfg_.chaos(group, src, dst, phase);
}

template <typename T>
std::shared_ptr<T> LiveEngine::await_reply(
    std::future<std::shared_ptr<T>>& fut, Side group, InstanceId id) {
  const auto deadline =
      std::chrono::steady_clock::now() + cfg_.migration_timeout;
  auto slice = std::chrono::milliseconds(1);
  for (;;) {
    if (fut.wait_for(slice) == std::future_status::ready) {
      try {
        return fut.get();
      } catch (const std::future_error&) {
        return nullptr;  // promise died unfulfilled with the worker
      }
    }
    // Keep supervising while blocked: a backlogged worker can take
    // seconds to reach our request, and crashed workers elsewhere must
    // not wait for it. If the awaited worker itself crashed, respawning
    // it destroys its queue — and with it our request's promise — so
    // the future becomes ready with future_error above and the caller
    // runs its abort path (against the already-respawned worker, which
    // accepts the abort batch).
    supervise();
    if (std::chrono::steady_clock::now() >= deadline) {
      FJ_WARN("live") << side_name(group) << "-" << id
                      << " unresponsive for migration reply after "
                      << cfg_.migration_timeout.count()
                      << " ms; declaring it dead";
      crash(group, id);
      return nullptr;
    }
    slice = std::min(slice * 2, std::chrono::milliseconds(64));
  }
}

bool LiveEngine::try_migrate(Side group) {
  const int g = static_cast<int>(group);
  std::vector<InstanceLoad> loads;
  loads.reserve(workers_[g].size());
  double heaviest = 0.0;
  for (auto& w : workers_[g]) {
    InstanceLoad l;
    l.stored = w->stored_count();
    l.queued = w->queue_length();
    // The "incoming rate" half of the paper's phi: probes processed
    // since the previous monitor tick. A respawned worker restarts its
    // counter from zero, hence the clamp.
    const std::uint64_t done = w->probes_done();
    const std::uint64_t prev = probe_marks_[g].size() > w->id()
                                   ? probe_marks_[g][w->id()]
                                   : 0;
    l.queued += done >= prev ? done - prev : done;
    loads.push_back(l);
    heaviest = std::max(heaviest, l.load());
  }
  for (std::size_t i = 0; i < workers_[g].size(); ++i) {
    probe_marks_[g].resize(workers_[g].size(), 0);
    probe_marks_[g][i] = workers_[g][i]->probes_done();
  }

  last_li_ = load_imbalance(loads, cfg_.planner.floor_eps);
  const auto pair = pick_migration_pair(loads, cfg_.planner);
  if (!pair || heaviest < cfg_.min_heaviest_load) return false;

  // No Worker references are held across the supervised waits below: a
  // respawn (inside await_reply) replaces the slot's unique_ptr, so
  // every access re-reads the slot. The monitor is the only slot
  // mutator, making lock-free re-reads safe on this thread.
  if (worker(group, pair->src).crashed() ||
      worker(group, pair->dst).crashed()) {
    return false;
  }

  // 1. Select + extract at the source (supervised wait).
  SelectExtractReq sel;
  sel.dst_load = loads[pair->dst];
  auto sel_future = sel.reply.get_future();
  if (!worker(group, pair->src).send(std::move(sel))) {
    return false;  // crashed; nothing started
  }
  auto batch = await_reply(sel_future, group, pair->src);
  if (!batch) {
    // Source died before/during extraction. Nothing was installed at
    // the target and routing is untouched; the extracted tuples (if
    // any) died with the source and restore from its checkpoint.
    ++migrations_aborted_;
    return false;
  }
  if (batch->keys.empty()) {
    TakeForwardReq tf;  // clears the (empty) forwarding set
    auto f = tf.reply.get_future();
    if (worker(group, pair->src).send(std::move(tf))) {
      await_reply(f, group, pair->src);
    }
    return false;
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kSelected);

  // 2. Target starts holding the migrating keys.
  if (!worker(group, pair->dst).send(HoldReq{batch->keys})) {
    // Target crashed before receiving anything: full rollback at the
    // source. Routing was never changed, so the source re-merges the
    // batch and replays pending plus its forward buffer locally.
    worker(group, pair->src)
        .send(AbortMigrationReq{batch, /*replay_pending=*/true, nullptr});
    ++migrations_aborted_;
    FJ_WARN("live") << "aborted migration " << pair->src << "->"
                    << pair->dst << " (target died before Hold)";
    return false;
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kHeld);

  // 3. Routing-table update (under the same lock push() takes),
  // remembering the prior override state for rollback.
  std::vector<std::pair<KeyId, std::optional<InstanceId>>> prev;
  prev.reserve(batch->keys.size());
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    for (KeyId k : batch->keys) {
      const auto it = overrides_[g].find(k);
      prev.emplace_back(k, it == overrides_[g].end()
                               ? std::nullopt
                               : std::optional<InstanceId>(it->second));
      if (instance_of(k, cfg_.instances) == pair->dst) {
        overrides_[g].erase(k);
      } else {
        overrides_[g][k] = pair->dst;
      }
    }
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kRouted);

  // 4. Collect what the source diverted meanwhile (supervised wait).
  TakeForwardReq tf;
  auto fwd_future = tf.reply.get_future();
  std::shared_ptr<std::vector<Record>> forwarded;
  if (worker(group, pair->src).send(std::move(tf))) {
    forwarded = await_reply(fwd_future, group, pair->src);
  }
  if (!forwarded) {
    // Source died after the routing update: roll forward. The batch is
    // safe in monitor memory; only the forward buffer died with the
    // source (loss bounded by the migration window).
    forwarded = std::make_shared<std::vector<Record>>();
    FJ_WARN("live") << "migration " << pair->src << "->" << pair->dst
                    << ": source died before TakeForward; rolling "
                       "forward with an empty forward buffer";
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kForwarded);

  // 5. Target merges and replays, preserving per-key order.
  const bool absorb_ok = worker(group, pair->dst).send(AbsorbReq{batch});
  const bool release_ok =
      absorb_ok && worker(group, pair->dst).send(ReleaseReq{forwarded});
  if (!absorb_ok || !release_ok) {
    // Target crashed mid-absorb: roll back. The abort message is
    // enqueued at the source BEFORE the routing rollback so records
    // re-routed to the source queue behind the replay. When the absorb
    // was already enqueued the target may have served some pending
    // records, so they are not replayed (re-inserting *stored* tuples
    // is always safe: they emit nothing by themselves and each probe
    // routes to exactly one instance).
    worker(group, pair->src)
        .send(AbortMigrationReq{batch, /*replay_pending=*/!absorb_ok,
                                forwarded});
    {
      std::lock_guard<std::mutex> lock(route_mutex_);
      for (const auto& [k, p] : prev) {
        if (p) {
          overrides_[g][k] = *p;
        } else {
          overrides_[g].erase(k);
        }
      }
    }
    ++migrations_aborted_;
    FJ_WARN("live") << "aborted migration " << pair->src << "->"
                    << pair->dst << " (target died during Absorb); "
                       "routing rolled back";
    return false;
  }
  tuples_migrated_.fetch_add(batch->stored.size() + forwarded->size(),
                             std::memory_order_relaxed);
  ++migrations_;
  return true;
}

void LiveEngine::broadcast_checkpoint() {
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) w->send(CheckpointReq{});
  }
  ++checkpoints_;
}

void LiveEngine::supervise() {
  for (int g = 0; g < 2; ++g) {
    for (InstanceId i = 0; i < workers_[g].size(); ++i) {
      if (workers_[g][i]->crashed()) respawn(static_cast<Side>(g), i);
    }
  }
}

void LiveEngine::respawn(Side group, InstanceId id) {
  const int g = static_cast<int>(group);
  Worker* old = workers_[g][id].get();
  old->stop_and_join();
  // Fold the dead worker's counters into the retired aggregate so the
  // final stats still cover its lifetime.
  retired_.results += old->results();
  retired_.probes += old->probes_done();
  retired_.stores += old->stores_done();
  retired_.evicted += old->evicted();
  retired_.latency.merge(old->latency_hist());
  const auto crashed_at = old->crashed_at();
  const auto ckpt = old->latest_checkpoint();

  auto fresh = std::make_unique<Worker>(*this, id, group,
                                        cfg_.queue_capacity,
                                        cfg_.window_subwindows);
  std::uint64_t restored = 0;
  {
    // The routing lock both gives a stable routing view for the restore
    // filter and pins the slot against concurrent push()/crash().
    std::lock_guard<std::mutex> lock(route_mutex_);
    if (ckpt) {
      for (const auto& [key, st] : *ckpt) {
        // Keys that migrated away since the snapshot belong to another
        // instance now; resurrecting them here would leave unreachable
        // stale copies.
        if (route(group, key) != id) continue;
        fresh->restore_tuple(key, st);
        ++restored;
      }
      fresh->seed_checkpoint(ckpt);
    }
    workers_[g][id] = std::move(fresh);  // destroys the old worker
  }
  workers_[g][id]->start();
  if (probe_marks_[g].size() > id) probe_marks_[g][id] = 0;
  ++recoveries_;
  tuples_restored_ += restored;
  recovery_time_total_ += std::chrono::steady_clock::now() - crashed_at;
  FJ_INFO("live") << side_name(group) << "-" << id << " respawned, "
                  << restored << " tuples restored from checkpoint";
}

void LiveEngine::monitor_loop() {
  auto next_window = std::chrono::steady_clock::now() + cfg_.subwindow_len;
  auto next_checkpoint =
      std::chrono::steady_clock::now() + cfg_.checkpoint_period;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(cfg_.monitor_period);
    if (stopping_.load(std::memory_order_relaxed)) break;
    supervise();
    if (cfg_.balancer) {
      try_migrate(Side::kR);
      try_migrate(Side::kS);
    }
    const auto now = std::chrono::steady_clock::now();
    if (cfg_.window_subwindows > 0 && now >= next_window) {
      next_window += cfg_.subwindow_len;
      for (int g = 0; g < 2; ++g) {
        for (auto& w : workers_[g]) w->send(AdvanceWindowReq{});
      }
    }
    if (cfg_.checkpoint_period.count() > 0 && now >= next_checkpoint) {
      next_checkpoint += cfg_.checkpoint_period;
      broadcast_checkpoint();
    }
  }
}

LiveStats LiveEngine::finish() {
  if (!started_.load(std::memory_order_acquire) ||
      finished_.exchange(true, std::memory_order_acq_rel)) {
    FJ_ERROR("live") << "finish() without a running engine (call start() "
                        "first; finish() only once)";
    return {};
  }
  stopping_.store(true);
  if (monitor_thread_.joinable()) monitor_thread_.join();

  LiveStats stats;
  LogHistogram merged(1.0, 1e12, 16);
  stats.results = retired_.results;
  stats.probes = retired_.probes;
  stats.stores = retired_.stores;
  stats.evicted = retired_.evicted;
  merged.merge(retired_.latency);
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) {
      w->stop_and_join();
      stats.results += w->results();
      stats.probes += w->probes_done();
      stats.stores += w->stores_done();
      stats.evicted += w->evicted();
      merged.merge(w->latency_hist());
    }
  }
  stats.records_in = records_in_.load();
  stats.records_dropped = records_dropped_.load();
  stats.migrations = migrations_;
  stats.migrations_aborted = migrations_aborted_;
  stats.tuples_migrated = tuples_migrated_.load();
  stats.crashes = crashes_.load();
  stats.recoveries = recoveries_;
  stats.tuples_restored = tuples_restored_;
  stats.checkpoints = checkpoints_;
  stats.mean_recovery_ms =
      recoveries_ > 0
          ? std::chrono::duration<double, std::milli>(recovery_time_total_)
                    .count() /
                static_cast<double>(recoveries_)
          : 0.0;
  stats.mean_latency_us = merged.mean() / 1e3;
  stats.p99_latency_us = merged.value_at_percentile(99) / 1e3;
  stats.final_li = last_li_;
  return stats;
}

}  // namespace fastjoin
