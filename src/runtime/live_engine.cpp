#include "runtime/live_engine.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/logging.hpp"

namespace fastjoin {

namespace {
/// Busy-wait for `ns` nanoseconds (simulated per-match work).
void spin_for(std::uint64_t ns) {
  if (ns == 0) return;
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {
  }
}
}  // namespace

/// One join instance on its own thread.
class LiveEngine::Worker {
 public:
  Worker(const LiveEngine& engine, InstanceId id, Side store_side,
         std::size_t queue_capacity, std::uint32_t max_subwindows)
      : engine_(engine),
        id_(id),
        store_side_(store_side),
        queue_(queue_capacity),
        store_(max_subwindows) {}

  void start() {
    thread_ = std::thread([this] { loop(); });
  }

  void stop_and_join() {
    queue_.close();
    if (thread_.joinable()) thread_.join();
  }

  bool send(Msg msg) { return queue_.push(std::move(msg)); }

  // --- monitor-visible statistics (atomics) -------------------------
  std::uint64_t stored_count() const {
    return stored_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_done() const {
    return probes_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t stores_done() const {
    return stores_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t results() const {
    return results_.load(std::memory_order_relaxed);
  }
  std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  std::size_t queue_length() const { return queue_.size(); }

  /// Only valid after stop_and_join().
  const LogHistogram& latency_hist() const { return latency_; }

  InstanceId id() const { return id_; }

 private:
  void loop() {
    for (;;) {
      auto msg = queue_.pop();
      if (!msg) return;  // closed and drained
      std::visit([this](auto&& m) { handle(std::move(m)); },
                 std::move(*msg));
    }
  }

  void handle(DataMsg msg) {
    const Record& rec = msg.rec;
    if (!forwarding_keys_.empty() && forwarding_keys_.count(rec.key)) {
      forward_buffer_.push_back(rec);
      return;
    }
    if (!held_keys_.empty() && held_keys_.count(rec.key)) {
      held_buffer_.push_back(rec);
      return;
    }
    process(rec, msg.pushed_at);
  }

  void process(const Record& rec,
               std::chrono::steady_clock::time_point pushed_at =
                   std::chrono::steady_clock::now()) {
    const auto t0 = pushed_at;
    if (rec.side == store_side_) {
      StoredTuple st;
      st.seq = rec.seq;
      st.payload = rec.payload;
      st.ts = rec.ts;
      store_.insert(rec.key, st);
      stored_count_.store(store_.size(), std::memory_order_relaxed);
      stores_done_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Probe.
    std::uint64_t matches = 0;
    if (const auto* bucket = store_.find(rec.key)) {
      if (engine_.on_match_) {
        for (const auto& st : *bucket) {
          if (precedes(st.ts, store_side_, st.seq, rec.ts, rec.side,
                       rec.seq)) {
            ++matches;
            MatchPair p;
            p.key = rec.key;
            p.r_seq = store_side_ == Side::kR ? st.seq : rec.seq;
            p.s_seq = store_side_ == Side::kR ? rec.seq : st.seq;
            engine_.on_match_(p);
          }
        }
      } else {
        // Buckets are timestamp ordered, so non-preceding tuples form a
        // suffix: exact count in O(1 + suffix length).
        matches = bucket->size();
        for (auto it = bucket->rbegin(); it != bucket->rend(); ++it) {
          if (precedes(it->ts, store_side_, it->seq, rec.ts, rec.side,
                       rec.seq)) {
            break;
          }
          --matches;
        }
      }
    }
    spin_for(engine_.cfg_.work_per_match_ns * matches);
    ++probe_window_[rec.key];
    results_.fetch_add(matches, std::memory_order_relaxed);
    probes_done_.fetch_add(1, std::memory_order_relaxed);
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    latency_.add(static_cast<double>(std::max<std::int64_t>(dt, 1)));
  }

  void handle(SelectExtractReq req) {
    KeySelectionInput in;
    in.src.stored = store_.size();
    in.dst = req.dst_load;
    in.theta_gap = engine_.cfg_.planner.theta_gap;

    std::unordered_map<KeyId, KeyLoad> by_key;
    for (KeyId k : store_.keys()) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.stored = store_.count_for(k);
    }
    std::uint64_t probe_total = 0;
    for (const auto& [k, n] : probe_window_) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.queued = n;
      probe_total += n;
    }
    in.src.queued = probe_total;
    in.keys.reserve(by_key.size());
    for (auto& [_, kl] : by_key) in.keys.push_back(kl);
    std::sort(in.keys.begin(), in.keys.end(),
              [](const KeyLoad& a, const KeyLoad& b) {
                return a.key < b.key;
              });

    const KeySelectionResult sel = select_keys(in, engine_.cfg_.planner);

    auto batch = std::make_shared<MigrationBatch>();
    for (const auto& kl : sel.selection) {
      batch->keys.push_back(kl.key);
      for (auto& st : store_.extract_key(kl.key)) {
        batch->stored.emplace_back(kl.key, st);
      }
      forwarding_keys_.insert(kl.key);
      probe_window_.erase(kl.key);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    req.reply.set_value(std::move(batch));
  }

  void handle(TakeForwardReq req) {
    forwarding_keys_.clear();
    auto out = std::make_shared<std::vector<Record>>();
    out->swap(forward_buffer_);
    req.reply.set_value(std::move(out));
  }

  void handle(HoldReq req) {
    held_keys_.insert(req.keys.begin(), req.keys.end());
  }

  void handle(AbsorbReq req) {
    for (const auto& [key, st] : req.batch->stored) {
      store_.insert(key, st);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    for (const auto& rec : req.batch->pending) process(rec);
  }

  void handle(AdvanceWindowReq) {
    evicted_.fetch_add(store_.advance_subwindow(),
                       std::memory_order_relaxed);
    stored_count_.store(store_.size(), std::memory_order_relaxed);
  }

  void handle(ReleaseReq req) {
    held_keys_.clear();
    for (const auto& rec : *req.forwarded) process(rec);
    std::vector<Record> held;
    held.swap(held_buffer_);
    for (const auto& rec : held) process(rec);
  }

  const LiveEngine& engine_;
  InstanceId id_;
  Side store_side_;
  BoundedQueue<Msg> queue_;
  std::thread thread_;

  JoinStore store_;
  std::unordered_map<KeyId, std::uint64_t> probe_window_;
  std::unordered_set<KeyId> forwarding_keys_;
  std::vector<Record> forward_buffer_;
  std::unordered_set<KeyId> held_keys_;
  std::vector<Record> held_buffer_;
  LogHistogram latency_{1.0, 1e12, 16};

  std::atomic<std::uint64_t> stored_count_{0};
  std::atomic<std::uint64_t> probes_done_{0};
  std::atomic<std::uint64_t> stores_done_{0};
  std::atomic<std::uint64_t> results_{0};
  std::atomic<std::uint64_t> evicted_{0};
};

LiveEngine::LiveEngine(const LiveConfig& cfg) : cfg_(cfg) {
  for (int g = 0; g < 2; ++g) {
    workers_[g].reserve(cfg_.instances);
    for (InstanceId i = 0; i < cfg_.instances; ++i) {
      workers_[g].push_back(std::make_unique<Worker>(
          *this, i, static_cast<Side>(g), cfg_.queue_capacity,
          cfg_.window_subwindows));
    }
  }
}

LiveEngine::~LiveEngine() {
  if (started_ && !finished_) finish();
}

LiveEngine::Worker& LiveEngine::worker(Side group, InstanceId id) {
  return *workers_[static_cast<int>(group)][id];
}

void LiveEngine::start() {
  assert(!started_);
  started_ = true;
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) w->start();
  }
  if (cfg_.balancer) {
    monitor_thread_ = std::thread([this] { monitor_loop(); });
  }
}

InstanceId LiveEngine::route(Side group, KeyId key) const {
  const auto& ov = overrides_[static_cast<int>(group)];
  const auto it = ov.find(key);
  if (it != ov.end()) return it->second;
  return instance_of(key, cfg_.instances);
}

void LiveEngine::push(const Record& rec) {
  records_in_.fetch_add(1, std::memory_order_relaxed);
  // The enqueue must happen under the same lock as the route lookup:
  // otherwise a record routed before a migration's routing-table update
  // could be enqueued at the source after its TakeForward drained the
  // forward buffer, stranding the record at the wrong instance.
  std::lock_guard<std::mutex> lock(route_mutex_);
  const InstanceId store_dst = route(rec.side, rec.key);
  const InstanceId probe_dst = route(other_side(rec.side), rec.key);
  const auto now = std::chrono::steady_clock::now();
  worker(rec.side, store_dst).send(DataMsg{rec, now});
  worker(other_side(rec.side), probe_dst).send(DataMsg{rec, now});
}

bool LiveEngine::try_migrate(Side group) {
  const int g = static_cast<int>(group);
  std::vector<InstanceLoad> loads;
  loads.reserve(cfg_.instances);
  double heaviest = 0.0;
  for (auto& w : workers_[g]) {
    InstanceLoad l;
    l.stored = w->stored_count();
    l.queued = w->queue_length();
    // The "incoming rate" half of the paper's phi: probes processed
    // since the previous monitor tick.
    const std::uint64_t done = w->probes_done();
    const std::uint64_t prev = probe_marks_[g].size() > w->id()
                                   ? probe_marks_[g][w->id()]
                                   : 0;
    l.queued += done - prev;
    loads.push_back(l);
    heaviest = std::max(heaviest, l.load());
  }
  for (std::size_t i = 0; i < workers_[g].size(); ++i) {
    probe_marks_[g].resize(workers_[g].size(), 0);
    probe_marks_[g][i] = workers_[g][i]->probes_done();
  }

  last_li_ = load_imbalance(loads, cfg_.planner.floor_eps);
  const auto pair = pick_migration_pair(loads, cfg_.planner);
  if (!pair || heaviest < cfg_.min_heaviest_load) return false;

  Worker& src = worker(group, pair->src);
  Worker& dst = worker(group, pair->dst);

  // 1. Select + extract at the source.
  SelectExtractReq sel;
  sel.dst_load = loads[pair->dst];
  auto sel_future = sel.reply.get_future();
  src.send(std::move(sel));
  auto batch = sel_future.get();
  if (batch->keys.empty()) {
    TakeForwardReq tf;  // clears the (empty) forwarding set
    auto f = tf.reply.get_future();
    src.send(std::move(tf));
    f.get();
    return false;
  }

  // 2. Target starts holding the migrating keys.
  dst.send(HoldReq{batch->keys});

  // 3. Routing-table update: from here on push() routes to the target.
  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    for (KeyId k : batch->keys) {
      if (instance_of(k, cfg_.instances) == pair->dst) {
        overrides_[g].erase(k);
      } else {
        overrides_[g][k] = pair->dst;
      }
    }
  }

  // 4. Collect what the source diverted meanwhile.
  TakeForwardReq tf;
  auto fwd_future = tf.reply.get_future();
  src.send(std::move(tf));
  auto forwarded = fwd_future.get();

  // 5. Target merges and replays, preserving per-key order.
  tuples_migrated_.fetch_add(batch->stored.size() + forwarded->size(),
                             std::memory_order_relaxed);
  dst.send(AbsorbReq{std::move(batch)});
  dst.send(ReleaseReq{std::move(forwarded)});
  ++migrations_;
  return true;
}

void LiveEngine::monitor_loop() {
  auto next_window = std::chrono::steady_clock::now() + cfg_.subwindow_len;
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(cfg_.monitor_period);
    if (stopping_.load(std::memory_order_relaxed)) break;
    try_migrate(Side::kR);
    try_migrate(Side::kS);
    if (cfg_.window_subwindows > 0 &&
        std::chrono::steady_clock::now() >= next_window) {
      next_window += cfg_.subwindow_len;
      for (int g = 0; g < 2; ++g) {
        for (auto& w : workers_[g]) w->send(AdvanceWindowReq{});
      }
    }
  }
}

LiveStats LiveEngine::finish() {
  assert(started_ && !finished_);
  finished_ = true;
  stopping_.store(true);
  if (monitor_thread_.joinable()) monitor_thread_.join();

  LiveStats stats;
  LogHistogram merged(1.0, 1e12, 16);
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) {
      w->stop_and_join();
      stats.results += w->results();
      stats.probes += w->probes_done();
      stats.stores += w->stores_done();
      stats.evicted += w->evicted();
      merged.merge(w->latency_hist());
    }
  }
  stats.records_in = records_in_.load();
  stats.migrations = migrations_;
  stats.tuples_migrated = tuples_migrated_.load();
  stats.mean_latency_us = merged.mean() / 1e3;
  stats.p99_latency_us = merged.value_at_percentile(99) / 1e3;
  stats.final_li = last_li_;
  return stats;
}

}  // namespace fastjoin
