// FASTJOIN_PROTOCOL_FILE: this file implements the supervised
// migration / replay protocol. Every wait that the protocol depends on
// (timeout deadlines, reply backoff, blocked producers, monitor timers)
// must go through the injectable Clock so the deterministic checker in
// src/protocol/ and virtual-time tests exercise the same code paths.
// fastjoin-lint's protocol-clock rule enforces this; wall-clock reads
// that are telemetry-only (latency stamps, recovery timing, simulated
// work) carry explicit allow() escapes.
#include "runtime/live_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <optional>
#include <unordered_set>

#include "common/logging.hpp"
#include "telemetry/telemetry.hpp"

namespace fastjoin {

namespace tel = telemetry;

namespace {
/// Cached handles into the global MetricRegistry: resolved once (first
/// use), then updated lock-free on the hot path. With
/// FASTJOIN_NO_TELEMETRY every call below is an inline no-op.
struct LiveMetrics {
  tel::Counter& records_in;
  tel::Counter& batches;
  tel::Counter& records_dropped;
  tel::Counter& lane_backpressure;
  tel::Counter& migrations;
  tel::Counter& migrations_aborted;
  tel::Counter& crashes;
  tel::Counter& recoveries;
  tel::Counter& checkpoints;
  tel::Gauge& li_r;
  tel::Gauge& li_s;
  tel::ConcurrentHistogram& latency_ns;
};

LiveMetrics& live_metrics() {
  auto& reg = tel::MetricRegistry::global();
  static LiveMetrics m{
      reg.counter("live.records_in"),
      reg.counter("live.batches"),
      reg.counter("live.records_dropped"),
      reg.counter("live.lane_backpressure"),
      reg.counter("live.migrations"),
      reg.counter("live.migrations_aborted"),
      reg.counter("live.crashes"),
      reg.counter("live.recoveries"),
      reg.counter("live.checkpoints"),
      reg.gauge("live.li_r"),
      reg.gauge("live.li_s"),
      reg.histogram("live.latency_ns", HistogramParams{1.0, 1e12, 16}),
  };
  return m;
}
}  // namespace

namespace {
/// Busy-wait for `ns` nanoseconds (simulated per-match work).
void spin_for(std::uint64_t ns) {
  if (ns == 0) return;
  const auto end =  // fastjoin-lint: allow(protocol-clock) simulated work, not a protocol wait
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < end) {  // fastjoin-lint: allow(protocol-clock) simulated work
  }
}

constexpr std::chrono::steady_clock::time_point kUnsampled{};

/// Records popped from one lane per drain pass: large enough to amortize
/// the ring index update, small enough to keep control latency bounded.
constexpr std::size_t kDrainBatch = 128;

/// Backstop for a parked worker's doorbell wait. Wake-ups are
/// event-driven (every producer push, control send, crash, and shutdown
/// rings the bell), so this only bounds the blast radius of a missed
/// edge; it is not a polling cadence.
constexpr std::chrono::milliseconds kParkBackstop{10};

/// Producer-side wait jitter: uniform in [base/2, base] from a
/// thread-local stream (producers are arbitrary caller threads, so the
/// monitor's rng cannot serve them). Spreads blocked-producer retries
/// so a crashed slot's waiters don't storm the respawned worker in
/// lockstep.
std::chrono::nanoseconds producer_jittered(std::chrono::nanoseconds base) {
  thread_local Xoshiro256 rng{
      0xda3e39cb94b95bdbULL ^
      std::hash<std::thread::id>{}(std::this_thread::get_id())};
  const auto half = static_cast<std::uint64_t>(base.count()) / 2;
  return std::chrono::nanoseconds(half + rng.next_below(half + 1));
}
}  // namespace

const char* migration_phase_name(MigrationPhase p) {
  switch (p) {
    case MigrationPhase::kSelected: return "selected";
    case MigrationPhase::kHeld: return "held";
    case MigrationPhase::kRouted: return "routed";
    case MigrationPhase::kForwarded: return "forwarded";
  }
  return "?";
}

/// One join instance on its own thread.
class LiveEngine::Worker {
 public:
  /// Store snapshot plus — in ingest mode — the per-partition consumed
  /// offsets it is consistent with: replaying the log from `offsets`
  /// on top of `tuples` reconstructs the worker.
  struct Checkpoint {
    std::vector<std::pair<KeyId, StoredTuple>> tuples;
    std::vector<std::uint64_t> offsets;
  };

  Worker(const LiveEngine& engine, InstanceId id, Side store_side,
         std::size_t queue_capacity, std::uint32_t max_subwindows,
         LaneSet* lanes, std::uint32_t ingest_partitions)
      : engine_(engine),
        id_(id),
        store_side_(store_side),
        queue_(queue_capacity),
        lanes_(lanes),
        store_(max_subwindows, &arena_),
        ingest_parts_(ingest_partitions) {
    if (ingest_parts_ > 0) {
      consumed_ =
          std::make_unique<std::atomic<std::uint64_t>[]>(ingest_parts_);
      for (std::uint32_t p = 0; p < ingest_parts_; ++p) {
        consumed_[p].store(0, std::memory_order_relaxed);
      }
    }
  }

  void start() {
    thread_ = std::thread([this] { loop(); });
  }

  void stop_and_join() {
    queue_.close();
    // Wake a parked laned worker so it sees closed-and-empty now
    // rather than at the park backstop.
    if (lanes_ != nullptr) LiveEngine::ring_doorbell(*lanes_);
    if (thread_.joinable()) thread_.join();
  }

  bool send(Msg msg, std::vector<std::uint64_t> barrier = {}) {
    const bool ok =
        queue_.push(Envelope{std::move(msg), std::move(barrier)});
    // Control messages ride a different channel than the doorbell's
    // lanes; a parked laned worker must still wake for them.
    if (ok && lanes_ != nullptr) LiveEngine::ring_doorbell(*lanes_);
    return ok;
  }

  /// Kill this worker: the thread exits at the next message boundary,
  /// discarding its queues; the store is lost. Thread-safe.
  void crash() {
    crashed_at_ = std::chrono::steady_clock::now();  // fastjoin-lint: allow(protocol-clock) recovery-time telemetry
    crashed_.store(true, std::memory_order_release);
    queue_.close();
    if (lanes_ != nullptr) LiveEngine::ring_doorbell(*lanes_);
  }

  bool crashed() const {
    return crashed_.load(std::memory_order_acquire);
  }
  /// Only meaningful after crashed() returned true.
  std::chrono::steady_clock::time_point crashed_at() const {
    return crashed_at_;
  }

  /// Latest queue-order-consistent snapshot (null if none was taken).
  std::shared_ptr<const Checkpoint> latest_checkpoint() const {
    MutexLock lock(ckpt_mutex_);
    return checkpoint_;
  }
  /// Carry a predecessor's snapshot into a respawned worker so a second
  /// crash before the next checkpoint round still has a restore point.
  void seed_checkpoint(std::shared_ptr<const Checkpoint> ckpt) {
    MutexLock lock(ckpt_mutex_);
    checkpoint_ = std::move(ckpt);
  }
  /// Pre-start restore of one checkpointed tuple (respawn path only;
  /// the worker thread must not be running).
  void restore_tuple(KeyId key, const StoredTuple& st) {
    store_.insert(key, st);
    stored_count_.store(store_.size(), std::memory_order_relaxed);
  }

  // --- ingest replay (respawn path; see LiveEngine::replay_worker) --
  /// Per-partition consumed watermarks (offset of the next expected
  /// record). Read by the supervisor after the thread is joined.
  std::vector<std::uint64_t> consumed_marks() const {
    std::vector<std::uint64_t> m(ingest_parts_);
    for (std::uint32_t p = 0; p < ingest_parts_; ++p) {
      m[p] = consumed_[p].load(std::memory_order_relaxed);
    }
    return m;
  }
  /// Pre-start only: position a partition's watermark (after a replay
  /// pass, so lane deliveries below it are recognized as covered).
  void set_consumed(std::uint32_t p, std::uint64_t v) {
    consumed_[p].store(v, std::memory_order_relaxed);
  }
  /// Records sitting in the forward/held migration buffers — the loss
  /// the log cannot replay. Read by the supervisor after join.
  std::uint64_t buffered_count() const {
    return buffered_.load(std::memory_order_relaxed);
  }
  /// Post-join only: the dead store, scanned by the respawn to charge
  /// absorbed-but-unreplayable tuples to the loss ledger.
  const JoinStore& dead_store() const { return store_; }
  /// Pre-start only: does the rebuilt store already hold this tuple?
  bool store_has(KeyId key, std::uint64_t seq) const {
    if (const auto* bucket = store_.find(key)) {
      for (const auto& st : *bucket) {
        if (st.seq == seq) return true;
      }
    }
    return false;
  }
  /// Re-process one store-side delivery during replay. Sequence-deduped
  /// against the restored store: a tuple that arrived via the
  /// checkpoint or a migration batch is not inserted twice (stored
  /// copies are always safe to re-merge, but counting them twice is
  /// not). `fresh` = the crashed worker verifiably never processed it,
  /// so the store counter advances.
  void replay_store(const Record& rec, bool fresh) {
    if (const auto* bucket = store_.find(rec.key)) {
      for (const auto& st : *bucket) {
        if (st.seq == rec.seq) return;
      }
    }
    StoredTuple st;
    st.seq = rec.seq;
    st.payload = rec.payload;
    st.ts = rec.ts;
    store_.insert(rec.key, st);
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    if (fresh) stores_done_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Pre-start re-installation of a migration hold (respawn path only;
  /// the worker thread must not be running). Used when the slot being
  /// rebuilt is the target of an in-flight migration: the hold must be
  /// back in place before replay runs and before the lanes reopen, so
  /// rerouted probes keep parking in the held buffer until the Absorb
  /// and Release arrive.
  void preinstall_hold(const std::vector<KeyId>& keys) {
    held_keys_.insert(keys.begin(), keys.end());
  }
  /// Re-process one probe-side delivery the crashed worker never
  /// served: full processing including emission. Rides the same divert
  /// checks as live data — with a re-installed hold the probe must wait
  /// in the held buffer for the migration batch, not race it.
  void replay_probe(const Record& rec) {
    if (!forwarding_keys_.empty() && forwarding_keys_.count(rec.key)) {
      forward_buffer_.push_back(rec);
      note_buffered();
      return;
    }
    if (!held_keys_.empty() && held_keys_.count(rec.key)) {
      held_buffer_.push_back(rec);
      note_buffered();
      return;
    }
    process(rec);
  }
  /// After stop_and_join() on a crashed worker: count the deliveries
  /// that died unprocessed in its control queue. DataMsg envelopes
  /// exist in legacy mode only (laned data rides the lanes); absorb /
  /// release / abort payloads carry records that were already extracted
  /// into migration machinery. ReplayReq payloads are NOT a loss: they
  /// came out of the log during a dead peer's recovery and are
  /// idempotent to re-deliver (store-side records seq-dedup, probe-side
  /// ones were verifiably never served), so a double fault — this
  /// worker dying while a peer's replay deliveries sat in its queue —
  /// hands them back to the supervisor via `salvaged` and the respawn
  /// re-enters replay through the retarget backlog.
  void drain_dead_queue(std::uint64_t& data_msgs,
                        std::uint64_t& buffered_records,
                        std::vector<ReplayDelivery>& salvaged) {
    while (auto env = queue_.try_pop()) {
      if (std::holds_alternative<DataMsg>(env->msg)) {
        ++data_msgs;
      } else if (const auto* a = std::get_if<AbsorbReq>(&env->msg)) {
        // A dead Absorb loses the batch's stored tuples too, not just
        // its pending probes: the routing table already points at this
        // worker, the log entries still carry the *source's* id, and
        // the source's restore filter skips keys routed away — so
        // neither side's replay will resurrect them. Charge them to the
        // ledger or the drop accounting under-counts in the window
        // between a committed migration and the absorb being served.
        buffered_records +=
            a->batch->pending.size() + a->batch->stored.size();
      } else if (const auto* r = std::get_if<ReleaseReq>(&env->msg)) {
        if (r->forwarded) buffered_records += r->forwarded->size();
      } else if (const auto* ab =
                     std::get_if<AbortMigrationReq>(&env->msg)) {
        if (ab->replay_pending) {
          buffered_records += ab->batch->pending.size();
        }
        if (ab->forwarded) buffered_records += ab->forwarded->size();
      } else if (auto* rp = std::get_if<ReplayReq>(&env->msg)) {
        salvaged.insert(salvaged.end(),
                        std::make_move_iterator(rp->deliveries.begin()),
                        std::make_move_iterator(rp->deliveries.end()));
      }
    }
  }

  // --- monitor-visible statistics (atomics) -------------------------
  std::uint64_t stored_count() const {
    return stored_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t probes_done() const {
    return probes_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t stores_done() const {
    return stores_done_.load(std::memory_order_relaxed);
  }
  std::uint64_t results() const {
    return results_.load(std::memory_order_relaxed);
  }
  std::uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }
  /// Pending work: control-queue depth plus the data backlog across
  /// every lane feeding this worker. This is the paper's φ input.
  std::size_t queue_length() const {
    std::size_t n = queue_.size();
    if (lanes_ != nullptr) {
      for (const auto& lane : lanes_->lanes) {
        const auto pushed =
            lane->pushed.load(std::memory_order_acquire);
        const auto popped =
            lane->popped.load(std::memory_order_relaxed);
        n += pushed >= popped ? pushed - popped : 0;
      }
    }
    return n;
  }

  /// Only valid after stop_and_join().
  const LogHistogram& latency_hist() const { return latency_; }

  InstanceId id() const { return id_; }

 private:
  void loop() {
    char label[32];
    std::snprintf(label, sizeof(label), "worker-%s%u",
                  side_name(store_side_),
                  static_cast<unsigned>(id_));
    tel::set_thread_label(label);
    pin_current_thread(engine_.worker_cpu(store_side_, id_));
    if (lanes_ != nullptr) {
      loop_laned();
    } else {
      loop_legacy();
    }
  }

  /// This worker's identity packed for flight-recorder arguments.
  std::uint64_t fid() const {
    return tel::flight_id(static_cast<int>(store_side_), id_);
  }

  /// Legacy data plane: data and control share the mutex+condvar queue,
  /// one condvar wakeup per message. Kept as the measured baseline.
  void loop_legacy() {
    for (;;) {
      auto env = queue_.pop_for(std::chrono::milliseconds(250));
      if (crashed_.load(std::memory_order_acquire)) return;  // discard
      if (!env) {
        if (queue_.closed()) return;  // closed and drained
        continue;                     // idle tick; re-check liveness
      }
      std::visit([this](auto&& m) { handle(std::move(m)); },
                 std::move(env->msg));
    }
  }

  /// Laned data plane: micro-batch drains over the SPSC lanes, control
  /// envelopes polled between batches, watermark barriers honored. An
  /// idle worker spins/yields per the engine's SpinPolicy (zero spins
  /// when oversubscribed), then parks on the lane-set doorbell until a
  /// producer or control sender rings it — event-driven idling instead
  /// of sleep-polling, which on an oversubscribed box burned the very
  /// quantum the producers needed.
  void loop_laned() {
    // Drain scratch comes from the engine's recycled pool: a respawned
    // worker inherits its dead predecessor's buffer instead of paying
    // an allocation on the recovery path.
    std::vector<DataMsg> scratch = engine_.msg_pool_.acquire(kDrainBatch);
    scratch.resize(kDrainBatch);
    const std::uint32_t spin_budget = engine_.spin_.spin_iters;
    const std::uint32_t yield_budget =
        spin_budget + engine_.spin_.yield_iters;
    std::uint32_t idles = 0;
    for (;;) {
      if (crashed_.load(std::memory_order_acquire)) break;
      std::size_t progress = drain_lanes(scratch.data());
      while (auto env = queue_.try_pop()) {
        if (!env->barrier.empty()) {
          drain_past(env->barrier, scratch.data());
          if (crashed_.load(std::memory_order_acquire)) {
            engine_.msg_pool_.release(std::move(scratch));
            return;
          }
        }
        std::visit([this](auto&& m) { handle(std::move(m)); },
                   std::move(env->msg));
        ++progress;
      }
      if (crashed_.load(std::memory_order_acquire)) break;
      if (progress > 0) {
        idles = 0;
        continue;
      }
      if (queue_.closed() && lanes_drained()) break;
      ++idles;
      if (idles <= spin_budget) continue;
      if (idles <= yield_budget) {
        std::this_thread::yield();
        continue;
      }
      park();
    }
    engine_.msg_pool_.release(std::move(scratch));
  }

  /// Anything for this worker to do right now? (Data in a lane, a
  /// control envelope, a crash/shutdown edge.) Used by park() to decide
  /// whether sleeping is safe; relaxed-ish loads are fine — the caller
  /// re-checks under the arm fence / the bell mutex.
  bool has_work() const {
    if (crashed_.load(std::memory_order_acquire)) return true;
    if (queue_.size() > 0 || queue_.closed()) return true;
    for (const auto& lane : lanes_->lanes) {
      if (lane->pushed.load(std::memory_order_acquire) !=
          lane->popped.load(std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Block on the lane-set doorbell until a ringer wakes us (or the
  /// backstop fires). Arm-then-recheck pairs with ring_doorbell()'s
  /// publish-then-check: the seq_cst fences guarantee that either the
  /// ringer observes `armed` (and notifies under the mutex) or this
  /// re-check observes the rung-about work — no lost wakeup.
  void park() {
    LaneSet& ls = *lanes_;
    ls.armed.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!has_work()) {
      UniqueLock lk(ls.bell_mutex);
      // Re-check under the mutex: a ringer that saw `armed` is either
      // about to take this mutex (we will see its work next iteration
      // thanks to the mutex ordering) or already notified.
      if (!has_work()) {
        ls.bell.wait_for(lk, kParkBackstop);  // fastjoin-lint: allow(protocol-clock) data-plane idle parking, not a protocol wait
      }
    }
    ls.armed.fetch_sub(1, std::memory_order_relaxed);
  }

  /// One micro-batch pass over every lane. Returns records processed.
  std::size_t drain_lanes(DataMsg* scratch) {
    std::size_t total = 0;
    for (auto& lane : lanes_->lanes) {
      const std::size_t n =
          lane->ring.try_pop_batch(scratch, kDrainBatch);
      for (std::size_t i = 0; i < n; ++i) handle(std::move(scratch[i]));
      if (n > 0) {
        lane->popped.fetch_add(n, std::memory_order_release);
        total += n;
      }
    }
    return total;
  }

  /// Consume each lane up to its stamped watermark before a control
  /// action: everything routed to this worker before the watermark was
  /// captured is processed (or diverted to the forward/held buffers)
  /// first — the laned replacement for the old single-queue FIFO.
  void drain_past(const std::vector<std::uint64_t>& barrier,
                  DataMsg* scratch) {
    const std::size_t n_lanes =
        std::min(barrier.size(), lanes_->lanes.size());
    for (std::size_t i = 0; i < n_lanes; ++i) {
      DataLane& lane = *lanes_->lanes[i];
      while (lane.popped.load(std::memory_order_relaxed) < barrier[i]) {
        if (crashed_.load(std::memory_order_acquire)) return;
        const std::uint64_t want =
            barrier[i] - lane.popped.load(std::memory_order_relaxed);
        const std::size_t k = lane.ring.try_pop_batch(
            scratch, std::min<std::uint64_t>(want, kDrainBatch));
        if (k == 0) {
          // The record is published to the ring before `pushed` is
          // bumped, so a short wait suffices; never indefinite.
          std::this_thread::yield();
          continue;
        }
        for (std::size_t j = 0; j < k; ++j) {
          handle(std::move(scratch[j]));
        }
        lane.popped.fetch_add(k, std::memory_order_release);
      }
    }
  }

  bool lanes_drained() const {
    for (const auto& lane : lanes_->lanes) {
      if (!lane->ring.closed() || !lane->ring.empty_approx()) {
        return false;
      }
    }
    return true;
  }

  void handle(DataMsg msg) {
    const Record& rec = msg.rec;
    if (ingest_parts_ > 0 && msg.partition != kNoIngestPartition) {
      // Consumed watermark: the log offset of the next delivery this
      // worker expects from that partition. A delivery below it was
      // already covered — processed before a crash, or re-processed by
      // the replay pass that positioned the watermark — so handling it
      // again would double-count (lane deliveries that raced a closed
      // slot land here after the replay already scanned them).
      auto& c = consumed_[msg.partition];
      if (msg.offset < c.load(std::memory_order_relaxed)) return;
      c.store(msg.offset + 1, std::memory_order_relaxed);
    }
    if (!forwarding_keys_.empty() && forwarding_keys_.count(rec.key)) {
      forward_buffer_.push_back(rec);
      note_buffered();
      return;
    }
    if (!held_keys_.empty() && held_keys_.count(rec.key)) {
      held_buffer_.push_back(rec);
      note_buffered();
      return;
    }
    process(rec, msg.pushed_at);
  }

  /// Replay deliveries redirected here from another worker's recovery.
  /// They route through the same divert checks as lane data so a
  /// concurrent migration of the key still sees them exactly once (the
  /// forward/held machinery ships them to wherever the key ends up).
  void handle(ReplayReq req) {
    for (const ReplayDelivery& d : req.deliveries) {
      if (!forwarding_keys_.empty() && forwarding_keys_.count(d.rec.key)) {
        forward_buffer_.push_back(d.rec);
        note_buffered();
        continue;
      }
      if (!held_keys_.empty() && held_keys_.count(d.rec.key)) {
        held_buffer_.push_back(d.rec);
        note_buffered();
        continue;
      }
      if (d.store_side) {
        replay_store(d.rec, /*fresh=*/true);
      } else {
        process(d.rec);
      }
    }
  }

  /// `pushed_at` == epoch means the record was not sampled for latency
  /// measurement (replays and non-sampled records); the clock is read
  /// only for sampled probes.
  void process(const Record& rec,
               std::chrono::steady_clock::time_point pushed_at =
                   kUnsampled) {
    if (rec.side == store_side_) {
      StoredTuple st;
      st.seq = rec.seq;
      st.payload = rec.payload;
      st.ts = rec.ts;
      store_.insert(rec.key, st);
      stored_count_.store(store_.size(), std::memory_order_relaxed);
      stores_done_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Probe.
    std::uint64_t matches = 0;
    if (const auto* bucket = store_.find(rec.key)) {
      if (engine_.on_match_) {
        for (const auto& st : *bucket) {
          if (precedes(st.ts, store_side_, st.seq, rec.ts, rec.side,
                       rec.seq)) {
            ++matches;
            MatchPair p;
            p.key = rec.key;
            p.r_seq = store_side_ == Side::kR ? st.seq : rec.seq;
            p.s_seq = store_side_ == Side::kR ? rec.seq : st.seq;
            engine_.on_match_(p);
          }
        }
      } else {
        // Buckets are timestamp ordered, so non-preceding tuples form a
        // suffix: exact count in O(1 + suffix length).
        matches = bucket->size();
        for (auto it = bucket->rbegin(); it != bucket->rend(); ++it) {
          if (precedes(it->ts, store_side_, it->seq, rec.ts, rec.side,
                       rec.seq)) {
            break;
          }
          --matches;
        }
      }
    }
    spin_for(engine_.cfg_.work_per_match_ns * matches);
    ++probe_window_[rec.key];
    results_.fetch_add(matches, std::memory_order_relaxed);
    probes_done_.fetch_add(1, std::memory_order_relaxed);
    if (pushed_at != kUnsampled) {
      const auto dt =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - pushed_at)  // fastjoin-lint: allow(protocol-clock) latency telemetry
              .count();
      const auto ns =
          static_cast<double>(std::max<std::int64_t>(dt, 1));
      latency_.add(ns);
      live_metrics().latency_ns.record(ns);
    }
  }

  void handle(SelectExtractReq req) {
    KeySelectionInput in;
    in.src.stored = store_.size();
    in.dst = req.dst_load;
    in.theta_gap = engine_.cfg_.planner.theta_gap;

    std::unordered_map<KeyId, KeyLoad> by_key;
    for (KeyId k : store_.keys()) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.stored = store_.count_for(k);
    }
    std::uint64_t probe_total = 0;
    for (const auto& [k, n] : probe_window_) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.queued = n;
      probe_total += n;
    }
    in.src.queued = probe_total;
    in.keys.reserve(by_key.size());
    for (auto& [_, kl] : by_key) in.keys.push_back(kl);
    std::sort(in.keys.begin(), in.keys.end(),
              [](const KeyLoad& a, const KeyLoad& b) {
                return a.key < b.key;
              });

    const KeySelectionResult sel = select_keys(in, engine_.cfg_.planner);

    // Shadow copy of what this extraction removes from the store
    // ("checkpoint shadowing"): a checkpoint cut between the extraction
    // and the migration's commit/abort would otherwise snapshot a store
    // missing the batch, and a crash in that window restores from that
    // snapshot while replay suppresses the batch's deliveries (they sit
    // below the consumed watermarks). Folded into every checkpoint;
    // cleared by the abort re-merge or the next extraction. A stale
    // shadow after a committed migration is harmless: the restore
    // filter skips keys routed away, and re-merges seq-dedup.
    pending_extract_.clear();
    ++extract_epoch_;
    auto batch = std::make_shared<MigrationBatch>();
    batch->extract_epoch = extract_epoch_;
    for (const auto& kl : sel.selection) {
      batch->keys.push_back(kl.key);
      for (auto& st : store_.extract_key(kl.key)) {
        batch->stored.emplace_back(kl.key, st);
        pending_extract_.emplace_back(kl.key, st);
      }
      forwarding_keys_.insert(kl.key);
      probe_window_.erase(kl.key);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    tel::flight_record(tel::FlightEvent::kCtrlSelect, fid(),
                       batch->keys.size());
    req.reply.set_value(std::move(batch));
  }

  void handle(TakeForwardReq req) {
    if (req.extract_epoch != extract_epoch_) {
      // Stale request from a migration this slot no longer remembers
      // (the slot was rebuilt, or a newer extraction installed the
      // current forwarding set). Clearing the set here would strand the
      // records the NEWER migration is diverting — strict no-op, but
      // still answer so a waiting monitor is not left hanging.
      req.reply.set_value(std::make_shared<std::vector<Record>>());
      return;
    }
    forwarding_keys_.clear();
    auto out = std::make_shared<std::vector<Record>>();
    out->swap(forward_buffer_);
    note_buffered();
    tel::flight_record(tel::FlightEvent::kCtrlTakeForward, fid(),
                       out->size());
    req.reply.set_value(std::move(out));
  }

  void handle(HoldReq req) {
    held_keys_.insert(req.keys.begin(), req.keys.end());
    tel::flight_record(tel::FlightEvent::kCtrlHold, fid(),
                       req.keys.size());
    // Acknowledge: the monitor must see the hold installed before it
    // publishes the routing table that diverts records this way.
    req.reply.set_value(std::make_shared<HoldAck>());
    tel::flight_record(tel::FlightEvent::kCtrlHoldAck, fid());
  }

  /// Merge one migrated/aborted batch tuple, deduplicated by sequence
  /// number. A migration batch lives in monitor memory while the
  /// protocol runs; if the source (or a previous owner) crashes in that
  /// window, its respawn regenerates the extracted tuples from
  /// checkpoint + log replay. Re-injecting the batch afterwards —
  /// Absorb at the target, or the Abort re-merge at the source — would
  /// then leave two copies of the same tuple in one store, and every
  /// later probe of that key would emit duplicate matches.
  void merge_tuple(KeyId key, const StoredTuple& st) {
    if (const auto* bucket = store_.find(key)) {
      for (const auto& have : *bucket) {
        if (have.seq == st.seq) return;
      }
    }
    store_.insert(key, st);
  }

  void handle(AbsorbReq req) {
    tel::flight_record(tel::FlightEvent::kCtrlAbsorb, fid(),
                       req.batch->stored.size());
    for (const auto& [key, st] : req.batch->stored) {
      merge_tuple(key, st);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    for (const auto& rec : req.batch->pending) process(rec);
  }

  void handle(ReleaseReq req) {
    tel::flight_record(tel::FlightEvent::kCtrlRelease, fid(),
                       req.forwarded->size());
    held_keys_.clear();
    // Replay the divert buffers in stream order, not arrival order: the
    // forwarded batch and the held buffer interleave (a record diverted
    // at the source can precede one that took the rerouted path), and a
    // probe must see exactly the stores that precede it. Store-side
    // records merge seq-deduped — recovery retargets are at-least-once,
    // so a tuple may already be here via the absorb batch or a
    // ReplayReq.
    std::vector<Record> flush;
    flush.reserve(req.forwarded->size() + held_buffer_.size());
    flush.insert(flush.end(), req.forwarded->begin(),
                 req.forwarded->end());
    flush.insert(flush.end(), held_buffer_.begin(), held_buffer_.end());
    held_buffer_.clear();
    note_buffered();
    std::stable_sort(flush.begin(), flush.end(),
                     [](const Record& a, const Record& b) {
                       return precedes(a, b);
                     });
    for (const auto& rec : flush) {
      if (rec.side == store_side_) {
        replay_store(rec, /*fresh=*/true);
      } else {
        process(rec);
      }
    }
  }

  /// Source-side migration abort. Per-key order is preserved: batch
  /// pending (oldest, only when the target never received the batch) ->
  /// collected-forwarded -> local forward buffer -> records routed back
  /// here after the rollback (they drain behind this message's barrier).
  void handle(AbortMigrationReq req) {
    tel::flight_record(tel::FlightEvent::kCtrlAbort, fid(),
                       req.replay_pending ? 1 : 0);
    for (const auto& [key, st] : req.batch->stored) {
      merge_tuple(key, st);
    }
    stored_count_.store(store_.size(), std::memory_order_relaxed);
    pending_extract_.clear();  // the batch is back in the store
    forwarding_keys_.clear();
    if (req.replay_pending) {
      for (const auto& rec : req.batch->pending) process(rec);
    }
    // Stream-ordered, store-deduped flush — same reasoning as the
    // Release handler: collected-forwarded and the local forward buffer
    // interleave, and retargeted recovery deliveries may have landed
    // copies of the store-side records here already.
    std::vector<Record> flush;
    if (req.forwarded) {
      flush.insert(flush.end(), req.forwarded->begin(),
                   req.forwarded->end());
    }
    flush.insert(flush.end(), forward_buffer_.begin(),
                 forward_buffer_.end());
    forward_buffer_.clear();
    note_buffered();
    std::stable_sort(flush.begin(), flush.end(),
                     [](const Record& a, const Record& b) {
                       return precedes(a, b);
                     });
    for (const auto& rec : flush) {
      if (rec.side == store_side_) {
        replay_store(rec, /*fresh=*/true);
      } else {
        process(rec);
      }
    }
  }

  void handle(CheckpointReq) {
    auto snap = std::make_shared<Checkpoint>();
    snap->tuples.reserve(store_.size());
    std::vector<KeyId> keys = store_.keys();
    std::sort(keys.begin(), keys.end());  // deterministic snapshot order
    for (KeyId k : keys) {
      if (const auto* bucket = store_.find(k)) {
        for (const auto& st : *bucket) snap->tuples.emplace_back(k, st);
      }
    }
    // Fold in the extraction shadow: tuples cut for an in-flight
    // migration are out of the store but not yet safe anywhere else —
    // a snapshot without them plus replay's consumed-watermark
    // suppression would lose them if the migration aborts into a crash.
    // Seq-deduped against the live store (the abort re-merge clears the
    // shadow, but a Release-committed batch leaves it populated until
    // the next extraction).
    for (const auto& [k, st] : pending_extract_) {
      if (const auto* bucket = store_.find(k)) {
        bool have = false;
        for (const auto& cur : *bucket) {
          if (cur.seq == st.seq) {
            have = true;
            break;
          }
        }
        if (have) continue;
      }
      snap->tuples.emplace_back(k, st);
    }
    // The offsets are captured in-thread with the store snapshot, so
    // the pair is exactly consistent: the store reflects precisely the
    // deliveries below these watermarks (plus migration transfers).
    if (ingest_parts_ > 0) {
      snap->offsets.resize(ingest_parts_);
      for (std::uint32_t p = 0; p < ingest_parts_; ++p) {
        snap->offsets[p] = consumed_[p].load(std::memory_order_relaxed);
      }
    }
    tel::flight_record(tel::FlightEvent::kCtrlCheckpoint, fid(),
                       snap->tuples.size());
    MutexLock lock(ckpt_mutex_);
    checkpoint_ = std::move(snap);
  }

  void handle(AdvanceWindowReq) {
    tel::flight_record(tel::FlightEvent::kCtrlWindow, fid());
    evicted_.fetch_add(store_.advance_subwindow(),
                       std::memory_order_relaxed);
    stored_count_.store(store_.size(), std::memory_order_relaxed);
  }

  /// Keep the monitor-readable count of records parked in the
  /// forward/held buffers current (they are what a crash loses beyond
  /// what the log can replay).
  void note_buffered() {
    buffered_.store(forward_buffer_.size() + held_buffer_.size(),
                    std::memory_order_relaxed);
  }

  const LiveEngine& engine_;
  InstanceId id_;
  Side store_side_;
  BoundedQueue<Envelope> queue_;  ///< control (and legacy-mode data)
  LaneSet* lanes_;                ///< engine-owned; null in legacy mode
  std::thread thread_;

  /// Worker-private allocation arena backing store_'s buckets and hash
  /// nodes. Declared before store_ (store_ keeps a pointer into it and
  /// must be destroyed first). Single-threaded by the engine's rule
  /// that only the owning worker touches its store.
  Arena arena_;
  JoinStore store_;
  std::unordered_map<KeyId, std::uint64_t> probe_window_;
  std::unordered_set<KeyId> forwarding_keys_;
  std::vector<Record> forward_buffer_;
  std::unordered_set<KeyId> held_keys_;
  std::vector<Record> held_buffer_;
  /// Shadow of the last extracted batch (see handle(SelectExtractReq));
  /// folded into checkpoints, cleared by abort or the next extraction.
  std::vector<std::pair<KeyId, StoredTuple>> pending_extract_;
  /// Monotone extraction counter; TakeForwardReq must echo it.
  std::uint64_t extract_epoch_ = 0;
  LogHistogram latency_{1.0, 1e12, 16};

  std::atomic<bool> crashed_{false};
  std::chrono::steady_clock::time_point crashed_at_{};
  mutable Mutex ckpt_mutex_;
  std::shared_ptr<const Checkpoint> checkpoint_ GUARDED_BY(ckpt_mutex_);

  std::atomic<std::uint64_t> stored_count_{0};
  std::atomic<std::uint64_t> probes_done_{0};
  std::atomic<std::uint64_t> stores_done_{0};
  std::atomic<std::uint64_t> results_{0};
  std::atomic<std::uint64_t> evicted_{0};

  /// Ingest mode only (ingest_parts_ > 0): per-StreamLog-partition
  /// consumed watermarks and the migration-buffer occupancy, both
  /// relaxed atomics — the worker thread writes, the supervisor reads
  /// after joining the thread (or before starting it).
  const std::uint32_t ingest_parts_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> consumed_;
  std::atomic<std::uint64_t> buffered_{0};
};

LiveEngine::LiveEngine(const LiveConfig& cfg)
    : cfg_(cfg),
      clk_(cfg.clock != nullptr ? cfg.clock : &real_clock()),
      topo_(Topology::detect()),
      plan_(PlacementPlan::plan(cfg.placement, topo_, cfg.instances,
                                cfg.max_producers)),
      // Always-on threads: one worker per instance per side + monitor.
      spin_(SpinPolicy::derive(cfg.placement, topo_,
                               2 * cfg.instances + 1)) {
  route_table_.store(new RouteTable{}, std::memory_order_release);
  const std::size_t n_slots = cfg_.max_producers + 1;  // +1 fallback
  producer_slots_ = std::vector<ProducerSlot>(n_slots);
  for (auto& slot : producer_slots_) {
    // One staging run per destination worker; capacities are retained
    // across batches, so steady state allocates nothing here.
    slot.stages.resize(2 * static_cast<std::size_t>(cfg_.instances));
  }
  if (cfg_.ingest.enabled && !laned()) {
    FJ_ERROR("live") << "StreamLog ingest requires DataPlane::kLaned; "
                        "ingest disabled for this run";
    cfg_.ingest.enabled = false;
  }
  if (cfg_.ingest.enabled) {
    // One partition per producer lane: a partition's append order then
    // equals its lane's FIFO order (both happen inside the producer's
    // push path), which is what lets replay reconstruct per-key order.
    cfg_.ingest.partitions = static_cast<std::uint32_t>(n_slots);
    log_ = std::make_unique<StreamLog>(cfg_.ingest);
  }
  const std::uint32_t ingest_parts =
      log_ != nullptr ? log_->partitions() : 0;
  for (int g = 0; g < 2; ++g) {
    workers_[g].reserve(cfg_.instances);
    retarget_backlog_[g].resize(cfg_.instances);
    slot_gen_[g].assign(cfg_.instances, 0);
    if (laned()) lane_sets_[g].reserve(cfg_.instances);
    for (InstanceId i = 0; i < cfg_.instances; ++i) {
      LaneSet* ls = nullptr;
      if (laned()) {
        auto set = std::make_unique<LaneSet>();
        set->lanes.reserve(n_slots);
        for (std::size_t p = 0; p < n_slots; ++p) {
          set->lanes.push_back(
              std::make_unique<DataLane>(cfg_.lane_capacity));
        }
        ls = set.get();
        lane_sets_[g].push_back(std::move(set));
      }
      workers_[g].push_back(std::make_unique<Worker>(
          *this, i, static_cast<Side>(g), cfg_.queue_capacity,
          cfg_.window_subwindows, ls, ingest_parts));
    }
  }
}

LiveEngine::~LiveEngine() {
  if (running()) finish();
  delete route_table_.load(std::memory_order_acquire);
}

LiveEngine::Worker& LiveEngine::worker(Side group, InstanceId id) {
  return *workers_[static_cast<int>(group)][id];
}

void LiveEngine::start() {
  if (finished_.load(std::memory_order_acquire) ||
      started_.exchange(true, std::memory_order_acq_rel)) {
    FJ_ERROR("live") << "start() on an already-started or finished engine";
    return;
  }
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) w->start();
  }
  // The monitor doubles as the supervisor and the window/checkpoint
  // driver, so it runs even when the balancer is off.
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

int LiveEngine::register_producer() {
  const std::uint32_t i =
      producers_registered_.fetch_add(1, std::memory_order_relaxed);
  if (i >= cfg_.max_producers) return kUnregistered;  // slots exhausted
  if (cfg_.placement.pin_producers && i < plan_.producer_cpu.size()) {
    pin_current_thread(plan_.producer_cpu[i]);
  }
  return static_cast<int>(i);
}

InstanceId LiveEngine::route(const RouteTable& table, Side group,
                             KeyId key) const {
  const auto& ov = table.overrides[static_cast<int>(group)];
  const auto it = ov.find(key);
  if (it != ov.end()) return it->second;
  return instance_of(key, cfg_.instances);
}

InstanceId LiveEngine::route_current(Side group, KeyId key) const {
  return route(*route_table_.load(std::memory_order_acquire), group, key);
}

void LiveEngine::note_drop(std::uint64_t n) {
  records_dropped_.fetch_add(n, std::memory_order_relaxed);
  live_metrics().records_dropped.add(n);
  if (!drop_warned_.exchange(true, std::memory_order_relaxed)) {
    FJ_WARN("live") << "dropping records (engine not running, or worker "
                       "crashed and not yet respawned); see "
                       "LiveStats::records_dropped for the total";
  }
}

void LiveEngine::ring_doorbell(LaneSet& ls) {
  // Pairs with Worker::park(). The caller's work is already published
  // (ring writes and `pushed` bumps, or the control-queue push) before
  // this fence; park() arms `armed` (seq_cst RMW), fences, then
  // re-checks for work. Whichever fence is later in the single seq_cst
  // order makes the other side's prior write visible: either this load
  // observes the arm — and we notify under the bell mutex, whose
  // ordering covers the parker's final under-lock re-check — or the
  // parker's re-check observes the work we just published. Either way
  // no wakeup is lost; the 10ms wait backstop covers nothing but
  // paranoia.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (ls.armed.load(std::memory_order_relaxed) == 0) return;
  MutexLock lock(ls.bell_mutex);
  ls.bell.notify_all();
}

void LiveEngine::lane_push_batch(Side group, InstanceId id,
                                 std::size_t lane_idx,
                                 ProducerSlot::Stage& stage,
                                 std::vector<std::uint8_t>& failed) {
  const std::size_t total = stage.msgs.size();
  if (total == 0) return;
  LaneSet& ls = *lane_sets_[static_cast<int>(group)][id];
  DataLane& lane = *ls.lanes[lane_idx];
  std::size_t done = 0;
  std::uint32_t tries = 0;
  bool closed_logged = false;
  while (done < total) {
    // The open flag is cleared while the slot's worker is crashed:
    // checked every retry so backpressure on a dead worker fails fast
    // instead of spinning until respawn.
    if (!ls.open.load(std::memory_order_acquire)) {
      if (!closed_logged) {
        tel::flight_record(tel::FlightEvent::kLaneClosedDrop,
                           tel::flight_id(static_cast<int>(group), id),
                           lane_idx);
        closed_logged = true;
      }
      if (log_ != nullptr && cfg_.ingest.replay &&
          !finished_.load(std::memory_order_acquire)) {
        // Ingest replay mode: the records are already durable in the
        // log. Wait for the respawn instead of dropping — the recovery
        // pass replays every logged delivery up to the end-offset it
        // reads before this slot reopens, and anything this push lands
        // afterwards is consumed live (or recognized as covered by the
        // fresh worker's watermark). This wait is what turns bounded
        // loss into records_dropped == 0.
        clk_->sleep_for(producer_jittered(std::chrono::microseconds(50)));
        continue;
      }
      break;  // drop the undelivered suffix
    }
    const std::size_t m =
        lane.ring.try_push_batch(stage.msgs.data() + done, total - done);
    if (m > 0) {
      // Bumped only after the records are visible in the ring, so a
      // watermark captured from `pushed` is always drainable.
      lane.pushed.fetch_add(m, std::memory_order_release);
      ring_doorbell(ls);
      done += m;
      tries = 0;
      continue;
    }
    if (lane.ring.closed()) break;  // engine finishing: drop the rest
    // Full: backpressure. The consumer always makes progress (barrier
    // drains consume data; control handlers are finite), so this wait
    // is bounded.
    if (++tries < 64) {
      std::this_thread::yield();
    } else {
      if (tries == 64) {  // once per blocking episode
        live_metrics().lane_backpressure.add(1);
        tel::flight_record(tel::FlightEvent::kLaneBlocked,
                           tel::flight_id(static_cast<int>(group), id),
                           lane_idx);
      }
      clk_->sleep_for(producer_jittered(std::chrono::microseconds(50)));
    }
  }
  if (done < total) {
    note_drop(total - done);  // one drop per undelivered delivery
    for (std::size_t i = done; i < total; ++i) failed[stage.idx[i]] = 1;
  }
  stage.msgs.clear();
  stage.idx.clear();
}

std::size_t LiveEngine::push_batch(const Record* recs, std::size_t n,
                                   int producer) {
  if (n == 0) return 0;
  if (!running()) {
    note_drop(2 * n);  // both deliveries of every record are lost
    return 0;
  }
  records_in_.fetch_add(n, std::memory_order_relaxed);
  live_metrics().records_in.add(n);
  live_metrics().batches.add(1);
  if (!laned()) return push_batch_legacy(recs, n);

  std::size_t lane_idx;
  Mutex* fallback = nullptr;
  if (producer < 0 ||
      producer >= static_cast<int>(cfg_.max_producers)) {
    // Unregistered callers share the last lane, serialized by a mutex
    // (the SPSC contract needs one producer at a time per lane).
    fallback = &fallback_mutex_;
    lane_idx = cfg_.max_producers;
  } else {
    lane_idx = static_cast<std::size_t>(producer);
  }
  MutexLockMaybe fallback_lock(fallback);
  ProducerSlot& slot = producer_slots_[lane_idx];

  // Seqlock critical section (odd = inside): brackets the routing-table
  // read and every lane push for this batch, so the monitor's grace
  // period after a routing publish knows when all old-table routing
  // decisions have fully landed in the lanes. seq_cst on the bracket
  // and the table load pairs with publish_routes(); see
  // wait_for_producers() for the ordering argument.
  slot.cs.fetch_add(1, std::memory_order_seq_cst);
  const RouteTable* rt = route_table_.load(std::memory_order_seq_cst);
  const std::uint32_t every = cfg_.latency_sample_every;
  const std::size_t insts = cfg_.instances;
  std::size_t delivered = 0;

  // Sampling stamp via countdown (no per-record divide). The slot is
  // owned by one producer thread (or the fallback mutex), so the plain
  // field is safe.
  const auto stamp_maybe = [&]() {
    auto stamp = kUnsampled;
    if (every != 0) {
      if (slot.sample_countdown == 0) {
        stamp = std::chrono::steady_clock::now();  // fastjoin-lint: allow(protocol-clock) latency telemetry
        slot.sample_countdown = every - 1;
      } else {
        --slot.sample_countdown;
      }
    }
    return stamp;
  };
  // Stage a delivery for destination worker (group, dst); `i` is the
  // record's index within the current chunk, for the drop ledger.
  const auto stage_to = [&](Side group, InstanceId dst, const DataMsg& msg,
                            std::size_t i) {
    auto& st =
        slot.stages[static_cast<std::size_t>(group) * insts + dst];
    st.msgs.push_back(msg);
    st.idx.push_back(static_cast<std::uint32_t>(i));
  };
  // Push every staged destination run with one batched lane operation
  // each, then count the chunk's records whose two deliveries both
  // landed. Per-lane FIFO and per-partition offset order survive the
  // regrouping: within a chunk records are staged in index order, and
  // chunks flush before the next one stages.
  const auto flush = [&](std::size_t k) {
    slot.failed.assign(k, 0);
    for (std::size_t d = 0; d < slot.stages.size(); ++d) {
      auto& st = slot.stages[d];
      if (st.msgs.empty()) continue;
      lane_push_batch(static_cast<Side>(d / insts),
                      static_cast<InstanceId>(d % insts), lane_idx, st,
                      slot.failed);
    }
    std::size_t ok = 0;
    for (std::size_t i = 0; i < k; ++i) {
      ok += slot.failed[i] == 0 ? 1u : 0u;
    }
    return ok;
  };

  constexpr std::size_t kStage = 128;
  if (log_ != nullptr) {
    // Durable before delivered, chunked: stage each chunk's routing
    // decisions, persist them with ONE append_batch (one partition-lock
    // acquisition and one backend write instead of per-record), then
    // push each destination's run with one batched ring operation. All
    // of it stays inside this critical section, so the logged
    // destinations are exactly where the pushes below go.
    LogRecord staged[kStage];
    const auto part = static_cast<std::uint32_t>(lane_idx);
    for (std::size_t r0 = 0; r0 < n; r0 += kStage) {
      const std::size_t k = std::min(kStage, n - r0);
      for (std::size_t i = 0; i < k; ++i) {
        const Record& rec = recs[r0 + i];
        staged[i] = LogRecord{rec, route(*rt, rec.side, rec.key),
                              route(*rt, other_side(rec.side), rec.key),
                              0};
      }
      const std::uint64_t base = log_->append_batch(part, staged, k);
      for (std::size_t i = 0; i < k; ++i) {
        const Record& rec = recs[r0 + i];
        const DataMsg msg{rec, stamp_maybe(), part, base + i};
        stage_to(rec.side, staged[i].store_dst, msg, i);
        // Both deliveries are always attempted — a full store lane must
        // not suppress the probe half (ex-`ok &= ...` semantics).
        stage_to(other_side(rec.side), staged[i].probe_dst, msg, i);
      }
      delivered += flush(k);
    }
    slot.cs.fetch_add(1, std::memory_order_seq_cst);
    tel::flight_record(tel::FlightEvent::kBatchPushed, n, delivered);
    return delivered;
  }
  for (std::size_t r0 = 0; r0 < n; r0 += kStage) {
    const std::size_t k = std::min(kStage, n - r0);
    for (std::size_t i = 0; i < k; ++i) {
      const Record& rec = recs[r0 + i];
      const DataMsg msg{rec, stamp_maybe(), kNoIngestPartition, 0};
      stage_to(rec.side, route(*rt, rec.side, rec.key), msg, i);
      stage_to(other_side(rec.side),
               route(*rt, other_side(rec.side), rec.key), msg, i);
    }
    delivered += flush(k);
  }
  slot.cs.fetch_add(1, std::memory_order_seq_cst);
  tel::flight_record(tel::FlightEvent::kBatchPushed, n, delivered);
  return delivered;
}

/// Pre-optimization data plane: route lookup and both enqueues under the
/// global routing lock, one condvar-waking queue push per delivery, a
/// clock read per sampled record. Exists so bench/live_throughput can
/// record an honest before/after in one run.
std::size_t LiveEngine::push_batch_legacy(const Record* recs,
                                          std::size_t n) {
  MutexLock lock(route_mutex_);
  const RouteTable& rt = *route_table_.load(std::memory_order_acquire);
  // All legacy pushes are serialized by route_mutex_, so the fallback
  // slot's sampling tick is safe to use here.
  ProducerSlot& slot = producer_slots_[cfg_.max_producers];
  const std::uint32_t every = cfg_.latency_sample_every;
  std::size_t delivered = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const Record& rec = recs[r];
    auto stamp = kUnsampled;
    if (every != 0) {
      if (slot.sample_countdown == 0) {
        stamp = std::chrono::steady_clock::now();  // fastjoin-lint: allow(protocol-clock) latency telemetry
        slot.sample_countdown = every - 1;
      } else {
        --slot.sample_countdown;
      }
    }
    const InstanceId store_dst = route(rt, rec.side, rec.key);
    const InstanceId probe_dst =
        route(rt, other_side(rec.side), rec.key);
    bool ok = true;
    if (!worker(rec.side, store_dst)
             .send(DataMsg{rec, stamp})) {
      note_drop(1);
      ok = false;
    }
    if (!worker(other_side(rec.side), probe_dst)
             .send(DataMsg{rec, stamp})) {
      note_drop(1);
      ok = false;
    }
    if (ok) ++delivered;
  }
  return delivered;
}

template <typename Mutate>
void LiveEngine::publish_routes(Mutate&& mutate) {
  // The monitor thread is the sole mutator, so the unsynchronized read
  // of the current table is safe.
  const RouteTable* old = route_table_.load(std::memory_order_acquire);
  auto* next = new RouteTable(*old);
  mutate(*next);
  {
    // route_mutex_ serializes against legacy-mode pushes and pins
    // worker slots; laned producers never take it.
    MutexLock lock(route_mutex_);
    route_table_.store(next, std::memory_order_seq_cst);
  }
  wait_for_producers();
  delete old;
}

void LiveEngine::wait_for_producers() {
  if (!laned()) return;  // legacy pushes serialize on route_mutex_
  // Ordering: a producer enters its critical section (seq_cst RMW),
  // then loads the table (seq_cst); we stored the new table (seq_cst),
  // then load each counter (seq_cst). If a producer read the *old*
  // table, its table-load precedes our store in the single total order
  // of seq_cst operations, hence its cs-enter precedes our counter
  // load: we observe it in-section (odd, and wait it out) or already
  // exited (its exit RMW release-sequences with our acquire re-reads).
  // Either way every old-table routing decision — including the lane
  // pushes and `pushed` bumps inside the section — happens-before this
  // function returns, which is what makes both old-table reclamation
  // and post-grace watermark capture safe.
  for (auto& slot : producer_slots_) {
    const std::uint64_t c0 = slot.cs.load(std::memory_order_seq_cst);
    if ((c0 & 1) == 0) continue;  // outside a critical section
    std::uint32_t tries = 0;
    while (slot.cs.load(std::memory_order_acquire) == c0) {
      // In-section producers finish quickly unless backpressured on a
      // full lane; workers keep draining, so this terminates.
      if (++tries < 64) {
        std::this_thread::yield();
      } else {
        // Replay mode blocks a producer on a crashed worker's closed
        // slot *inside* its critical section (the record is already
        // durable; the producer waits for the respawn). The supervisor
        // is this very thread — so respawn crashed workers while
        // waiting the section out, or neither side could progress when
        // a crash lands between a supervision pass and a routing
        // publish.
        if (log_ != nullptr && cfg_.ingest.replay) supervise();
        clk_->sleep_for(jittered(std::chrono::microseconds(50)));
      }
    }
  }
}

std::vector<std::uint64_t> LiveEngine::capture_watermarks(
    Side group, InstanceId id) const {
  if (!laned()) return {};  // queue FIFO already orders control vs data
  const LaneSet& ls = *lane_sets_[static_cast<int>(group)][id];
  std::vector<std::uint64_t> wm(ls.lanes.size());
  for (std::size_t i = 0; i < ls.lanes.size(); ++i) {
    wm[i] = ls.lanes[i]->pushed.load(std::memory_order_acquire);
  }
  return wm;
}

void LiveEngine::crash(Side group, InstanceId id) {
  if (!running()) return;
  const int g = static_cast<int>(group);
  // The routing lock pins the worker slot against a concurrent respawn.
  MutexLock lock(route_mutex_);
  if (id >= workers_[g].size()) return;
  Worker& w = *workers_[g][id];
  if (w.crashed()) return;
  // Close the slot's lanes first so producers backpressured on them
  // fail fast instead of waiting for a consumer that just died.
  if (laned()) {
    lane_sets_[g][id]->open.store(false, std::memory_order_release);
  }
  w.crash();
  crashes_.fetch_add(1, std::memory_order_relaxed);
  live_metrics().crashes.add(1);
  tel::flight_record(tel::FlightEvent::kCrash,
                     tel::flight_id(g, id));
  tel::TraceLog::global().instant("crash", "fault");
  FJ_WARN("live") << side_name(group) << "-" << id << " crashed";
}

void LiveEngine::chaos_hook(Side group, InstanceId src, InstanceId dst,
                            MigrationPhase phase) {
  if (!cfg_.chaos) return;
  std::string name = "chaos:";
  name += migration_phase_name(phase);
  tel::TraceLog::global().instant(name, "migration");
  cfg_.chaos(group, src, dst, phase);
}

std::chrono::nanoseconds LiveEngine::jittered(
    std::chrono::nanoseconds base) {
  if (base.count() <= 1) return base;
  const auto half = static_cast<std::uint64_t>(base.count()) / 2;
  return std::chrono::nanoseconds(
      half + backoff_rng_.next_below(half + 1));
}

template <typename T>
std::shared_ptr<T> LiveEngine::await_reply(
    std::future<std::shared_ptr<T>>& fut, Side group, InstanceId id) {
  const auto deadline = clk_->now() + cfg_.migration_timeout;
  auto slice = std::chrono::milliseconds(1);
  for (;;) {
    // Jittered bounded exponential backoff: each wait slice is uniform
    // in [slice/2, slice], so repeated supervised waits cannot fall
    // into lockstep with worker-side periodic activity (synchronized
    // retry storms). Under a VirtualClock the future is only polled
    // and the slice elapses on virtual time — no wall-clock sleep.
    const auto wait = jittered(slice);
    const bool real_wait = clk_ == &real_clock();
    const auto status =
        fut.wait_for(real_wait ? wait : std::chrono::nanoseconds{0});
    if (status == std::future_status::ready) {
      try {
        return fut.get();
      } catch (const std::future_error&) {
        return nullptr;  // promise died unfulfilled with the worker
      }
    }
    if (!real_wait) clk_->sleep_for(wait);
    // Keep supervising while blocked: a backlogged worker can take
    // seconds to reach our request, and crashed workers elsewhere must
    // not wait for it. If the awaited worker itself crashed, respawning
    // it destroys its queue — and with it our request's promise — so
    // the future becomes ready with future_error above and the caller
    // runs its abort path (against the already-respawned worker, which
    // accepts the abort batch).
    supervise();
    if (clk_->now() >= deadline) {
      FJ_WARN("live") << side_name(group) << "-" << id
                      << " unresponsive for migration reply after "
                      << cfg_.migration_timeout.count()
                      << " ms; declaring it dead";
      crash(group, id);
      return nullptr;
    }
    slice = std::min(slice * 2, std::chrono::milliseconds(64));
  }
}

bool LiveEngine::try_migrate(Side group) {
  const int g = static_cast<int>(group);
  std::vector<InstanceLoad> loads;
  loads.reserve(workers_[g].size());
  double heaviest = 0.0;
  for (auto& w : workers_[g]) {
    InstanceLoad l;
    l.stored = w->stored_count();
    l.queued = w->queue_length();
    // The "incoming rate" half of the paper's phi: probes processed
    // since the previous monitor tick. A respawned worker restarts its
    // counter from zero, hence the clamp.
    const std::uint64_t done = w->probes_done();
    const std::uint64_t prev = probe_marks_[g].size() > w->id()
                                   ? probe_marks_[g][w->id()]
                                   : 0;
    l.queued += done >= prev ? done - prev : done;
    loads.push_back(l);
    heaviest = std::max(heaviest, l.load());
  }
  for (std::size_t i = 0; i < workers_[g].size(); ++i) {
    probe_marks_[g].resize(workers_[g].size(), 0);
    probe_marks_[g][i] = workers_[g][i]->probes_done();
  }

  last_li_ = load_imbalance(loads, cfg_.planner.floor_eps);
  (group == Side::kR ? live_metrics().li_r : live_metrics().li_s)
      .set(last_li_);
  const auto pair = pick_migration_pair(loads, cfg_.planner);
  if (!pair || heaviest < cfg_.min_heaviest_load) return false;

  // No Worker references are held across the supervised waits below: a
  // respawn (inside await_reply) replaces the slot's unique_ptr, so
  // every access re-reads the slot. The monitor is the only slot
  // mutator, making lock-free re-reads safe on this thread.
  if (worker(group, pair->src).crashed() ||
      worker(group, pair->dst).crashed()) {
    return false;
  }

  // Parent span over the whole protocol; each phase below opens a
  // child span on the same (monitor) track so the trace shows the
  // protocol's timeline: extract -> hold -> hold_ack -> route_publish
  // -> transfer -> absorb (or abort).
  tel::ScopedSpan mig_span("migrate", "migration");
  mig_span.arg("side", g);
  mig_span.arg("src", pair->src);
  mig_span.arg("dst", pair->dst);
  tel::flight_record(tel::FlightEvent::kMigrationStart,
                     tel::flight_id(g, pair->src),
                     tel::flight_id(g, pair->dst));

  // The source's respawn generation at extraction time. supervise()
  // runs inside every supervised wait below, so the source slot can be
  // rebuilt while the monitor holds the extracted batch; the generation
  // is re-checked before the routing publish (see below).
  const std::uint64_t src_gen = slot_gen_[g][pair->src];

  // 1. Select + extract at the source (supervised wait). The barrier
  // makes the selection see every record routed here before this
  // moment, like the old shared-FIFO enqueue did.
  std::shared_ptr<MigrationBatch> batch;
  {
    tel::ScopedSpan span("extract", "migration");
    SelectExtractReq sel;
    sel.dst_load = loads[pair->dst];
    auto sel_future = sel.reply.get_future();
    if (!worker(group, pair->src)
             .send(std::move(sel),
                   capture_watermarks(group, pair->src))) {
      return false;  // crashed; nothing started
    }
    batch = await_reply(sel_future, group, pair->src);
    span.arg("keys", batch ? static_cast<std::int64_t>(
                                 batch->keys.size())
                           : -1);
  }
  if (!batch) {
    // Source died before/during extraction. Nothing was installed at
    // the target and routing is untouched; the extracted tuples (if
    // any) died with the source and restore from its checkpoint.
    ++migrations_aborted_;
    live_metrics().migrations_aborted.add(1);
    tel::flight_record(tel::FlightEvent::kMigrationAbort,
                       tel::flight_id(g, pair->src),
                       tel::flight_id(g, pair->dst));
    return false;
  }
  if (batch->keys.empty()) {
    TakeForwardReq tf;  // clears the (empty) forwarding set
    tf.extract_epoch = batch->extract_epoch;
    auto f = tf.reply.get_future();
    if (worker(group, pair->src).send(std::move(tf))) {
      await_reply(f, group, pair->src);
    }
    return false;
  }

  // Abort-delivery accounting, mirroring the checker's abort_to_src.
  // A failed send loses the batch when the log cannot re-drive it, and
  // loses any collected-forwarded records either way (their offsets sit
  // below the consumed watermarks, so replay suppresses them). A send
  // that lands on a slot REBUILT since the extraction arrives after the
  // fresh slot may already have served probes against the missing
  // bucket; without the log nothing re-drives those pairs, so the batch
  // is superset-charged to the ledger (the re-merge itself still lands
  // and seq-dedups).
  const bool can_replay = log_ != nullptr && cfg_.ingest.replay;
  auto send_abort = [&](bool replay_pending,
                        std::shared_ptr<std::vector<Record>> fwd) {
    if (!worker(group, pair->src)
             .send(AbortMigrationReq{batch, replay_pending, fwd})) {
      if (!can_replay) {
        buffered_lost_ += batch->stored.size() +
                          (replay_pending ? batch->pending.size() : 0);
      }
      if (fwd) buffered_lost_ += fwd->size();
    } else if (!can_replay && slot_gen_[g][pair->src] != src_gen) {
      buffered_lost_ += batch->stored.size();
    }
  };

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kSelected);

  // 2. Target starts holding the migrating keys — *acknowledged*
  // before the routing publish. Control and data ride different
  // channels now, so "hold installed before any rerouted record" must
  // be enforced explicitly rather than by queue order.
  bool hold_sent;
  std::future<std::shared_ptr<HoldAck>> hold_future;
  {
    tel::ScopedSpan span("hold", "migration");
    span.arg("keys", static_cast<std::int64_t>(batch->keys.size()));
    HoldReq hold;
    hold.keys = batch->keys;
    hold_future = hold.reply.get_future();
    // Record the in-flight hold BEFORE the send: the target can crash
    // and be respawned (inside await_reply's supervise()) at any point
    // from here until the Release/Abort, and its rebuild must
    // re-install the hold. Cleared on every exit path below.
    inflight_hold_ = {true, g, pair->dst, batch->keys};
    hold_sent = worker(group, pair->dst).send(std::move(hold));
  }
  std::shared_ptr<HoldAck> ack;
  {
    tel::ScopedSpan span("hold_ack", "migration");
    ack = hold_sent ? await_reply(hold_future, group, pair->dst)
                    : nullptr;
  }
  if (!ack) {
    // Target crashed (or went unresponsive and was declared dead)
    // before the hold was installed: full rollback at the source.
    // Routing was never changed, so the source re-merges the batch and
    // replays pending plus its forward buffer locally. If the target
    // was already respawned inside the wait, its rebuild re-installed
    // the hold (the HoldReq itself may have died in the dead queue) —
    // release it with an empty buffer; on a worker without the hold
    // this is a no-op.
    tel::ScopedSpan span("abort", "migration");
    inflight_hold_.active = false;
    worker(group, pair->dst)
        .send(ReleaseReq{std::make_shared<std::vector<Record>>()});
    send_abort(/*replay_pending=*/true, nullptr);
    ++migrations_aborted_;
    live_metrics().migrations_aborted.add(1);
    tel::flight_record(tel::FlightEvent::kMigrationAbort,
                       tel::flight_id(g, pair->src),
                       tel::flight_id(g, pair->dst));
    FJ_WARN("live") << "aborted migration " << pair->src << "->"
                    << pair->dst << " (target died before Hold)";
    return false;
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kHeld);

  // Last check before the point of no return: if the source slot was
  // rebuilt while the monitor waited (it crashed after extracting and
  // supervise() respawned it inside await_reply), the fresh source has
  // already regenerated the batch's tuples from checkpoint + log
  // replay — the log entries still carry its id and the keys still
  // route there. Publishing would fork the keys' history between the
  // monitor's batch copy and the restored copies: probes served at the
  // fresh source in the meantime saw a store the target will never
  // have. Abort instead: release the target's hold and hand the batch
  // back to the fresh source, whose merge seq-dedups against the
  // replay-restored tuples.
  if (slot_gen_[g][pair->src] != src_gen) {
    tel::ScopedSpan span("abort", "migration");
    inflight_hold_.active = false;
    worker(group, pair->dst)
        .send(ReleaseReq{std::make_shared<std::vector<Record>>()});
    send_abort(/*replay_pending=*/true, nullptr);
    ++migrations_aborted_;
    live_metrics().migrations_aborted.add(1);
    tel::flight_record(tel::FlightEvent::kMigrationAbort,
                       tel::flight_id(g, pair->src),
                       tel::flight_id(g, pair->dst));
    FJ_WARN("live") << "aborted migration " << pair->src << "->"
                    << pair->dst
                    << " (source slot rebuilt before RoutePublish)";
    return false;
  }

  // 3. Routing update: copy-on-write publish of a new table, then a
  // producer grace period, remembering the prior override state for
  // rollback.
  std::vector<std::pair<KeyId, std::optional<InstanceId>>> prev;
  prev.reserve(batch->keys.size());
  {
    tel::ScopedSpan span("route_publish", "migration");
    span.arg("keys", static_cast<std::int64_t>(batch->keys.size()));
    publish_routes([&](RouteTable& t) {
      auto& ov = t.overrides[g];
      for (KeyId k : batch->keys) {
        const auto it = ov.find(k);
        prev.emplace_back(
            k, it == ov.end() ? std::nullopt
                              : std::optional<InstanceId>(it->second));
        if (instance_of(k, cfg_.instances) == pair->dst) {
          ov.erase(k);
        } else {
          ov[k] = pair->dst;
        }
      }
    });
    tel::flight_record(tel::FlightEvent::kCtrlRoutePublish,
                       tel::flight_id(g, pair->dst),
                       batch->keys.size());
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kRouted);

  // 4. Collect what the source diverted meanwhile (supervised wait).
  // The watermarks are captured *after* the publish + grace period, so
  // draining past them forwards every record that was routed to the
  // source under the old table before the forward buffer is returned.
  std::shared_ptr<std::vector<Record>> forwarded;
  {
    tel::ScopedSpan span("transfer", "migration");
    TakeForwardReq tf;
    tf.extract_epoch = batch->extract_epoch;
    auto fwd_future = tf.reply.get_future();
    if (worker(group, pair->src)
            .send(std::move(tf),
                  capture_watermarks(group, pair->src))) {
      forwarded = await_reply(fwd_future, group, pair->src);
    }
    span.arg("forwarded",
             forwarded ? static_cast<std::int64_t>(forwarded->size())
                       : -1);
  }
  if (!forwarded) {
    // Source died after the routing update: roll forward. The batch is
    // safe in monitor memory; only the forward buffer died with the
    // source (loss bounded by the migration window).
    forwarded = std::make_shared<std::vector<Record>>();
    FJ_WARN("live") << "migration " << pair->src << "->" << pair->dst
                    << ": source died before TakeForward; rolling "
                       "forward with an empty forward buffer";
  }

  chaos_hook(group, pair->src, pair->dst, MigrationPhase::kForwarded);

  // Completion barrier (the checker's enabled() gate on kAbsorb /
  // kRelease): never commit while the source slot is down. Its recovery
  // replay retargets records for the migrated keys to the target, and
  // respawning it HERE makes those retargets enqueue behind the hold —
  // they park in the target's held buffer and drain in the
  // Release-driven flush — instead of racing the commit after the hold
  // is gone.
  if (worker(group, pair->src).crashed()) supervise();

  // 5. Target merges and replays, preserving per-key order.
  bool absorb_ok, release_ok;
  {
    tel::ScopedSpan span("absorb", "migration");
    span.arg("tuples", static_cast<std::int64_t>(batch->stored.size()));
    absorb_ok = worker(group, pair->dst).send(AbsorbReq{batch});
    release_ok =
        absorb_ok && worker(group, pair->dst).send(ReleaseReq{forwarded});
  }
  if (!absorb_ok || !release_ok) {
    tel::ScopedSpan span("abort", "migration");
    // The target is dead and the routing is about to roll back, so its
    // eventual respawn must NOT re-install the hold: no rerouted
    // records will arrive and no Release would ever clear it.
    inflight_hold_.active = false;
    // Target crashed mid-absorb: roll back, in the order the checker
    // proved out. Routes first, so everything that happens next sees
    // the batch's keys back at the source. Then respawn the dead target
    // NOW — its recovery replay retargets the batch-keys' records to
    // the source, where the still-installed forwarding set diverts them
    // into the forward buffer. The abort goes out last and flushes that
    // buffer after the re-merge, so retargeted probes see the restored
    // bucket. (Any order of data vs the abort at the source is safe for
    // the same reason: pre-abort arrivals divert, post-abort arrivals
    // meet the re-merged store. When the absorb was already enqueued
    // the target may have served some pending records, so they are not
    // replayed; re-inserting *stored* tuples is always safe — they emit
    // nothing by themselves and re-merges seq-dedup.)
    publish_routes([&](RouteTable& t) {
      auto& ov = t.overrides[g];
      for (const auto& [k, p] : prev) {
        if (p) {
          ov[k] = *p;
        } else {
          ov.erase(k);
        }
      }
    });
    supervise();
    send_abort(/*replay_pending=*/!absorb_ok, forwarded);
    ++migrations_aborted_;
    live_metrics().migrations_aborted.add(1);
    tel::flight_record(tel::FlightEvent::kMigrationAbort,
                       tel::flight_id(g, pair->src),
                       tel::flight_id(g, pair->dst));
    FJ_WARN("live") << "aborted migration " << pair->src << "->"
                    << pair->dst << " (target died during Absorb); "
                       "routing rolled back";
    return false;
  }
  // Absorb + Release are enqueued: if the target dies before serving
  // them, the dead-queue drain ledgers their payloads — the hold no
  // longer needs re-installing on a rebuild.
  inflight_hold_.active = false;
  tuples_migrated_.fetch_add(batch->stored.size() + forwarded->size(),
                             std::memory_order_relaxed);
  ++migrations_;
  live_metrics().migrations.add(1);
  tel::flight_record(tel::FlightEvent::kMigrationDone,
                     tel::flight_id(g, pair->src),
                     batch->stored.size() + forwarded->size());
  return true;
}

void LiveEngine::broadcast_checkpoint() {
  tel::ScopedSpan span("checkpoint", "fault");
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) w->send(CheckpointReq{});
  }
  ++checkpoints_;
  live_metrics().checkpoints.add(1);
}

void LiveEngine::supervise() {
  for (int g = 0; g < 2; ++g) {
    for (InstanceId i = 0; i < workers_[g].size(); ++i) {
      if (workers_[g][i]->crashed()) respawn(static_cast<Side>(g), i);
    }
  }
}

void LiveEngine::respawn(Side group, InstanceId id) {
  const int g = static_cast<int>(group);
  tel::ScopedSpan span("respawn", "fault");
  span.arg("side", g);
  span.arg("instance", id);
  const bool replaying = log_ != nullptr && cfg_.ingest.replay;
  Worker* old = workers_[g][id].get();
  old->stop_and_join();
  // Fold the dead worker's counters into the retired aggregate so the
  // final stats still cover its lifetime.
  retired_.results += old->results();
  retired_.probes += old->probes_done();
  retired_.stores += old->stores_done();
  retired_.evicted += old->evicted();
  retired_.latency.merge(old->latency_hist());
  const auto crashed_at = old->crashed_at();
  const auto ckpt = old->latest_checkpoint();
  // The dead worker's consumed watermarks: deliveries below them were
  // processed before the crash, so replay must not re-emit them.
  std::vector<std::uint64_t> marks;
  if (replaying) marks = old->consumed_marks();
  // Loss ledger for what the log cannot replay: records inside
  // migration machinery (forward/held buffers, absorb/release payloads
  // stuck in the control queue) died with the worker. Legacy-mode data
  // envelopes discarded from the queue are ordinary dropped deliveries.
  buffered_lost_ += old->buffered_count();
  {
    std::uint64_t dead_data = 0;
    std::uint64_t dead_buffered = 0;
    std::vector<ReplayDelivery> salvaged;
    old->drain_dead_queue(dead_data, dead_buffered, salvaged);
    if (dead_data > 0) note_drop(dead_data);
    buffered_lost_ += dead_buffered;
    if (!salvaged.empty()) {
      if (replaying) {
        // Double fault: this worker died while a dead peer's replay
        // deliveries were still queued here. Re-enter replay cleanly —
        // re-route each delivery to the key's *current* owner (routing
        // may have rolled forward while it sat in the dead queue) and
        // either send it on or park it in that slot's retarget backlog
        // for its own respawn, instead of leaking the deliveries (or
        // leaving a wedged recovery for the migration_timeout
        // deadlock-breaker to clean up).
        std::vector<std::vector<ReplayDelivery>> by_owner(
            workers_[g].size());
        for (auto& d : salvaged) {
          by_owner[route_current(group, d.rec.key)].push_back(
              std::move(d));
        }
        for (InstanceId t = 0; t < by_owner.size(); ++t) {
          auto& batch = by_owner[t];
          if (batch.empty()) continue;
          if (t != id && !workers_[g][t]->crashed()) {
            ReplayReq rr;
            rr.deliveries = batch;  // copy: re-parked on a lost race
            if (workers_[g][t]->send(std::move(rr))) continue;
          }
          // This very slot (flushed to the fresh worker below), a dead
          // target, or a send that lost the race with a fresh crash.
          auto& backlog = retarget_backlog_[g][t];
          backlog.insert(backlog.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
        }
      } else {
        buffered_lost_ += salvaged.size();
      }
    }
  }

  LaneSet* ls = laned() ? lane_sets_[g][id].get() : nullptr;
  if (ls != nullptr) {
    // Drain the lane residue from the crash window (acting as the
    // lanes' temporary consumer — the dead worker's thread is joined).
    // Keeping `popped` in step with the discarded records preserves the
    // watermark-barrier arithmetic across the respawn. With replay
    // enabled the residue is not a loss: every residue record was
    // appended to the log before it was laned, sits at an offset below
    // the end-offset the replay pass reads, and is at-or-above the dead
    // worker's watermark (it was never popped) — so the replay
    // re-processes it.
    std::uint64_t residue = 0;
    for (auto& lane : ls->lanes) {
      std::uint64_t k = 0;
      while (lane->ring.try_pop()) ++k;
      if (k > 0) {
        lane->popped.fetch_add(k, std::memory_order_release);
        residue += k;
      }
    }
    if (residue > 0 && !replaying) note_drop(residue);
  }

  const std::uint32_t ingest_parts =
      log_ != nullptr ? log_->partitions() : 0;
  auto fresh = std::make_unique<Worker>(*this, id, group,
                                        cfg_.queue_capacity,
                                        cfg_.window_subwindows, ls,
                                        ingest_parts);
  slot_gen_[g][id]++;
  if (inflight_hold_.active && inflight_hold_.group == g &&
      inflight_hold_.dst == id) {
    // This slot is the target of an in-flight migration: the hold died
    // with the old worker, but the routing table may already (or soon)
    // divert the batch's keys here while the Absorb is still on its
    // way. Re-install the hold before replay and before the lanes
    // reopen so those probes park in the held buffer instead of being
    // served against a store that does not have the batch yet.
    fresh->preinstall_hold(inflight_hold_.keys);
    FJ_INFO("live") << side_name(group) << "-" << id
                    << " respawned mid-migration; hold re-installed on "
                    << inflight_hold_.keys.size() << " keys";
  }
  std::uint64_t restored = 0;
  {
    // The routing lock both gives a stable routing view for the restore
    // filter and pins the slot against concurrent crash()/legacy push.
    MutexLock lock(route_mutex_);
    if (ckpt) {
      for (const auto& [key, st] : ckpt->tuples) {
        // Keys that migrated away since the snapshot belong to another
        // instance now; resurrecting them here would leave unreachable
        // stale copies.
        if (route_current(group, key) != id) continue;
        fresh->restore_tuple(key, st);
        ++restored;
      }
      fresh->seed_checkpoint(ckpt);
    }
  }
  if (replaying) {
    // Replay on top of the checkpoint state, before the worker starts
    // and before its lanes reopen: blocked producers are still parked
    // on the closed slot, so the log's end-offsets read inside are a
    // stable upper bound on what the lanes will NOT deliver again.
    std::vector<std::uint64_t> from(ingest_parts, 0);
    if (ckpt && ckpt->offsets.size() == ingest_parts) {
      from = ckpt->offsets;
    }
    if (marks.size() != ingest_parts) marks.assign(ingest_parts, 0);
    replay_worker(group, id, *fresh, from, marks);
    // Crash-after-absorb accounting (the checker model's respawn
    // ledger): a tuple migrated INTO this slot is logged under its
    // ORIGINAL owner's id, so the replay pass above never scans it, and
    // the checkpoint image is its only other durable copy. Whatever the
    // rebuild did not resurrect is genuinely gone — the source is alive
    // (its log is not being replayed) and exactly-once replay cannot
    // re-read another worker's partitions. Charge it to the ledger so
    // the loss is bounded-and-explained, not silent; the window is
    // bounded by the checkpoint cadence.
    std::uint64_t absorbed_lost = 0;
    for (KeyId k : old->dead_store().keys()) {
      if (route_current(group, k) != id) continue;
      if (const auto* bucket = old->dead_store().find(k)) {
        for (const auto& st : *bucket) {
          if (!fresh->store_has(k, st.seq)) ++absorbed_lost;
        }
      }
    }
    if (absorbed_lost > 0) {
      buffered_lost_ += absorbed_lost;
      FJ_WARN("live") << side_name(group) << "-" << id << ": "
                      << absorbed_lost
                      << " absorbed tuple(s) unrecoverable by replay "
                         "(migrated in after the last checkpoint)";
    }
  }
  {
    MutexLock lock(route_mutex_);
    workers_[g][id] = std::move(fresh);  // destroys the old worker
  }
  workers_[g][id]->start();
  if (ls != nullptr) ls->open.store(true, std::memory_order_release);
  if (probe_marks_[g].size() > id) probe_marks_[g][id] = 0;
  // Deliver replay records other recoveries parked for this slot while
  // it was down.
  if (replaying && !retarget_backlog_[g][id].empty()) {
    ReplayReq rr;
    rr.deliveries = retarget_backlog_[g][id];  // copy: kept parked on
                                               // a lost race
    if (workers_[g][id]->send(std::move(rr))) {
      retarget_backlog_[g][id].clear();
    }
    // else: crashed again inside the send window; the backlog stays
    // parked and the next respawn re-enters replay with it.
  }
  ++recoveries_;
  tuples_restored_ += restored;
  recovery_time_total_ += std::chrono::steady_clock::now() - crashed_at;  // fastjoin-lint: allow(protocol-clock) recovery-time telemetry
  live_metrics().recoveries.add(1);
  span.arg("restored", static_cast<std::int64_t>(restored));
  tel::flight_record(tel::FlightEvent::kRespawn,
                     tel::flight_id(g, id), restored);
  FJ_INFO("live") << side_name(group) << "-" << id << " respawned, "
                  << restored << " tuples restored from checkpoint";
}

void LiveEngine::replay_worker(Side group, InstanceId id, Worker& fresh,
                               const std::vector<std::uint64_t>& from_offsets,
                               const std::vector<std::uint64_t>& marks) {
  const int g = static_cast<int>(group);
  tel::ScopedSpan span("replay", "fault");
  span.arg("side", g);
  span.arg("instance", id);
  const std::uint64_t replayed_before = records_replayed_;
  const std::uint32_t nparts = log_->partitions();
  // Per-partition read state: a chunked head buffer over [from, end).
  // `end` is read once, up front — the slot's lanes are still closed, so
  // every record appended after this point is delivered live, not
  // replayed, and nothing is covered twice.
  struct Head {
    std::vector<LogRecord> buf;
    std::size_t idx = 0;
    std::uint64_t next = 0;  // next offset to fetch
    std::uint64_t end = 0;   // exclusive replay bound
  };
  std::vector<Head> heads(nparts);
  for (std::uint32_t p = 0; p < nparts; ++p) {
    heads[p].next = std::max(from_offsets[p], log_->start_offset(p));
    heads[p].end = log_->end_offset(p);
  }
  constexpr std::size_t kChunk = 256;
  auto refill = [&](std::uint32_t p) -> bool {
    Head& h = heads[p];
    if (h.idx < h.buf.size()) return true;
    if (h.next >= h.end) return false;
    h.buf.clear();
    h.idx = 0;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk, h.end - h.next));
    log_->read(p, h.next, want, h.buf);
    if (h.buf.empty()) return false;
    h.next = h.buf.back().offset + 1;
    return true;
  };
  // Retargeted deliveries, grouped by current owner and flushed in
  // batches so a long replay never builds one giant message.
  std::vector<std::vector<ReplayDelivery>> retarget(workers_[g].size());
  auto flush_retarget = [&](InstanceId tid) {
    auto& pending = retarget[tid];
    if (pending.empty()) return;
    Worker& tw = *workers_[g][tid];
    if (!tw.crashed()) {
      ReplayReq rr;
      rr.deliveries = pending;  // copy: re-parked if the send loses
                                // the race with a fresh crash
      if (tw.send(std::move(rr))) {
        pending.clear();
        return;
      }
    }
    // The target is down too (or died inside the send window); park
    // the batch for its own respawn, which re-enters replay with it.
    auto& backlog = retarget_backlog_[g][tid];
    backlog.insert(backlog.end(),
                   std::make_move_iterator(pending.begin()),
                   std::make_move_iterator(pending.end()));
    pending.clear();
  };
  // The routing lock gives a stable view for the retarget decisions; the
  // monitor thread (migration orchestrator) is the caller, so routes
  // could not move under us anyway, but crash()/legacy pushes can race.
  MutexLock lock(route_mutex_);
  for (;;) {
    // K-way merge: pick the globally next record in the `precedes` total
    // order so replay preserves the store/probe interleaving the live
    // run would have produced.
    std::uint32_t best = nparts;
    for (std::uint32_t p = 0; p < nparts; ++p) {
      if (!refill(p)) continue;
      if (best == nparts ||
          precedes(heads[p].buf[heads[p].idx].rec,
                   heads[best].buf[heads[best].idx].rec)) {
        best = p;
      }
    }
    if (best == nparts) break;
    Head& h = heads[best];
    const LogRecord& lr = h.buf[h.idx++];
    const Record& rec = lr.rec;
    // Deliveries below the dead worker's consumed watermark were fully
    // processed before the crash; the fresh band (at or above it) never
    // reached the worker and must be re-driven.
    const bool fresh_band = lr.offset >= marks[best];
    if (rec.side == group && lr.store_dst == id) {
      const InstanceId cur = route_current(group, rec.key);
      if (cur == id) {
        // Seq-dedup inside replay_store protects against the checkpoint
        // already holding the consumed-band copies.
        fresh.replay_store(rec, fresh_band);
        ++records_replayed_;
      } else {
        // The key migrated away. Retarget regardless of the consumed
        // band: a fresh-band delivery never reached this worker, and a
        // consumed-band stored copy USUALLY travelled in the migration
        // batch — but it may instead have died in the dead worker's
        // forward buffer (diverted after the extraction, collected by
        // no one). Re-merging at the current owner is idempotent
        // (ReplayReq store deliveries seq-dedup), so the at-least-once
        // retarget is safe; probes stay band-gated below because
        // re-serving one would mint duplicate emissions.
        retarget[cur].push_back(ReplayDelivery{rec, true});
        ++replay_retargeted_;
        ++records_replayed_;
        if (retarget[cur].size() >= 1024) flush_retarget(cur);
      }
    } else if (rec.side != group && lr.probe_dst == id) {
      if (!fresh_band) {
        // Already probed — its matches were emitted before the crash;
        // re-probing would mint duplicate results.
        ++replay_suppressed_;
      } else {
        const InstanceId cur = route_current(group, rec.key);
        if (cur == id) {
          fresh.replay_probe(rec);
          ++records_replayed_;
        } else {
          retarget[cur].push_back(ReplayDelivery{rec, false});
          ++replay_retargeted_;
          ++records_replayed_;
          if (retarget[cur].size() >= 1024) flush_retarget(cur);
        }
      }
    }
  }
  for (InstanceId t = 0; t < retarget.size(); ++t) flush_retarget(t);
  // Start the fresh worker's watermarks at the replay bound: the live
  // copies of everything below it (lane residue, blocked producers'
  // in-flight batches) must be skipped when they arrive.
  for (std::uint32_t p = 0; p < nparts; ++p) {
    fresh.set_consumed(p, heads[p].end);
  }
  const std::uint64_t replayed = records_replayed_ - replayed_before;
  span.arg("replayed", static_cast<std::int64_t>(replayed));
  tel::flight_record(tel::FlightEvent::kReplay,
                     tel::flight_id(g, id), replayed);
}

void LiveEngine::truncate_ingest() {
  if (log_ == nullptr || !cfg_.ingest.replay) return;
  const std::uint32_t nparts = log_->partitions();
  std::vector<std::uint64_t> safe(nparts,
                                  std::numeric_limits<std::uint64_t>::max());
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) {
      const auto ckpt = w->latest_checkpoint();
      // Until every worker has checkpointed consumed offsets, nothing is
      // provably replay-free; keep the whole log.
      if (!ckpt || ckpt->offsets.size() != nparts) return;
      for (std::uint32_t p = 0; p < nparts; ++p) {
        safe[p] = std::min(safe[p], ckpt->offsets[p]);
      }
    }
  }
  // Records below every worker's checkpointed watermark can never be
  // needed again: any future replay starts at the crashed worker's own
  // checkpoint offsets, which are at or above this floor.
  for (std::uint32_t p = 0; p < nparts; ++p) {
    log_truncated_ += log_->truncate_before(p, safe[p]);
  }
}

void LiveEngine::monitor_loop() {
  tel::set_thread_label("monitor");
  pin_current_thread(plan_.monitor_cpu);
  auto next_window = clk_->now() + cfg_.subwindow_len;
  auto next_checkpoint = clk_->now() + cfg_.checkpoint_period;
  while (!stopping_.load(std::memory_order_relaxed)) {
    clk_->sleep_for(cfg_.monitor_period);
    if (stopping_.load(std::memory_order_relaxed)) break;
    supervise();
    // Periodic aggregation: every registered metric's current value is
    // appended to its time series on the monitor's cadence.
    tel::MetricRegistry::global().sample();
    if (cfg_.balancer) {
      try_migrate(Side::kR);
      try_migrate(Side::kS);
    }
    const auto now = clk_->now();
    if (cfg_.window_subwindows > 0 && now >= next_window) {
      next_window += cfg_.subwindow_len;
      for (int g = 0; g < 2; ++g) {
        for (auto& w : workers_[g]) w->send(AdvanceWindowReq{});
      }
    }
    if (cfg_.checkpoint_period.count() > 0 && now >= next_checkpoint) {
      next_checkpoint += cfg_.checkpoint_period;
      // Retention first, against the previous round's checkpoints — one
      // round conservative, but needs no ack tracking.
      truncate_ingest();
      broadcast_checkpoint();
    }
  }
}

LiveStats LiveEngine::finish() {
  if (!started_.load(std::memory_order_acquire) ||
      finished_.exchange(true, std::memory_order_acq_rel)) {
    FJ_ERROR("live") << "finish() without a running engine (call start() "
                        "first; finish() only once)";
    return {};
  }
  stopping_.store(true, std::memory_order_release);
  if (monitor_thread_.joinable()) monitor_thread_.join();

  // With replay enabled, recover any worker that died after the
  // monitor's last supervision pass so its log partition range gets
  // replayed and its lane residue is not silently discarded.
  if (log_ != nullptr && cfg_.ingest.replay) supervise();

  // Poison every data lane: producers fail from here on, workers drain
  // what is left and then see closed-and-empty. Ring each doorbell so a
  // parked worker re-evaluates closed-and-empty now instead of after
  // the 10ms backstop.
  for (int g = 0; g < 2; ++g) {
    for (auto& ls : lane_sets_[g]) {
      for (auto& lane : ls->lanes) lane->ring.close();
      ring_doorbell(*ls);
    }
  }

  LiveStats stats;
  LogHistogram merged(1.0, 1e12, 16);
  stats.results = retired_.results;
  stats.probes = retired_.probes;
  stats.stores = retired_.stores;
  stats.evicted = retired_.evicted;
  merged.merge(retired_.latency);
  for (int g = 0; g < 2; ++g) {
    for (auto& w : workers_[g]) {
      w->stop_and_join();
      stats.results += w->results();
      stats.probes += w->probes_done();
      stats.stores += w->stores_done();
      stats.evicted += w->evicted();
      merged.merge(w->latency_hist());
    }
  }
  stats.records_in = records_in_.load(std::memory_order_relaxed);
  stats.records_dropped = records_dropped_.load(std::memory_order_relaxed);
  stats.migrations = migrations_;
  stats.migrations_aborted = migrations_aborted_;
  stats.tuples_migrated = tuples_migrated_.load(std::memory_order_relaxed);
  stats.crashes = crashes_.load(std::memory_order_relaxed);
  stats.recoveries = recoveries_;
  stats.tuples_restored = tuples_restored_;
  stats.checkpoints = checkpoints_;
  if (log_ != nullptr) {
    const StreamLogStats log_stats = log_->stats();
    stats.ingest_appended = log_stats.appended_records;
    stats.ingest_backpressure = log_stats.backpressure_hits;
  }
  stats.log_truncated = log_truncated_;
  stats.records_replayed = records_replayed_;
  stats.replay_suppressed = replay_suppressed_;
  stats.replay_retargeted = replay_retargeted_;
  stats.buffered_lost = buffered_lost_;
  stats.mean_recovery_ms =
      recoveries_ > 0
          ? std::chrono::duration<double, std::milli>(recovery_time_total_)
                    .count() /
                static_cast<double>(recoveries_)
          : 0.0;
  stats.mean_latency_us = merged.mean() / 1e3;
  stats.p50_latency_us = merged.value_at_percentile(50) / 1e3;
  stats.p99_latency_us = merged.value_at_percentile(99) / 1e3;
  stats.p999_latency_us = merged.value_at_percentile(99.9) / 1e3;
  stats.latency_samples = merged.count();
  stats.final_li = last_li_;
  return stats;
}

}  // namespace fastjoin
