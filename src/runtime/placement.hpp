// Placement: CPU topology detection, a topology-aware default layout
// for live-engine threads, and optional core pinning.
//
// Two distinct products come out of this header, and the second
// matters even on machines where the first is a no-op:
//
//  * A PlacementPlan — which CPU each worker / producer / monitor
//    thread should land on, computed once at engine start from the
//    detected topology. Workers are laid out compactly so the two
//    instances that exchange a producer's store/probe halves share a
//    cache domain; producers fill in round-robin from the top so they
//    collide with workers as late as possible.
//  * A SpinPolicy — how aggressively data-plane idle loops may burn
//    cycles before blocking. This is derived from the ratio of engine
//    threads to usable CPUs: on an oversubscribed box (the common CI
//    shape: one core, dozens of threads) every spin iteration steals
//    the quantum from the thread we are waiting ON, so the policy
//    collapses spinning to zero and threads go straight to parking.
//    The multi-producer regression this PR fixes was exactly that
//    failure mode.
//
// Pinning is Linux-only (pthread_setaffinity_np); elsewhere
// pin_current_thread() reports failure and the engine runs unpinned —
// placement is advisory, never load-bearing for correctness.
#pragma once

#include <cstdint>
#include <vector>

namespace fastjoin {

/// What the process is allowed to run on, as detected at startup.
struct Topology {
  /// CPUs in the process affinity mask (>= 1; falls back to
  /// hardware_concurrency, then 1).
  std::vector<int> cpu_ids;

  std::uint32_t cpus() const {
    return static_cast<std::uint32_t>(cpu_ids.size());
  }

  static Topology detect();
};

/// Whether (and how) engine threads are pinned to cores.
enum class PinPolicy : std::uint8_t {
  kNone,     ///< never pin (default: correct everywhere, fast enough)
  kCompact,  ///< fill CPUs in order; related workers share a core/cache
  kSpread,   ///< stride workers across CPUs; maximizes per-thread cache
};

const char* pin_policy_name(PinPolicy p);

/// LiveConfig knobs for placement; all defaults preserve the
/// pre-placement behavior except spin auto-tuning, which only kicks in
/// when the thread count exceeds the CPU count.
struct PlacementConfig {
  PinPolicy pin = PinPolicy::kNone;
  bool pin_producers = false;  ///< pin caller threads at register_producer()
  bool pin_monitor = false;
  /// Data-plane idle spin iterations before yielding; kSpinAuto picks
  /// 0 when the engine is oversubscribed and a small budget otherwise.
  static constexpr std::uint32_t kSpinAuto = 0xffffffffu;
  std::uint32_t spin_iters = kSpinAuto;
};

/// Idle-loop discipline handed to every Backoff in the data plane.
struct SpinPolicy {
  std::uint32_t spin_iters = 4;   ///< busy iterations before yielding
  std::uint32_t yield_iters = 20; ///< sched_yield rounds before parking
  bool oversubscribed = false;    ///< threads > usable CPUs

  /// Derive from config + topology for an engine running
  /// `engine_threads` always-on threads (workers + monitor).
  static SpinPolicy derive(const PlacementConfig& cfg,
                           const Topology& topo,
                           std::uint32_t engine_threads);
};

/// The per-thread CPU assignment for one engine. Entries are CPU ids
/// from Topology::cpu_ids, or -1 for "leave unpinned".
struct PlacementPlan {
  std::vector<int> worker_cpu;    ///< [2 * instances], side-major
  std::vector<int> producer_cpu;  ///< [max_producers]
  int monitor_cpu = -1;

  static PlacementPlan plan(const PlacementConfig& cfg,
                            const Topology& topo,
                            std::uint32_t instances,
                            std::uint32_t max_producers);
};

/// Pin the calling thread to `cpu` (a Topology cpu_id). Returns false
/// when cpu < 0, pinning is unsupported on this platform, or the
/// syscall fails; the caller just runs unpinned.
bool pin_current_thread(int cpu);

}  // namespace fastjoin
