// Multi-process plane: shared-nothing workers over a real socket
// transport.
//
// Topology is a star: one router process ingests records, makes every
// routing decision, and owns the durable StreamLog; W worker processes
// each own one shard of both sides' JoinStores and execute the join.
// Worker i exchanges frames with the router over a single framed
// socket connection (src/net/); workers never talk to each other —
// migrations relay tuples through the router.
//
// Every record the router publishes is appended to the StreamLog
// *first*, stamped with the publish-time routing decision
// (store_dst / probe_dst = worker ids), and only then framed to the
// workers. The log is therefore a complete, replayable account of what
// each worker was supposed to receive, which is what makes crash
// recovery exact:
//
//   crash    = socket EOF (or waitpid) on a worker connection
//   recover  = SIGKILL the remains, fork/exec a fresh worker,
//              kRestore its last checkpoint snapshot (consumed
//              watermark C), re-inject any absorbed-but-uncheckpointed
//              migration batches (kAbsorb, seq-deduplicated), then
//              replay log entries with offset >= C stamped for that
//              worker — store halves deduplicated, probe halves below
//              the emit watermark E flagged kSuppressEmit so already-
//              delivered matches are not emitted twice.
//
// Exactness argument (full-history joins): the match-pair set is fixed
// by the `precedes` total order, independent of partitioning. A pair
// (r, s) is found iff the earlier tuple's store delivery is processed
// before the later tuple's probe delivery at their shared worker —
// guaranteed because the router is a single producer and each
// connection is FIFO. Workers flush kMatches (with an exclusive emit
// watermark) before answering kCheckpoint or kExtract, so E >= C
// always and replayed probes below E are exactly the already-emitted
// ones.
//
// Migration ("park at the router"): the single ingest point collapses
// the in-process Hold/TakeForward/Release machinery. While keys move,
// records touching them are parked *before* they are logged; on
// commit (route flip) or abort they are logged and delivered with
// their final stamps, preserving per-(side,key) FIFO. See
// docs/migration_protocol.md ("Wire mapping").
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datagen/record.hpp"
#include "engine/tuple.hpp"
#include "ingest/stream_log.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/process_supervisor.hpp"
#include "server/frontdoor.hpp"

namespace fastjoin {

struct MultiprocConfig {
  std::uint32_t workers = 4;
  /// "unix:<path>" or "tcp:<port>". "unix:" (empty path) picks a
  /// per-process temp path; "tcp:0" picks a free port. The resolved
  /// endpoint is available from MultiprocRouter::endpoint() after
  /// start().
  std::string endpoint = "unix:";
  /// argv prefix used to spawn a worker; the router appends
  /// `--multiproc-worker --worker-id <i> --connect <endpoint>`.
  /// Test/bench binaries pass {"/proc/self/exe"} and dispatch via
  /// multiproc_worker_maybe_run() before gtest/bench main.
  std::vector<std::string> worker_command;
  /// Ship MatchPair tuples to the router (for output comparison); when
  /// false only counts travel.
  bool collect_matches = false;
  /// Broadcast a checkpoint round every N published records (0 = only
  /// the forced post-migration checkpoints).
  std::uint64_t checkpoint_every = 0;
  /// Respawn + replay crashed workers. When false a crash permanently
  /// loses the worker and its undelivered entries count as dropped.
  bool respawn = true;
  /// Drop log segments below the minimum checkpointed offset.
  bool truncate_log = true;
  /// Entries per kData frame.
  std::size_t data_batch = 256;
  /// StreamLog shape (partitions is forced to 1: the router is the
  /// only producer). backend kFile makes the substrate durable on
  /// disk; kMemory is enough for worker-crash replay since the log
  /// lives in the router, which is outside the fault model.
  IngestConfig ingest;
  std::chrono::milliseconds spawn_connect_timeout{10'000};
  std::chrono::milliseconds migration_timeout{5'000};
  /// Serving front door (src/server/): when true the router also
  /// accepts client connections on serve_cfg.endpoint from the same
  /// event loop. Clients ingest through the admission-controlled
  /// kAppend path (the router stamps seq/ts — it owns the stream
  /// order) and read per-key snapshot state with kQuery. Workers ship
  /// match pairs so the query surface can answer "recent matches".
  bool serve = false;
  server::FrontDoorConfig serve_cfg;
};

struct MultiprocStats {
  std::uint64_t records_published = 0;
  std::uint64_t deliveries_sent = 0;   ///< delivery halves framed
  std::uint64_t matches_total = 0;     ///< emitted matches (crash-deduped)
  std::uint64_t records_dropped = 0;   ///< delivery halves lost for good
  std::uint64_t records_parked = 0;    ///< records parked during migrations
  std::uint64_t worker_crashes = 0;
  std::uint64_t respawns = 0;
  std::uint64_t replayed_entries = 0;  ///< log entries re-sent after a crash
  std::uint64_t suppressed_probes = 0; ///< probe halves replayed suppressed
  std::uint64_t reinjected_tuples = 0; ///< tuples re-absorbed after a crash
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t checkpoints_completed = 0;
  std::uint64_t tuples_migrated = 0;
  /// Per-worker finals from the kFinal frames (filled by finish()).
  std::vector<net::FinalMsg> worker_finals;
};

class MultiprocRouter {
 public:
  explicit MultiprocRouter(MultiprocConfig cfg);
  ~MultiprocRouter();
  MultiprocRouter(const MultiprocRouter&) = delete;
  MultiprocRouter& operator=(const MultiprocRouter&) = delete;

  /// Bind, spawn all workers, and complete their handshakes. False
  /// (with *err) when the bind fails, a spawn fails, or a worker does
  /// not check in within spawn_connect_timeout.
  bool start(std::string* err = nullptr);

  /// Resolved endpoint string (kernel-chosen port / temp path filled).
  const std::string& endpoint() const { return endpoint_str_; }

  /// Log + route + frame one record (or park it under an active
  /// migration). Applies backpressure: blocks pumping the loop while
  /// any worker's outbound queue is over its high watermark.
  void publish(const Record& rec);

  /// One event-loop turn + child reaping. Drives timers, reads worker
  /// frames, and handles crashes; publish()/finish() call it
  /// internally, long gaps between publishes should call it too.
  void pump(std::chrono::milliseconds wait = std::chrono::milliseconds(0));

  /// Move `keys` of `side` from worker `from` to worker `to` via the
  /// Extract/Absorb wire protocol. Queued when a migration is already
  /// in flight (one at a time, and the post-migration checkpoints of
  /// the previous one must land first — that ordering is what keeps
  /// crash replay and re-injection from overlapping).
  bool request_migration(Side side, std::uint32_t from, std::uint32_t to,
                         std::vector<KeyId> keys);
  bool migration_idle() const {
    return !mig_ && mig_queue_.empty() && !await_extract_.active;
  }

  /// Chaos primitive: SIGKILL worker `w` right now. Recovery happens
  /// on subsequent pump()s.
  bool kill_worker(std::uint32_t w);
  pid_t worker_pid(std::uint32_t w) const;

  /// Flush everything, send kFinish, and collect every worker's
  /// kFinal (respawning and replaying crashed workers as needed).
  /// False on timeout.
  bool finish(std::chrono::milliseconds timeout =
                  std::chrono::milliseconds(30'000));

  const MultiprocStats& stats() const { return stats_; }
  std::uint64_t matches_total() const { return stats_.matches_total; }
  /// Collected pairs (collect_matches mode); arrival order.
  std::vector<MatchPair> take_matches() { return std::move(matches_); }

  /// Current owner of (side, key) — base hash unless overridden by a
  /// completed migration.
  std::uint32_t owner(Side side, KeyId key) const;

  /// Serving front door (nullptr when cfg.serve is false or before
  /// start()). Admission stats and tenant accounting live here.
  server::FrontDoor* frontdoor() { return frontdoor_.get(); }

  /// Copy of the retained log (partition 0) in offset order — the
  /// replayable account of everything the router ingested. With
  /// truncate_log=false this is the full input history; the serving
  /// e2e test replays it through the in-process engine to obtain the
  /// byte-identical ground truth for front-door ingest, whose seq/ts
  /// stamps exist only in the router.
  std::vector<LogRecord> dump_log() const;

 private:
  struct WorkerSlot {
    std::uint32_t id = 0;
    pid_t pid = -1;
    std::unique_ptr<net::Connection> conn;
    bool alive = false;          ///< handshake done, conn open
    bool dead_forever = false;   ///< crashed with respawn disabled
    bool finished = false;       ///< clean kFinal received
    std::uint32_t incarnations = 0;
    net::DataBatchMsg pending;   ///< entries not yet framed
    /// Latest checkpoint; consumed_offset is the exclusive replay
    /// floor C (0 = never checkpointed, replay from the log start).
    net::SnapshotMsg snapshot;
    /// Exclusive emit watermark E: matches of probe deliveries below
    /// this offset have been received by the router.
    std::uint64_t emit_watermark = 0;
    /// Absorbed batches not yet covered by a checkpoint: must be
    /// re-injected if this worker crashes before completing a
    /// checkpoint with id >= safe_after.
    struct Reinject {
      net::AbsorbMsg batch;
      std::uint64_t safe_after = 0;
    };
    std::vector<Reinject> reinject;
    std::optional<net::FinalMsg> final;
  };

  struct Migration {
    enum class Phase { kExtractWait, kAbsorbWait, kEpilogue };
    std::uint64_t id = 0;
    Side side = Side::kR;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::vector<KeyId> keys;
    Phase phase = Phase::kExtractWait;
    net::ExtractBatchMsg batch;
    net::EventLoop::TimerId timer = 0;
    /// Pending post-migration checkpoint ids -> participant worker, so
    /// a participant crash can drop exactly its own pending entry.
    std::unordered_map<std::uint64_t, std::uint32_t> epilogue_ckpts;
  };

  struct QueuedMigration {
    Side side;
    std::uint32_t from, to;
    std::vector<KeyId> keys;
  };

  // Data plane.
  void log_and_route(const Record& rec);
  void deliver(std::uint32_t w, std::uint64_t offset, const Record& rec,
               std::uint8_t flags);
  void flush_pending(std::uint32_t w);
  void flush_all_pending();
  void wait_writable();

  // Connection plumbing.
  void on_accept(net::Socket peer);
  void attach_worker(std::uint32_t w, std::unique_ptr<net::Connection> conn);
  void on_worker_frame(std::uint32_t w, net::Frame& f);
  void on_worker_close(std::uint32_t w, const std::string& reason,
                       bool clean);
  bool protocol_error(std::uint32_t w, const std::string& what);

  // Crash handling.
  void handle_crash(std::uint32_t w, const std::string& reason);
  bool respawn_worker(std::uint32_t w, std::string* err);
  void restore_and_replay(std::uint32_t w);
  std::vector<std::string> worker_argv(std::uint32_t w) const;

  // Checkpoints.
  /// Issue a checkpoint request to `w`; returns the assigned ckpt id.
  std::uint64_t request_checkpoint_id(std::uint32_t w);
  void checkpoint_round();
  void on_checkpoint_done(std::uint32_t w, net::SnapshotMsg msg);
  void maybe_truncate_log();

  // Serving front door. The sink/query callbacks run inside event-loop
  // dispatch, so they must never pump() (re-entrancy) — the sink
  // refuses with false (-> kBackpressure) instead of blocking when
  // worker queues are over their high watermark.
  bool serve_sink(const std::string& tenant,
                  const std::vector<server::ClientRecord>& recs,
                  server::AppendAckMsg* ack);
  void serve_query(const server::QueryMsg& q, server::QueryResultMsg* out);
  std::uint64_t serve_inflight_bytes() const;
  /// Workers ship pairs when the host wants them or the query surface
  /// needs its recent-matches ring.
  bool ship_pairs() const { return cfg_.collect_matches || cfg_.serve; }

  // Migrations.
  void start_migration(QueuedMigration q);
  void start_next_migration();
  void on_extract_batch(std::uint32_t w, net::ExtractBatchMsg msg);
  void on_absorb_ack(std::uint32_t w, net::AbsorbAckMsg msg);
  void abort_migration(const std::string& why);
  void finish_migration_if_epilogue_done();
  void unpark();
  void reinject_into(std::uint32_t w, std::vector<net::WireTuple> tuples);
  bool parking(KeyId key) const;
  void arm_migration_timer();

  MultiprocConfig cfg_;
  net::EventLoop loop_;
  std::unique_ptr<net::Acceptor> acceptor_;
  net::Endpoint endpoint_;
  std::string endpoint_str_;
  std::unique_ptr<StreamLog> log_;
  ProcessSupervisor sup_;
  std::vector<WorkerSlot> workers_;
  /// Accepted but not yet identified by a kHello.
  std::vector<std::unique_ptr<net::Connection>> limbo_;

  /// Per-side routing overrides installed by completed migrations.
  std::unordered_map<KeyId, std::uint32_t> overrides_[2];

  std::optional<Migration> mig_;
  std::deque<QueuedMigration> mig_queue_;
  std::vector<Record> parked_;
  std::unordered_set<KeyId> park_keys_;

  /// An aborted migration whose kExtract reply is still in flight. The
  /// source already removed the tuples from its store, and the reinject
  /// can only be queued once the reply lands — so the keys stay parked
  /// until then, or probes racing the reply lose matches forever. While
  /// active, no new migration may start (it would repurpose the park).
  struct AwaitExtract {
    std::uint64_t mig_id = 0;
    std::uint32_t from = 0;
    bool active = false;
  };
  AwaitExtract await_extract_;

  std::uint64_t next_mig_id_ = 1;
  std::uint64_t next_ckpt_id_ = 1;
  std::uint64_t records_since_ckpt_ = 0;
  std::uint64_t pump_credit_ = 0;
  bool finishing_ = false;
  bool started_ = false;

  MultiprocStats stats_;
  std::vector<MatchPair> matches_;

  // --- serving state (cfg_.serve only) ------------------------------
  std::unique_ptr<server::FrontDoor> frontdoor_;
  /// Stream stamps owned by the single ingest point: per-side seq and
  /// a global arrival ts. Clients cannot forge positions.
  std::uint64_t serve_next_seq_[2] = {0, 0};
  std::uint64_t serve_next_ts_ = 0;
  /// Per-worker per-key stored-tuple counts rebuilt from each completed
  /// checkpoint snapshot — the query surface's consistent cut.
  struct ServeSnap {
    std::unordered_map<KeyId, std::uint64_t> counts[2];
    std::uint64_t ckpt_id = 0;
  };
  std::vector<ServeSnap> serve_snap_;
  /// Bounded ring of the newest match pairs (query "recent matches").
  std::deque<MatchPair> serve_recent_;
  static constexpr std::size_t kServeRecentCap = 4096;
};

/// Worker-process entry point: connect to the router at `endpoint`,
/// serve frames until kFinish (or the router goes away). Returns the
/// process exit code.
int multiproc_worker_run(std::uint32_t worker_id,
                         const std::string& endpoint);

/// argv glue for binaries that double as their own worker child
/// (tests, benches, fastjoin_worker): when argv contains
/// `--multiproc-worker`, runs the worker and returns its exit code;
/// otherwise returns -1 and the caller proceeds as usual.
int multiproc_worker_maybe_run(int argc, char** argv);

}  // namespace fastjoin
