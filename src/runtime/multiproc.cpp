#include "runtime/multiproc.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "engine/join_store.hpp"

namespace fastjoin {
namespace {

using net::MsgType;

std::uint16_t wire_type(MsgType t) { return static_cast<std::uint16_t>(t); }

std::string default_socket_path() {
  static std::atomic<std::uint64_t> counter{0};
  return "/tmp/fastjoin-mp-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
         ".sock";
}

bool bucket_has_seq(const JoinStore::Bucket* b, std::uint64_t seq) {
  if (!b) return false;
  for (const auto& t : *b) {
    if (t.seq == seq) return true;
  }
  return false;
}

std::uint32_t deliver_halves(std::uint8_t flags) {
  return ((flags & net::kDeliverStore) ? 1u : 0u) +
         ((flags & net::kDeliverProbe) ? 1u : 0u);
}

}  // namespace

// ===========================================================================
// Router
// ===========================================================================

MultiprocRouter::MultiprocRouter(MultiprocConfig cfg)
    : cfg_(std::move(cfg)) {}

MultiprocRouter::~MultiprocRouter() {
  // Connections must die before the loop; workers_ is declared after
  // loop_, so default member destruction order already does that. The
  // supervisor SIGKILLs any child still running.
  if (endpoint_.kind == net::Endpoint::Kind::kUnix &&
      !endpoint_.path.empty()) {
    ::unlink(endpoint_.path.c_str());
  }
}

std::uint32_t MultiprocRouter::owner(Side side, KeyId key) const {
  const auto& ov = overrides_[static_cast<int>(side)];
  const auto it = ov.find(key);
  if (it != ov.end()) return it->second;
  return instance_of(key, cfg_.workers);
}

bool MultiprocRouter::start(std::string* err) {
  auto fail = [err](const std::string& why) {
    if (err) *err = why;
    return false;
  };
  if (started_) return true;
  if (cfg_.workers == 0) return fail("workers must be > 0");
  if (cfg_.worker_command.empty()) {
    return fail("worker_command is empty: no way to spawn workers");
  }
  if (!loop_.ok()) return fail("event loop init failed");

  std::string ep_str = cfg_.endpoint;
  if (ep_str == "unix:" || ep_str == "unix") {
    ep_str = "unix:" + default_socket_path();
  }
  net::Endpoint ep;
  if (!net::Endpoint::parse(ep_str, ep)) {
    return fail("bad endpoint: " + cfg_.endpoint);
  }
  acceptor_ = std::make_unique<net::Acceptor>(
      loop_, ep, [this](net::Socket peer) { on_accept(std::move(peer)); });
  if (!acceptor_->ok()) return fail("bind failed: " + acceptor_->error());
  endpoint_ = ep;
  endpoint_str_ = ep.to_string();

  IngestConfig ic = cfg_.ingest;
  ic.enabled = true;
  ic.replay = true;
  ic.partitions = 1;  // the router is the log's only producer
  log_ = std::make_unique<StreamLog>(ic);

  workers_.resize(cfg_.workers);
  for (std::uint32_t i = 0; i < cfg_.workers; ++i) workers_[i].id = i;
  started_ = true;  // handshake paths (crash handling) need this

  for (std::uint32_t i = 0; i < cfg_.workers; ++i) {
    std::string serr;
    const pid_t pid = sup_.spawn(worker_argv(i), &serr);
    if (pid < 0) return fail("spawn worker " + std::to_string(i) + ": " + serr);
    workers_[i].pid = pid;
  }

  const auto deadline =
      std::chrono::steady_clock::now() + cfg_.spawn_connect_timeout;
  for (;;) {
    bool all = true;
    for (const WorkerSlot& s : workers_) {
      if (!s.alive) {
        all = false;
        break;
      }
    }
    if (all) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      return fail("timed out waiting for worker handshakes");
    }
    pump(std::chrono::milliseconds(5));
  }

  if (cfg_.serve) {
    serve_snap_.assign(cfg_.workers, ServeSnap{});
    frontdoor_ = std::make_unique<server::FrontDoor>(loop_, cfg_.serve_cfg);
    std::string ferr;
    if (!frontdoor_->start(
            [this](const std::string& tenant,
                   const std::vector<server::ClientRecord>& recs,
                   server::AppendAckMsg* ack) {
              return serve_sink(tenant, recs, ack);
            },
            [this](const server::QueryMsg& q, server::QueryResultMsg* out) {
              serve_query(q, out);
            },
            [this] { return serve_inflight_bytes(); }, &ferr)) {
      frontdoor_.reset();
      return fail("front door: " + ferr);
    }
  }
  return true;
}

std::vector<std::string> MultiprocRouter::worker_argv(
    std::uint32_t w) const {
  std::vector<std::string> v = cfg_.worker_command;
  v.push_back("--multiproc-worker");
  v.push_back("--worker-id");
  v.push_back(std::to_string(w));
  v.push_back("--connect");
  v.push_back(endpoint_str_);
  return v;
}

// --------------------------------------------------------------------------
// Data plane
// --------------------------------------------------------------------------

void MultiprocRouter::publish(const Record& rec) {
  if (!park_keys_.empty() && park_keys_.count(rec.key) != 0) {
    // One of this record's delivery halves lands on the migrating
    // (side, key) ownership; hold the whole record (pre-log) so its
    // final routing stamp matches where it is actually delivered.
    parked_.push_back(rec);
    ++stats_.records_parked;
  } else {
    log_and_route(rec);
  }
  if (cfg_.checkpoint_every != 0 &&
      ++records_since_ckpt_ >= cfg_.checkpoint_every) {
    records_since_ckpt_ = 0;
    checkpoint_round();
  }
  if (++pump_credit_ >= 512) {
    pump_credit_ = 0;
    pump();
    wait_writable();
  }
}

void MultiprocRouter::log_and_route(const Record& rec) {
  const std::uint32_t sw = owner(rec.side, rec.key);
  const std::uint32_t pw = owner(other_side(rec.side), rec.key);
  const std::uint64_t off = log_->append(0, rec, sw, pw);
  ++stats_.records_published;
  if (sw == pw) {
    deliver(sw, off, rec, net::kDeliverStore | net::kDeliverProbe);
  } else {
    deliver(sw, off, rec, net::kDeliverStore);
    deliver(pw, off, rec, net::kDeliverProbe);
  }
}

void MultiprocRouter::deliver(std::uint32_t w, std::uint64_t offset,
                              const Record& rec, std::uint8_t flags) {
  WorkerSlot& s = workers_[w];
  if (s.dead_forever) {
    stats_.records_dropped += deliver_halves(flags);
    return;
  }
  if (!s.alive) return;  // sits in the log; replay covers it at reconnect
  s.pending.entries.push_back(net::DataEntry{offset, flags, rec});
  stats_.deliveries_sent += deliver_halves(flags);
  if (s.pending.entries.size() >= cfg_.data_batch) flush_pending(w);
}

void MultiprocRouter::flush_pending(std::uint32_t w) {
  WorkerSlot& s = workers_[w];
  if (s.pending.entries.empty()) return;
  if (!s.alive || !s.conn) {
    s.pending.entries.clear();
    return;
  }
  // Swap out first: a send failure can re-enter crash handling, which
  // (after respawn + replay) repopulates the pending queue.
  net::DataBatchMsg msg;
  msg.entries.swap(s.pending.entries);
  s.conn->send(wire_type(MsgType::kData), net::encode(msg));
}

void MultiprocRouter::flush_all_pending() {
  for (std::uint32_t w = 0; w < workers_.size(); ++w) flush_pending(w);
}

void MultiprocRouter::wait_writable() {
  for (;;) {
    bool blocked = false;
    for (const WorkerSlot& s : workers_) {
      // A closed connection can never drain; waiting on it would spin
      // forever. Its close/exit handling will flip the slot state.
      if (s.alive && s.conn && !s.conn->closed() && !s.conn->writable()) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return;
    pump(std::chrono::milliseconds(1));
  }
}

void MultiprocRouter::pump(std::chrono::milliseconds wait) {
  loop_.run_once(wait);
  for (const auto& ev : sup_.poll_exits()) {
    for (WorkerSlot& s : workers_) {
      if (s.pid != ev.pid) continue;
      s.pid = -1;
      if (s.finished) break;  // clean exit after kFinal
      if (s.alive && s.conn) {
        // Death noticed via waitpid before the socket drained. Do NOT
        // close here: the kernel still holds frames the worker sent
        // before dying (possibly its kFinal), and behind them the EOF
        // that drives crash handling through the normal read path.
      } else if (!s.alive && !s.dead_forever) {
        // No connection to EOF (died before the handshake) — this is
        // the only place that can notice.
        handle_crash(s.id, "process exited before handshake");
      }
      break;
    }
  }
}

// --------------------------------------------------------------------------
// Serving front door
// --------------------------------------------------------------------------

std::uint64_t MultiprocRouter::serve_inflight_bytes() const {
  // "Admitted but not yet drained downstream" maps to the bytes still
  // queued on the worker connections: what admission protects is the
  // fabric's outbound queues, not the log (which has its own
  // backpressure bound).
  std::uint64_t total = 0;
  for (const WorkerSlot& s : workers_) {
    if (s.alive && s.conn && !s.conn->closed()) {
      total += s.conn->queued_bytes();
    }
  }
  return total;
}

bool MultiprocRouter::serve_sink(
    const std::string& tenant, const std::vector<server::ClientRecord>& recs,
    server::AppendAckMsg* ack) {
  (void)tenant;  // admission already charged the tenant; routing is global
  // This runs inside an event-loop dispatch callback, so the blocking
  // publish() path (pump + wait_writable) is off-limits — re-entering
  // run_once() from a handler is undefined. Refuse instead of blocking;
  // the front door answers kRejected{kBackpressure, retry_after} and
  // the loop keeps draining the very queues that caused the refusal.
  for (const WorkerSlot& s : workers_) {
    if (s.alive && s.conn && !s.conn->closed() && !s.conn->writable()) {
      return false;
    }
  }
  bool first = true;
  for (const server::ClientRecord& cr : recs) {
    Record rec;
    rec.key = cr.key;
    rec.payload = cr.payload;
    rec.side = cr.side;
    // The single ingest point stamps the stream position: per-side seq
    // and global arrival ts. This is what makes the log the ground
    // truth — clients cannot forge an order.
    rec.seq = serve_next_seq_[static_cast<int>(cr.side)]++;
    rec.ts = serve_next_ts_++;
    if (!park_keys_.empty() && park_keys_.count(rec.key) != 0) {
      parked_.push_back(rec);
      ++stats_.records_parked;
      ++ack->parked;
    } else {
      if (first) {
        ack->first_offset = log_->end_offset(0);
        first = false;
      }
      log_and_route(rec);
      ++ack->appended;
    }
  }
  // Acked batches must not sit in the per-worker pending buffers until
  // the next 256-record threshold: the ack promises the records are on
  // their way.
  flush_all_pending();
  if (cfg_.checkpoint_every != 0) {
    records_since_ckpt_ += recs.size();
    if (records_since_ckpt_ >= cfg_.checkpoint_every) {
      records_since_ckpt_ = 0;
      checkpoint_round();
    }
  }
  return true;
}

void MultiprocRouter::serve_query(const server::QueryMsg& q,
                                  server::QueryResultMsg* out) {
  out->key = q.key;
  out->owner_r = owner(Side::kR, q.key);
  out->owner_s = owner(Side::kS, q.key);
  out->matches_total = stats_.matches_total;
  // The answer's consistency floor: every worker's counts come from its
  // latest completed checkpoint, and as_of_ckpt is the weakest of them.
  std::uint64_t as_of = UINT64_MAX;
  for (std::uint32_t w = 0; w < workers_.size(); ++w) {
    if (workers_[w].dead_forever) continue;
    const ServeSnap& snap = serve_snap_[w];
    as_of = std::min(as_of, snap.ckpt_id);
    const auto r = snap.counts[static_cast<int>(Side::kR)].find(q.key);
    if (r != snap.counts[static_cast<int>(Side::kR)].end()) {
      out->r_tuples += r->second;
    }
    const auto s = snap.counts[static_cast<int>(Side::kS)].find(q.key);
    if (s != snap.counts[static_cast<int>(Side::kS)].end()) {
      out->s_tuples += s->second;
    }
  }
  out->as_of_ckpt = as_of == UINT64_MAX ? 0 : as_of;
  if (q.max_recent > 0) {
    for (auto it = serve_recent_.rbegin();
         it != serve_recent_.rend() && out->recent.size() < q.max_recent;
         ++it) {
      if (it->key == q.key) out->recent.push_back(*it);
    }
  }
}

std::vector<LogRecord> MultiprocRouter::dump_log() const {
  std::vector<LogRecord> out;
  if (!log_) return out;
  const std::uint64_t from = log_->start_offset(0);
  const std::uint64_t end = log_->end_offset(0);
  if (end > from) {
    out.reserve(end - from);
    log_->read(0, from, static_cast<std::size_t>(end - from), out);
  }
  return out;
}

// --------------------------------------------------------------------------
// Connection plumbing
// --------------------------------------------------------------------------

void MultiprocRouter::on_accept(net::Socket peer) {
  auto conn = std::make_unique<net::Connection>(loop_, std::move(peer),
                                                net::Connection::Options{});
  net::Connection* raw = conn.get();
  limbo_.push_back(std::move(conn));
  raw->start(
      [this, raw](net::Frame& f) {
        net::HelloMsg hello;
        if (f.type != wire_type(MsgType::kHello) ||
            !net::decode(f.payload, hello) ||
            hello.worker_id >= workers_.size()) {
          raw->close("handshake: expected a valid Hello", /*clean=*/false);
          return;
        }
        const std::uint32_t w = hello.worker_id;
        // Attach outside this callback: attach replaces the handlers
        // of the very connection that is dispatching us.
        loop_.defer([this, raw, w] {
          for (auto it = limbo_.begin(); it != limbo_.end(); ++it) {
            if (it->get() != raw) continue;
            std::unique_ptr<net::Connection> owned = std::move(*it);
            limbo_.erase(it);
            attach_worker(w, std::move(owned));
            return;
          }
        });
      },
      [this, raw](const std::string&, bool) {
        loop_.defer([this, raw] {
          for (auto it = limbo_.begin(); it != limbo_.end(); ++it) {
            if (it->get() == raw) {
              limbo_.erase(it);
              return;
            }
          }
        });
      });
}

void MultiprocRouter::attach_worker(std::uint32_t w,
                                    std::unique_ptr<net::Connection> conn) {
  WorkerSlot& s = workers_[w];
  if (conn->closed()) {
    // The worker sent its Hello and died in the same dispatch pass: the
    // close already fired under the limbo handler, so this connection
    // can never signal again. Drop it — the exit is observed via
    // waitpid and recovery respawns through the normal crash path.
    return;
  }
  if (s.alive && s.conn) {
    conn->close("duplicate connection for worker " + std::to_string(w),
                /*clean=*/false);
    return;
  }
  s.conn = std::move(conn);
  s.alive = true;
  s.finished = false;
  s.final.reset();
  ++s.incarnations;
  net::Connection* raw = s.conn.get();
  raw->start(
      [this, w](net::Frame& f) { on_worker_frame(w, f); },
      [this, w](const std::string& reason, bool clean) {
        on_worker_close(w, reason, clean);
      });
  net::HelloAckMsg ack;
  ack.worker_id = w;
  ack.workers = cfg_.workers;
  ack.collect_matches = ship_pairs() ? 1 : 0;
  raw->send(wire_type(MsgType::kHelloAck), net::encode(ack));
  if (s.incarnations > 1) restore_and_replay(w);
  if (finishing_ && s.alive) {
    flush_pending(w);
    s.conn->send(wire_type(MsgType::kFinish), nullptr, 0);
  }
  start_next_migration();  // a queued move may have waited on this worker
}

void MultiprocRouter::on_worker_frame(std::uint32_t w, net::Frame& f) {
  switch (static_cast<MsgType>(f.type)) {
    case MsgType::kMatches: {
      net::MatchBatchMsg m;
      if (!net::decode(f.payload, m)) {
        protocol_error(w, "bad Matches payload");
        return;
      }
      stats_.matches_total += m.count;
      WorkerSlot& s = workers_[w];
      s.emit_watermark = std::max(s.emit_watermark, m.emit_offset);
      if (cfg_.collect_matches) {
        matches_.insert(matches_.end(), m.pairs.begin(), m.pairs.end());
      }
      if (cfg_.serve) {
        for (const MatchPair& p : m.pairs) {
          serve_recent_.push_back(p);
          if (serve_recent_.size() > kServeRecentCap) {
            serve_recent_.pop_front();
          }
        }
      }
      return;
    }
    case MsgType::kCheckpointDone: {
      net::SnapshotMsg m;
      if (!net::decode(f.payload, m)) {
        protocol_error(w, "bad CheckpointDone payload");
        return;
      }
      on_checkpoint_done(w, std::move(m));
      return;
    }
    case MsgType::kExtractBatch: {
      net::ExtractBatchMsg m;
      if (!net::decode(f.payload, m)) {
        protocol_error(w, "bad ExtractBatch payload");
        return;
      }
      on_extract_batch(w, std::move(m));
      return;
    }
    case MsgType::kAbsorbAck: {
      net::AbsorbAckMsg m;
      if (!net::decode(f.payload, m)) {
        protocol_error(w, "bad AbsorbAck payload");
        return;
      }
      on_absorb_ack(w, m);
      return;
    }
    case MsgType::kFinal: {
      net::FinalMsg m;
      if (!net::decode(f.payload, m)) {
        protocol_error(w, "bad Final payload");
        return;
      }
      WorkerSlot& s = workers_[w];
      s.final = m;
      s.finished = true;
      return;
    }
    default:
      protocol_error(w, std::string("unexpected frame type ") +
                            std::to_string(f.type));
      return;
  }
}

bool MultiprocRouter::protocol_error(std::uint32_t w,
                                     const std::string& what) {
  FJ_WARN("multiproc") << "worker " << w << " protocol error: " << what;
  WorkerSlot& s = workers_[w];
  if (s.conn) s.conn->close("protocol error: " + what, /*clean=*/false);
  return false;
}

void MultiprocRouter::on_worker_close(std::uint32_t w,
                                      const std::string& reason,
                                      bool clean) {
  WorkerSlot& s = workers_[w];
  if (s.finished) {
    // Expected: the worker closes after its kFinal.
    s.alive = false;
    if (s.conn) {
      net::Connection* raw = s.conn.release();
      loop_.defer([raw] { delete raw; });
    }
    return;
  }
  // EOF-as-crash: any close before kFinal — even a tidy FIN at a frame
  // boundary — means the worker is gone and must be recovered.
  handle_crash(w, reason + (clean ? " (clean eof)" : ""));
}

// --------------------------------------------------------------------------
// Crash handling
// --------------------------------------------------------------------------

void MultiprocRouter::handle_crash(std::uint32_t w,
                                   const std::string& reason) {
  WorkerSlot& s = workers_[w];
  if (s.dead_forever) return;
  ++stats_.worker_crashes;
  FJ_WARN("multiproc") << "worker " << w << " crashed (" << reason
                       << "), incarnation " << s.incarnations;
  s.alive = false;
  s.pending.entries.clear();
  if (s.conn) {
    // We may be inside this connection's own close callback; destroy
    // it after the dispatch pass.
    net::Connection* raw = s.conn.release();
    loop_.defer([raw] { delete raw; });
  }

  if (mig_ && (w == mig_->from || w == mig_->to)) {
    if (mig_->phase == Migration::Phase::kEpilogue) {
      // The crashed participant's post-migration checkpoint will never
      // land; its recovery path re-injects the batch instead, so stop
      // waiting for it.
      for (auto it = mig_->epilogue_ckpts.begin();
           it != mig_->epilogue_ckpts.end();) {
        it = (it->second == w) ? mig_->epilogue_ckpts.erase(it)
                               : std::next(it);
      }
      finish_migration_if_epilogue_done();
    } else {
      abort_migration("participant " + std::to_string(w) + " crashed");
    }
  }

  if (await_extract_.active && w == await_extract_.from) {
    // The in-flight extract reply died with the source. Its last
    // snapshot predates the extract (the reply is FIFO-ordered before
    // any later CheckpointDone), so restore + replay regenerate the
    // extracted tuples in place — safe to unpark now.
    await_extract_.active = false;
    park_keys_.clear();
    unpark();
    start_next_migration();
  }

  if (s.pid > 0) {
    sup_.signal_and_reap(s.pid, SIGKILL, std::chrono::milliseconds(5000));
    s.pid = -1;
  }

  if (!cfg_.respawn) {
    s.dead_forever = true;
    // Account what is now unrecoverable: log entries stamped for this
    // worker above its checkpoint, plus uncheckpointed batch tuples.
    const std::uint64_t end = log_->end_offset(0);
    std::vector<LogRecord> buf;
    std::uint64_t from = s.snapshot.consumed_offset;
    while (from < end) {
      buf.clear();
      if (log_->read(0, from, 4096, buf) == 0) break;
      for (const LogRecord& lr : buf) {
        from = lr.offset + 1;
        stats_.records_dropped +=
            (lr.store_dst == w ? 1 : 0) + (lr.probe_dst == w ? 1 : 0);
      }
    }
    for (const auto& r : s.reinject) {
      stats_.records_dropped += r.batch.tuples.size();
    }
    return;
  }

  std::string err;
  if (!respawn_worker(w, &err)) {
    FJ_ERROR("multiproc") << "respawn of worker " << w << " failed: " << err;
    s.dead_forever = true;
  }
}

bool MultiprocRouter::respawn_worker(std::uint32_t w, std::string* err) {
  WorkerSlot& s = workers_[w];
  const pid_t pid = sup_.spawn(worker_argv(w), err);
  if (pid < 0) return false;
  s.pid = pid;
  ++stats_.respawns;
  return true;
}

void MultiprocRouter::restore_and_replay(std::uint32_t w) {
  WorkerSlot& s = workers_[w];
  FJ_INFO("multiproc") << "restoring worker " << w << " from offset "
                       << s.snapshot.consumed_offset << ", emit watermark "
                       << s.emit_watermark;
  // 1. Checkpoint snapshot (possibly empty: replay-from-zero).
  s.conn->send(wire_type(MsgType::kRestore), net::encode(s.snapshot));
  // 2. Absorbed-but-uncheckpointed migration batches. Deduplicated at
  //    the worker, so overlap with the snapshot or the replay below is
  //    harmless.
  for (const WorkerSlot::Reinject& r : s.reinject) {
    s.conn->send(wire_type(MsgType::kAbsorb), net::encode(r.batch));
    stats_.reinjected_tuples += r.batch.tuples.size();
  }
  // 3. Replay log entries stamped for this worker above the snapshot's
  //    consumed watermark — including anything published while the
  //    worker was down (deliver() skips dead workers; the log doesn't).
  const std::uint64_t C = s.snapshot.consumed_offset;
  const std::uint64_t E = s.emit_watermark;
  const std::uint64_t end = log_->end_offset(0);
  std::vector<LogRecord> buf;
  std::uint64_t from = C;
  while (from < end) {
    buf.clear();
    if (log_->read(0, from, 4096, buf) == 0) break;
    for (const LogRecord& lr : buf) {
      from = lr.offset + 1;
      std::uint8_t flags = 0;
      if (lr.store_dst == w) flags |= net::kDeliverStore | net::kDedupStore;
      if (lr.probe_dst == w) {
        flags |= net::kDeliverProbe;
        if (lr.offset < E) {
          flags |= net::kSuppressEmit;
          ++stats_.suppressed_probes;
        }
      }
      if ((flags & (net::kDeliverStore | net::kDeliverProbe)) == 0) continue;
      s.pending.entries.push_back(net::DataEntry{lr.offset, flags, lr.rec});
      ++stats_.replayed_entries;
      if (s.pending.entries.size() >= cfg_.data_batch) flush_pending(w);
    }
  }
  flush_pending(w);
}

// --------------------------------------------------------------------------
// Checkpoints
// --------------------------------------------------------------------------

std::uint64_t MultiprocRouter::request_checkpoint_id(std::uint32_t w) {
  const std::uint64_t id = next_ckpt_id_++;
  WorkerSlot& s = workers_[w];
  if (s.alive && s.conn) {
    flush_pending(w);
    net::CheckpointMsg m;
    m.ckpt_id = id;
    s.conn->send(wire_type(MsgType::kCheckpoint), net::encode(m));
  }
  return id;
}

void MultiprocRouter::checkpoint_round() {
  for (const WorkerSlot& s : workers_) {
    if (s.alive && !s.finished) request_checkpoint_id(s.id);
  }
}

void MultiprocRouter::on_checkpoint_done(std::uint32_t w,
                                         net::SnapshotMsg msg) {
  WorkerSlot& s = workers_[w];
  ++stats_.checkpoints_completed;
  const std::uint64_t id = msg.ckpt_id;
  s.emit_watermark = std::max(s.emit_watermark, msg.emit_offset);
  if (cfg_.serve && id >= serve_snap_[w].ckpt_id) {
    // Rebuild the query surface's per-key counts from this snapshot —
    // a consistent cut of the worker's stores at consumed_offset.
    ServeSnap& snap = serve_snap_[w];
    snap.ckpt_id = id;
    snap.counts[0].clear();
    snap.counts[1].clear();
    for (const net::WireTuple& t : msg.tuples) {
      ++snap.counts[static_cast<int>(t.side)][t.key];
    }
  }
  if (id >= s.snapshot.ckpt_id) s.snapshot = std::move(msg);
  // Batches absorbed before this checkpoint was requested are now
  // inside the snapshot — stop carrying them.
  s.reinject.erase(
      std::remove_if(s.reinject.begin(), s.reinject.end(),
                     [id](const WorkerSlot::Reinject& r) {
                       return id >= r.safe_after;
                     }),
      s.reinject.end());
  if (mig_ && mig_->phase == Migration::Phase::kEpilogue &&
      mig_->epilogue_ckpts.erase(id) != 0) {
    finish_migration_if_epilogue_done();
  }
  maybe_truncate_log();
}

void MultiprocRouter::maybe_truncate_log() {
  if (!cfg_.truncate_log) return;
  std::uint64_t floor = UINT64_MAX;
  for (const WorkerSlot& s : workers_) {
    if (s.dead_forever) continue;
    floor = std::min(floor, s.snapshot.consumed_offset);
  }
  if (floor != UINT64_MAX && floor > 0) log_->truncate_before(0, floor);
}

// --------------------------------------------------------------------------
// Migrations
// --------------------------------------------------------------------------

bool MultiprocRouter::request_migration(Side side, std::uint32_t from,
                                        std::uint32_t to,
                                        std::vector<KeyId> keys) {
  if (!started_ || from >= workers_.size() || to >= workers_.size() ||
      from == to || keys.empty()) {
    return false;
  }
  mig_queue_.push_back(QueuedMigration{side, from, to, std::move(keys)});
  start_next_migration();
  return true;
}

void MultiprocRouter::start_next_migration() {
  // An aborted-but-unresolved extract still owns the park; starting a
  // new migration would repurpose it and unpark too early.
  while (!mig_ && !await_extract_.active && !mig_queue_.empty()) {
    QueuedMigration& q = mig_queue_.front();
    WorkerSlot& f = workers_[q.from];
    WorkerSlot& t = workers_[q.to];
    if (f.dead_forever || t.dead_forever) {
      ++stats_.migrations_aborted;
      mig_queue_.pop_front();
      continue;
    }
    if (!f.alive || !t.alive) return;  // retried when they reconnect
    QueuedMigration next = std::move(q);
    mig_queue_.pop_front();
    // Only keys this worker still owns move (an earlier migration may
    // have taken some).
    next.keys.erase(std::remove_if(next.keys.begin(), next.keys.end(),
                                   [&](KeyId k) {
                                     return owner(next.side, k) != next.from;
                                   }),
                    next.keys.end());
    if (next.keys.empty()) continue;
    start_migration(std::move(next));
  }
}

void MultiprocRouter::start_migration(QueuedMigration q) {
  mig_.emplace();
  mig_->id = next_mig_id_++;
  mig_->side = q.side;
  mig_->from = q.from;
  mig_->to = q.to;
  mig_->keys = std::move(q.keys);
  mig_->phase = Migration::Phase::kExtractWait;
  ++stats_.migrations_started;
  park_keys_.clear();
  park_keys_.insert(mig_->keys.begin(), mig_->keys.end());
  FJ_INFO("multiproc") << "migration " << mig_->id << ": "
                       << mig_->keys.size() << " keys of side "
                       << side_name(mig_->side) << " from worker "
                       << mig_->from << " to " << mig_->to;
  flush_pending(mig_->from);
  net::ExtractMsg m;
  m.mig_id = mig_->id;
  m.side = mig_->side;
  m.keys = mig_->keys;
  workers_[mig_->from].conn->send(wire_type(MsgType::kExtract),
                                  net::encode(m));
  arm_migration_timer();
}

void MultiprocRouter::arm_migration_timer() {
  const std::uint64_t id = mig_->id;
  mig_->timer = loop_.add_timer(
      std::chrono::steady_clock::now() + cfg_.migration_timeout,
      [this, id] {
        if (mig_ && mig_->id == id &&
            mig_->phase != Migration::Phase::kEpilogue) {
          abort_migration("timeout");
        }
      });
}

void MultiprocRouter::on_extract_batch(std::uint32_t w,
                                       net::ExtractBatchMsg msg) {
  if (!mig_ || mig_->phase != Migration::Phase::kExtractWait ||
      w != mig_->from || msg.mig_id != mig_->id) {
    // A reply that outlived its migration (timeout/abort raced the
    // worker). The tuples left a store — put them back where they
    // came from; dedup at the worker absorbs any overlap.
    reinject_into(w, std::move(msg.tuples));
    if (await_extract_.active && w == await_extract_.from &&
        msg.mig_id == await_extract_.mig_id) {
      // The aborted migration's tuples are home again; the reinject is
      // queued ahead of whatever we unpark now, so probes can't miss.
      await_extract_.active = false;
      park_keys_.clear();
      unpark();
      start_next_migration();
    }
    return;
  }
  loop_.cancel_timer(mig_->timer);
  stats_.tuples_migrated += msg.tuples.size();
  mig_->batch = std::move(msg);
  WorkerSlot& t = workers_[mig_->to];
  if (!t.alive || !t.conn) {
    abort_migration("target offline at absorb");
    return;
  }
  flush_pending(mig_->to);
  net::AbsorbMsg ab;
  ab.mig_id = mig_->id;
  ab.tuples = mig_->batch.tuples;  // router keeps the original for crash safety
  t.conn->send(wire_type(MsgType::kAbsorb), net::encode(ab));
  mig_->phase = Migration::Phase::kAbsorbWait;
  arm_migration_timer();
}

void MultiprocRouter::on_absorb_ack(std::uint32_t w,
                                    net::AbsorbAckMsg msg) {
  if (!mig_ || mig_->phase != Migration::Phase::kAbsorbWait ||
      w != mig_->to || msg.mig_id != mig_->id) {
    // Stale ack: the migration was aborted meanwhile. The target keeps
    // the absorbed tuples as inert duplicates (no probes are routed to
    // it for these keys) — any later migration of the same keys
    // deduplicates them away.
    return;
  }
  loop_.cancel_timer(mig_->timer);
  WorkerSlot& t = workers_[mig_->to];
  // Crash window: absorbed but not yet covered by a target checkpoint.
  t.reinject.push_back(WorkerSlot::Reinject{
      net::AbsorbMsg{0, std::move(mig_->batch.tuples)}, next_ckpt_id_});
  const int side = static_cast<int>(mig_->side);
  for (KeyId k : mig_->keys) overrides_[side][k] = mig_->to;
  park_keys_.clear();
  unpark();
  mig_->phase = Migration::Phase::kEpilogue;
  ++stats_.migrations_completed;
  // Post-migration checkpoints pin both participants' replay floors
  // above the move, so a later crash replays tuples from snapshots,
  // never from entries that predate the flip.
  for (std::uint32_t p : {mig_->from, mig_->to}) {
    if (workers_[p].alive) {
      mig_->epilogue_ckpts[request_checkpoint_id(p)] = p;
    }
  }
  finish_migration_if_epilogue_done();
}

void MultiprocRouter::abort_migration(const std::string& why) {
  if (!mig_) return;
  ++stats_.migrations_aborted;
  FJ_WARN("multiproc") << "migration " << mig_->id << " aborted: " << why;
  loop_.cancel_timer(mig_->timer);
  const std::uint64_t id = mig_->id;
  const std::uint32_t from = mig_->from;
  const bool extract_in_flight =
      mig_->phase == Migration::Phase::kExtractWait && workers_[from].alive;
  std::vector<net::WireTuple> tuples;
  if (mig_->phase == Migration::Phase::kAbsorbWait) {
    tuples = std::move(mig_->batch.tuples);
  }
  mig_.reset();
  if (extract_in_flight) {
    // The source has already been told to extract; its store no longer
    // holds the keys, and the tuples are somewhere between its stream
    // position and ours. Keep the keys parked until the reply lands
    // (on_extract_batch stale path) or the source crashes (its restore
    // snapshot predates the extract, regenerating the tuples in place).
    await_extract_ = AwaitExtract{id, from, true};
    return;
  }
  park_keys_.clear();
  // No route flip. Extracted tuples (if any) go back to the source;
  // parked records route to their original owners. FIFO on the source
  // connection orders the reinject before the unparked records.
  if (!tuples.empty()) reinject_into(from, std::move(tuples));
  unpark();
  start_next_migration();
}

void MultiprocRouter::finish_migration_if_epilogue_done() {
  if (!mig_ || mig_->phase != Migration::Phase::kEpilogue ||
      !mig_->epilogue_ckpts.empty()) {
    return;
  }
  mig_.reset();
  start_next_migration();
}

void MultiprocRouter::unpark() {
  if (parked_.empty()) return;
  std::vector<Record> held;
  held.swap(parked_);
  for (const Record& rec : held) log_and_route(rec);
}

void MultiprocRouter::reinject_into(std::uint32_t w,
                                    std::vector<net::WireTuple> tuples) {
  if (tuples.empty()) return;
  WorkerSlot& s = workers_[w];
  if (s.dead_forever) {
    stats_.records_dropped += tuples.size();
    return;
  }
  net::AbsorbMsg m;
  m.mig_id = 0;
  m.tuples = std::move(tuples);
  if (s.alive && s.conn) {
    flush_pending(w);
    s.conn->send(wire_type(MsgType::kAbsorb), net::encode(m));
    stats_.reinjected_tuples += m.tuples.size();
  }
  // Carried until a checkpoint covers it (re-sent after any crash).
  s.reinject.push_back(WorkerSlot::Reinject{std::move(m), next_ckpt_id_});
}

bool MultiprocRouter::parking(KeyId key) const {
  return park_keys_.count(key) != 0;
}

// --------------------------------------------------------------------------
// Chaos + shutdown
// --------------------------------------------------------------------------

bool MultiprocRouter::kill_worker(std::uint32_t w) {
  if (w >= workers_.size()) return false;
  WorkerSlot& s = workers_[w];
  if (s.pid <= 0) return false;
  // terminate() blocks until the process is dead (zombie, unreaped),
  // so on return the crash is already observable: socket HUP pending,
  // exit visible to the next pump()'s poll_exits().
  return sup_.terminate(s.pid);
}

pid_t MultiprocRouter::worker_pid(std::uint32_t w) const {
  return w < workers_.size() ? workers_[w].pid : -1;
}

bool MultiprocRouter::finish(std::chrono::milliseconds timeout) {
  // Serving stops first: finish() drains and closes the worker fabric,
  // and an append admitted after this point could never be delivered.
  if (frontdoor_) frontdoor_->stop();
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Let in-flight migrations resolve (they unpark records); force the
  // issue at the deadline.
  while (!migration_idle() &&
         std::chrono::steady_clock::now() < deadline) {
    pump(std::chrono::milliseconds(2));
  }
  mig_queue_.clear();
  if (mig_) abort_migration("finish requested");
  // The abort may leave an extract reply in flight; its keys stay
  // parked until it lands, so keep pumping for it.
  while (await_extract_.active &&
         std::chrono::steady_clock::now() < deadline) {
    pump(std::chrono::milliseconds(2));
  }
  if (!parked_.empty() || !park_keys_.empty()) {
    // Deadline fallback: publish what is still parked rather than drop
    // it (matches through the unresolved extract hole may be missed,
    // but no record vanishes from the log).
    await_extract_.active = false;
    park_keys_.clear();
    unpark();
  }

  finishing_ = true;
  for (WorkerSlot& s : workers_) {
    if (!s.dead_forever && s.alive && !s.finished && s.conn) {
      flush_pending(s.id);
      s.conn->send(wire_type(MsgType::kFinish), nullptr, 0);
    }
  }
  bool all = false;
  for (;;) {
    all = true;
    for (const WorkerSlot& s : workers_) {
      if (!s.dead_forever && !s.final.has_value()) {
        all = false;
        break;
      }
    }
    if (all || std::chrono::steady_clock::now() >= deadline) break;
    pump(std::chrono::milliseconds(2));
  }
  stats_.worker_finals.clear();
  for (const WorkerSlot& s : workers_) {
    stats_.worker_finals.push_back(s.final.value_or(net::FinalMsg{}));
  }
  // Reap clean exits.
  pump(std::chrono::milliseconds(0));
  pump(std::chrono::milliseconds(0));
  return all;
}

// ===========================================================================
// Worker process
// ===========================================================================

namespace {

struct WorkerState {
  JoinStore stores[2] = {JoinStore(0), JoinStore(0)};
  std::uint64_t consumed = 0;  ///< exclusive offset watermark
  bool collect = false;
  net::MatchBatchMsg out;
  net::FinalMsg fin;
};

bool flush_matches(net::FrameConn& conn, WorkerState& st) {
  if (st.out.count == 0) return true;
  st.out.emit_offset = st.consumed;
  const bool ok = conn.write_frame(wire_type(MsgType::kMatches),
                                   net::encode(st.out));
  st.out = net::MatchBatchMsg{};
  return ok;
}

void process_entry(WorkerState& st, const net::DataEntry& e) {
  const Record& rec = e.rec;
  if (e.flags & net::kDeliverStore) {
    JoinStore& store = st.stores[static_cast<int>(rec.side)];
    if ((e.flags & net::kDedupStore) &&
        bucket_has_seq(store.find(rec.key), rec.seq)) {
      ++st.fin.dedup_skipped;
    } else {
      store.insert(rec.key, StoredTuple{rec.seq, rec.payload, rec.ts, 0});
      ++st.fin.stores;
    }
  }
  if (e.flags & net::kDeliverProbe) {
    ++st.fin.probes;
    const Side stored_side = other_side(rec.side);
    const bool suppress = (e.flags & net::kSuppressEmit) != 0;
    const JoinStore::Bucket* b =
        st.stores[static_cast<int>(stored_side)].find(rec.key);
    if (b != nullptr) {
      for (const StoredTuple& t : *b) {
        if (!precedes(t.ts, stored_side, t.seq, rec.ts, rec.side,
                      rec.seq)) {
          continue;
        }
        if (suppress) {
          ++st.fin.suppressed;
          continue;
        }
        ++st.fin.matches;
        ++st.out.count;
        if (st.collect) {
          MatchPair p;
          p.key = rec.key;
          p.r_seq = stored_side == Side::kR ? t.seq : rec.seq;
          p.s_seq = stored_side == Side::kR ? rec.seq : t.seq;
          st.out.pairs.push_back(p);
        }
      }
    }
  }
  st.consumed = e.offset + 1;
}

void snapshot_stores(const WorkerState& st, net::SnapshotMsg& snap) {
  for (int side = 0; side < 2; ++side) {
    for (KeyId k : st.stores[side].keys()) {
      const JoinStore::Bucket* b = st.stores[side].find(k);
      if (b == nullptr) continue;
      for (const StoredTuple& t : *b) {
        snap.tuples.push_back(
            net::WireTuple{static_cast<Side>(side), k, t});
      }
    }
  }
}

void absorb_tuples(WorkerState& st, const net::AbsorbMsg& m) {
  for (const net::WireTuple& t : m.tuples) {
    JoinStore& store = st.stores[static_cast<int>(t.side)];
    if (bucket_has_seq(store.find(t.key), t.tuple.seq)) {
      ++st.fin.dedup_skipped;
      continue;
    }
    store.insert(t.key, t.tuple);
    ++st.fin.absorbed;
  }
}

}  // namespace

int multiproc_worker_run(std::uint32_t worker_id,
                         const std::string& endpoint) {
  net::Endpoint ep;
  if (!net::Endpoint::parse(endpoint, ep)) {
    std::fprintf(stderr, "worker %u: bad endpoint '%s'\n", worker_id,
                 endpoint.c_str());
    return 64;
  }
  std::string err;
  net::FrameConn conn = net::FrameConn::connect(
      ep, std::chrono::milliseconds(10'000), &err);
  if (!conn.valid()) {
    std::fprintf(stderr, "worker %u: connect failed: %s\n", worker_id,
                 err.c_str());
    return 2;
  }
  net::HelloMsg hello;
  hello.worker_id = worker_id;
  hello.pid = static_cast<std::uint64_t>(::getpid());
  if (!conn.write_frame(wire_type(MsgType::kHello), net::encode(hello))) {
    return 2;
  }
  net::Frame f;
  if (!conn.read_frame(f) || f.type != wire_type(MsgType::kHelloAck)) {
    return 2;
  }
  net::HelloAckMsg ack;
  if (!net::decode(f.payload, ack) || ack.worker_id != worker_id) {
    std::fprintf(stderr, "worker %u: bad HelloAck\n", worker_id);
    return 3;
  }

  WorkerState st;
  st.collect = ack.collect_matches != 0;
  constexpr std::uint64_t kMatchFlushThreshold = 16 * 1024;

  while (conn.read_frame(f)) {
    switch (static_cast<MsgType>(f.type)) {
      case MsgType::kData: {
        net::DataBatchMsg m;
        if (!net::decode(f.payload, m)) return 3;
        for (const net::DataEntry& e : m.entries) process_entry(st, e);
        if (st.out.count >= kMatchFlushThreshold) {
          if (!flush_matches(conn, st)) return 2;
        }
        break;
      }
      case MsgType::kExtract: {
        net::ExtractMsg m;
        if (!net::decode(f.payload, m)) return 3;
        // Flush first: the emit watermark must cover every probe this
        // worker processed for the departing keys.
        if (!flush_matches(conn, st)) return 2;
        net::ExtractBatchMsg resp;
        resp.mig_id = m.mig_id;
        resp.consumed_offset = st.consumed;
        JoinStore& store = st.stores[static_cast<int>(m.side)];
        for (KeyId k : m.keys) {
          for (StoredTuple& t : store.extract_key(k)) {
            resp.tuples.push_back(net::WireTuple{m.side, k, t});
          }
        }
        if (!conn.write_frame(wire_type(MsgType::kExtractBatch),
                              net::encode(resp))) {
          return 2;
        }
        break;
      }
      case MsgType::kAbsorb: {
        net::AbsorbMsg m;
        if (!net::decode(f.payload, m)) return 3;
        absorb_tuples(st, m);
        if (m.mig_id != 0) {
          net::AbsorbAckMsg a;
          a.mig_id = m.mig_id;
          if (!conn.write_frame(wire_type(MsgType::kAbsorbAck),
                                net::encode(a))) {
            return 2;
          }
        }
        break;
      }
      case MsgType::kCheckpoint: {
        net::CheckpointMsg m;
        if (!net::decode(f.payload, m)) return 3;
        // Flush-before-checkpoint: guarantees emit watermark >=
        // consumed watermark at every snapshot the router holds.
        if (!flush_matches(conn, st)) return 2;
        net::SnapshotMsg snap;
        snap.ckpt_id = m.ckpt_id;
        snap.consumed_offset = st.consumed;
        snap.emit_offset = st.consumed;
        snapshot_stores(st, snap);
        if (!conn.write_frame(wire_type(MsgType::kCheckpointDone),
                              net::encode(snap))) {
          return 2;
        }
        break;
      }
      case MsgType::kRestore: {
        net::SnapshotMsg m;
        if (!net::decode(f.payload, m)) return 3;
        st.stores[0] = JoinStore(0);
        st.stores[1] = JoinStore(0);
        for (const net::WireTuple& t : m.tuples) {
          st.stores[static_cast<int>(t.side)].insert(t.key, t.tuple);
        }
        st.consumed = m.consumed_offset;
        break;
      }
      case MsgType::kFinish: {
        if (!flush_matches(conn, st)) return 2;
        conn.write_frame(wire_type(MsgType::kFinal), net::encode(st.fin));
        return 0;
      }
      default:
        std::fprintf(stderr, "worker %u: unexpected frame type %u\n",
                     worker_id, f.type);
        return 3;
    }
  }
  // EOF/stream error before kFinish: the router went away.
  if (!conn.error().empty()) {
    std::fprintf(stderr, "worker %u: stream error: %s\n", worker_id,
                 conn.error().c_str());
    return 3;
  }
  return 1;
}

int multiproc_worker_maybe_run(int argc, char** argv) {
  bool is_worker = false;
  std::uint32_t id = 0;
  std::string endpoint;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--multiproc-worker") {
      is_worker = true;
    } else if (a == "--worker-id" && i + 1 < argc) {
      id = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (a == "--connect" && i + 1 < argc) {
      endpoint = argv[++i];
    }
  }
  if (!is_worker) return -1;
  if (endpoint.empty()) {
    std::fprintf(stderr, "--multiproc-worker requires --connect\n");
    return 64;
  }
  return multiproc_worker_run(id, endpoint);
}

}  // namespace fastjoin
