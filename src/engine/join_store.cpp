#include "engine/join_store.hpp"

#include <cassert>

namespace fastjoin {

void JoinStore::insert(KeyId key, StoredTuple tuple) {
  tuple.subwindow = current_subwindow_;
  // try_emplace (not operator[]) so a fresh bucket is constructed with
  // this store's arena rather than a default (global) allocator.
  by_key_.try_emplace(key, ArenaAllocator<StoredTuple>(arena_))
      .first->second.push_back(tuple);
  ++size_;
  if (max_subwindows_ > 0) {
    subwindow_log_[current_subwindow_].push_back(key);
  }
}

const JoinStore::Bucket* JoinStore::find(KeyId key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &it->second;
}

std::uint64_t JoinStore::count_for(KeyId key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? 0 : it->second.size();
}

std::vector<KeyId> JoinStore::keys() const {
  std::vector<KeyId> out;
  out.reserve(by_key_.size());
  for (const auto& [k, _] : by_key_) out.push_back(k);
  return out;
}

std::vector<StoredTuple> JoinStore::extract_key(KeyId key) {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return {};
  std::vector<StoredTuple> out(it->second.begin(), it->second.end());
  size_ -= out.size();
  by_key_.erase(it);
  // Entries in subwindow_log_ for this key become stale; eviction
  // tolerates missing tuples (it pops only tuples tagged with the
  // evicted sub-window), so no cleanup is needed here.
  return out;
}

std::uint64_t JoinStore::advance_subwindow() {
  std::uint64_t evicted = 0;
  ++current_subwindow_;
  if (max_subwindows_ > 0 &&
      current_subwindow_ - oldest_subwindow_ >= max_subwindows_) {
    evicted = evict_subwindow(oldest_subwindow_);
    ++oldest_subwindow_;
  }
  return evicted;
}

std::uint64_t JoinStore::evict_subwindow(std::uint32_t sw) {
  const auto log_it = subwindow_log_.find(sw);
  if (log_it == subwindow_log_.end()) return 0;
  std::uint64_t evicted = 0;
  for (KeyId key : log_it->second) {
    auto it = by_key_.find(key);
    if (it == by_key_.end()) continue;  // key was migrated away
    auto& dq = it->second;
    // Tuples are in arrival order, so this sub-window's tuples form a
    // prefix (if still present).
    if (!dq.empty() && dq.front().subwindow == sw) {
      dq.pop_front();
      ++evicted;
      --size_;
      if (dq.empty()) by_key_.erase(it);
    }
  }
  subwindow_log_.erase(log_it);
  return evicted;
}

}  // namespace fastjoin
