#include "engine/matrix_engine.hpp"

namespace fastjoin {

MatrixJoinEngine::MatrixJoinEngine(const MatrixConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed ^ 0x3a7215ULL),
      results_rate_(cfg.rate_window) {
  cells_.reserve(static_cast<std::size_t>(cfg_.rows) * cfg_.cols);
  for (std::uint32_t i = 0; i < cfg_.rows * cfg_.cols; ++i) {
    cells_.push_back(std::make_unique<Cell>());
  }
}

void MatrixJoinEngine::dispatch(const Record& rec) {
  ++records_in_;
  if (rec.side == Side::kR) {
    // Random row; replicate across its columns.
    const auto row = static_cast<std::uint32_t>(rng_.next_below(cfg_.rows));
    for (std::uint32_t c = 0; c < cfg_.cols; ++c) {
      const std::uint32_t cell = row * cfg_.cols + c;
      sim_.schedule_after(cfg_.dispatch_latency,
                          [this, cell, rec]() { deliver(cell, rec); });
    }
  } else {
    // Random column; replicate across its rows.
    const auto col = static_cast<std::uint32_t>(rng_.next_below(cfg_.cols));
    for (std::uint32_t r = 0; r < cfg_.rows; ++r) {
      const std::uint32_t cell = r * cfg_.cols + col;
      sim_.schedule_after(cfg_.dispatch_latency,
                          [this, cell, rec]() { deliver(cell, rec); });
    }
  }
}

void MatrixJoinEngine::deliver(std::uint32_t cell, const Record& rec) {
  cells_[cell]->queue.push_back({rec, sim_.now()});
  maybe_start(cell);
}

void MatrixJoinEngine::maybe_start(std::uint32_t cell_idx) {
  Cell& cell = *cells_[cell_idx];
  if (cell.busy || cell.queue.empty()) return;
  cell.busy = true;
  auto [rec, enq_time] = cell.queue.front();
  cell.queue.pop_front();

  // A delivered tuple is both stored (its side) and probed against the
  // opposite side's local store. The ordering rule keeps every pair
  // joined exactly once within the cell.
  JoinStore& own = rec.side == Side::kR ? cell.r_store : cell.s_store;
  JoinStore& other = rec.side == Side::kR ? cell.s_store : cell.r_store;

  std::uint64_t matches = 0;
  if (const auto* bucket = other.find(rec.key)) {
    const Side stored_side = other_side(rec.side);
    if (on_match_) {
      for (const auto& st : *bucket) {
        if (precedes(st.ts, stored_side, st.seq, rec.ts, rec.side,
                     rec.seq)) {
          ++matches;
          MatchPair p;
          p.key = rec.key;
          p.r_seq = rec.side == Side::kR ? rec.seq : st.seq;
          p.s_seq = rec.side == Side::kR ? st.seq : rec.seq;
          on_match_(p);
        }
      }
    } else {
      matches = bucket->size();
      for (auto it = bucket->rbegin(); it != bucket->rend(); ++it) {
        if (precedes(it->ts, stored_side, it->seq, rec.ts, rec.side,
                     rec.seq)) {
          break;
        }
        --matches;
      }
    }
  }

  const SimTime service = cfg_.cost.store_time() +
                          cfg_.cost.probe_time(other.size(), matches);
  sim_.schedule_after(service, [this, cell_idx, rec, enq_time, matches,
                                &own]() {
    StoredTuple st;
    st.seq = rec.seq;
    st.payload = rec.payload;
    st.ts = rec.ts;
    own.insert(rec.key, st);

    ++cell_ops_;
    results_ += matches;
    results_rate_.add(sim_.now(), matches);
    latency_hist_.add(
        static_cast<double>(std::max<SimTime>(sim_.now() - enq_time, 1)));

    cells_[cell_idx]->busy = false;
    maybe_start(cell_idx);
  });
}

MatrixReport MatrixJoinEngine::run(RecordSource& source, SimTime duration) {
  // Feed chain, like SimJoinEngine.
  std::function<void()> feed = [&]() {
    auto rec = source.next();
    if (!rec || rec->ts > duration) return;
    sim_.schedule_at(std::max(rec->ts, sim_.now()),
                     [this, rec = *rec, &feed]() {
                       dispatch(rec);
                       feed();
                     });
  };
  feed();

  if (cfg_.drain) {
    sim_.run();
  } else {
    sim_.run(duration);
  }
  results_rate_.finish();

  MatrixReport rep;
  rep.records_in = records_in_;
  rep.results = results_;
  rep.cell_ops = cell_ops_;
  for (const auto& cell : cells_) {
    rep.tuples_stored += cell->r_store.size() + cell->s_store.size();
  }
  rep.replication_factor =
      records_in_ ? static_cast<double>(rep.tuples_stored) /
                        static_cast<double>(records_in_)
                  : 0.0;
  rep.mean_throughput = results_rate_.series().mean_after(cfg_.warmup);
  rep.mean_latency_ms = latency_hist_.mean() / 1e6;
  rep.p99_latency_ms = latency_hist_.value_at_percentile(99) / 1e6;
  rep.sim_end = sim_.now();
  rep.throughput_ts = results_rate_.series();
  return rep;
}

}  // namespace fastjoin
