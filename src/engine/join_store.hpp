// Per-instance tuple storage with optional sliding-window eviction.
//
// Tuples are grouped by key; within a key they are kept in arrival
// order, so window eviction can pop prefixes. The window is a ring of
// sub-windows (paper Section III-E): advancing past `max_subwindows`
// evicts the oldest sub-window in one sweep.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "engine/tuple.hpp"

namespace fastjoin {

class JoinStore {
 public:
  /// Per-key tuple run. Allocator-parameterized so a store owned by a
  /// live-engine worker can keep its deque pages and hash nodes on
  /// that worker's arena; with a null arena (the default everywhere
  /// else) the allocator degrades to global new/delete.
  using Bucket = std::deque<StoredTuple, ArenaAllocator<StoredTuple>>;

  /// `max_subwindows` = 0 keeps full history (no eviction). `arena`,
  /// when set, must outlive the store and is single-threaded: only the
  /// owning worker may touch the store (which is already the engine's
  /// threading rule).
  explicit JoinStore(std::uint32_t max_subwindows = 0,
                     Arena* arena = nullptr)
      : max_subwindows_(max_subwindows),
        arena_(arena),
        by_key_(kInitialBuckets, std::hash<KeyId>(),
                std::equal_to<KeyId>(), MapAlloc(arena)) {}

  /// Insert a tuple under `key`, tagged with the current sub-window.
  void insert(KeyId key, StoredTuple tuple);

  /// Stored tuples for `key`, oldest first; nullptr when absent.
  const Bucket* find(KeyId key) const;

  /// Total stored tuples: the paper's |R_i|.
  std::uint64_t size() const { return size_; }

  /// Stored tuples with key k: |R_ik|.
  std::uint64_t count_for(KeyId key) const;

  /// Number of distinct keys currently stored.
  std::size_t num_keys() const { return by_key_.size(); }

  /// Snapshot of all stored keys (for key-selection input assembly).
  std::vector<KeyId> keys() const;

  /// Remove and return all tuples of `key` (migration extraction).
  std::vector<StoredTuple> extract_key(KeyId key);

  /// Start a new sub-window; if the ring is full, evicts the oldest
  /// sub-window first. Returns the number of tuples evicted.
  std::uint64_t advance_subwindow();

  std::uint32_t current_subwindow() const { return current_subwindow_; }
  std::uint32_t max_subwindows() const { return max_subwindows_; }

 private:
  using MapAlloc = ArenaAllocator<std::pair<const KeyId, Bucket>>;
  using Map = std::unordered_map<KeyId, Bucket, std::hash<KeyId>,
                                 std::equal_to<KeyId>, MapAlloc>;
  static constexpr std::size_t kInitialBuckets = 16;

  std::uint64_t evict_subwindow(std::uint32_t sw);

  std::uint32_t max_subwindows_;
  std::uint32_t current_subwindow_ = 0;
  std::uint32_t oldest_subwindow_ = 0;
  std::uint64_t size_ = 0;
  Arena* arena_;
  Map by_key_;
  /// Insertion log per live sub-window, for O(inserted) eviction.
  /// Cold relative to probes (touched on insert/advance only), so it
  /// stays on the global allocator.
  std::unordered_map<std::uint32_t, std::vector<KeyId>> subwindow_log_;
};

}  // namespace fastjoin
