// Per-instance tuple storage with optional sliding-window eviction.
//
// Tuples are grouped by key; within a key they are kept in arrival
// order, so window eviction can pop prefixes. The window is a ring of
// sub-windows (paper Section III-E): advancing past `max_subwindows`
// evicts the oldest sub-window in one sweep.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "engine/tuple.hpp"

namespace fastjoin {

class JoinStore {
 public:
  /// `max_subwindows` = 0 keeps full history (no eviction).
  explicit JoinStore(std::uint32_t max_subwindows = 0)
      : max_subwindows_(max_subwindows) {}

  /// Insert a tuple under `key`, tagged with the current sub-window.
  void insert(KeyId key, StoredTuple tuple);

  /// Stored tuples for `key`, oldest first; nullptr when absent.
  const std::deque<StoredTuple>* find(KeyId key) const;

  /// Total stored tuples: the paper's |R_i|.
  std::uint64_t size() const { return size_; }

  /// Stored tuples with key k: |R_ik|.
  std::uint64_t count_for(KeyId key) const;

  /// Number of distinct keys currently stored.
  std::size_t num_keys() const { return by_key_.size(); }

  /// Snapshot of all stored keys (for key-selection input assembly).
  std::vector<KeyId> keys() const;

  /// Remove and return all tuples of `key` (migration extraction).
  std::vector<StoredTuple> extract_key(KeyId key);

  /// Start a new sub-window; if the ring is full, evicts the oldest
  /// sub-window first. Returns the number of tuples evicted.
  std::uint64_t advance_subwindow();

  std::uint32_t current_subwindow() const { return current_subwindow_; }
  std::uint32_t max_subwindows() const { return max_subwindows_; }

 private:
  std::uint64_t evict_subwindow(std::uint32_t sw);

  std::uint32_t max_subwindows_;
  std::uint32_t current_subwindow_ = 0;
  std::uint32_t oldest_subwindow_ = 0;
  std::uint64_t size_ = 0;
  std::unordered_map<KeyId, std::deque<StoredTuple>> by_key_;
  /// Insertion log per live sub-window, for O(inserted) eviction.
  std::unordered_map<std::uint32_t, std::vector<KeyId>> subwindow_log_;
};

}  // namespace fastjoin
