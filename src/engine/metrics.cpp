#include "engine/metrics.hpp"

namespace fastjoin {

MetricsHub::MetricsHub(const MetricsConfig& cfg, std::uint32_t instances)
    : cfg_(cfg),
      results_rate_(cfg.rate_window),
      latency_hist_(/*min=*/100.0, /*max=*/1e12),  // 100ns .. 1000s
      latency_ts_("latency_ms") {
  if (cfg_.record_instance_loads) {
    for (int g = 0; g < 2; ++g) {
      inst_load_ts_[g].resize(instances);
    }
  }
}

void MetricsHub::on_results(SimTime now, std::uint64_t n) {
  if (n == 0) return;
  results_rate_.add(now, n);
}

void MetricsHub::on_probe_latency(SimTime now, SimTime latency) {
  latency_hist_.add(static_cast<double>(latency));
  if (!lat_started_) {
    lat_window_start_ = now - now % cfg_.rate_window;
    lat_started_ = true;
  }
  while (now >= lat_window_start_ + cfg_.rate_window) {
    if (lat_window_n_ > 0) {
      latency_ts_.record(lat_window_start_ + cfg_.rate_window,
                         lat_window_sum_ /
                             static_cast<double>(lat_window_n_) / 1e6);
    }
    lat_window_sum_ = 0.0;
    lat_window_n_ = 0;
    lat_window_start_ += cfg_.rate_window;
  }
  lat_window_sum_ += static_cast<double>(latency);
  ++lat_window_n_;
}

void MetricsHub::on_match_pair(const MatchPair& p) {
  if (cfg_.record_pairs) pairs_.push_back(p);
}

void MetricsHub::record_li(SimTime now, Side group, double li) {
  li_ts_[static_cast<int>(group)].record(now, li);
}

void MetricsHub::record_instance_load(SimTime now, Side group,
                                      InstanceId id, double load) {
  if (!cfg_.record_instance_loads) return;
  auto& series = inst_load_ts_[static_cast<int>(group)];
  if (id < series.size()) series[id].record(now, load);
}

void MetricsHub::log_migration(const MigrationEvent& ev) {
  migrations_.push_back(ev);
}

void MetricsHub::finish() {
  results_rate_.finish();
  if (lat_started_ && lat_window_n_ > 0) {
    latency_ts_.record(lat_window_start_ + cfg_.rate_window,
                       lat_window_sum_ /
                           static_cast<double>(lat_window_n_) / 1e6);
    lat_window_n_ = 0;
  }
}

double MetricsHub::mean_throughput() const {
  return results_rate_.series().mean_after(cfg_.warmup);
}

double MetricsHub::mean_latency_ms() const {
  return latency_ts_.mean_after(cfg_.warmup);
}

}  // namespace fastjoin
