#include "engine/metrics.hpp"

#include <ostream>

namespace fastjoin {

MetricsHub::MetricsHub(const MetricsConfig& cfg, std::uint32_t instances)
    : cfg_(cfg),
      results_rate_(cfg.rate_window),
      latency_hist_(/*min=*/100.0, /*max=*/1e12),  // 100ns .. 1000s
      latency_win_("latency_ms", cfg.rate_window, /*scale=*/1e6) {
  if (cfg_.record_instance_loads) {
    for (int g = 0; g < 2; ++g) {
      inst_load_ts_[g].resize(instances);
    }
  }
}

void MetricsHub::on_results(SimTime now, std::uint64_t n) {
  if (n == 0) return;
  results_rate_.add(now, n);
}

void MetricsHub::on_probe_latency(SimTime now, SimTime latency) {
  latency_hist_.add(static_cast<double>(latency));
  latency_win_.add(now, static_cast<double>(latency));
}

void MetricsHub::on_match_pair(const MatchPair& p) {
  if (cfg_.record_pairs) pairs_.push_back(p);
}

void MetricsHub::record_li(SimTime now, Side group, double li) {
  li_ts_[static_cast<int>(group)].record(now, li);
}

void MetricsHub::record_instance_load(SimTime now, Side group,
                                      InstanceId id, double load) {
  if (!cfg_.record_instance_loads) return;
  auto& series = inst_load_ts_[static_cast<int>(group)];
  if (id < series.size()) series[id].record(now, load);
}

void MetricsHub::log_migration(const MigrationEvent& ev) {
  migrations_.push_back(ev);
}

void MetricsHub::finish() {
  results_rate_.finish();
  latency_win_.finish();
}

double MetricsHub::mean_throughput() const {
  return results_rate_.series().mean_after(cfg_.warmup);
}

double MetricsHub::mean_latency_ms() const {
  return latency_win_.series().mean_after(cfg_.warmup);
}

void MetricsHub::write_migration_trace(std::ostream& os) const {
  fastjoin::write_migration_trace(os, migrations_);
}

void write_migration_trace(std::ostream& os,
                           const std::vector<MigrationEvent>& migrations) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& ev : migrations) {
    if (!first) os << ",";
    first = false;
    const double ts = static_cast<double>(ev.triggered_at) / 1e3;
    const double dur =
        static_cast<double>(ev.completed_at - ev.triggered_at) / 1e3;
    os << "\n {\"name\": \"migrate\", \"cat\": \"migration\", "
       << "\"ph\": \"X\", \"pid\": 1, \"tid\": "
       << (static_cast<int>(ev.group) + 1) << ", \"ts\": " << ts
       << ", \"dur\": " << dur << ", \"args\": {\"src\": " << ev.src
       << ", \"dst\": " << ev.dst << ", \"li_before\": " << ev.li_before
       << ", \"keys_moved\": " << ev.keys_moved
       << ", \"tuples_moved\": " << ev.tuples_moved << "}}";
  }
  os << "\n]}\n";
}

}  // namespace fastjoin
