// Tuple-level types of the join engine and the exactly-once ordering rule.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "datagen/record.hpp"

namespace fastjoin {

/// A tuple as stored inside a join instance.
struct StoredTuple {
  std::uint64_t seq = 0;      ///< stream-unique sequence number
  std::uint64_t payload = 0;
  SimTime ts = 0;             ///< source timestamp
  std::uint32_t subwindow = 0;  ///< which sub-window it belongs to
};

/// Total order over tuples of both streams: (ts, side, seq). The engine
/// joins a probing tuple only with stored tuples that strictly precede
/// it; together with per-key FIFO delivery this makes every matching
/// (r, s) pair join on exactly one side of the biclique — the paper's
/// "completeness" requirement.
constexpr bool precedes(SimTime a_ts, Side a_side, std::uint64_t a_seq,
                        SimTime b_ts, Side b_side, std::uint64_t b_seq) {
  if (a_ts != b_ts) return a_ts < b_ts;
  if (a_side != b_side) return a_side < b_side;
  return a_seq < b_seq;
}

inline bool precedes(const Record& a, const Record& b) {
  return precedes(a.ts, a.side, a.seq, b.ts, b.side, b.seq);
}

/// One matched (stored, probe) pair, reported to the completeness
/// checker when pair recording is enabled.
struct MatchPair {
  KeyId key = 0;
  std::uint64_t r_seq = 0;
  std::uint64_t s_seq = 0;
};

/// Everything a migration ships from source to target for the selected
/// keys: the stored tuples and the probe tuples that were still pending.
struct MigrationBatch {
  std::vector<KeyId> keys;
  std::vector<std::pair<KeyId, StoredTuple>> stored;
  std::vector<Record> pending;  ///< in arrival order
  /// The source worker's extraction counter when this batch was cut.
  /// Echoed back in TakeForwardReq so a request that outlived its
  /// migration (timeout + new attempt) cannot clear a forwarding set
  /// installed by a later extraction.
  std::uint64_t extract_epoch = 0;
};

}  // namespace fastjoin
