// Per-operation service-time model for simulated join instances.
//
// Two probe-cost families:
//  * kHashIndex (default): a probe costs a base overhead plus a term per
//    matching stored tuple. This is how BiStream/FastJoin instances
//    actually execute (in-memory hash join), and it is what makes hot
//    keys progressively heavier: |R_ik| grows, so each probe of key k
//    costs more over time — reproducing Fig. 1(c)'s divergence.
//  * kNestedLoop: a probe scans the whole store (cost per stored tuple),
//    the literal reading of the paper's load model L_i = |R_i| * phi_si.
//    Kept as an ablation (bench/ablation_cost_model).
//
// Note the *monitoring* signal is always the paper's L = |R_i| * phi_si
// regardless of the execution cost family; the point of the experiment
// is that the paper's cheap monitor metric balances the true cost well.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"

namespace fastjoin {

enum class ProbeCostKind : std::uint8_t { kHashIndex, kNestedLoop };

struct CostModel {
  ProbeCostKind kind = ProbeCostKind::kHashIndex;

  SimTime store_cost = 600;        ///< ns per stored tuple
  SimTime probe_base = 900;        ///< ns per probe that finds matches
  /// ns per probe that finds nothing: a hash miss is discarded without
  /// touching the result-emission path. Negative = same as probe_base.
  SimTime probe_miss_cost = -1;
  double probe_per_match = 250.0;  ///< ns per matching stored tuple
  double probe_per_scan = 2.0;     ///< ns per stored tuple (nested loop)
  /// Cap on matches charged to a single probe's service time (0 = no
  /// cap). A simulation guard: without it, one probe of an extremely
  /// hot stored key can occupy an instance for longer than a monitor
  /// period, destabilizing the queue metrics without adding fidelity —
  /// real engines interleave result emission with input processing.
  std::uint64_t probe_match_cap = 0;

  /// Service time of storing one tuple.
  SimTime store_time() const { return store_cost; }

  /// Service time of one probe given the instance's current state.
  SimTime probe_time(std::uint64_t stored_total,
                     std::uint64_t matches) const {
    if (kind == ProbeCostKind::kNestedLoop) {
      return probe_base + static_cast<SimTime>(
                              probe_per_scan *
                              static_cast<double>(stored_total));
    }
    if (matches == 0) {
      return probe_miss_cost >= 0 ? probe_miss_cost : probe_base;
    }
    if (probe_match_cap > 0) {
      matches = std::min(matches, probe_match_cap);
    }
    return probe_base + static_cast<SimTime>(
                            probe_per_match *
                            static_cast<double>(matches));
  }
};

/// Control-plane / migration timing knobs.
struct MigrationCosts {
  SimTime control_latency = 200 * kNanosPerMicro;  ///< signal one-way
  SimTime selection_base = 100 * kNanosPerMicro;   ///< GreedyFit fixed
  double selection_per_key = 150.0;  ///< ns per key (the K log K term)
  double link_bytes_per_sec = 125e6;  ///< 1 Gbps migration link
  std::uint64_t tuple_bytes = 48;     ///< serialized tuple size

  SimTime selection_time(std::uint64_t num_keys) const {
    return selection_base +
           static_cast<SimTime>(selection_per_key *
                                static_cast<double>(num_keys));
  }

  SimTime transfer_time(std::uint64_t tuples) const {
    if (link_bytes_per_sec <= 0) return 0;
    const double bytes =
        static_cast<double>(tuples) * static_cast<double>(tuple_bytes);
    return static_cast<SimTime>(bytes / link_bytes_per_sec * 1e9);
  }
};

}  // namespace fastjoin
