// SimJoinEngine: the end-to-end distributed stream join system on the
// discrete-event cluster.
//
// Wires together: a spout pulling from a RecordSource, the dispatching
// component (router + routing table), two groups of join instances (the
// join biclique), two monitors (one per group, paper Section III-A) and
// the metrics hub. Baselines are configurations:
//   BiStream           = kHash routing, balancer disabled
//   BiStream-ContRand  = kContRand routing, balancer disabled
//   FastJoin           = kHash routing, balancer enabled (GreedyFit/SAFit)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/planner.hpp"
#include "datagen/trace.hpp"
#include "engine/cost_model.hpp"
#include "engine/dispatcher.hpp"
#include "engine/join_instance.hpp"
#include "engine/metrics.hpp"
#include "simnet/simulator.hpp"

namespace fastjoin {

/// Dynamic load-balancing configuration (the FastJoin addition).
struct BalancerConfig {
  bool enabled = true;
  PlannerConfig planner;                  ///< theta, selector, ...
  SimTime monitor_period = kNanosPerSec;  ///< load-statistics cadence
  /// Do not trigger when even the heaviest instance is this lightly
  /// loaded (avoids migration churn on an idle system; the paper's
  /// clusters are always saturated so it never mentions this guard).
  double min_heaviest_load = 1e4;
  /// Maximum concurrent migrations per group. 1 = the paper's protocol
  /// (one heaviest/lightest pair at a time); higher values pair the
  /// k heaviest with the k lightest instances in the same period.
  std::size_t max_concurrent_migrations = 1;
};

struct EngineConfig {
  std::uint32_t instances = 48;  ///< join instances per biclique side
  /// The dispatching component's pre-processing unit (the paper's
  /// "shuffler"): applied to every record before routing. Return
  /// nullopt to drop the record (filtering), or a modified record
  /// (e.g. re-timestamping, key normalization). Null = pass-through.
  std::function<std::optional<Record>(const Record&)> preprocess;
  PartitionStrategy strategy = PartitionStrategy::kHash;
  std::uint32_t contrand_group = 4;  ///< subgroup size for kContRand
  PhiSignal phi_signal = PhiSignal::kHybrid;  ///< load-model phi source
  /// Bound per-instance per-key probe statistics to this many tracked
  /// keys via a SpaceSaving sketch (0 = exact counters). Addresses the
  /// chi_k * K memory term of the paper's SGR analysis (Section IV-C).
  std::size_t stats_capacity = 0;
  BalancerConfig balancer;
  CostModel cost;
  MigrationCosts migration;
  SimTime dispatch_latency = 100 * kNanosPerMicro;  ///< router -> instance
  /// Sliding-window join (Section III-E): number of sub-windows kept
  /// (0 = full-history join) and the length of one sub-window.
  std::uint32_t window_subwindows = 0;
  SimTime subwindow_len = kNanosPerSec;
  /// Checkpointing for fault tolerance: every period, each instance
  /// snapshots its stored tuples (0 = off). A crashed instance restores
  /// from its latest checkpoint; tuples stored since then are lost.
  SimTime checkpoint_period = 0;
  /// Wall time a recovering instance is paused while reloading.
  SimTime recovery_pause = kNanosPerMilli;
  MetricsConfig metrics;
  std::uint64_t seed = 1;
  /// After the feed ends, process the backlog to completion (true) or
  /// cut the simulation at the feed horizon (false).
  bool drain = false;
};

/// Everything a bench/test needs from one run.
struct RunReport {
  std::uint64_t records_in = 0;
  std::uint64_t results = 0;
  std::uint64_t probes = 0;
  std::uint64_t stores = 0;
  std::uint64_t evicted = 0;
  double mean_throughput = 0.0;   ///< results/sec, post-warmup
  double mean_latency_ms = 0.0;   ///< mean probe latency, post-warmup
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double mean_li = 1.0;           ///< mean of max(LI_R, LI_S) post-warmup
  std::size_t migrations = 0;
  std::uint64_t tuples_migrated = 0;
  std::size_t migrations_aborted = 0;  ///< unwound by a mid-flight crash
  std::size_t failures = 0;        ///< injected instance crashes
  std::size_t failures_skipped = 0;    ///< crash requests for unknown ids
  std::uint64_t tuples_recovered = 0;  ///< restored from checkpoints
  SimTime sim_end = 0;
  SimTime feed_end = 0;  ///< when the source ran dry (0 = never did)
  TimeSeries throughput_ts;
  TimeSeries latency_ts;
  TimeSeries li_r_ts;
  TimeSeries li_s_ts;
  std::vector<TimeSeries> instance_load_r;
  std::vector<TimeSeries> instance_load_s;
  std::vector<MigrationEvent> migration_log;
  std::vector<MatchPair> pairs;  ///< only when metrics.record_pairs
};

class SimJoinEngine {
 public:
  explicit SimJoinEngine(const EngineConfig& cfg);

  /// Feed records from `source` until its end or until a record's
  /// timestamp exceeds `duration`, run the cluster, and report.
  RunReport run(RecordSource& source, SimTime duration);

  /// Elastic scale-out (paper Section IV-C): at virtual time `at`,
  /// `add` fresh instances join each side of the biclique. They start
  /// empty; the balancer populates them by migrating keys (routing
  /// overrides), with no global rehash. Call before run(); requires
  /// kHash routing and the balancer enabled to have any effect.
  void schedule_scale_out(SimTime at, std::uint32_t add);

  /// Fault injection: crash instance `id` of `group` at time `at`. The
  /// instance loses its store and queue, then restores from its latest
  /// checkpoint (nothing, if checkpointing is off). If the instance is
  /// part of an active migration, the migration is aborted first:
  /// routing overrides roll back, the target releases its held keys,
  /// and the surviving endpoint re-absorbs whatever protocol state can
  /// still be replayed without double-processing (see
  /// docs/migration_protocol.md, "Failure interactions").
  void schedule_failure(SimTime at, Side group, InstanceId id);

  // --- test hooks ------------------------------------------------------
  Simulator& simulator() { return sim_; }
  Dispatcher& dispatcher() { return dispatcher_; }
  JoinInstance& instance(Side group, InstanceId id) {
    return *groups_[static_cast<int>(group)][id];
  }
  const EngineConfig& config() const { return cfg_; }
  MetricsHub& metrics() { return *metrics_; }

 private:
  /// How far an in-flight migration has progressed, for abort unwinding.
  enum class MigPhase : std::uint8_t {
    kSelecting,       ///< source quiescing / selecting keys
    kExtracted,       ///< batch extracted from the source
    kAbsorbed,        ///< target merged the batch (pending enqueued there)
    kRoutingUpdated,  ///< dispatcher overrides installed
  };
  /// One in-flight migration; both endpoints map to the same record so
  /// a crash of either can find and abort it.
  struct ActiveMigration {
    MigrationPair pair;
    MigPhase phase = MigPhase::kSelecting;
    bool aborted = false;
    bool hold_installed = false;
    std::shared_ptr<MigrationBatch> batch;
    /// Override state per key before this migration installed its own,
    /// for rollback (nullopt = no override, key was at its hash home).
    std::vector<std::pair<KeyId, std::optional<InstanceId>>> prev_overrides;
  };

  void feed_next(RecordSource& source, SimTime duration);
  void dispatch(const Record& rec);
  void monitor_tick(Side group, SimTime duration);
  void start_migration(Side group, const MigrationPair& pair);
  void abort_migration(Side group, const std::shared_ptr<ActiveMigration>& am,
                       InstanceId crashed);
  void end_migration(Side group, const ActiveMigration& am);
  void window_tick(SimTime duration);
  void checkpoint_tick(SimTime duration);

  EngineConfig cfg_;
  Simulator sim_;
  Dispatcher dispatcher_;
  std::unique_ptr<MetricsHub> metrics_;
  std::vector<std::unique_ptr<JoinInstance>> groups_[2];
  /// Busy src/dst ids -> their in-flight migration.
  std::unordered_map<InstanceId, std::shared_ptr<ActiveMigration>>
      migrating_[2];
  std::uint64_t records_in_ = 0;
  std::uint64_t evicted_ = 0;
  SimTime feed_end_ = 0;
  JoinInstance::Hooks instance_hooks_;
  std::uint64_t tuples_migrated_ = 0;
  std::size_t migrations_aborted_ = 0;
  std::size_t failures_ = 0;
  std::size_t failures_skipped_ = 0;
  std::uint64_t tuples_recovered_ = 0;
  std::vector<std::vector<std::pair<KeyId, StoredTuple>>> checkpoints_[2];
  std::vector<InstanceId> probe_dsts_;  // scratch
};

/// Convenience name for the three systems under comparison.
enum class SystemKind : std::uint8_t {
  kBiStream,
  kBiStreamContRand,
  kFastJoin,
  kFastJoinSA,
};

const char* system_name(SystemKind k);

/// Apply a system preset to a config (strategy + balancer settings).
void apply_system(EngineConfig& cfg, SystemKind kind);

}  // namespace fastjoin
