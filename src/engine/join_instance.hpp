// A simulated join instance: one worker of one side of the join biclique.
//
// An instance of the R-side group stores tuples of stream R and probes
// them with tuples of stream S (and vice versa). It owns a FIFO input
// queue and serves one tuple at a time with service times from the
// CostModel — i.e. it is a single-server queueing station whose service
// rate degrades as its stored state grows, which is precisely the
// mechanism behind the paper's load-imbalance pathology.
//
// The instance also implements the worker-side half of the migration
// protocol (paper Algorithm 2):
//   source: pause() -> when_idle() -> extract() -> mark_forwarding()
//           -> take_forward_buffer() -> resume()
//   target: hold_keys() -> absorb_stored() -> release_held()
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/load_model.hpp"
#include "engine/cost_model.hpp"
#include "engine/join_store.hpp"
#include "engine/tuple.hpp"
#include "common/spacesaving.hpp"
#include "simnet/simulator.hpp"

namespace fastjoin {

/// How an instance computes the paper's phi (pending-probe pressure).
enum class PhiSignal : std::uint8_t {
  kHybrid,     ///< backlog + decayed recent-probe count (default)
  kQueueOnly,  ///< the paper's literal "queue length"
  kRateOnly,   ///< only the decayed incoming-probe counter
};

class JoinInstance {
 public:
  /// Engine-provided callbacks.
  struct Hooks {
    /// A probe finished: `matches` result tuples were emitted and the
    /// probe spent `latency` in this instance (queue + service).
    std::function<void(SimTime now, std::uint64_t matches, SimTime latency)>
        on_probe_done;
    /// Optional: every matched pair (completeness checking; expensive).
    std::function<void(const MatchPair&)> on_match;
  };

  /// `stats_capacity` > 0 bounds the per-key probe-rate statistics to
  /// that many tracked keys via a SpaceSaving sketch (the Section IV-C
  /// memory concern: chi_k * K); 0 keeps exact per-key counters.
  JoinInstance(Simulator& sim, InstanceId id, Side store_side,
               const CostModel& cost, std::uint32_t max_subwindows,
               Hooks hooks, PhiSignal phi = PhiSignal::kHybrid,
               std::size_t stats_capacity = 0);

  JoinInstance(const JoinInstance&) = delete;
  JoinInstance& operator=(const JoinInstance&) = delete;

  /// Deliver a record. A record of the storing side is a store op; a
  /// record of the other side is a probe. Records for keys currently
  /// being migrated are diverted per the protocol state.
  void enqueue(Record rec);

  // --- Load-model accessors (paper Eqs. 1, 3, 4) -------------------
  /// {|R_i|, phi_si}. phi blends the probe backlog (the paper's "queue
  /// length") with an exponentially decayed count of recently served
  /// probes (the paper's "incoming tuples" counter): backlog alone reads
  /// zero on a keeping-up instance, which would make LI meaningless off
  /// saturation and cause endless migration churn.
  InstanceLoad aggregate_load() const;
  /// Per-key {|R_ik|, phi_sik} over stored and pending keys.
  std::vector<KeyLoad> key_loads() const;
  /// Halve the decayed probe-rate window; the monitor calls this once
  /// per period, making the window an EWMA of the per-key probe rate.
  void decay_probe_window();

  std::size_t queue_length() const { return queue_.size(); }
  bool busy() const { return busy_; }
  bool paused() const { return paused_; }

  // --- Migration: source side --------------------------------------
  void pause();
  void resume();
  /// Run `fn` as soon as the in-service tuple (if any) completes.
  void when_idle(std::function<void()> fn);
  /// Remove the selected keys' stored tuples and their queued records;
  /// start diverting newly arriving records for them into the forward
  /// buffer.
  MigrationBatch extract(std::span<const KeyLoad> selection);
  /// Records that arrived for migrating keys since extract(); clears
  /// the buffer and stops diverting.
  std::vector<Record> take_forward_buffer();

  /// Abort a migration at the source: re-merge the extracted stored
  /// tuples, optionally re-enqueue the batch's pending records (only
  /// safe when the target never received the batch — it may have served
  /// some of them otherwise), replay the forward buffer locally, stop
  /// diverting, and resume. Per-key order is preserved: pending records
  /// precede forward-buffer records, which precede anything routed here
  /// after the abort.
  void abort_migration(
      std::span<const std::pair<KeyId, StoredTuple>> stored,
      bool replay_pending, std::span<const Record> pending);

  // --- Migration: target side --------------------------------------
  /// Buffer (do not process) incoming records for these keys until
  /// release_held().
  void hold_keys(std::span<const KeyId> keys);
  /// Merge migrated stored tuples, then enqueue the batch's pending
  /// records (called when the bulk transfer is delivered).
  void absorb_stored(const MigrationBatch& batch);
  /// Enqueue the source's forwarded records, then the held ones, and
  /// stop holding.
  void release_held(std::span<const Record> forwarded);

  // --- Window support (paper Section III-E) -------------------------
  /// Returns the number of expired tuples evicted.
  std::uint64_t advance_subwindow();

  // --- Fault tolerance ----------------------------------------------
  /// Snapshot of the stored state, ordered per key (checkpoint).
  std::vector<std::pair<KeyId, StoredTuple>> checkpoint_store() const;
  /// Crash: lose the store, the input queue and all counters. An
  /// in-service job's completion event is invalidated (epoch guard).
  void crash();
  /// Reload a checkpoint into the (empty) store after a crash.
  void restore(const std::vector<std::pair<KeyId, StoredTuple>>& snapshot);

  // --- Introspection -------------------------------------------------
  InstanceId id() const { return id_; }
  Side store_side() const { return store_side_; }
  const JoinStore& store() const { return store_; }
  std::uint64_t probes_done() const { return probes_done_; }
  std::uint64_t stores_done() const { return stores_done_; }
  std::uint64_t results_emitted() const { return results_; }
  SimTime busy_time() const { return busy_time_; }

 private:
  struct Pending {
    Record rec;
    SimTime enqueued_at;
  };

  void enqueue_internal(Record rec);
  void maybe_start();
  void start_service(Pending item);
  void finish_probe(const Pending& item, std::uint64_t matches);

  Simulator& sim_;
  InstanceId id_;
  Side store_side_;
  const CostModel& cost_;
  Hooks hooks_;
  PhiSignal phi_signal_;

  JoinStore store_;
  std::deque<Pending> queue_;
  std::unordered_map<KeyId, std::uint64_t> pending_probe_;  ///< backlog
  std::uint64_t pending_probe_total_ = 0;
  std::unordered_map<KeyId, std::uint64_t> probe_window_;  ///< EWMA rate
  std::unique_ptr<SpaceSaving> probe_sketch_;  ///< bounded alternative
  std::uint64_t probe_window_total_ = 0;

  bool busy_ = false;
  bool paused_ = false;
  std::vector<std::function<void()>> idle_callbacks_;

  // Source-side migration state.
  std::unordered_set<KeyId> forwarding_keys_;
  std::vector<Record> forward_buffer_;

  // Target-side migration state.
  std::unordered_set<KeyId> held_keys_;
  std::vector<Record> held_buffer_;

  std::uint64_t probes_done_ = 0;
  std::uint64_t stores_done_ = 0;
  std::uint64_t results_ = 0;
  SimTime busy_time_ = 0;
  /// Incremented by crash(); completion events from a previous epoch
  /// are ignored when they fire.
  std::uint64_t epoch_ = 0;
};

}  // namespace fastjoin
