// Join-matrix engine (Elseidy et al., SQUALL): the related-work baseline
// the paper contrasts with the join-biclique model.
//
// Processing cells form a rows x cols matrix. Every R tuple is assigned
// a random row and replicated to ALL cells of that row; every S tuple is
// assigned a random column and replicated to ALL cells of that column.
// Each (r, s) pair meets in exactly one cell — the row/column
// intersection — so completeness holds by construction, and load is
// balanced regardless of key skew. The price is replication: each tuple
// is stored `cols` (R) or `rows` (S) times, which is why BiStream calls
// the design memory-inefficient and hard to scale (Section II).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/timeseries.hpp"
#include "datagen/trace.hpp"
#include "engine/cost_model.hpp"
#include "engine/join_store.hpp"
#include "simnet/simulator.hpp"

namespace fastjoin {

struct MatrixConfig {
  std::uint32_t rows = 8;
  std::uint32_t cols = 8;
  CostModel cost;
  SimTime dispatch_latency = 100 * kNanosPerMicro;
  SimTime rate_window = kNanosPerSec / 4;
  SimTime warmup = 0;
  std::uint64_t seed = 1;
  bool drain = false;
};

struct MatrixReport {
  std::uint64_t records_in = 0;
  std::uint64_t results = 0;
  std::uint64_t cell_ops = 0;       ///< replicated deliveries processed
  std::uint64_t tuples_stored = 0;  ///< total stored incl. replicas
  double replication_factor = 0.0;  ///< tuples_stored / records_in
  double mean_throughput = 0.0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  SimTime sim_end = 0;
  TimeSeries throughput_ts;
};

class MatrixJoinEngine {
 public:
  explicit MatrixJoinEngine(const MatrixConfig& cfg);

  MatrixReport run(RecordSource& source, SimTime duration);

  Simulator& simulator() { return sim_; }

  /// Test hook: record every matched pair.
  void set_on_match(std::function<void(const MatchPair&)> fn) {
    on_match_ = std::move(fn);
  }

 private:
  /// One processing cell: single-server queue storing both streams.
  struct Cell {
    JoinStore r_store;
    JoinStore s_store;
    std::deque<std::pair<Record, SimTime>> queue;
    bool busy = false;
  };

  void dispatch(const Record& rec);
  void deliver(std::uint32_t cell, const Record& rec);
  void maybe_start(std::uint32_t cell);

  MatrixConfig cfg_;
  Simulator sim_;
  Xoshiro256 rng_;
  std::vector<std::unique_ptr<Cell>> cells_;
  std::function<void(const MatchPair&)> on_match_;

  std::uint64_t records_in_ = 0;
  std::uint64_t results_ = 0;
  std::uint64_t cell_ops_ = 0;
  RateTracker results_rate_;
  LogHistogram latency_hist_{100.0, 1e12};
  // Per-window latency aggregation, mirroring MetricsHub.
  TimeSeries latency_ts_{"latency_ms"};
};

}  // namespace fastjoin
