// Run-wide measurement: throughput, latency, imbalance and migration
// logs — the "statistic bolt" + "counter bolt" of the paper's setup.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/histogram.hpp"
#include "common/timeseries.hpp"
#include "common/types.hpp"
#include "datagen/record.hpp"
#include "engine/tuple.hpp"

namespace fastjoin {

struct MetricsConfig {
  SimTime rate_window = kNanosPerSec;  ///< per-second reporting
  SimTime warmup = 0;      ///< ignore samples before this time in averages
  bool record_pairs = false;          ///< keep every MatchPair (tests)
  bool record_instance_loads = false; ///< per-instance series (Fig. 1c)
};

/// One executed migration, for the migration log.
struct MigrationEvent {
  SimTime triggered_at = 0;
  SimTime completed_at = 0;
  Side group = Side::kR;
  InstanceId src = 0;
  InstanceId dst = 0;
  double li_before = 1.0;
  std::uint64_t keys_moved = 0;
  std::uint64_t tuples_moved = 0;
};

class MetricsHub {
 public:
  explicit MetricsHub(const MetricsConfig& cfg, std::uint32_t instances);

  // --- data-path events ---------------------------------------------
  void on_results(SimTime now, std::uint64_t n);
  void on_probe_latency(SimTime now, SimTime latency);
  void on_match_pair(const MatchPair& p);

  // --- monitor events -------------------------------------------------
  void record_li(SimTime now, Side group, double li);
  void record_instance_load(SimTime now, Side group, InstanceId id,
                            double load);
  void log_migration(const MigrationEvent& ev);

  /// Close out rate windows; call once when the run ends.
  void finish();

  // --- accessors -------------------------------------------------------
  const MetricsConfig& config() const { return cfg_; }
  const RateTracker& throughput() const { return results_rate_; }
  const TimeSeries& latency_series() const { return latency_win_.series(); }
  const LogHistogram& latency_hist() const { return latency_hist_; }
  const TimeSeries& li_series(Side group) const {
    return li_ts_[static_cast<int>(group)];
  }
  const std::vector<TimeSeries>& instance_load_series(Side group) const {
    return inst_load_ts_[static_cast<int>(group)];
  }
  const std::vector<MigrationEvent>& migrations() const {
    return migrations_;
  }
  const std::vector<MatchPair>& pairs() const { return pairs_; }

  /// Mean throughput (results/sec) over post-warmup windows.
  double mean_throughput() const;
  /// Mean probe latency (ms) over post-warmup windows.
  double mean_latency_ms() const;

  /// Export this hub's migration log as Chrome Trace Event JSON; see
  /// the free function below.
  void write_migration_trace(std::ostream& os) const;

 private:
  MetricsConfig cfg_;
  RateTracker results_rate_;
  LogHistogram latency_hist_;
  // Per-window latency aggregation -> per-second mean latency series
  // (ns samples in, ms means out), shared with common/timeseries.
  WindowedMean latency_win_;

  TimeSeries li_ts_[2];
  std::vector<TimeSeries> inst_load_ts_[2];
  std::vector<MigrationEvent> migrations_;
  std::vector<MatchPair> pairs_;
};

/// Render a migration log as Chrome Trace Event JSON (one complete
/// event per migration, microsecond timestamps from SimTime) — the
/// simulated engine's twin of telemetry::TraceLog::write_chrome_trace;
/// both load at https://ui.perfetto.dev. Benches call this with
/// RunReport::migration_log.
void write_migration_trace(std::ostream& os,
                           const std::vector<MigrationEvent>& migrations);

}  // namespace fastjoin
