#include "engine/dispatcher.hpp"

#include <algorithm>
#include <cassert>

namespace fastjoin {

const char* strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kHash: return "hash";
    case PartitionStrategy::kContRand: return "contrand";
    case PartitionStrategy::kRandomBroadcast: return "random-broadcast";
    case PartitionStrategy::kPartialKey: return "partial-key";
  }
  return "?";
}

Dispatcher::Dispatcher(PartitionStrategy strategy, std::uint32_t group_size,
                       std::uint32_t contrand_group, std::uint64_t seed)
    : strategy_(strategy),
      group_size_(group_size),
      hash_modulus_(group_size),
      contrand_group_(std::clamp<std::uint32_t>(contrand_group, 1,
                                                std::max(1u, group_size))),
      seed_(seed) {
  assert(group_size >= 1);
  if (strategy_ == PartitionStrategy::kPartialKey) {
    pkg_counts_[0].assign(group_size_, 0);
    pkg_counts_[1].assign(group_size_, 0);
  }
}

std::pair<InstanceId, InstanceId> Dispatcher::pkg_candidates(
    KeyId k) const {
  return {instance_of(k, hash_modulus_, seed_),
          instance_of(k, hash_modulus_, seed_ ^ 0x9e3779b97f4a7c15ULL)};
}

InstanceId Dispatcher::hash_route(Side group_side, KeyId k) const {
  const auto& ov = overrides_[static_cast<int>(group_side)];
  if (!ov.empty()) {
    const auto it = ov.find(k);
    if (it != ov.end()) return it->second;
  }
  return instance_of(k, hash_modulus_, seed_);
}

void Dispatcher::grow(std::uint32_t by) {
  assert(strategy_ == PartitionStrategy::kHash &&
         "elastic scale-out requires key-based routing");
  group_size_ += by;
}

std::uint32_t Dispatcher::subgroup_base(KeyId k) const {
  const std::uint32_t num_subgroups =
      std::max(1u, group_size_ / contrand_group_);
  return instance_of(k, num_subgroups, seed_ ^ 0xc0117a9dULL) *
         contrand_group_;
}

InstanceId Dispatcher::route_store(const Record& rec) {
  const int g = static_cast<int>(rec.side);
  switch (strategy_) {
    case PartitionStrategy::kHash:
      return hash_route(rec.side, rec.key);
    case PartitionStrategy::kContRand: {
      const std::uint32_t base = subgroup_base(rec.key);
      const std::uint32_t span =
          std::min(contrand_group_, group_size_ - base);
      return base + (round_robin_[g]++ % span);
    }
    case PartitionStrategy::kRandomBroadcast:
      return round_robin_[g]++ % group_size_;
    case PartitionStrategy::kPartialKey: {
      const auto [a, b] = pkg_candidates(rec.key);
      const InstanceId pick =
          pkg_counts_[g][a] <= pkg_counts_[g][b] ? a : b;
      ++pkg_counts_[g][pick];
      return pick;
    }
  }
  return 0;
}

void Dispatcher::route_probe(Side group_side, const Record& rec,
                             std::vector<InstanceId>& out) const {
  switch (strategy_) {
    case PartitionStrategy::kHash:
      out.push_back(hash_route(group_side, rec.key));
      return;
    case PartitionStrategy::kContRand: {
      const std::uint32_t base = subgroup_base(rec.key);
      const std::uint32_t span =
          std::min(contrand_group_, group_size_ - base);
      for (std::uint32_t i = 0; i < span; ++i) out.push_back(base + i);
      return;
    }
    case PartitionStrategy::kRandomBroadcast:
      for (std::uint32_t i = 0; i < group_size_; ++i) out.push_back(i);
      return;
    case PartitionStrategy::kPartialKey: {
      const auto [a, b] = pkg_candidates(rec.key);
      out.push_back(a);
      if (b != a) out.push_back(b);
      return;
    }
  }
}

void Dispatcher::clear_override(Side group_side, KeyId k) {
  overrides_[static_cast<int>(group_side)].erase(k);
}

std::optional<InstanceId> Dispatcher::override_for(Side group_side,
                                                   KeyId k) const {
  const auto& ov = overrides_[static_cast<int>(group_side)];
  const auto it = ov.find(k);
  if (it == ov.end()) return std::nullopt;
  return it->second;
}

void Dispatcher::apply_override(Side group_side, KeyId k, InstanceId dst) {
  assert(strategy_ == PartitionStrategy::kHash &&
         "routing overrides require key-based routing");
  assert(dst < group_size_);
  if (instance_of(k, hash_modulus_, seed_) == dst) {
    // Migrating back home: drop the override instead of storing it.
    overrides_[static_cast<int>(group_side)].erase(k);
  } else {
    overrides_[static_cast<int>(group_side)][k] = dst;
  }
}

}  // namespace fastjoin
