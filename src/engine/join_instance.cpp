#include "engine/join_instance.hpp"

#include <algorithm>
#include <cassert>

namespace fastjoin {

JoinInstance::JoinInstance(Simulator& sim, InstanceId id, Side store_side,
                           const CostModel& cost,
                           std::uint32_t max_subwindows, Hooks hooks,
                           PhiSignal phi, std::size_t stats_capacity)
    : sim_(sim),
      id_(id),
      store_side_(store_side),
      cost_(cost),
      hooks_(std::move(hooks)),
      phi_signal_(phi),
      store_(max_subwindows) {
  if (stats_capacity > 0) {
    probe_sketch_ = std::make_unique<SpaceSaving>(stats_capacity);
  }
}

void JoinInstance::enqueue(Record rec) {
  // Migration diversions take precedence over normal processing.
  if (!forwarding_keys_.empty() && forwarding_keys_.count(rec.key)) {
    forward_buffer_.push_back(rec);
    return;
  }
  if (!held_keys_.empty() && held_keys_.count(rec.key)) {
    held_buffer_.push_back(rec);
    return;
  }
  enqueue_internal(rec);
}

void JoinInstance::enqueue_internal(Record rec) {
  if (rec.side != store_side_) {
    ++pending_probe_[rec.key];
    ++pending_probe_total_;
  }
  queue_.push_back(Pending{rec, sim_.now()});
  maybe_start();
}

void JoinInstance::maybe_start() {
  if (busy_ || paused_ || queue_.empty()) return;
  busy_ = true;
  Pending item = std::move(queue_.front());
  queue_.pop_front();
  start_service(std::move(item));
}

void JoinInstance::start_service(Pending item) {
  const Record& rec = item.rec;
  if (rec.side == store_side_) {
    // Store operation: mutation happens at completion so a probe queued
    // behind it observes it, while nothing earlier does.
    const SimTime service = cost_.store_time();
    busy_time_ += service;
    sim_.schedule_after(service, [this, item, epoch = epoch_]() {
      if (epoch != epoch_) return;  // instance crashed meanwhile
      StoredTuple st;
      st.seq = item.rec.seq;
      st.payload = item.rec.payload;
      st.ts = item.rec.ts;
      store_.insert(item.rec.key, st);
      ++stores_done_;
      busy_ = false;
      if (!idle_callbacks_.empty()) {
        auto cbs = std::move(idle_callbacks_);
        idle_callbacks_.clear();
        for (auto& cb : cbs) cb();
      }
      maybe_start();
    });
    return;
  }

  // Probe: count matches now (the store cannot change for this key while
  // the probe is in service), emit results at completion. Pairs are
  // buffered and reported at completion too, so a crash mid-service
  // drops the pair records and the result count together.
  std::uint64_t matches = 0;
  std::vector<MatchPair> pairs;
  if (const auto* bucket = store_.find(rec.key)) {
    if (hooks_.on_match) {
      // Pair-recording mode (tests): walk the whole bucket.
      for (const auto& st : *bucket) {
        if (precedes(st.ts, store_side_, st.seq, rec.ts, rec.side,
                     rec.seq)) {
          ++matches;
          MatchPair p;
          p.key = rec.key;
          p.r_seq = store_side_ == Side::kR ? st.seq : rec.seq;
          p.s_seq = store_side_ == Side::kR ? rec.seq : st.seq;
          pairs.push_back(p);
        }
      }
    } else {
      // Fast path: the bucket is in arrival order, hence timestamp
      // ordered, so the tuples NOT preceding the probe form a suffix.
      // Exact count in O(1 + suffix length), independent of matches.
      matches = bucket->size();
      for (auto it = bucket->rbegin(); it != bucket->rend(); ++it) {
        if (precedes(it->ts, store_side_, it->seq, rec.ts, rec.side,
                     rec.seq)) {
          break;
        }
        --matches;
      }
    }
  }
  const SimTime service = cost_.probe_time(store_.size(), matches);
  busy_time_ += service;
  sim_.schedule_after(service, [this, item, matches, epoch = epoch_,
                                pairs = std::move(pairs)]() {
    if (epoch != epoch_) return;  // instance crashed meanwhile
    if (hooks_.on_match) {
      for (const auto& p : pairs) hooks_.on_match(p);
    }
    finish_probe(item, matches);
  });
}

void JoinInstance::finish_probe(const Pending& item, std::uint64_t matches) {
  auto it = pending_probe_.find(item.rec.key);
  assert(it != pending_probe_.end() && it->second > 0);
  if (--it->second == 0) pending_probe_.erase(it);
  --pending_probe_total_;
  if (probe_sketch_) {
    probe_sketch_->add(item.rec.key);
  } else {
    ++probe_window_[item.rec.key];
  }
  ++probe_window_total_;

  ++probes_done_;
  results_ += matches;
  if (hooks_.on_probe_done) {
    hooks_.on_probe_done(sim_.now(), matches, sim_.now() - item.enqueued_at);
  }
  busy_ = false;
  if (!idle_callbacks_.empty()) {
    auto cbs = std::move(idle_callbacks_);
    idle_callbacks_.clear();
    for (auto& cb : cbs) cb();
  }
  maybe_start();
}

InstanceLoad JoinInstance::aggregate_load() const {
  InstanceLoad l;
  l.stored = store_.size();
  switch (phi_signal_) {
    case PhiSignal::kQueueOnly:
      l.queued = pending_probe_total_;
      break;
    case PhiSignal::kRateOnly:
      l.queued = probe_window_total_;
      break;
    case PhiSignal::kHybrid:
    default:
      l.queued = pending_probe_total_ + probe_window_total_;
      break;
  }
  return l;
}

void JoinInstance::decay_probe_window() {
  if (probe_sketch_) {
    probe_sketch_->decay();
    probe_window_total_ /= 2;
    return;
  }
  std::uint64_t total = 0;
  for (auto it = probe_window_.begin(); it != probe_window_.end();) {
    it->second /= 2;
    if (it->second == 0) {
      it = probe_window_.erase(it);
    } else {
      total += it->second;
      ++it;
    }
  }
  probe_window_total_ = total;
}

std::vector<KeyLoad> JoinInstance::key_loads() const {
  std::unordered_map<KeyId, KeyLoad> by_key;
  for (KeyId k : store_.keys()) {
    KeyLoad& kl = by_key[k];
    kl.key = k;
    kl.stored = store_.count_for(k);
  }
  if (phi_signal_ != PhiSignal::kRateOnly) {
    for (const auto& [k, queued] : pending_probe_) {
      KeyLoad& kl = by_key[k];
      kl.key = k;
      kl.queued += queued;
    }
  }
  if (phi_signal_ != PhiSignal::kQueueOnly) {
    if (probe_sketch_) {
      for (const auto& e : probe_sketch_->top()) {
        KeyLoad& kl = by_key[e.key];
        kl.key = e.key;
        kl.queued += e.count;
      }
    } else {
      for (const auto& [k, rate] : probe_window_) {
        KeyLoad& kl = by_key[k];
        kl.key = k;
        kl.queued += rate;
      }
    }
  }
  std::vector<KeyLoad> out;
  out.reserve(by_key.size());
  for (auto& [_, kl] : by_key) out.push_back(kl);
  // Deterministic order (hash-map iteration order is not).
  std::sort(out.begin(), out.end(),
            [](const KeyLoad& a, const KeyLoad& b) { return a.key < b.key; });
  return out;
}

void JoinInstance::pause() { paused_ = true; }

void JoinInstance::resume() {
  if (!paused_) return;
  paused_ = false;
  maybe_start();
}

void JoinInstance::when_idle(std::function<void()> fn) {
  if (!busy_) {
    fn();
  } else {
    idle_callbacks_.push_back(std::move(fn));
  }
}

MigrationBatch JoinInstance::extract(std::span<const KeyLoad> selection) {
  assert(paused_ && !busy_ && "extract requires a quiesced instance");
  MigrationBatch batch;
  batch.keys.reserve(selection.size());
  for (const auto& kl : selection) {
    batch.keys.push_back(kl.key);
    for (auto& st : store_.extract_key(kl.key)) {
      batch.stored.emplace_back(kl.key, st);
    }
    forwarding_keys_.insert(kl.key);
  }

  // The migrated keys' probe-rate history leaves with them.
  for (KeyId k : batch.keys) {
    if (probe_sketch_) {
      const std::uint64_t est = probe_sketch_->estimate(k);
      probe_window_total_ -= std::min(probe_window_total_, est);
      probe_sketch_->erase(k);
      continue;
    }
    const auto it = probe_window_.find(k);
    if (it != probe_window_.end()) {
      probe_window_total_ -= it->second;
      probe_window_.erase(it);
    }
  }

  // Pull queued records of the selected keys, preserving arrival order.
  std::deque<Pending> kept;
  for (auto& p : queue_) {
    if (forwarding_keys_.count(p.rec.key)) {
      if (p.rec.side != store_side_) {
        auto it = pending_probe_.find(p.rec.key);
        assert(it != pending_probe_.end() && it->second > 0);
        if (--it->second == 0) pending_probe_.erase(it);
        --pending_probe_total_;
      }
      batch.pending.push_back(p.rec);
    } else {
      kept.push_back(std::move(p));
    }
  }
  queue_.swap(kept);
  return batch;
}

std::vector<Record> JoinInstance::take_forward_buffer() {
  forwarding_keys_.clear();
  std::vector<Record> out;
  out.swap(forward_buffer_);
  return out;
}

void JoinInstance::abort_migration(
    std::span<const std::pair<KeyId, StoredTuple>> stored,
    bool replay_pending, std::span<const Record> pending) {
  for (const auto& [key, st] : stored) {
    store_.insert(key, st);
  }
  forwarding_keys_.clear();
  if (replay_pending) {
    for (const auto& rec : pending) enqueue_internal(rec);
  }
  std::vector<Record> fwd;
  fwd.swap(forward_buffer_);
  for (const auto& rec : fwd) enqueue_internal(rec);
  resume();
}

void JoinInstance::hold_keys(std::span<const KeyId> keys) {
  held_keys_.insert(keys.begin(), keys.end());
}

void JoinInstance::absorb_stored(const MigrationBatch& batch) {
  // Bulk merge: the transfer time was already charged on the wire, and
  // BiStream-style instances ingest batches without re-running the
  // store path tuple by tuple.
  for (const auto& [key, st] : batch.stored) {
    store_.insert(key, st);
  }
  for (const auto& rec : batch.pending) {
    enqueue_internal(rec);
  }
}

void JoinInstance::release_held(std::span<const Record> forwarded) {
  held_keys_.clear();
  for (const auto& rec : forwarded) enqueue_internal(rec);
  std::vector<Record> held;
  held.swap(held_buffer_);
  for (const auto& rec : held) enqueue_internal(rec);
}

std::uint64_t JoinInstance::advance_subwindow() {
  return store_.advance_subwindow();
}

std::vector<std::pair<KeyId, StoredTuple>> JoinInstance::checkpoint_store()
    const {
  std::vector<std::pair<KeyId, StoredTuple>> out;
  out.reserve(store_.size());
  std::vector<KeyId> keys = store_.keys();
  std::sort(keys.begin(), keys.end());  // deterministic snapshot order
  for (KeyId k : keys) {
    if (const auto* bucket = store_.find(k)) {
      for (const auto& st : *bucket) out.emplace_back(k, st);
    }
  }
  return out;
}

void JoinInstance::crash() {
  ++epoch_;  // invalidates any in-flight completion event
  busy_ = false;
  store_ = JoinStore(store_.max_subwindows());
  queue_.clear();
  pending_probe_.clear();
  pending_probe_total_ = 0;
  probe_window_.clear();
  if (probe_sketch_) probe_sketch_->clear();
  probe_window_total_ = 0;
  forwarding_keys_.clear();
  forward_buffer_.clear();
  held_keys_.clear();
  held_buffer_.clear();
  idle_callbacks_.clear();
  paused_ = false;
}

void JoinInstance::restore(
    const std::vector<std::pair<KeyId, StoredTuple>>& snapshot) {
  for (const auto& [key, st] : snapshot) {
    store_.insert(key, st);
  }
}

}  // namespace fastjoin
