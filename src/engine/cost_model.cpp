// cost_model is header-only logic; this TU anchors the library target.
#include "engine/cost_model.hpp"

namespace fastjoin {
// Intentionally empty.
}  // namespace fastjoin
