// The dispatching component: partitions every incoming tuple to (a) one
// storing instance in its own side's group and (b) one or more probing
// destinations in the opposite group.
//
// Strategies:
//  * kHash           — key-hash partitioning (BiStream's hash mode and
//                      FastJoin's base routing). Supports per-key routing
//                      overrides installed by migrations (the routing
//                      table of paper Section III-A).
//  * kContRand       — BiStream's hybrid ContRand routing: keys map to a
//                      subgroup; stores round-robin inside the subgroup,
//                      probes broadcast to the whole subgroup.
//  * kRandomBroadcast— classic random partitioning: stores round-robin
//                      over the whole group, probes broadcast everywhere.
//  * kPartialKey     — partial key grouping (Nasir et al., the "power of
//                      both choices" baseline from the paper's related
//                      work): each key has two candidate instances;
//                      stores go to the currently lighter one, probes
//                      visit both.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "datagen/record.hpp"

namespace fastjoin {

enum class PartitionStrategy : std::uint8_t {
  kHash,
  kContRand,
  kRandomBroadcast,
  kPartialKey,
};

const char* strategy_name(PartitionStrategy s);

class Dispatcher {
 public:
  /// `group_size`: instances per side. `contrand_group`: subgroup size
  /// for kContRand (clamped to [1, group_size]).
  Dispatcher(PartitionStrategy strategy, std::uint32_t group_size,
             std::uint32_t contrand_group = 4, std::uint64_t seed = 0);

  /// The storing destination (within `rec.side`'s own group).
  InstanceId route_store(const Record& rec);

  /// The probing destinations within the group of `group_side`
  /// (callers pass other_side(rec.side)). Appends to `out`.
  void route_probe(Side group_side, const Record& rec,
                   std::vector<InstanceId>& out) const;

  /// Install a migration override: key `k`'s tuples (stores of
  /// `group_side`'s stream and probes against it) now go to `dst`.
  /// Only meaningful for kHash.
  void apply_override(Side group_side, KeyId k, InstanceId dst);

  /// Remove key `k`'s override so it routes to its hash home again
  /// (migration-abort rollback). No-op when no override is installed.
  void clear_override(Side group_side, KeyId k);

  /// The override currently installed for `k`, if any (abort bookkeeping:
  /// recorded before a migration installs its own, restored on rollback).
  std::optional<InstanceId> override_for(Side group_side, KeyId k) const;

  /// Current routing of key `k` in `group_side`'s group under kHash.
  InstanceId hash_route(Side group_side, KeyId k) const;

  std::size_t overrides(Side group_side) const {
    return overrides_[static_cast<int>(group_side)].size();
  }

  PartitionStrategy strategy() const { return strategy_; }

  /// The two PKG candidate instances for key `k` (may coincide).
  std::pair<InstanceId, InstanceId> pkg_candidates(KeyId k) const;

  /// Elastic scale-out (kHash only): `by` new instances become valid
  /// migration targets. The hash modulus is frozen at construction, so
  /// existing keys keep their home instance; new instances receive keys
  /// only through routing overrides installed by migrations — exactly
  /// the paper's Section IV-C scaling story (new memory fills with
  /// migrated tuples, no global rehash).
  void grow(std::uint32_t by);

  std::uint32_t group_size() const { return group_size_; }

 private:
  std::uint32_t subgroup_base(KeyId k) const;

  PartitionStrategy strategy_;
  std::uint32_t group_size_;
  std::uint32_t hash_modulus_;  ///< frozen at construction (see grow())
  std::uint32_t contrand_group_;
  std::uint64_t seed_;
  std::uint32_t round_robin_[2] = {0, 0};
  std::unordered_map<KeyId, InstanceId> overrides_[2];
  /// PKG's local view of per-instance store counts, per group.
  std::vector<std::uint64_t> pkg_counts_[2];
};

}  // namespace fastjoin
