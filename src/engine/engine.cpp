#include "engine/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.hpp"

namespace fastjoin {

const char* system_name(SystemKind k) {
  switch (k) {
    case SystemKind::kBiStream: return "BiStream";
    case SystemKind::kBiStreamContRand: return "BiStream-ContRand";
    case SystemKind::kFastJoin: return "FastJoin";
    case SystemKind::kFastJoinSA: return "FastJoin-SAFit";
  }
  return "?";
}

void apply_system(EngineConfig& cfg, SystemKind kind) {
  switch (kind) {
    case SystemKind::kBiStream:
      cfg.strategy = PartitionStrategy::kHash;
      cfg.balancer.enabled = false;
      break;
    case SystemKind::kBiStreamContRand:
      cfg.strategy = PartitionStrategy::kContRand;
      cfg.balancer.enabled = false;
      break;
    case SystemKind::kFastJoin:
      cfg.strategy = PartitionStrategy::kHash;
      cfg.balancer.enabled = true;
      cfg.balancer.planner.selector = KeySelectorKind::kGreedyFit;
      break;
    case SystemKind::kFastJoinSA:
      cfg.strategy = PartitionStrategy::kHash;
      cfg.balancer.enabled = true;
      cfg.balancer.planner.selector = KeySelectorKind::kSAFit;
      break;
  }
}

SimJoinEngine::SimJoinEngine(const EngineConfig& cfg)
    : cfg_(cfg),
      dispatcher_(cfg.strategy, cfg.instances, cfg.contrand_group,
                  cfg.seed) {
  metrics_ = std::make_unique<MetricsHub>(cfg_.metrics, cfg_.instances);
  JoinInstance::Hooks hooks;
  hooks.on_probe_done = [this](SimTime now, std::uint64_t matches,
                               SimTime latency) {
    metrics_->on_results(now, matches);
    metrics_->on_probe_latency(now, latency);
  };
  if (cfg_.metrics.record_pairs) {
    hooks.on_match = [this](const MatchPair& p) {
      metrics_->on_match_pair(p);
    };
  }
  instance_hooks_ = hooks;
  for (int g = 0; g < 2; ++g) {
    const Side side = static_cast<Side>(g);
    groups_[g].reserve(cfg_.instances);
    for (InstanceId i = 0; i < cfg_.instances; ++i) {
      groups_[g].push_back(std::make_unique<JoinInstance>(
          sim_, i, side, cfg_.cost, cfg_.window_subwindows,
          instance_hooks_, cfg_.phi_signal, cfg_.stats_capacity));
    }
  }
}

void SimJoinEngine::schedule_scale_out(SimTime at, std::uint32_t add) {
  sim_.schedule_at(at, [this, add]() {
    for (int g = 0; g < 2; ++g) {
      const Side side = static_cast<Side>(g);
      for (std::uint32_t i = 0; i < add; ++i) {
        const auto id = static_cast<InstanceId>(groups_[g].size());
        groups_[g].push_back(std::make_unique<JoinInstance>(
            sim_, id, side, cfg_.cost, cfg_.window_subwindows,
            instance_hooks_, cfg_.phi_signal, cfg_.stats_capacity));
      }
    }
    dispatcher_.grow(add);
    FJ_INFO("engine") << "scaled out by " << add << " instances/side at "
                      << to_seconds(sim_.now()) << "s";
  });
}

void SimJoinEngine::schedule_failure(SimTime at, Side group,
                                     InstanceId id) {
  sim_.schedule_at(at, [this, group, id]() {
    const int g = static_cast<int>(group);
    if (id >= groups_[g].size()) {
      ++failures_skipped_;
      FJ_WARN("engine") << "skipping crash of unknown instance "
                        << side_name(group) << "-" << id;
      return;
    }
    if (const auto it = migrating_[g].find(id); it != migrating_[g].end()) {
      abort_migration(group, it->second, id);
    }
    JoinInstance* inst = groups_[g][id].get();
    inst->crash();
    ++failures_;
    // Restore from the latest checkpoint after a recovery pause.
    inst->pause();
    sim_.schedule_after(cfg_.recovery_pause, [this, g, inst, id]() {
      if (id < checkpoints_[g].size()) {
        inst->restore(checkpoints_[g][id]);
        tuples_recovered_ += checkpoints_[g][id].size();
      }
      inst->resume();
    });
    FJ_INFO("engine") << side_name(group) << "-" << id << " crashed at "
                      << to_seconds(sim_.now()) << "s";
  });
}

void SimJoinEngine::checkpoint_tick(SimTime duration) {
  for (int g = 0; g < 2; ++g) {
    checkpoints_[g].resize(groups_[g].size());
    for (std::size_t i = 0; i < groups_[g].size(); ++i) {
      // A paused instance is either recovering from a crash or mid-
      // migration; snapshotting it now could replace a good checkpoint
      // with a post-crash empty store. Keep the previous snapshot.
      if (groups_[g][i]->paused()) continue;
      checkpoints_[g][i] = groups_[g][i]->checkpoint_store();
    }
  }
  if (sim_.now() + cfg_.checkpoint_period <= duration) {
    sim_.schedule_after(cfg_.checkpoint_period, [this, duration]() {
      checkpoint_tick(duration);
    });
  }
}

void SimJoinEngine::feed_next(RecordSource& source, SimTime duration) {
  auto rec = source.next();
  if (!rec || rec->ts > duration) {
    feed_end_ = sim_.now();  // feed ends
    return;
  }
  sim_.schedule_at(std::max(rec->ts, sim_.now()),
                   [this, rec = *rec, &source, duration]() {
                     dispatch(rec);
                     feed_next(source, duration);
                   });
}

void SimJoinEngine::dispatch(const Record& raw) {
  Record rec = raw;
  if (cfg_.preprocess) {
    auto processed = cfg_.preprocess(raw);
    if (!processed) return;  // filtered out by the pre-processing unit
    rec = *processed;
  }
  ++records_in_;
  // Store destination in the record's own side group.
  const InstanceId store_dst = dispatcher_.route_store(rec);
  JoinInstance* store_inst =
      groups_[static_cast<int>(rec.side)][store_dst].get();
  sim_.schedule_after(cfg_.dispatch_latency,
                      [store_inst, rec]() { store_inst->enqueue(rec); });

  // Probe destinations in the opposite group.
  const Side probe_group = other_side(rec.side);
  probe_dsts_.clear();
  dispatcher_.route_probe(probe_group, rec, probe_dsts_);
  for (InstanceId dst : probe_dsts_) {
    JoinInstance* inst = groups_[static_cast<int>(probe_group)][dst].get();
    sim_.schedule_after(cfg_.dispatch_latency,
                        [inst, rec]() { inst->enqueue(rec); });
  }
}

void SimJoinEngine::monitor_tick(Side group, SimTime duration) {
  const int g = static_cast<int>(group);
  std::vector<InstanceLoad> loads;
  loads.reserve(groups_[g].size());
  double heaviest = 0.0;
  for (const auto& inst : groups_[g]) {
    loads.push_back(inst->aggregate_load());
    heaviest = std::max(heaviest, loads.back().load());
    metrics_->record_instance_load(sim_.now(), group, inst->id(),
                                   loads.back().load());
  }
  const double li =
      load_imbalance(loads, cfg_.balancer.planner.floor_eps);
  metrics_->record_li(sim_.now(), group, li);

  // Age the probe-rate EWMA once per period (after sampling).
  for (auto& inst : groups_[g]) inst->decay_probe_window();

  if (cfg_.balancer.enabled &&
      heaviest >= cfg_.balancer.min_heaviest_load) {
    const auto pairs =
        pick_migration_pairs(loads, cfg_.balancer.planner,
                             cfg_.balancer.max_concurrent_migrations);
    for (const auto& pair : pairs) {
      // Each active migration marks its two instances busy, so
      // migrating_.size()/2 counts in-flight migrations in this group.
      if (migrating_[g].size() / 2 >=
          cfg_.balancer.max_concurrent_migrations) {
        break;
      }
      if (migrating_[g].count(pair.src) || migrating_[g].count(pair.dst)) {
        continue;  // instance already part of an active migration
      }
      start_migration(group, pair);
    }
  }

  if (sim_.now() + cfg_.balancer.monitor_period <= duration) {
    sim_.schedule_after(cfg_.balancer.monitor_period,
                        [this, group, duration]() {
                          monitor_tick(group, duration);
                        });
  }
}

void SimJoinEngine::end_migration(Side group, const ActiveMigration& am) {
  const int g = static_cast<int>(group);
  migrating_[g].erase(am.pair.src);
  migrating_[g].erase(am.pair.dst);
}

/// Unwind an in-flight migration after `crashed` (src or dst) died.
/// The rules, per phase reached (see docs/migration_protocol.md):
///  * Nothing extracted yet: resume the source, stop holding.
///  * Batch extracted, target never absorbed it: the surviving source
///    re-merges the batch and replays pending + forward buffer locally;
///    routing was never changed.
///  * Target absorbed the batch and then died: roll routing back to the
///    source and re-insert the batch's *stored* tuples there. Pending
///    records are NOT replayed — the target may have served some of
///    them before dying, and replaying would double-count matches.
///    Re-inserting stored tuples is always safe: a stored tuple emits
///    nothing by itself, and each probe is routed to exactly one
///    instance.
///  * Source died after the routing update: roll forward — the batch
///    already lives at the target; only the source's forward buffer is
///    lost (bounded by the migration window).
void SimJoinEngine::abort_migration(
    Side group, const std::shared_ptr<ActiveMigration>& am,
    InstanceId crashed) {
  const int g = static_cast<int>(group);
  am->aborted = true;
  JoinInstance* src = groups_[g][am->pair.src].get();
  JoinInstance* dst = groups_[g][am->pair.dst].get();
  const bool src_crashed = crashed == am->pair.src;
  const bool dst_crashed = crashed == am->pair.dst;

  switch (am->phase) {
    case MigPhase::kSelecting:
      if (!src_crashed) src->resume();
      break;
    case MigPhase::kExtracted:
      if (!dst_crashed && am->hold_installed) dst->release_held({});
      if (!src_crashed) {
        src->abort_migration(am->batch->stored, /*replay_pending=*/true,
                             am->batch->pending);
      }
      break;
    case MigPhase::kAbsorbed:
      if (dst_crashed) {
        // Routing still points at the source; restore the stored half.
        src->abort_migration(am->batch->stored, /*replay_pending=*/false,
                             {});
      } else {
        // Source died with the batch already delivered: roll forward.
        for (KeyId k : am->batch->keys) {
          dispatcher_.apply_override(group, k, am->pair.dst);
        }
        dst->release_held({});
      }
      break;
    case MigPhase::kRoutingUpdated:
      if (dst_crashed) {
        for (const auto& [k, prev] : am->prev_overrides) {
          if (prev) {
            dispatcher_.apply_override(group, k, *prev);
          } else {
            dispatcher_.clear_override(group, k);
          }
        }
        src->abort_migration(am->batch->stored, /*replay_pending=*/false,
                             {});
      } else {
        // Forward buffer died with the source; keys stay at the target.
        dst->release_held({});
      }
      break;
  }
  end_migration(group, *am);
  ++migrations_aborted_;
  FJ_WARN("migrate") << "aborted " << side_name(group) << "-group migration "
                     << am->pair.src << "->" << am->pair.dst << " at phase "
                     << static_cast<int>(am->phase) << ": "
                     << side_name(group) << "-" << crashed << " crashed";
}

void SimJoinEngine::start_migration(Side group, const MigrationPair& pair) {
  const int g = static_cast<int>(group);
  auto am = std::make_shared<ActiveMigration>();
  am->pair = pair;
  migrating_[g][pair.src] = am;
  migrating_[g][pair.dst] = am;

  JoinInstance* src = groups_[g][pair.src].get();
  JoinInstance* dst = groups_[g][pair.dst].get();
  const SimTime ctrl = cfg_.migration.control_latency;
  const SimTime triggered_at = sim_.now();

  FJ_DEBUG("migrate") << side_name(group) << "-group LI=" << pair.li
                      << " src=" << pair.src << " dst=" << pair.dst;

  // Monitor -> source: migration signal (Algorithm 2 entry). Every
  // scheduled step re-checks am->aborted: a crash of either endpoint
  // aborts the migration synchronously (abort_migration) and the rest
  // of the chain must become a no-op.
  sim_.schedule_after(ctrl, [this, g, group, src, dst, pair, triggered_at,
                             am]() {
    if (am->aborted) return;
    src->pause();
    src->when_idle([this, g, group, src, dst, pair, triggered_at, am]() {
      if (am->aborted) return;
      // Key selection runs while the instance is quiesced; its cost is
      // charged as wall time (the paper's motivation for GreedyFit's
      // O(K log K) bound).
      KeySelectionInput in;
      in.src = src->aggregate_load();
      in.dst = dst->aggregate_load();
      in.keys = src->key_loads();
      in.theta_gap = cfg_.balancer.planner.theta_gap;
      const SimTime select_time =
          cfg_.migration.selection_time(in.keys.size());

      sim_.schedule_after(select_time, [this, g, group, src, dst, pair,
                                        triggered_at, am,
                                        in = std::move(in)]() {
        if (am->aborted) return;
        const KeySelectionResult sel =
            select_keys(in, cfg_.balancer.planner);
        if (sel.selection.empty()) {
          src->resume();
          end_migration(group, *am);
          return;
        }

        am->batch = std::make_shared<MigrationBatch>(
            src->extract(sel.selection));
        am->phase = MigPhase::kExtracted;
        const auto batch = am->batch;
        const SimTime ctrl = cfg_.migration.control_latency;

        // Source -> target: migration start signal; target begins
        // holding dispatcher traffic for the migrating keys.
        sim_.schedule_after(ctrl, [dst, batch, am]() {
          if (am->aborted) return;
          dst->hold_keys(batch->keys);
          am->hold_installed = true;
        });

        // Bulk tuple transfer.
        const SimTime transfer = cfg_.migration.transfer_time(
            batch->stored.size() + batch->pending.size());
        sim_.schedule_after(ctrl + transfer, [this, g, group, src, dst,
                                              pair, batch, triggered_at,
                                              ctrl, am]() {
          if (am->aborted) return;
          dst->absorb_stored(*batch);
          am->phase = MigPhase::kAbsorbed;

          // Source -> dispatcher: routing-table update.
          sim_.schedule_after(ctrl, [this, g, group, src, dst, pair,
                                     batch, triggered_at, ctrl, am]() {
            if (am->aborted) return;
            for (KeyId k : batch->keys) {
              am->prev_overrides.emplace_back(
                  k, dispatcher_.override_for(group, k));
              dispatcher_.apply_override(group, k, pair.dst);
            }
            am->phase = MigPhase::kRoutingUpdated;
            // Dispatcher -> source: ack; source forwards what it
            // buffered during the migration and resumes.
            sim_.schedule_after(ctrl, [this, g, group, src, dst, pair,
                                       batch, triggered_at, ctrl, am]() {
              if (am->aborted) return;
              auto fwd = std::make_shared<std::vector<Record>>(
                  src->take_forward_buffer());
              const SimTime fwd_transfer =
                  cfg_.migration.transfer_time(fwd->size());
              sim_.schedule_after(ctrl + fwd_transfer, [dst, fwd]() {
                dst->release_held(*fwd);
              });
              src->resume();
              end_migration(group, *am);

              MigrationEvent ev;
              ev.triggered_at = triggered_at;
              // The migration is complete for scheduling purposes when
              // the source resumes (the held-release at the target lands
              // ctrl + fwd_transfer later but blocks nothing).
              ev.completed_at = sim_.now();
              ev.group = group;
              ev.src = pair.src;
              ev.dst = pair.dst;
              ev.li_before = pair.li;
              ev.keys_moved = batch->keys.size();
              ev.tuples_moved = batch->stored.size() + batch->pending.size();
              tuples_migrated_ += ev.tuples_moved;
              metrics_->log_migration(ev);
            });
          });
        });
      });
    });
  });
}

void SimJoinEngine::window_tick(SimTime duration) {
  for (int g = 0; g < 2; ++g) {
    for (auto& inst : groups_[g]) {
      evicted_ += inst->advance_subwindow();
    }
  }
  if (sim_.now() + cfg_.subwindow_len <= duration) {
    sim_.schedule_after(cfg_.subwindow_len,
                        [this, duration]() { window_tick(duration); });
  }
}

RunReport SimJoinEngine::run(RecordSource& source, SimTime duration) {
  feed_next(source, duration);
  sim_.schedule_after(cfg_.balancer.monitor_period, [this, duration]() {
    monitor_tick(Side::kR, duration);
    monitor_tick(Side::kS, duration);
  });
  if (cfg_.window_subwindows > 0) {
    sim_.schedule_after(cfg_.subwindow_len,
                        [this, duration]() { window_tick(duration); });
  }
  if (cfg_.checkpoint_period > 0) {
    sim_.schedule_after(cfg_.checkpoint_period, [this, duration]() {
      checkpoint_tick(duration);
    });
  }

  if (cfg_.drain) {
    sim_.run();
  } else {
    sim_.run(duration);
  }
  metrics_->finish();

  RunReport rep;
  rep.records_in = records_in_;
  rep.evicted = evicted_;
  for (int g = 0; g < 2; ++g) {
    for (const auto& inst : groups_[g]) {
      rep.results += inst->results_emitted();
      rep.probes += inst->probes_done();
      rep.stores += inst->stores_done();
    }
  }
  rep.mean_throughput = metrics_->mean_throughput();
  rep.mean_latency_ms = metrics_->mean_latency_ms();
  rep.p50_latency_ms =
      metrics_->latency_hist().value_at_percentile(50) / 1e6;
  rep.p99_latency_ms =
      metrics_->latency_hist().value_at_percentile(99) / 1e6;
  {
    // LI is only meaningful while traffic flows: once the feed stops,
    // drained instances decay to zero load and the floored ratio
    // explodes, so the mean is taken over [warmup, feed end].
    const SimTime li_end =
        feed_end_ > 0 ? feed_end_ : std::numeric_limits<SimTime>::max();
    const auto& r = metrics_->li_series(Side::kR);
    const auto& s = metrics_->li_series(Side::kS);
    const double mr = r.mean_between(cfg_.metrics.warmup, li_end);
    const double ms = s.mean_between(cfg_.metrics.warmup, li_end);
    rep.mean_li = std::max({mr, ms, 1.0});
    rep.li_r_ts = r;
    rep.li_s_ts = s;
  }
  rep.migrations = metrics_->migrations().size();
  rep.tuples_migrated = tuples_migrated_;
  rep.migrations_aborted = migrations_aborted_;
  rep.failures = failures_;
  rep.failures_skipped = failures_skipped_;
  rep.tuples_recovered = tuples_recovered_;
  rep.sim_end = sim_.now();
  rep.feed_end = feed_end_;
  rep.throughput_ts = metrics_->throughput().series();
  rep.latency_ts = metrics_->latency_series();
  rep.instance_load_r = metrics_->instance_load_series(Side::kR);
  rep.instance_load_s = metrics_->instance_load_series(Side::kS);
  rep.migration_log = metrics_->migrations();
  rep.pairs = metrics_->pairs();
  return rep;
}

}  // namespace fastjoin
