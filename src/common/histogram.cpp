#include "common/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastjoin {

LogHistogram::LogHistogram(double min_value, double max_value,
                           int sub_buckets)
    : min_value_(min_value),
      max_value_(max_value),
      sub_buckets_(sub_buckets),
      log2_min_(std::log2(min_value)) {
  assert(min_value > 0 && max_value > min_value && sub_buckets >= 1);
  const double octaves = std::log2(max_value / min_value);
  const auto n =
      static_cast<std::size_t>(std::ceil(octaves)) * sub_buckets_ + 1;
  buckets_.assign(n + 1, 0);
}

std::size_t LogHistogram::bucket_index(double value) const {
  const double v = std::clamp(value, min_value_, max_value_);
  const double pos = (std::log2(v) - log2_min_) * sub_buckets_;
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, buckets_.size() - 1);
}

double LogHistogram::bucket_midpoint(std::size_t idx) const {
  const double lo =
      std::exp2(log2_min_ + static_cast<double>(idx) / sub_buckets_);
  const double hi =
      std::exp2(log2_min_ + static_cast<double>(idx + 1) / sub_buckets_);
  return (lo + hi) / 2.0;
}

void LogHistogram::add(double value, std::uint64_t count) {
  if (count == 0) return;
  if (total_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  buckets_[bucket_index(value)] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

double LogHistogram::value_at_percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      // Clamp to the actually-observed range for tighter tails.
      return std::clamp(bucket_midpoint(i), min_seen_, max_seen_);
    }
  }
  return max_seen_;
}

void LogHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  min_seen_ = 0.0;
  max_seen_ = 0.0;
}

void LogHistogram::merge(const LogHistogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.total_) {
    if (total_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

}  // namespace fastjoin
