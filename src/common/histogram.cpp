#include "common/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fastjoin {

std::size_t HistogramParams::bucket_count() const {
  assert(min_value > 0 && max_value > min_value && sub_buckets >= 1);
  const double octaves = std::log2(max_value / min_value);
  const auto n =
      static_cast<std::size_t>(std::ceil(octaves)) * sub_buckets + 1;
  return n + 1;
}

std::size_t HistogramParams::index(double value) const {
  const double v = std::clamp(value, min_value, max_value);
  const double pos = (std::log2(v) - std::log2(min_value)) * sub_buckets;
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, bucket_count() - 1);
}

double HistogramParams::midpoint(std::size_t idx) const {
  const double log2_min = std::log2(min_value);
  const double lo =
      std::exp2(log2_min + static_cast<double>(idx) / sub_buckets);
  const double hi =
      std::exp2(log2_min + static_cast<double>(idx + 1) / sub_buckets);
  return (lo + hi) / 2.0;
}

HistogramSnapshot::HistogramSnapshot(const HistogramParams& params)
    : params_(params), buckets_(params.bucket_count(), 0) {}

HistogramSnapshot::HistogramSnapshot(const HistogramParams& params,
                                     std::vector<std::uint64_t> buckets,
                                     std::uint64_t total, double sum,
                                     double min_seen, double max_seen)
    : params_(params),
      buckets_(std::move(buckets)),
      total_(total),
      sum_(sum),
      min_seen_(min_seen),
      max_seen_(max_seen) {
  assert(buckets_.size() == params_.bucket_count());
}

void HistogramSnapshot::add(double value, std::uint64_t count) {
  if (count == 0) return;
  if (total_ == 0) {
    min_seen_ = value;
    max_seen_ = value;
  } else {
    min_seen_ = std::min(min_seen_, value);
    max_seen_ = std::max(max_seen_, value);
  }
  buckets_[params_.index(value)] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

double HistogramSnapshot::value_at_percentile(double p) const {
  if (total_ == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      // Clamp to the actually-observed range for tighter tails.
      return std::clamp(params_.midpoint(i), min_seen_, max_seen_);
    }
  }
  return max_seen_;
}

void HistogramSnapshot::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  min_seen_ = 0.0;
  max_seen_ = 0.0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  assert(params_ == other.params_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.total_) {
    if (total_ == 0) {
      min_seen_ = other.min_seen_;
      max_seen_ = other.max_seen_;
    } else {
      min_seen_ = std::min(min_seen_, other.min_seen_);
      max_seen_ = std::max(max_seen_, other.max_seen_);
    }
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

}  // namespace fastjoin
