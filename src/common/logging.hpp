// Leveled logging. Thread-safe sink; cheap when the level is filtered.
#pragma once

#include <sstream>
#include <string>

namespace fastjoin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global log configuration.
namespace logging {
void set_level(LogLevel level);
LogLevel level();
/// Emit a line (locked) to stderr with level and subsystem tags.
void write(LogLevel level, const char* subsystem, const std::string& msg);
}  // namespace logging

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* subsystem)
      : level_(level), subsystem_(subsystem) {}
  ~LogLine() { logging::write(level_, subsystem_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* subsystem_;
  std::ostringstream stream_;
};

#define FJ_LOG(lvl, subsystem)                                  \
  if (::fastjoin::logging::level() <= ::fastjoin::LogLevel::lvl) \
  ::fastjoin::LogLine(::fastjoin::LogLevel::lvl, subsystem)

#define FJ_DEBUG(subsystem) FJ_LOG(kDebug, subsystem)
#define FJ_INFO(subsystem) FJ_LOG(kInfo, subsystem)
#define FJ_WARN(subsystem) FJ_LOG(kWarn, subsystem)
#define FJ_ERROR(subsystem) FJ_LOG(kError, subsystem)

}  // namespace fastjoin
