// Minimal configuration store: "key=value" pairs from argv or strings,
// with typed getters. Benches use this so every experiment parameter can
// be overridden from the command line, e.g. `fig05 instances=64 theta=1.8`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace fastjoin {

class Config {
 public:
  Config() = default;

  /// Parse argv entries of the form key=value; non-matching entries are
  /// ignored (so flags for other tools pass through harmlessly).
  static Config from_args(int argc, const char* const* argv);

  /// Parse a single "key=value" line; returns false if malformed.
  bool parse_line(std::string_view line);

  void set(std::string key, std::string value);

  bool has(const std::string& key) const;

  std::string get_str(const std::string& key,
                      const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::optional<std::string> lookup(const std::string& key) const;

  const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace fastjoin
