#include "common/timeseries.hpp"

#include <algorithm>

namespace fastjoin {

double TimeSeries::mean_between(SimTime from, SimTime to) const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= from && p.t <= to) {
      sum += p.v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::mean_after(SimTime from) const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= from) {
      sum += p.v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::vector<TimePoint> TimeSeries::resample(SimTime start,
                                            SimTime step) const {
  std::vector<TimePoint> out;
  if (points_.empty() || step <= 0) return out;
  const SimTime end = points_.back().t;
  std::size_t i = 0;
  double carry = 0.0;
  for (SimTime t = start; t <= end; t += step) {
    double sum = 0.0;
    std::uint64_t n = 0;
    while (i < points_.size() && points_[i].t < t + step) {
      if (points_[i].t >= t) {
        sum += points_[i].v;
        ++n;
      }
      ++i;
    }
    const double v = n ? sum / static_cast<double>(n) : carry;
    carry = v;
    out.push_back({t, v});
  }
  return out;
}

void WindowedMean::close_window() {
  if (n_ > 0) {
    series_.record(window_start_ + window_,
                   sum_ / static_cast<double>(n_) / scale_);
  }
  sum_ = 0.0;
  n_ = 0;
}

void WindowedMean::add(SimTime t, double v) {
  if (!started_) {
    window_start_ = t - t % window_;
    started_ = true;
  }
  while (t >= window_start_ + window_) {
    close_window();
    window_start_ += window_;
  }
  sum_ += v;
  ++n_;
  ++total_;
}

void WindowedMean::finish() {
  if (started_ && n_ > 0) close_window();
}

void RateTracker::add(SimTime t, std::uint64_t n) {
  if (!started_) {
    window_start_ = t - t % window_;
    started_ = true;
  }
  while (t >= window_start_ + window_) {
    series_.record(window_start_ + window_,
                   static_cast<double>(in_window_) /
                       (static_cast<double>(window_) / 1e9));
    in_window_ = 0;
    window_start_ += window_;
  }
  in_window_ += n;
  total_ += n;
}

void RateTracker::finish() {
  if (started_ && in_window_ > 0) {
    series_.record(window_start_ + window_,
                   static_cast<double>(in_window_) /
                       (static_cast<double>(window_) / 1e9));
    in_window_ = 0;
  }
}

}  // namespace fastjoin
