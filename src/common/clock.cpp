#include "common/clock.hpp"

#include <thread>

namespace fastjoin {

namespace {

class RealClock final : public Clock {
 public:
  std::chrono::nanoseconds now() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now().time_since_epoch());
  }

  void sleep_for(std::chrono::nanoseconds d) override {
    if (d.count() > 0) std::this_thread::sleep_for(d);
  }
};

}  // namespace

Clock& real_clock() {
  static RealClock clock;
  return clock;
}

}  // namespace fastjoin
