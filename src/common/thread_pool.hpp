// Fixed-size thread pool used by the live runtime and parallel benches.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace fastjoin {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every queued task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace fastjoin
