// Fixed-size thread pool used by the live runtime and parallel benches.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_safety.hpp"

namespace fastjoin {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      MutexLock lock(mutex_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Block until every queued task has finished.
  void wait_idle() EXCLUDES(mutex_);

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  std::size_t active_ GUARDED_BY(mutex_) = 0;
  bool stop_ GUARDED_BY(mutex_) = false;
};

}  // namespace fastjoin
