// Log-bucketed histogram for latency distributions.
//
// HdrHistogram-style: buckets grow geometrically so that any recorded
// value is off by at most `precision` relative error, while memory stays
// a few KB regardless of sample count.  Used by the metrics pipeline to
// report latency percentiles for Figs. 4, 6, 8, 10, 13, 14.
//
// The bucket layout, merge, and percentile math live in
// HistogramParams / HistogramSnapshot so that every histogram in the
// codebase — this single-threaded LogHistogram and the telemetry
// subsystem's lock-free ConcurrentHistogram — shares exactly one
// implementation of the quantile arithmetic. A snapshot is plain data:
// copyable, mergeable, serializable, and detached from whatever
// concurrent structure produced it.
#pragma once

#include <cstdint>
#include <vector>

namespace fastjoin {

/// Bucket geometry of a log2 histogram: `sub_buckets` linear
/// sub-buckets per power of two between `min_value` and `max_value`
/// (values outside the range are clamped).
struct HistogramParams {
  double min_value = 1.0;
  double max_value = 1e12;
  int sub_buckets = 32;

  /// Number of buckets this geometry needs (including the clamp
  /// bucket at the top).
  std::size_t bucket_count() const;
  /// Bucket holding `value` (clamped to the trackable range).
  std::size_t index(double value) const;
  /// Representative value of bucket `idx` (geometric midpoint).
  double midpoint(std::size_t idx) const;

  bool operator==(const HistogramParams&) const = default;
};

/// Immutable-ish value type holding one histogram's state: the counts
/// plus the moments. This is the snapshot type the telemetry registry
/// exports, and the single home of merge/percentile math.
class HistogramSnapshot {
 public:
  HistogramSnapshot() : HistogramSnapshot(HistogramParams{}) {}
  explicit HistogramSnapshot(const HistogramParams& params);

  void add(double value, std::uint64_t count = 1);

  std::uint64_t count() const { return total_; }
  double sum() const { return sum_; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  double min() const { return total_ ? min_seen_ : 0.0; }
  double max() const { return total_ ? max_seen_ : 0.0; }

  /// Value at percentile p (0..100), estimated as the representative
  /// midpoint of the containing bucket, clamped to the observed range.
  double value_at_percentile(double p) const;

  /// Merge a snapshot built with identical parameters.
  void merge(const HistogramSnapshot& other);

  void reset();

  const HistogramParams& params() const { return params_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Raw-state constructor for concurrent producers: the telemetry
  /// ConcurrentHistogram materializes its atomics into this.
  HistogramSnapshot(const HistogramParams& params,
                    std::vector<std::uint64_t> buckets,
                    std::uint64_t total, double sum, double min_seen,
                    double max_seen);

 private:
  HistogramParams params_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

/// Single-writer log-bucketed histogram; a thin recording front-end
/// over HistogramSnapshot.
class LogHistogram {
 public:
  /// `min_value`..`max_value` is the trackable range (values are clamped);
  /// `sub_buckets` linear sub-buckets per power of two control precision.
  explicit LogHistogram(double min_value = 1.0, double max_value = 1e12,
                        int sub_buckets = 32)
      : snap_(HistogramParams{min_value, max_value, sub_buckets}) {}

  void add(double value, std::uint64_t count = 1) {
    snap_.add(value, count);
  }

  std::uint64_t count() const { return snap_.count(); }
  double sum() const { return snap_.sum(); }
  double mean() const { return snap_.mean(); }
  double min() const { return snap_.min(); }
  double max() const { return snap_.max(); }

  /// Value at percentile p (0..100), estimated as the representative
  /// midpoint of the containing bucket.
  double value_at_percentile(double p) const {
    return snap_.value_at_percentile(p);
  }

  void reset() { snap_.reset(); }

  /// Merge a histogram built with identical parameters.
  void merge(const LogHistogram& other) { snap_.merge(other.snap_); }

  const HistogramSnapshot& snapshot() const { return snap_; }

 private:
  HistogramSnapshot snap_;
};

}  // namespace fastjoin
