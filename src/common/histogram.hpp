// Log-bucketed histogram for latency distributions.
//
// HdrHistogram-style: buckets grow geometrically so that any recorded
// value is off by at most `precision` relative error, while memory stays
// a few KB regardless of sample count.  Used by the metrics pipeline to
// report latency percentiles for Figs. 4, 6, 8, 10, 13, 14.
#pragma once

#include <cstdint>
#include <vector>

namespace fastjoin {

class LogHistogram {
 public:
  /// `min_value`..`max_value` is the trackable range (values are clamped);
  /// `sub_buckets` linear sub-buckets per power of two control precision.
  explicit LogHistogram(double min_value = 1.0, double max_value = 1e12,
                        int sub_buckets = 32);

  void add(double value, std::uint64_t count = 1);

  std::uint64_t count() const { return total_; }
  double sum() const { return sum_; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }
  double min() const { return total_ ? min_seen_ : 0.0; }
  double max() const { return total_ ? max_seen_ : 0.0; }

  /// Value at percentile p (0..100), estimated as the representative
  /// midpoint of the containing bucket.
  double value_at_percentile(double p) const;

  void reset();

  /// Merge a histogram built with identical parameters.
  void merge(const LogHistogram& other);

 private:
  std::size_t bucket_index(double value) const;
  double bucket_midpoint(std::size_t idx) const;

  double min_value_;
  double max_value_;
  int sub_buckets_;
  double log2_min_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace fastjoin
