#include "common/rng.hpp"

namespace fastjoin {

std::uint64_t Xoshiro256::next_below(std::uint64_t n) {
  // Rejection sampling on the top of the range; the loop almost never
  // iterates for small n.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; b++) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace fastjoin
