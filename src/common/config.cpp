#include "common/config.hpp"

#include <algorithm>
#include <cstdlib>

namespace fastjoin {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    cfg.parse_line(argv[i]);
  }
  return cfg;
}

bool Config::parse_line(std::string_view line) {
  const auto eq = line.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  std::string key(line.substr(0, eq));
  std::string value(line.substr(eq + 1));
  set(std::move(key), std::move(value));
  return true;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> Config::lookup(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_str(const std::string& key,
                            const std::string& fallback) const {
  return lookup(key).value_or(fallback);
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return (end && *end == '\0') ? parsed : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto v = lookup(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  return fallback;
}

}  // namespace fastjoin
