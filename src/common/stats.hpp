// Streaming statistics and load-imbalance metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace fastjoin {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Coefficient of variation; 0 when the mean is 0.
  double cv() const { return mean_ != 0.0 ? stddev() / mean_ : 0.0; }

  void reset() { *this = StreamingStats{}; }

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const StreamingStats& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Load-imbalance metrics over a snapshot of per-instance loads.
/// The paper's LI (Eq. 2) is max/min; we also expose max/mean ("peak
/// factor") and the coefficient of variation for richer reporting.
struct ImbalanceMetrics {
  double li = 1.0;        ///< max / min (paper Eq. 2), clamped at >= 1
  double peak = 1.0;      ///< max / mean
  double cv = 0.0;        ///< stddev / mean
  double max_load = 0.0;
  double min_load = 0.0;
  double mean_load = 0.0;
};

/// Compute imbalance metrics; loads of zero are floored at `floor_eps`
/// for the LI denominator so an idle instance yields a large-but-finite
/// ratio instead of dividing by zero.
ImbalanceMetrics compute_imbalance(std::span<const double> loads,
                                   double floor_eps = 1.0);

/// Exact percentile of a sample vector (sorts a copy). p in [0,100].
double percentile(std::vector<double> samples, double p);

/// Gini coefficient of a non-negative load vector, in [0,1).
/// 0 = perfectly balanced. Used in skew characterization (Fig. 1).
double gini(std::span<const double> values);

}  // namespace fastjoin
