#include "common/thread_pool.hpp"

#include <algorithm>

namespace fastjoin {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  while (!tasks_.empty() || active_ > 0) idle_cv_.wait(lock);
}

}  // namespace fastjoin
