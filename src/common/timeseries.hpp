// Time-series recording for the "real-time" figures (Figs. 1c, 1d, 3, 4, 11).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fastjoin {

/// A (time, value) sample.
struct TimePoint {
  SimTime t;
  double v;
};

/// Append-only series of timestamped samples with resampling helpers.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void record(SimTime t, double v) { points_.push_back({t, v}); }

  const std::string& name() const { return name_; }
  std::span<const TimePoint> points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Mean of all values recorded at or after `from`.
  double mean_after(SimTime from) const;

  /// Mean of all values recorded in [from, to].
  double mean_between(SimTime from, SimTime to) const;

  /// Downsample into fixed-width buckets of `step`, averaging values in
  /// each bucket; empty buckets carry the previous value forward.
  /// Returns one point per bucket from `start` to the last sample.
  std::vector<TimePoint> resample(SimTime start, SimTime step) const;

  /// Last recorded value (0 if empty).
  double last() const { return points_.empty() ? 0.0 : points_.back().v; }

 private:
  std::string name_;
  std::vector<TimePoint> points_;
};

/// Windowed mean: aggregate samples into one mean value per `window`,
/// emitting a TimeSeries point at each window close. The single home of
/// the "per-second mean" aggregation shared by the simulated engine's
/// latency series and the telemetry registry's sampled series.
class WindowedMean {
 public:
  /// `scale` divides each window mean before it is recorded (e.g. 1e6
  /// to emit milliseconds from nanosecond samples).
  explicit WindowedMean(std::string name, SimTime window = kNanosPerSec,
                        double scale = 1.0)
      : window_(window), scale_(scale), series_(std::move(name)) {}

  /// Record sample `v` at time `t`. Times must be non-decreasing.
  void add(SimTime t, double v);

  /// Flush the current partial window (call once, at end of run).
  void finish();

  const TimeSeries& series() const { return series_; }
  std::uint64_t total_samples() const { return total_; }

 private:
  void close_window();

  SimTime window_;
  double scale_;
  SimTime window_start_ = 0;
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
  std::uint64_t total_ = 0;
  bool started_ = false;
  TimeSeries series_;
};

/// Rate counter: turn cumulative event counts into an events/sec series,
/// emitting one sample per `window` (the paper reports per-second
/// throughput from a counter bolt).
class RateTracker {
 public:
  explicit RateTracker(SimTime window = kNanosPerSec) : window_(window) {}

  /// Record `n` events at time `t`. Times must be non-decreasing.
  void add(SimTime t, std::uint64_t n = 1);

  /// Flush the current partial window (call once, at end of run).
  void finish();

  const TimeSeries& series() const { return series_; }
  std::uint64_t total() const { return total_; }

 private:
  SimTime window_;
  SimTime window_start_ = 0;
  std::uint64_t in_window_ = 0;
  std::uint64_t total_ = 0;
  bool started_ = false;
  TimeSeries series_;
};

}  // namespace fastjoin
