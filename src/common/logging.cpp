#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fastjoin::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* name_of(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_level(LogLevel level) { g_level.store(level); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void write(LogLevel lvl, const char* subsystem, const std::string& msg) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %-10s %s\n", name_of(lvl), subsystem,
               msg.c_str());
}

}  // namespace fastjoin::logging
