#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

#include "common/mutex.hpp"

namespace fastjoin::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serializes the stderr sink, guards no data

const char* name_of(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

// Relaxed on both sides: the level is a monotonic filter knob, not a
// synchronization point — a racing FJ_LOG may use the old level for one
// line, which is fine.
void set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void write(LogLevel lvl, const char* subsystem, const std::string& msg) {
  if (lvl < level()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%s] %-10s %s\n", name_of(lvl), subsystem,
               msg.c_str());
}

}  // namespace fastjoin::logging
