#pragma once

// Clang thread-safety-analysis attribute macros.
//
// These expand to __attribute__((...)) under Clang and to nothing under
// every other compiler, so the annotations are free documentation on GCC
// and machine-checked lock discipline under the `-Werror=thread-safety`
// build leg (scripts/check.sh --static, CI `static-analysis` job).
//
// The annotations only bite on types that carry a capability attribute;
// libstdc++'s std::mutex does not, so code that wants checking uses the
// annotated wrappers in src/common/mutex.hpp (fastjoin::Mutex,
// fastjoin::MutexLock, ...) instead of std::mutex directly.
//
// Naming follows the canonical Clang documentation / abseil
// thread_annotations.h vocabulary so the annotations read the same way
// they do in the upstream docs.

#if defined(__clang__) && !defined(SWIG)
#define FASTJOIN_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define FASTJOIN_TSA_ATTRIBUTE(x)  // no-op off Clang
#endif

// A type that is a lockable capability (e.g. a mutex). The string names
// the capability kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) FASTJOIN_TSA_ATTRIBUTE(capability(x))

// An RAII type that acquires a capability in its constructor and
// releases it in its destructor (std::lock_guard shape).
#define SCOPED_CAPABILITY FASTJOIN_TSA_ATTRIBUTE(scoped_lockable)

// Data member may only be read or written while holding the given
// capability.
#define GUARDED_BY(x) FASTJOIN_TSA_ATTRIBUTE(guarded_by(x))

// Pointer member: the *pointee* is protected by the capability (the
// pointer itself may be read freely).
#define PT_GUARDED_BY(x) FASTJOIN_TSA_ATTRIBUTE(pt_guarded_by(x))

// Function requires the capability to be held on entry and does not
// release it.
#define REQUIRES(...) \
  FASTJOIN_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  FASTJOIN_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability (with no argument: the
// capability is `this`, i.e. the annotated member function of a
// capability type).
#define ACQUIRE(...) FASTJOIN_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  FASTJOIN_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FASTJOIN_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  FASTJOIN_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

// Function attempts to acquire the capability; first argument is the
// return value that signals success, e.g. TRY_ACQUIRE(true).
#define TRY_ACQUIRE(...) \
  FASTJOIN_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock guard for functions
// that take the lock themselves).
#define EXCLUDES(...) FASTJOIN_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (for code the analysis
// cannot follow, e.g. after a handoff).
#define ASSERT_CAPABILITY(x) FASTJOIN_TSA_ATTRIBUTE(assert_capability(x))

// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) FASTJOIN_TSA_ATTRIBUTE(lock_returned(x))

// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  FASTJOIN_TSA_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  FASTJOIN_TSA_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Escape hatch: the function is exempt from analysis. Every use must
// carry a one-line justification comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  FASTJOIN_TSA_ATTRIBUTE(no_thread_safety_analysis)

// Documentation-only marker for state that is confined to a single
// EventLoop thread (src/net/event_loop.hpp): no lock guards it, and
// none is needed, because every access happens from callbacks the loop
// itself dispatches. The macro expands to nothing on every compiler —
// it exists so a reader (and a reviewer diffing a mutex-free class
// like FrontDoor or Connection) can tell deliberate loop confinement
// from a forgotten lock. Mutating LOOP_CONFINED state from another
// thread is a data race; hand the work to the loop with
// EventLoop::defer instead.
#define LOOP_CONFINED
