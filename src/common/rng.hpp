// Seedable, fast pseudo-random generators.
//
// Everything stochastic in FastJoin (key generators, SAFit's annealing,
// simulated service-time jitter) draws from these so that a single seed
// reproduces an entire experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace fastjoin {

/// SplitMix64: tiny state, passes BigCrush; used to seed Xoshiro and for
/// cheap one-off streams.  Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  constexpr result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). The workhorse generator.
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 1) { reseed(seed); }

  /// Derive the 256-bit state from a 64-bit seed via SplitMix64, per the
  /// authors' recommendation.
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n) without modulo bias (n > 0).
  std::uint64_t next_below(std::uint64_t n);

  /// Jump ahead 2^128 steps: gives 2^128 non-overlapping subsequences,
  /// used to hand independent streams to parallel workers.
  void jump();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace fastjoin
