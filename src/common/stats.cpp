#include "common/stats.hpp"

#include <cassert>
#include <numeric>

namespace fastjoin {

void StreamingStats::merge(const StreamingStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  desired_[0] = 1;
  desired_[1] = 1 + 2 * q;
  desired_[2] = 1 + 4 * q;
  desired_[3] = 3 + 2 * q;
  desired_[4] = 5;
  increments_[0] = 0;
  increments_[1] = q / 2;
  increments_[2] = q;
  increments_[3] = (1 + q) / 2;
  increments_[4] = 1;
  for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
}

double P2Quantile::parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++n_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      double h = parabolic(i, sign);
      if (heights_[i - 1] < h && h < heights_[i + 1]) {
        heights_[i] = h;
      } else {
        heights_[i] = linear(i, sign);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact quantile on the few samples seen so far.
    std::vector<double> v(heights_, heights_ + n_);
    std::sort(v.begin(), v.end());
    const double idx = q_ * static_cast<double>(n_ - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
  }
  return heights_[2];
}

ImbalanceMetrics compute_imbalance(std::span<const double> loads,
                                   double floor_eps) {
  ImbalanceMetrics m;
  if (loads.empty()) return m;
  StreamingStats s;
  for (double l : loads) s.add(l);
  m.max_load = s.max();
  m.min_load = s.min();
  m.mean_load = s.mean();
  m.cv = s.cv();
  const double denom = std::max(s.min(), floor_eps);
  m.li = std::max(1.0, s.max() / denom);
  m.peak = s.mean() > 0 ? std::max(1.0, s.max() / s.mean()) : 1.0;
  return m;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double idx = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double gini(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    weighted += static_cast<double>(i + 1) * v[i];
  }
  const auto n = static_cast<double>(v.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace fastjoin
