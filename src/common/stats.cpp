#include "common/stats.hpp"

#include <numeric>

namespace fastjoin {

void StreamingStats::merge(const StreamingStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  mean_ += delta * m / (n + m);
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

ImbalanceMetrics compute_imbalance(std::span<const double> loads,
                                   double floor_eps) {
  ImbalanceMetrics m;
  if (loads.empty()) return m;
  StreamingStats s;
  for (double l : loads) s.add(l);
  m.max_load = s.max();
  m.min_load = s.min();
  m.mean_load = s.mean();
  m.cv = s.cv();
  const double denom = std::max(s.min(), floor_eps);
  m.li = std::max(1.0, s.max() / denom);
  m.peak = s.mean() > 0 ? std::max(1.0, s.max() / s.mean()) : 1.0;
  return m;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double idx = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double gini(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  const double total = std::accumulate(v.begin(), v.end(), 0.0);
  if (total <= 0.0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    weighted += static_cast<double>(i + 1) * v[i];
  }
  const auto n = static_cast<double>(v.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

}  // namespace fastjoin
