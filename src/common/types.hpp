// Fundamental scalar types shared across the FastJoin codebase.
#pragma once

#include <cstdint>

namespace fastjoin {

/// Join key. Real deployments hash arbitrary attributes down to 64 bits;
/// all generators and engines in this repo speak KeyId directly.
using KeyId = std::uint64_t;

/// Simulated time in nanoseconds. Signed so durations subtract safely.
using SimTime = std::int64_t;

/// Identifier of a join instance (worker) within one side of the biclique.
using InstanceId = std::uint32_t;

inline constexpr SimTime kNanosPerMicro = 1'000;
inline constexpr SimTime kNanosPerMilli = 1'000'000;
inline constexpr SimTime kNanosPerSec = 1'000'000'000;

/// Convert seconds (double) to SimTime nanoseconds.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}

/// Convert SimTime nanoseconds to seconds (double).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / 1e9;
}

constexpr SimTime from_micros(double us) {
  return static_cast<SimTime>(us * 1e3);
}

constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / 1e6;
}

}  // namespace fastjoin
