// FASTJOIN_HOT_PATH
//
// Lock-free SPSC ring buffer — one per (dispatcher -> joiner) edge.
// This file is on the per-tuple data plane: fastjoin-lint forbids
// mutexes, condition variables, and allocation inside loops here.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace fastjoin {

/// Lock-free SPSC ring. Capacity is rounded up to a power of two.
/// One slot is sacrificed to distinguish full from empty.
///
/// Each side caches the other side's last observed index so the common
/// case (ring neither full nor empty) touches only its own cache line;
/// the peer's atomic is re-read only when the cached value would block.
///
/// Shutdown convention: close() poisons the ring — subsequent pushes
/// fail, pops keep draining. A consumer is done when `closed() &&
/// !try_pop()`: the close flag is checked *before* the final emptiness
/// test on the push side, so no record can slip in after the consumer
/// observed closed-and-empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full or closed.
  bool try_push(T value) {
    if (closed_.load(std::memory_order_acquire)) return false;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (next == tail_cache_) return false;
    }
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side: push up to `n` items, amortizing the index update
  /// over the whole run. Returns how many were consumed from `items`
  /// (< n when the ring fills or is closed); the prefix is moved-from.
  std::size_t try_push_batch(T* items, std::size_t n) {
    if (n == 0 || closed_.load(std::memory_order_acquire)) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t free = (tail_cache_ - head - 1) & mask_;
    if (free < n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      free = (tail_cache_ - head - 1) & mask_;
    }
    const std::size_t m = std::min(n, free);
    for (std::size_t i = 0; i < m; ++i) {
      buffer_[(head + i) & mask_] = std::move(items[i]);
    }
    if (m > 0) head_.store((head + m) & mask_, std::memory_order_release);
    return m;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Consumer side: pop up to `max` items into `out`, updating the
  /// shared index once for the whole run. Returns the count popped.
  std::size_t try_pop_batch(T* out, std::size_t max) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = (head_cache_ - tail) & mask_;
    if (avail < max) {
      head_cache_ = head_.load(std::memory_order_acquire);
      avail = (head_cache_ - tail) & mask_;
    }
    const std::size_t m = std::min(max, avail);
    for (std::size_t i = 0; i < m; ++i) {
      out[i] = std::move(buffer_[(tail + i) & mask_]);
    }
    if (m > 0) tail_.store((tail + m) & mask_, std::memory_order_release);
    return m;
  }

  /// Poison the ring: pushes fail from now on, pops drain what is left.
  /// Callable from any thread.
  void close() { closed_.store(true, std::memory_order_release); }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Approximate occupancy (consumer-side snapshot). This is exactly the
  /// paper's φ — the pending-probe queue length used in the load model.
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

  std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  /// Written once (close) but acquire-loaded on every push: give it
  /// its own cache line so a close() store can never invalidate the
  /// line carrying the hot buffer pointer / mask reads.
  alignas(64) std::atomic<bool> closed_{false};
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;  ///< producer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;  ///< consumer's view of head_
};

}  // namespace fastjoin
