// Hash functions used for stream partitioning and key scrambling.
//
// The dispatcher maps a tuple's KeyId to a join instance with
// `instance_of(hash(key), n)`.  A high-quality finalizer matters: a weak
// hash would itself introduce artificial imbalance that is
// indistinguishable from data skew, polluting every experiment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fastjoin {

/// SplitMix64 finalizer (Stafford variant 13). Bijective on u64; the
/// default scrambler for integer keys.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// FNV-1a over raw bytes. Slow but dependency-free; used for strings.
std::uint64_t fnv1a(std::string_view bytes);

/// MurmurHash3 x64 128-bit, truncated to 64 bits. Reference-quality
/// byte-stream hash for payload checksums and string keys.
std::uint64_t murmur3_64(const void* data, std::size_t len,
                         std::uint64_t seed = 0);

inline std::uint64_t murmur3_64(std::string_view s, std::uint64_t seed = 0) {
  return murmur3_64(s.data(), s.size(), seed);
}

/// Map an already-mixed hash onto [0, n) without modulo bias
/// (Lemire's multiply-shift reduction).
constexpr std::uint32_t reduce_range(std::uint64_t h, std::uint32_t n) {
  return static_cast<std::uint32_t>(
      (static_cast<unsigned __int128>(h) * n) >> 64);
}

/// The canonical key -> instance mapping used by hash partitioning.
constexpr std::uint32_t instance_of(std::uint64_t key, std::uint32_t n,
                                    std::uint64_t seed = 0) {
  return reduce_range(mix64(key ^ seed), n);
}

}  // namespace fastjoin
