// Concurrent queues for the live multithreaded runtime.
//
// SpscRing:     single-producer single-consumer lock-free ring buffer,
//               one per (dispatcher -> joiner) edge.
// BoundedQueue: mutex+condvar MPMC with backpressure, for control paths
//               where contention is rare and blocking semantics are wanted.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <deque>
#include <vector>

namespace fastjoin {

/// Lock-free SPSC ring. Capacity is rounded up to a power of two.
/// One slot is sacrificed to distinguish full from empty.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buffer_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Approximate occupancy (consumer-side snapshot). This is exactly the
  /// paper's φ — the pending-probe queue length used in the load model.
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

  std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

/// Blocking MPMC queue with a capacity bound (backpressure) and
/// close() for clean shutdown.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  /// Blocks while full; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  bool try_push(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Blocks up to `timeout` for an item. Returns nullopt on timeout or
  /// once closed and drained; callers that need to distinguish the two
  /// check closed(). Supervised consumers use this instead of pop() so
  /// they can notice out-of-band state (a crash flag, a deadline)
  /// even when no producer ever wakes them.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;  // timed out
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// After close(), pushes fail and pops drain the remaining items.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace fastjoin
