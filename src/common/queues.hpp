// Concurrent queues for the live multithreaded runtime.
//
// SpscRing:     single-producer single-consumer lock-free ring buffer,
//               one per (dispatcher -> joiner) edge. Lives in
//               common/spsc_ring.hpp (a FASTJOIN_HOT_PATH file);
//               re-exported here for existing includers.
// BoundedQueue: mutex+condvar MPMC with backpressure, for control paths
//               where contention is rare and blocking semantics are wanted.
#pragma once

#include <cassert>
#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>

#include "common/mutex.hpp"
#include "common/spsc_ring.hpp"
#include "common/thread_safety.hpp"

namespace fastjoin {

/// Blocking MPMC queue with a capacity bound (backpressure) and
/// close() for clean shutdown.
///
/// Lock discipline is machine-checked: items_ / closed_ are GUARDED_BY
/// mutex_, and the wait loops are written as explicit `while` loops so
/// every guarded read happens in a scope where Clang's thread-safety
/// analysis can see the capability (predicate lambdas are analysed
/// without the caller's lock set).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  /// Blocks while full; returns false if the queue was closed.
  bool push(T value) EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  bool try_push(T value) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty; returns nullopt once closed AND drained.
  std::optional<T> pop() EXCLUDES(mutex_) {
    UniqueLock lock(mutex_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  std::optional<T> try_pop() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Blocks up to `timeout` for an item. Returns nullopt on timeout or
  /// once closed and drained; callers that need to distinguish the two
  /// check closed(). Supervised consumers use this instead of pop() so
  /// they can notice out-of-band state (a crash flag, a deadline)
  /// even when no producer ever wakes them.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout)
      EXCLUDES(mutex_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    UniqueLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
    if (items_.empty()) return std::nullopt;  // timed out, or closed+drained
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// After close(), pushes fail and pops drain the remaining items.
  void close() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  std::size_t capacity_;
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace fastjoin
