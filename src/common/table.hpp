// Console table / CSV emitters used by the benchmark harness to print
// the rows and series the paper's figures report.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace fastjoin {

/// A cell is a string, an integer, or a double (formatted compactly).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Builds an aligned fixed-width text table and/or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<Cell> cells);

  /// Aligned human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV rendering (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  static std::string format_cell(const Cell& c);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

/// Format a double with engineering-style compactness (e.g. "1.23M").
std::string human_count(double v);

}  // namespace fastjoin
