#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace fastjoin {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::format_cell(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) {
    return std::to_string(*i);
  }
  const double v = std::get<double>(c);
  char buf[64];
  if (v != 0.0 && (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rendered) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << headers_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << format_cell(row[c]);
    }
    os << '\n';
  }
}

std::string human_count(double v) {
  char buf[64];
  const double a = std::fabs(v);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

}  // namespace fastjoin
