#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_safety.hpp"

namespace fastjoin {

// Annotated drop-in for std::mutex. libstdc++'s std::mutex carries no
// capability attribute, so Clang's thread-safety analysis cannot track
// it; this wrapper is what GUARDED_BY / REQUIRES expressions refer to.
// Zero overhead: every method is an inline forward.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For interop with std:: facilities that need the raw mutex (CondVar
  // below). Callers must not lock through this handle directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// std::lock_guard shape: acquires in the constructor, releases in the
// destructor, no unlock before end of scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Conditionally-held scoped lock: locks iff `mu != nullptr`. Used where
// a fast path skips the lock entirely (LiveEngine fallback-lane push).
// The analysis treats the capability as held either way, which is the
// conservative convention (same shape as absl::MutexLockMaybe).
class SCOPED_CAPABILITY MutexLockMaybe {
 public:
  explicit MutexLockMaybe(Mutex* mu) ACQUIRE(mu) : mu_(mu) {
    if (mu_ != nullptr) mu_->lock();
  }
  ~MutexLockMaybe() RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  MutexLockMaybe(const MutexLockMaybe&) = delete;
  MutexLockMaybe& operator=(const MutexLockMaybe&) = delete;

 private:
  Mutex* mu_;
};

// Scoped lock that a CondVar can wait on (std::unique_lock shape, but
// always holding the lock outside CondVar::wait itself). Condition
// loops are written as explicit `while (!pred) cv.wait(lk);` so every
// read of a GUARDED_BY field happens in a scope the analysis can see
// the capability in — Clang analyses lambda bodies without the
// caller's lock set, so the std::condition_variable predicate overload
// defeats the analysis.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : lk_(mu.native()) {}
  ~UniqueLock() RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

// Condition variable bound to fastjoin::Mutex via UniqueLock. wait()
// releases and reacquires the capability; from the analysis' point of
// view the lock is held across the call, which matches the caller's
// invariant (guarded fields are only touched while the wait has
// returned, i.e. with the lock held).
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lk.native(), tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lk.native(), d);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace fastjoin
