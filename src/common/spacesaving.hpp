// SpaceSaving heavy-hitter sketch (Metwally, Agrawal, El Abbadi).
//
// FastJoin's per-key statistics cost chi_k bytes per key (paper Eq. 12);
// with very large key universes the monitor-side tables are the
// dominant overhead the SGR analysis worries about. SpaceSaving tracks
// the (approximate) top-m keys in O(m) memory with the classic
// guarantees: every key with true count > N/m is tracked, and each
// reported count overestimates the truth by at most the minimum tracked
// count. Since GreedyFit only ever wants the hottest keys, a capacity of
// a few thousand suffices regardless of universe size.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace fastjoin {

class SpaceSaving {
 public:
  struct Entry {
    KeyId key = 0;
    std::uint64_t count = 0;  ///< estimate (upper bound on the truth)
    std::uint64_t error = 0;  ///< max overestimation of `count`
  };

  /// Track at most `capacity` keys (capacity >= 1).
  explicit SpaceSaving(std::size_t capacity);

  /// Observe `weight` occurrences of `key`.
  void add(KeyId key, std::uint64_t weight = 1);

  /// Estimated count for `key` (0 if untracked; any untracked key's
  /// true count is <= min_count()).
  std::uint64_t estimate(KeyId key) const;

  /// Whether `key` is guaranteed-tracked-exactly (error == 0).
  bool is_exact(KeyId key) const;

  /// Smallest tracked count — the global overestimation bound.
  std::uint64_t min_count() const;

  /// The tracked entries, heaviest first.
  std::vector<Entry> top() const;

  /// Halve every count (error too): turns the sketch into a decayed
  /// rate tracker, mirroring JoinInstance's probe-window EWMA.
  void decay();

  /// Drop a key entirely (e.g. after its tuples migrated away).
  void erase(KeyId key);

  std::size_t size() const { return by_key_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_weight() const { return total_; }

  void clear();

 private:
  // Entries indexed two ways: by key for lookup, and by count (ordered
  // multimap) for O(log m) eviction of the minimum. With m in the
  // thousands this is plenty fast for per-tuple updates.
  struct Slot {
    Entry entry;
    std::multimap<std::uint64_t, KeyId>::iterator order_it;
  };

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::unordered_map<KeyId, Slot> by_key_;
  std::multimap<std::uint64_t, KeyId> by_count_;  ///< ascending
};

}  // namespace fastjoin
