// Injectable time source for the supervised-migration / replay
// protocol paths.
//
// Everything the protocol does with time — `migration_timeout`
// deadlines, bounded-exponential reply backoff, producer blocked-wait
// pacing — goes through a `Clock` so the deterministic protocol
// checker (src/protocol/) and virtual-time tests can run the exact
// same code with no wall-clock sleeps. Production uses `real_clock()`;
// tests and the explorer inject a `VirtualClock` whose `sleep_for`
// advances virtual time instantly instead of blocking the thread.
//
// This is deliberately NOT telemetry/clock.hpp: that one is a shared
// timestamp epoch for artifacts and must stay wall-clock; this one is
// a behavioural seam that changes how long code *waits*.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace fastjoin {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotone time. Only differences are meaningful; the epoch is
  /// implementation-defined (process start for the real clock, zero
  /// for a fresh VirtualClock).
  virtual std::chrono::nanoseconds now() = 0;

  /// Wait for `d` of this clock's time. The real clock blocks the
  /// calling thread; a virtual clock advances `now()` and returns
  /// immediately, so waiters make progress without wall-clock delay.
  virtual void sleep_for(std::chrono::nanoseconds d) = 0;
};

/// Process-wide steady-clock-backed singleton. All `LiveConfig`s with
/// a null `clock` use this.
Clock& real_clock();

/// Deterministic clock for tests and the protocol explorer: `now()`
/// is a counter, `sleep_for` bumps it atomically and never blocks.
/// Safe for concurrent use from many threads (time stays monotone;
/// concurrent sleepers interleave their advances, which is exactly
/// the semantics the checker wants).
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(std::chrono::nanoseconds start =
                            std::chrono::nanoseconds{0})
      : now_ns_(start.count()) {}

  std::chrono::nanoseconds now() override {
    return std::chrono::nanoseconds{
        now_ns_.load(std::memory_order_relaxed)};
  }

  void sleep_for(std::chrono::nanoseconds d) override {
    if (d.count() > 0) {
      now_ns_.fetch_add(d.count(), std::memory_order_relaxed);
    }
    // A virtual sleeper still cedes the core: loops that would block on
    // the real clock become yield-loops, not hard spins, so the threads
    // they are waiting on keep running.
    std::this_thread::yield();
  }

  /// Explicit advance for tests that drive time by hand.
  void advance(std::chrono::nanoseconds d) { sleep_for(d); }

 private:
  std::atomic<std::int64_t> now_ns_;
};

}  // namespace fastjoin
