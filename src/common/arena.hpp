// Arena: a per-worker bump allocator with size-class recycling, and
// the std-allocator adaptor that lets container-heavy hot state
// (JoinStore buckets, batch staging) live off the global allocator.
//
// Design, in order of importance:
//
//  1. *Thread ownership, not thread safety.* An Arena belongs to one
//     thread (a live-engine worker, a producer slot). All operations
//     are unsynchronized; cross-thread traffic goes through BufferPool
//     below, which is the one synchronized type in this header.
//  2. *Bump + free list.* Fresh blocks are carved from chunk tails
//     (pointer bump, no metadata). Freed blocks go onto a per-size-
//     class free list threaded through the blocks themselves, so
//     steady-state churn (deque pages, staging buffers) recycles
//     without ever touching ::operator new again.
//  3. *Graceful exhaustion.* Requests that exceed the chunk size, an
//     optional byte budget, or an alignment the arena cannot honor
//     fall back to the global allocator — counted, never fatal. An
//     arena is an optimization, not a correctness boundary.
//
// Blocks are rounded up to power-of-two size classes (min 16 bytes, so
// every block can hold the free-list link and is 16-aligned). Chunks
// are allocated with alignof(std::max_align_t); requests with stricter
// alignment than the size-class guarantees use the fallback path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/mutex.hpp"

namespace fastjoin {

/// Running counters for one arena; cheap enough to keep always-on.
struct ArenaStats {
  std::uint64_t chunk_allocs = 0;     ///< chunks fetched from ::new
  std::uint64_t bump_allocs = 0;      ///< blocks carved from chunk tails
  std::uint64_t freelist_allocs = 0;  ///< blocks recycled off free lists
  std::uint64_t fallback_allocs = 0;  ///< handed to the global allocator
  std::uint64_t frees = 0;            ///< blocks returned (either path)
  std::uint64_t bytes_reserved = 0;   ///< total chunk bytes held
};

class Arena {
 public:
  /// `chunk_bytes`: size of each slab requested from the global
  /// allocator. `max_bytes`: optional budget; once reserved chunk
  /// bytes reach it, further block requests use the fallback path
  /// (0 = unbounded).
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes,
                 std::size_t max_bytes = 0)
      : chunk_bytes_(chunk_bytes < kMinClass ? kMinClass : chunk_bytes),
        max_bytes_(max_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (void* p : chunks_) ::operator delete(p);
  }

  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    if (align > alignof(std::max_align_t) || bytes > max_block_bytes()) {
      return fallback_alloc(bytes, align);
    }
    const unsigned cls = size_class(bytes);
    if (void* p = free_[cls]) {
      free_[cls] = *static_cast<void**>(p);
      ++stats_.freelist_allocs;
      return p;
    }
    const std::size_t want = std::size_t{1} << (cls + kMinClassLog);
    if (bump_ + want > bump_end_) {
      if (!grow()) {
        // Budget exhausted (or chunk allocation failed): serve this
        // block from the heap but keep OWNING it, so it still recycles
        // through the free list and is reclaimed by the destructor.
        void* p = ::operator new(want);
        chunks_.push_back(p);
        ++stats_.fallback_allocs;
        return p;
      }
    }
    void* p = bump_;
    bump_ += want;
    ++stats_.bump_allocs;
    return p;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) {
    if (p == nullptr) return;
    if (bytes == 0) bytes = 1;
    ++stats_.frees;
    if (align > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t{align});
      return;
    }
    if (bytes > max_block_bytes()) {
      ::operator delete(p);
      return;
    }
    const unsigned cls = size_class(bytes);
    *static_cast<void**>(p) = free_[cls];
    free_[cls] = p;
  }

  const ArenaStats& stats() const { return stats_; }

  /// Largest request served from chunks; larger ones fall back.
  std::size_t max_block_bytes() const { return chunk_bytes_ / 2; }

  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

 private:
  static constexpr unsigned kMinClassLog = 4;  // 16-byte minimum class
  static constexpr std::size_t kMinClass = std::size_t{1} << kMinClassLog;
  static constexpr unsigned kNumClasses = 32;

  /// Index of the smallest power-of-two class holding `bytes`.
  static unsigned size_class(std::size_t bytes) {
    unsigned cls = 0;
    std::size_t cap = kMinClass;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return cls;
  }

  bool grow() {
    if (max_bytes_ != 0 && stats_.bytes_reserved + chunk_bytes_ > max_bytes_) {
      return false;
    }
    void* chunk = ::operator new(chunk_bytes_, std::nothrow);
    if (chunk == nullptr) return false;
    chunks_.push_back(chunk);
    bump_ = static_cast<std::byte*>(chunk);
    bump_end_ = bump_ + chunk_bytes_;
    ++stats_.chunk_allocs;
    stats_.bytes_reserved += chunk_bytes_;
    return true;
  }

  void* fallback_alloc(std::size_t bytes, std::size_t align) {
    ++stats_.fallback_allocs;
    if (align > alignof(std::max_align_t)) {
      return ::operator new(bytes, std::align_val_t{align});
    }
    return ::operator new(bytes);
  }

  std::size_t chunk_bytes_;
  std::size_t max_bytes_;
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  std::vector<void*> chunks_;
  void* free_[kNumClasses] = {};
  ArenaStats stats_;
};

/// std-allocator adaptor. A null arena degrades to the global
/// allocator, so arena use stays a constructor-time decision instead
/// of a template split through every container type. Propagates on
/// container copy/move/swap: a bucket built on worker A's arena must
/// not follow a rebalance to worker B still pointing at A's chunks.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(runtime/explicit)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T), alignof(T));
      return;
    }
    ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_ = nullptr;
};

/// A shared pool of reusable `std::vector<T>` buffers for batch
/// staging and drain scratch. Unlike Arena this IS thread-safe: a
/// buffer acquired on one thread may be released on another (a dying
/// worker's scratch is reissued to its respawned successor; producer
/// staging outlives deregistration). Acquire/release happen at thread
/// and batch lifecycle boundaries, not per record, so a mutex is the
/// right tool — contention is structurally rare and the pool stays
/// trivially correct under TSan.
template <typename T>
class BufferPool {
 public:
  explicit BufferPool(std::size_t max_pooled = 64)
      : max_pooled_(max_pooled) {}

  /// Get a buffer with capacity >= `min_capacity` (cleared, possibly
  /// recycled). Never fails: an empty pool just allocates.
  std::vector<T> acquire(std::size_t min_capacity) {
    {
      MutexLock lk(mu_);
      if (!pool_.empty()) {
        std::vector<T> buf = std::move(pool_.back());
        pool_.pop_back();
        ++reused_;
        buf.clear();
        buf.reserve(min_capacity);
        return buf;
      }
      ++misses_;
    }
    std::vector<T> buf;
    buf.reserve(min_capacity);
    return buf;
  }

  /// Return a buffer for reuse. Buffers beyond `max_pooled` are simply
  /// dropped (freed), bounding the pool's footprint.
  void release(std::vector<T>&& buf) {
    if (buf.capacity() == 0) return;
    MutexLock lk(mu_);
    if (pool_.size() >= max_pooled_) return;  // drop: destructor frees
    pool_.push_back(std::move(buf));
  }

  std::size_t pooled() const {
    MutexLock lk(mu_);
    return pool_.size();
  }
  std::uint64_t reused() const {
    MutexLock lk(mu_);
    return reused_;
  }
  std::uint64_t misses() const {
    MutexLock lk(mu_);
    return misses_;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::vector<T>> pool_ GUARDED_BY(mu_);
  std::size_t max_pooled_ GUARDED_BY(mu_);
  std::uint64_t reused_ GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace fastjoin
