#include "common/spacesaving.hpp"

#include <cassert>

namespace fastjoin {

SpaceSaving::SpaceSaving(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void SpaceSaving::add(KeyId key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;

  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    Slot& slot = it->second;
    by_count_.erase(slot.order_it);
    slot.entry.count += weight;
    slot.order_it = by_count_.emplace(slot.entry.count, key);
    return;
  }

  if (by_key_.size() < capacity_) {
    Slot slot;
    slot.entry = {key, weight, 0};
    slot.order_it = by_count_.emplace(weight, key);
    by_key_.emplace(key, slot);
    return;
  }

  // Evict the minimum-count entry; the newcomer inherits its count as
  // the classic SpaceSaving overestimation.
  const auto victim_it = by_count_.begin();
  const std::uint64_t floor = victim_it->first;
  by_key_.erase(victim_it->second);
  by_count_.erase(victim_it);

  Slot slot;
  slot.entry = {key, floor + weight, floor};
  slot.order_it = by_count_.emplace(slot.entry.count, key);
  by_key_.emplace(key, slot);
}

std::uint64_t SpaceSaving::estimate(KeyId key) const {
  const auto it = by_key_.find(key);
  return it == by_key_.end() ? 0 : it->second.entry.count;
}

bool SpaceSaving::is_exact(KeyId key) const {
  const auto it = by_key_.find(key);
  return it != by_key_.end() && it->second.entry.error == 0;
}

std::uint64_t SpaceSaving::min_count() const {
  if (by_key_.size() < capacity_ || by_count_.empty()) return 0;
  return by_count_.begin()->first;
}

std::vector<SpaceSaving::Entry> SpaceSaving::top() const {
  std::vector<Entry> out;
  out.reserve(by_key_.size());
  for (auto it = by_count_.rbegin(); it != by_count_.rend(); ++it) {
    out.push_back(by_key_.at(it->second).entry);
  }
  return out;
}

void SpaceSaving::decay() {
  std::multimap<std::uint64_t, KeyId> rebuilt;
  for (auto it = by_key_.begin(); it != by_key_.end();) {
    Slot& slot = it->second;
    slot.entry.count /= 2;
    slot.entry.error /= 2;
    if (slot.entry.count == 0) {
      it = by_key_.erase(it);
      continue;
    }
    slot.order_it = rebuilt.emplace(slot.entry.count, it->first);
    ++it;
  }
  by_count_.swap(rebuilt);
  total_ /= 2;
}

void SpaceSaving::erase(KeyId key) {
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return;
  total_ -= std::min(total_, it->second.entry.count);
  by_count_.erase(it->second.order_it);
  by_key_.erase(it);
}

void SpaceSaving::clear() {
  by_key_.clear();
  by_count_.clear();
  total_ = 0;
}

}  // namespace fastjoin
