#include "core/load_model.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace fastjoin {

double load_imbalance(std::span<const InstanceLoad> loads,
                      double floor_eps) {
  if (loads.empty()) return 1.0;
  double heaviest = 0.0;
  double lightest = std::numeric_limits<double>::infinity();
  for (const auto& l : loads) {
    heaviest = std::max(heaviest, l.load());
    lightest = std::min(lightest, l.load());
  }
  lightest = std::max(lightest, floor_eps);
  return std::max(1.0, heaviest / lightest);
}

double load_after_removal(const InstanceLoad& src, const KeyLoad& k) {
  assert(k.stored <= src.stored && k.queued <= src.queued);
  return static_cast<double>(src.stored - k.stored) *
         static_cast<double>(src.queued - k.queued);
}

double load_after_insertion(const InstanceLoad& dst, const KeyLoad& k) {
  return static_cast<double>(dst.stored + k.stored) *
         static_cast<double>(dst.queued + k.queued);
}

double migration_benefit(const InstanceLoad& src, const InstanceLoad& dst,
                         const KeyLoad& k) {
  return static_cast<double>(src.stored + dst.stored) *
             static_cast<double>(k.queued) +
         static_cast<double>(src.queued + dst.queued) *
             static_cast<double>(k.stored);
}

double migration_key_factor(const InstanceLoad& src, const InstanceLoad& dst,
                            const KeyLoad& k) {
  const double f = migration_benefit(src, dst, k);
  if (k.stored == 0) {
    return f > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return f / static_cast<double>(k.stored);
}

double delta_after_migration(const InstanceLoad& src,
                             const InstanceLoad& dst,
                             std::span<const KeyLoad> selection) {
  std::uint64_t moved_stored = 0;
  std::uint64_t moved_queued = 0;
  for (const auto& k : selection) {
    moved_stored += k.stored;
    moved_queued += k.queued;
  }
  const double li = static_cast<double>(src.stored - moved_stored) *
                    static_cast<double>(src.queued - moved_queued);
  const double lj = static_cast<double>(dst.stored + moved_stored) *
                    static_cast<double>(dst.queued + moved_queued);
  return li - lj;
}

void apply_migration(InstanceLoad& src, InstanceLoad& dst,
                     std::span<const KeyLoad> selection) {
  for (const auto& k : selection) {
    assert(k.stored <= src.stored && k.queued <= src.queued);
    src.stored -= k.stored;
    src.queued -= k.queued;
    dst.stored += k.stored;
    dst.queued += k.queued;
  }
}

}  // namespace fastjoin
