#include "core/optimal_fit.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fastjoin {

namespace {

struct Item {
  double benefit;
  std::uint64_t stored;
  std::size_t index;
};

std::vector<Item> usable_items(const KeySelectionInput& in, double gap) {
  std::vector<Item> items;
  items.reserve(in.keys.size());
  for (std::size_t i = 0; i < in.keys.size(); ++i) {
    const double f = migration_benefit(in.src, in.dst, in.keys[i]);
    if (f > 0.0 && f < gap && f >= in.theta_gap) {
      items.push_back({f, in.keys[i].stored, i});
    }
  }
  return items;
}

}  // namespace

KeySelectionResult optimal_fit_bruteforce(const KeySelectionInput& in) {
  if (in.keys.size() > 24) {
    throw std::invalid_argument(
        "optimal_fit_bruteforce: too many keys (max 24)");
  }
  KeySelectionResult out;
  const double gap = in.src.load() - in.dst.load();
  if (gap <= 0.0) {
    finalize_result(in, out);
    return out;
  }
  const auto items = usable_items(in, gap);
  const std::size_t n = items.size();

  double best_benefit = 0.0;
  std::uint64_t best_stored = 0;
  std::uint64_t best_mask = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    double f = 0.0;
    std::uint64_t stored = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::uint64_t{1} << i)) {
        f += items[i].benefit;
        stored += items[i].stored;
      }
    }
    if (f >= gap) continue;  // strict: keep Delta L > 0
    if (f > best_benefit ||
        (f == best_benefit && stored < best_stored)) {
      best_benefit = f;
      best_stored = stored;
      best_mask = mask;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (best_mask & (std::uint64_t{1} << i)) {
      out.selection.push_back(in.keys[items[i].index]);
    }
  }
  finalize_result(in, out);
  return out;
}

KeySelectionResult optimal_fit_dp(const KeySelectionInput& in,
                                  std::size_t resolution) {
  KeySelectionResult out;
  const double gap = in.src.load() - in.dst.load();
  if (gap <= 0.0 || resolution == 0) {
    finalize_result(in, out);
    return out;
  }
  const auto items = usable_items(in, gap);
  const std::size_t n = items.size();
  if (n == 0) {
    finalize_result(in, out);
    return out;
  }

  // Quantize benefits with ceiling so that a scaled-feasible subset is
  // always truly feasible (sum w <= resolution  =>  sum F <= gap).
  std::vector<std::size_t> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = static_cast<std::size_t>(
        std::ceil(items[i].benefit / gap * static_cast<double>(resolution)));
    weight[i] = std::max<std::size_t>(weight[i], 1);
  }

  struct CellValue {
    double benefit = 0.0;
    std::uint64_t stored = 0;
  };
  // dp[c]: best (max benefit, min stored) using capacity exactly <= c.
  std::vector<CellValue> dp(resolution + 1);
  // take[i][c] marks whether item i is taken in the optimum for cap c.
  std::vector<std::vector<char>> take(n,
                                      std::vector<char>(resolution + 1, 0));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = resolution; c >= weight[i]; --c) {
      const CellValue& without = dp[c];
      const CellValue& base = dp[c - weight[i]];
      const double cand_benefit = base.benefit + items[i].benefit;
      const std::uint64_t cand_stored = base.stored + items[i].stored;
      if (cand_benefit > without.benefit ||
          (cand_benefit == without.benefit &&
           cand_stored < without.stored)) {
        dp[c] = {cand_benefit, cand_stored};
        take[i][c] = 1;
      }
      if (c == weight[i]) break;  // unsigned loop guard
    }
  }

  // Reconstruct.
  std::size_t c = resolution;
  for (std::size_t i = n; i-- > 0;) {
    if (take[i][c]) {
      out.selection.push_back(in.keys[items[i].index]);
      c -= weight[i];
    }
  }
  std::reverse(out.selection.begin(), out.selection.end());
  finalize_result(in, out);
  return out;
}

}  // namespace fastjoin
