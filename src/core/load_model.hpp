// The paper's load-quantification model (Section III-B).
//
// For a join instance I_{R-i} storing tuples of stream R and probing with
// tuples of stream S:
//   Eq. 1:  L_i  = |R_i| * phi_si
//   Eq. 2:  LI   = L_heaviest / L_lightest
//   Eq. 5/6: post-migration loads when all tuples of one key move i -> j
//   Eq. 8:  migration benefit F_k
//   Eq. 9:  Delta L after migrating a key set (telescopes exactly because
//           F_k is linear in the aggregates — see note on greedy_fit()).
//
// The model is symmetric in R and S, so one set of types serves both
// sides of the join biclique.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace fastjoin {

/// Per-key statistics on one instance: |R_ik| stored tuples of the
/// storing stream and phi_sik pending/incoming tuples of the probing
/// stream for key k.
struct KeyLoad {
  KeyId key = 0;
  std::uint64_t stored = 0;  ///< |R_ik|
  std::uint64_t queued = 0;  ///< phi_sik
};

/// Aggregate statistics of one instance: |R_i| and phi_si.
struct InstanceLoad {
  std::uint64_t stored = 0;  ///< |R_i| = sum_k |R_ik|   (Eq. 3)
  std::uint64_t queued = 0;  ///< phi_si = sum_k phi_sik (Eq. 4)

  /// Eq. 1. Double-valued: products overflow u64 at realistic scales.
  double load() const {
    return static_cast<double>(stored) * static_cast<double>(queued);
  }
};

/// Eq. 2 over a cluster snapshot. Zero loads are floored at `floor_eps`
/// so an idle instance gives a large-but-finite ratio. Returns 1 for
/// empty input.
double load_imbalance(std::span<const InstanceLoad> loads,
                      double floor_eps = 1.0);

/// Eq. 5: load of the source instance after migrating key k away.
double load_after_removal(const InstanceLoad& src, const KeyLoad& k);

/// Eq. 6: load of the target instance after receiving key k.
double load_after_insertion(const InstanceLoad& dst, const KeyLoad& k);

/// Eq. 8: F_k = (|R_i|+|R_j|) * phi_sik + (phi_si+phi_sj) * |R_ik|.
/// The reduction in (L_i - L_j) achieved by moving key k from i to j.
double migration_benefit(const InstanceLoad& src, const InstanceLoad& dst,
                         const KeyLoad& k);

/// Definition 2: migration key factor F_k / |R_ik|, the benefit per tuple
/// moved. Keys with zero stored tuples get +inf (free wins: they cost no
/// transfer but reduce future probe load).
double migration_key_factor(const InstanceLoad& src, const InstanceLoad& dst,
                            const KeyLoad& k);

/// Eq. 9 evaluated directly: Delta L = L'_i - L'_j after migrating every
/// key in `selection` from src to dst.
double delta_after_migration(const InstanceLoad& src,
                             const InstanceLoad& dst,
                             std::span<const KeyLoad> selection);

/// Apply a migration to the aggregate pair (src loses, dst gains).
void apply_migration(InstanceLoad& src, InstanceLoad& dst,
                     std::span<const KeyLoad> selection);

}  // namespace fastjoin
