#include "core/sgr.hpp"

namespace fastjoin {

double scaling_gain_ratio(std::uint64_t tuples, std::uint64_t keys,
                          const SgrParams& p) {
  const double num = p.tuple_bytes * static_cast<double>(tuples);
  const double den = num + p.stat_bytes * static_cast<double>(keys);
  return den > 0.0 ? num / den : 1.0;
}

double scaling_gain_ratio_c(double c, const SgrParams& p) {
  const double num = p.tuple_bytes * c;
  const double den = num + p.stat_bytes;
  return den > 0.0 ? num / den : 1.0;
}

}  // namespace fastjoin
