// Reference (optimal) key-selection solvers.
//
// The paper argues (Section IV-A) that the key-selection problem is a
// 0-1 knapsack and that exact methods (DP, branch-and-bound) are too
// slow for the data path. We implement them anyway, as *test oracles*:
// they quantify GreedyFit's approximation gap, which the paper only
// discusses qualitatively.
//
// Objective (matching GreedyFit's): maximize sum of F_k subject to the
// feasibility bound sum F_k <= L_i - L_j (keep Delta L >= 0, Eq. 9);
// among maximum-benefit solutions prefer fewer migrated tuples.
#pragma once

#include "core/key_selection.hpp"

namespace fastjoin {

/// Exhaustive 2^K search. Only valid for small inputs (K <= 24).
KeySelectionResult optimal_fit_bruteforce(const KeySelectionInput& in);

/// Dynamic-programming knapsack with benefit scaling: benefits are
/// quantized into `resolution` buckets of the gap, giving a
/// (1 - K/resolution)-approximation in O(K * resolution) time/space.
/// With resolution >> K this is near-exact and still fast.
KeySelectionResult optimal_fit_dp(const KeySelectionInput& in,
                                  std::size_t resolution = 10'000);

}  // namespace fastjoin
