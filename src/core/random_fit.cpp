#include "core/random_fit.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace fastjoin {

KeySelectionResult random_fit(const KeySelectionInput& in,
                              const RandomFitParams& params) {
  KeySelectionResult out;
  const double gap = in.src.load() - in.dst.load();
  if (gap <= 0.0 || in.keys.empty()) {
    finalize_result(in, out);
    return out;
  }

  // Shuffle key indices, then admit in that arbitrary order while the
  // selection stays feasible (Delta L > 0, Eq. 9).
  std::vector<std::size_t> order(in.keys.size());
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256 rng(params.seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  const auto budget = static_cast<std::size_t>(
      params.max_fraction * static_cast<double>(in.keys.size()));
  double remaining = gap;
  for (std::size_t idx : order) {
    if (out.selection.size() >= budget) break;
    const KeyLoad& k = in.keys[idx];
    if (params.naive) {
      out.selection.push_back(k);
      continue;
    }
    const double f = migration_benefit(in.src, in.dst, k);
    if (f > 0.0 && f < remaining && f >= in.theta_gap) {
      remaining -= f;
      out.selection.push_back(k);
    }
  }
  finalize_result(in, out);
  return out;
}

}  // namespace fastjoin
