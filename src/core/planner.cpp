#include "core/planner.hpp"

#include <algorithm>

namespace fastjoin {

std::optional<MigrationPair> pick_migration_pair(
    std::span<const InstanceLoad> loads, const PlannerConfig& cfg) {
  if (loads.size() < 2) return std::nullopt;

  std::size_t heaviest = 0;
  std::size_t lightest = 0;
  for (std::size_t i = 1; i < loads.size(); ++i) {
    if (loads[i].load() > loads[heaviest].load()) heaviest = i;
    if (loads[i].load() < loads[lightest].load()) lightest = i;
  }
  const double denom =
      std::max(loads[lightest].load(), cfg.floor_eps);
  const double li = std::max(1.0, loads[heaviest].load() / denom);
  if (li <= cfg.theta || heaviest == lightest) return std::nullopt;

  MigrationPair pair;
  pair.src = static_cast<InstanceId>(heaviest);
  pair.dst = static_cast<InstanceId>(lightest);
  pair.li = li;
  return pair;
}

std::vector<MigrationPair> pick_migration_pairs(
    std::span<const InstanceLoad> loads, const PlannerConfig& cfg,
    std::size_t max_pairs) {
  std::vector<MigrationPair> out;
  if (loads.size() < 2 || max_pairs == 0) return out;

  std::vector<std::size_t> order(loads.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return loads[a].load() > loads[b].load();
  });

  const std::size_t limit = std::min(max_pairs, loads.size() / 2);
  for (std::size_t p = 0; p < limit; ++p) {
    const std::size_t heavy = order[p];
    const std::size_t light = order[order.size() - 1 - p];
    const double denom = std::max(loads[light].load(), cfg.floor_eps);
    const double li = std::max(1.0, loads[heavy].load() / denom);
    if (li <= cfg.theta) break;  // sorted: later pairs are milder
    MigrationPair pair;
    pair.src = static_cast<InstanceId>(heavy);
    pair.dst = static_cast<InstanceId>(light);
    pair.li = li;
    out.push_back(pair);
  }
  return out;
}

KeySelectionResult select_keys(const KeySelectionInput& in,
                               const PlannerConfig& cfg) {
  switch (cfg.selector) {
    case KeySelectorKind::kSAFit:
      return sa_fit(in, cfg.sa);
    case KeySelectorKind::kRandomFit:
      return random_fit(in, cfg.random);
    case KeySelectorKind::kGreedyFit:
    default:
      return greedy_fit(in);
  }
}

}  // namespace fastjoin
