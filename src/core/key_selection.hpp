// Shared types for the key-selection algorithms (GreedyFit, SAFit, and
// the optimal reference solvers).
#pragma once

#include <cstdint>
#include <vector>

#include "core/load_model.hpp"

namespace fastjoin {

/// Input to a key-selection run: the aggregates of the heaviest (source)
/// and lightest (target) instances, and the source's per-key statistics.
struct KeySelectionInput {
  InstanceLoad src;            ///< heaviest instance (I_{R-i})
  InstanceLoad dst;            ///< lightest instance (I_{R-j})
  std::vector<KeyLoad> keys;   ///< per-key stats on the source
  double theta_gap = 0.0;      ///< Alg. 1's theta_gap: min useful benefit
};

/// Result of a key-selection run.
struct KeySelectionResult {
  std::vector<KeyLoad> selection;  ///< keys to migrate, with their stats
  double total_benefit = 0.0;      ///< sum of F_k over the selection
  std::uint64_t tuples_moved = 0;  ///< sum of |R_ik| (transfer cost)
  double predicted_src_load = 0.0; ///< L'_i (Eq. 5 applied to the set)
  double predicted_dst_load = 0.0; ///< L'_j (Eq. 6 applied to the set)
};

/// Fill in the derived fields of a result from its selection.
void finalize_result(const KeySelectionInput& in, KeySelectionResult& out);

}  // namespace fastjoin
