// Scaling Gain Ratio analysis (paper Section IV-C, Eqs. 12-13).
//
// SGR measures what fraction of newly added memory is available for
// storing tuples once FastJoin's per-key statistics are accounted for.
#pragma once

#include <cstdint>

namespace fastjoin {

struct SgrParams {
  double tuple_bytes = 48.0;  ///< chi_t: size of one stored tuple
  double stat_bytes = 24.0;   ///< chi_k: size of one key-statistics item
};

/// Eq. 12: SGR = chi_t*|R| / (chi_t*|R| + chi_k*K).
double scaling_gain_ratio(std::uint64_t tuples, std::uint64_t keys,
                          const SgrParams& p = {});

/// Eq. 13: the same expressed through c = |R| / K, the mean tuples/key.
double scaling_gain_ratio_c(double c, const SgrParams& p = {});

}  // namespace fastjoin
