// Migration planning: the monitor-side decision logic.
//
// The monitor keeps only aggregate loads (the load information table);
// when LI exceeds theta it pairs the heaviest instance with the lightest
// (paper Section III-A/B) and asks the source to run key selection over
// its local per-key statistics. This module captures both halves as pure
// functions so the simulator, the live runtime and the tests share them.
#pragma once

#include <optional>
#include <span>

#include "core/greedy_fit.hpp"
#include "core/random_fit.hpp"
#include "core/sa_fit.hpp"

namespace fastjoin {

/// Which key-selection algorithm the planner runs.
enum class KeySelectorKind : std::uint8_t { kGreedyFit, kSAFit, kRandomFit };

struct PlannerConfig {
  double theta = 2.2;        ///< LI threshold Theta (paper default)
  double theta_gap = 0.0;    ///< GreedyFit's minimum-useful-benefit
  double floor_eps = 1.0;    ///< zero-load floor for the LI denominator
  KeySelectorKind selector = KeySelectorKind::kGreedyFit;
  SAFitParams sa;            ///< used when selector == kSAFit
  RandomFitParams random;    ///< used when selector == kRandomFit
};

/// The (source, target) pair the monitor chose, with the LI that
/// triggered it.
struct MigrationPair {
  InstanceId src = 0;  ///< heaviest instance
  InstanceId dst = 0;  ///< lightest instance
  double li = 1.0;
};

/// Monitor half: inspect aggregate loads; if LI > theta return the
/// heaviest/lightest pair. Index into `loads` is the instance id.
/// Returns nullopt when balanced (LI <= theta) or fewer than 2 instances.
std::optional<MigrationPair> pick_migration_pair(
    std::span<const InstanceLoad> loads, const PlannerConfig& cfg);

/// Multi-pair extension: up to `max_pairs` disjoint (source, target)
/// pairs — heaviest with lightest, second heaviest with second
/// lightest, ... — keeping only pairs whose own ratio still exceeds
/// theta. The paper's monitor "determines which join instances should
/// offload/upload tuples to/from which join instances" (plural); with
/// max_pairs = 1 this degenerates to pick_migration_pair.
std::vector<MigrationPair> pick_migration_pairs(
    std::span<const InstanceLoad> loads, const PlannerConfig& cfg,
    std::size_t max_pairs);

/// Instance half: run the configured key-selection algorithm.
KeySelectionResult select_keys(const KeySelectionInput& in,
                               const PlannerConfig& cfg);

}  // namespace fastjoin
