#include "core/greedy_fit.hpp"

#include <algorithm>

namespace fastjoin {

void finalize_result(const KeySelectionInput& in, KeySelectionResult& out) {
  out.total_benefit = 0.0;
  out.tuples_moved = 0;
  for (const auto& k : out.selection) {
    out.total_benefit += migration_benefit(in.src, in.dst, k);
    out.tuples_moved += k.stored;
  }
  out.predicted_src_load = 0.0;
  out.predicted_dst_load = 0.0;
  InstanceLoad src = in.src;
  InstanceLoad dst = in.dst;
  apply_migration(src, dst, out.selection);
  out.predicted_src_load = src.load();
  out.predicted_dst_load = dst.load();
}

KeySelectionResult greedy_fit(const KeySelectionInput& in) {
  struct Entry {
    double benefit;
    double factor;
    const KeyLoad* key;
  };

  std::vector<Entry> farray;
  farray.reserve(in.keys.size());
  for (const auto& k : in.keys) {
    const double f = migration_benefit(in.src, in.dst, k);
    farray.push_back({f, migration_key_factor(in.src, in.dst, k), &k});
  }

  // Sort by migration key factor, descending (Alg. 1 line 10). Ties are
  // broken by key id so the selection is deterministic.
  std::sort(farray.begin(), farray.end(), [](const Entry& a, const Entry& b) {
    if (a.factor != b.factor) return a.factor > b.factor;
    return a.key->key < b.key->key;
  });

  KeySelectionResult out;
  double gap = in.src.load() - in.dst.load();  // Alg. 1 line 5
  for (const auto& e : farray) {
    // Alg. 1 line 12: admit while the gap still exceeds the benefit
    // (keeps Delta L > 0, Eq. 9) and the benefit is worth the disruption.
    if (gap > e.benefit && e.benefit >= in.theta_gap) {
      gap -= e.benefit;
      out.selection.push_back(*e.key);
    }
  }

  finalize_result(in, out);
  return out;
}

}  // namespace fastjoin
