// RandomFit: the strawman key selector the paper argues against.
//
// Section III-B observes that migrating randomly chosen keys can add
// more load to the target than it removes from the source (the
// asymmetry of Eqs. 5/6). RandomFit picks keys uniformly at random
// while the feasibility bound (Eq. 9) still holds; it exists as an
// ablation baseline to quantify how much GreedyFit's ordering matters.
#pragma once

#include <cstdint>

#include "core/key_selection.hpp"

namespace fastjoin {

struct RandomFitParams {
  std::uint64_t seed = 17;
  /// Stop after admitting this fraction of keys (caps migration size).
  double max_fraction = 0.5;
  /// true = the paper's actual strawman: admit sampled keys without
  /// consulting the benefit model at all, so the selection can make the
  /// target heavier than the source (violating Eq. 9). false = random
  /// order but each admission still respects the feasibility bound.
  bool naive = false;
};

KeySelectionResult random_fit(const KeySelectionInput& in,
                              const RandomFitParams& params = {});

}  // namespace fastjoin
