#include "core/sa_fit.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace fastjoin {

namespace {

double value_of(double sum_benefit, std::uint64_t sum_stored) {
  // Eq. 10. The empty set (and all-broadcast-key sets with zero stored
  // tuples) is treated as value 0 / +inf respectively; selections of
  // only zero-stored keys are free wins so rank them highest.
  if (sum_benefit <= 0.0) return 0.0;
  if (sum_stored == 0) return std::numeric_limits<double>::infinity();
  return sum_benefit / static_cast<double>(sum_stored);
}

}  // namespace

KeySelectionResult sa_fit(const KeySelectionInput& in,
                          const SAFitParams& params) {
  const std::size_t n = in.keys.size();
  KeySelectionResult out;
  if (n == 0) {
    finalize_result(in, out);
    return out;
  }

  const double gap = in.src.load() - in.dst.load();
  Xoshiro256 rng(params.seed);

  // Precompute each key's benefit; exact for any subset (see greedy_fit
  // header note on the telescoping of Eq. 9).
  std::vector<double> benefit(n);
  for (std::size_t i = 0; i < n; ++i) {
    benefit[i] = migration_benefit(in.src, in.dst, in.keys[i]);
  }

  // --- Initial solution: random flags, rolled back to feasibility
  //     (Alg. 3 lines 3-14).
  std::vector<char> flags(n, 0);
  double cur_benefit = 0.0;
  std::uint64_t cur_stored = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_below(2) == 1) {
      if (cur_benefit + benefit[i] > gap) break;  // would be infeasible
      flags[i] = 1;
      cur_benefit += benefit[i];
      cur_stored += in.keys[i].stored;
    }
  }

  std::vector<char> best_flags = flags;
  double best_value = value_of(cur_benefit, cur_stored);

  // --- Annealing loop (Alg. 3 lines 17-40).
  double temp = params.initial_temp;
  while (temp > params.min_temp) {
    for (int it = 0; it < params.iters_per_temp; ++it) {
      const std::size_t i = rng.next_below(n);
      const double sign = flags[i] ? -1.0 : 1.0;
      const double new_benefit = cur_benefit + sign * benefit[i];
      const std::uint64_t new_stored =
          flags[i] ? cur_stored - in.keys[i].stored
                   : cur_stored + in.keys[i].stored;

      if (new_benefit > gap) continue;  // infeasible: revert (no-op)

      const double v_old = value_of(cur_benefit, cur_stored);
      const double v_new = value_of(new_benefit, new_stored);

      bool accept = v_new > v_old;
      if (!accept) {
        // Metropolis acceptance (Eq. 11); guard the exp underflow.
        const double p = std::exp((v_new - v_old) / temp);
        accept = rng.next_double() < p;
      }
      if (!accept) continue;

      flags[i] ^= 1;
      cur_benefit = new_benefit;
      cur_stored = new_stored;
      if (v_new > best_value) {
        best_value = v_new;
        best_flags = flags;
      }
    }
    temp *= params.cooling;
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (best_flags[i]) out.selection.push_back(in.keys[i]);
  }
  finalize_result(in, out);
  return out;
}

}  // namespace fastjoin
