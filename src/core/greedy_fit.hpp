// GreedyFit (paper Algorithm 1): the O(K log K) key-selection algorithm.
//
// Keys are ranked by migration key factor F_k / |R_ik| (benefit per tuple
// moved) and admitted while the remaining gap L_i - L_j still exceeds the
// key's benefit and the benefit clears theta_gap.
//
// Correctness note: F_k is computed once from the *initial* aggregates
// and never refreshed as keys are admitted. This is exact, not an
// approximation — expanding Eq. 9 shows the cross terms cancel, so
// Delta L = (L_i - L_j) - sum F_k holds for any selection with the
// initial-aggregate F_k values.
#pragma once

#include "core/key_selection.hpp"

namespace fastjoin {

KeySelectionResult greedy_fit(const KeySelectionInput& in);

}  // namespace fastjoin
