// SAFit (paper Algorithm 3): simulated-annealing key selection.
//
// Explores subsets by flipping one key's membership per step, accepting
// improvements in Value(SK) = sum F_k / sum |R_ik| (Eq. 10) always and
// regressions with Metropolis probability exp((V_new - V_old)/T)
// (Eq. 11). Only subsets satisfying Benefit(SK) <= L_i - L_j (Eq. 9's
// feasibility bound) are considered. The paper's Fig. 14 shows SAFit and
// GreedyFit end up nearly equivalent; this implementation exists to
// reproduce that comparison.
#pragma once

#include <cstdint>

#include "core/key_selection.hpp"

namespace fastjoin {

struct SAFitParams {
  double initial_temp = 1.0;    ///< T
  double min_temp = 1e-3;       ///< T_min
  double cooling = 0.9;         ///< attenuation coefficient a
  int iters_per_temp = 50;      ///< L
  std::uint64_t seed = 7;       ///< annealing RNG seed
};

KeySelectionResult sa_fit(const KeySelectionInput& in,
                          const SAFitParams& params = {});

}  // namespace fastjoin
