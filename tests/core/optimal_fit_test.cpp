#include "core/optimal_fit.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/greedy_fit.hpp"

namespace fastjoin {
namespace {

KeySelectionInput random_input(Xoshiro256& rng, int n) {
  KeySelectionInput in;
  std::uint64_t ssum = 0, qsum = 0;
  for (int i = 0; i < n; ++i) {
    KeyLoad k{.key = static_cast<KeyId>(i),
              .stored = 1 + rng.next_below(200),
              .queued = rng.next_below(100)};
    ssum += k.stored;
    qsum += k.queued;
    in.keys.push_back(k);
  }
  in.src = {.stored = ssum, .queued = qsum};
  in.dst = {.stored = rng.next_below(50), .queued = rng.next_below(20)};
  return in;
}

TEST(OptimalBruteforce, RejectsLargeInputs) {
  KeySelectionInput in;
  in.keys.resize(25);
  EXPECT_THROW(optimal_fit_bruteforce(in), std::invalid_argument);
}

TEST(OptimalBruteforce, EmptyAndInfeasible) {
  KeySelectionInput in;
  in.src = {.stored = 1, .queued = 1};
  in.dst = {.stored = 10, .queued = 10};
  in.keys = {{.key = 1, .stored = 1, .queued = 1}};
  EXPECT_TRUE(optimal_fit_bruteforce(in).selection.empty());
}

TEST(OptimalBruteforce, FindsExactOptimumOnTinyInstance) {
  KeySelectionInput in;
  in.src = {.stored = 100, .queued = 100};  // load 10000
  in.dst = {.stored = 0, .queued = 0};
  in.keys = {
      {.key = 1, .stored = 40, .queued = 40},
      {.key = 2, .stored = 30, .queued = 30},
      {.key = 3, .stored = 30, .queued = 30},
  };
  // F_k = 100*q + 100*s: F1 = 8000, F2 = F3 = 6000. Gap = 10000.
  // Best feasible (sum < 10000): {k1} with 8000 (k2+k3 = 12000 > gap).
  const auto res = optimal_fit_bruteforce(in);
  ASSERT_EQ(res.selection.size(), 1u);
  EXPECT_EQ(res.selection[0].key, 1u);
  EXPECT_DOUBLE_EQ(res.total_benefit, 8000.0);
}

TEST(OptimalBruteforce, BeatsOrMatchesGreedyByBenefit) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const auto in = random_input(rng, 12);
    const auto greedy = greedy_fit(in);
    const auto optimal = optimal_fit_bruteforce(in);
    EXPECT_GE(optimal.total_benefit, greedy.total_benefit - 1e-9)
        << "trial " << trial;
  }
}

TEST(OptimalDp, FeasibleAndNearBruteforce) {
  Xoshiro256 rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto in = random_input(rng, 14);
    const double gap = in.src.load() - in.dst.load();
    const auto bf = optimal_fit_bruteforce(in);
    const auto dp = optimal_fit_dp(in, 20'000);
    // DP is feasible...
    EXPECT_LT(dp.total_benefit, std::max(gap, 0.0) + 1e-9);
    // ...and within the quantization error of the true optimum.
    if (bf.total_benefit > 0) {
      EXPECT_GE(dp.total_benefit, bf.total_benefit * 0.98)
          << "trial " << trial;
    }
  }
}

TEST(OptimalDp, ZeroResolutionIsEmpty) {
  Xoshiro256 rng(5);
  const auto in = random_input(rng, 8);
  EXPECT_TRUE(optimal_fit_dp(in, 0).selection.empty());
}

TEST(OptimalDp, HandlesManyKeys) {
  Xoshiro256 rng(31);
  const auto in = random_input(rng, 300);
  const auto dp = optimal_fit_dp(in, 5'000);
  const double gap = in.src.load() - in.dst.load();
  EXPECT_LE(dp.total_benefit, gap);
  // With 300 keys the gap should be almost perfectly fillable.
  EXPECT_GT(dp.total_benefit, 0.8 * gap);
}

TEST(GreedyApproximationGap, GreedyIsCloseToOptimal) {
  // Quantify the claim of Section IV-A: GreedyFit is "good enough".
  Xoshiro256 rng(41);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto in = random_input(rng, 16);
    const auto greedy = greedy_fit(in);
    const auto optimal = optimal_fit_bruteforce(in);
    if (optimal.total_benefit <= 0) continue;
    worst_ratio = std::min(
        worst_ratio, greedy.total_benefit / optimal.total_benefit);
  }
  // Greedy by factor can be suboptimal at gap-filling, but not wildly.
  EXPECT_GT(worst_ratio, 0.4);
}

}  // namespace
}  // namespace fastjoin
