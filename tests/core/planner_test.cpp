#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fastjoin {
namespace {

TEST(Planner, BalancedClusterNoMigration) {
  std::vector<InstanceLoad> loads(4, {.stored = 100, .queued = 100});
  PlannerConfig cfg;
  cfg.theta = 2.2;
  EXPECT_FALSE(pick_migration_pair(loads, cfg).has_value());
}

TEST(Planner, PicksHeaviestAndLightest) {
  std::vector<InstanceLoad> loads{
      {.stored = 100, .queued = 100},  // 10000
      {.stored = 300, .queued = 100},  // 30000 -> heaviest
      {.stored = 50, .queued = 100},   // 5000  -> lightest
      {.stored = 120, .queued = 100},  // 12000
  };
  PlannerConfig cfg;
  cfg.theta = 2.2;
  const auto pair = pick_migration_pair(loads, cfg);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->src, 1u);
  EXPECT_EQ(pair->dst, 2u);
  EXPECT_DOUBLE_EQ(pair->li, 6.0);
}

TEST(Planner, ThresholdIsStrict) {
  std::vector<InstanceLoad> loads{
      {.stored = 22, .queued = 100},  // 2200
      {.stored = 10, .queued = 100},  // 1000 -> LI = 2.2 exactly
  };
  PlannerConfig cfg;
  cfg.theta = 2.2;
  EXPECT_FALSE(pick_migration_pair(loads, cfg).has_value());
  cfg.theta = 2.1999;
  EXPECT_TRUE(pick_migration_pair(loads, cfg).has_value());
}

TEST(Planner, SingleInstanceNeverMigrates) {
  std::vector<InstanceLoad> loads{{.stored = 1000, .queued = 1000}};
  PlannerConfig cfg;
  EXPECT_FALSE(pick_migration_pair(loads, cfg).has_value());
}

TEST(Planner, AllIdleNoMigration) {
  // Every load 0: LI floored to 1, below any theta > 1.
  std::vector<InstanceLoad> loads(4);
  PlannerConfig cfg;
  cfg.theta = 2.0;
  EXPECT_FALSE(pick_migration_pair(loads, cfg).has_value());
}

TEST(Planner, IdleLightestUsesFloor) {
  std::vector<InstanceLoad> loads{
      {.stored = 1000, .queued = 1000},  // 1e6
      {.stored = 0, .queued = 0},        // 0 -> floored
  };
  PlannerConfig cfg;
  cfg.theta = 2.0;
  cfg.floor_eps = 1.0;
  const auto pair = pick_migration_pair(loads, cfg);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->li, 1e6);
  EXPECT_EQ(pair->dst, 1u);
}

TEST(Planner, SelectKeysDispatchesToGreedy) {
  KeySelectionInput in;
  in.src = {.stored = 1000, .queued = 500};
  in.dst = {.stored = 10, .queued = 5};
  in.keys = {{.key = 1, .stored = 100, .queued = 50},
             {.key = 2, .stored = 200, .queued = 100}};
  PlannerConfig cfg;
  cfg.selector = KeySelectorKind::kGreedyFit;
  const auto g = select_keys(in, cfg);
  EXPECT_FALSE(g.selection.empty());
  cfg.selector = KeySelectorKind::kSAFit;
  const auto s = select_keys(in, cfg);
  EXPECT_LE(s.total_benefit, in.src.load() - in.dst.load());
}

}  // namespace
}  // namespace fastjoin
