#include "core/sgr.hpp"

#include <gtest/gtest.h>

namespace fastjoin {
namespace {

TEST(Sgr, Eq12MatchesClosedForm) {
  SgrParams p{.tuple_bytes = 48.0, .stat_bytes = 24.0};
  // SGR = 48*1000 / (48*1000 + 24*100) = 48000/50400
  EXPECT_NEAR(scaling_gain_ratio(1000, 100, p), 48000.0 / 50400.0, 1e-12);
}

TEST(Sgr, Eq13EquivalentToEq12) {
  SgrParams p;
  const std::uint64_t tuples = 140'000;
  const std::uint64_t keys = 10'000;
  const double c = static_cast<double>(tuples) / keys;
  EXPECT_NEAR(scaling_gain_ratio(tuples, keys, p),
              scaling_gain_ratio_c(c, p), 1e-12);
}

TEST(Sgr, PaperClaimCAbove10GivesSgrAbove09) {
  // Section IV-C: "when c is larger than 10, the value of SGR is larger
  // than 0.9". Holds whenever chi_k <= chi_t.
  SgrParams p{.tuple_bytes = 48.0, .stat_bytes = 48.0};
  EXPECT_GT(scaling_gain_ratio_c(10.0, p), 0.9);
}

TEST(Sgr, PaperDatasetValues) {
  SgrParams p;
  // Passenger stream: c = 14 -> well above 0.9.
  EXPECT_GT(scaling_gain_ratio_c(14.0, p), 0.9);
  // Taxi stream: c > 10^4 -> essentially 1.
  EXPECT_GT(scaling_gain_ratio_c(1e4, p), 0.9999);
}

TEST(Sgr, MonotoneInC) {
  SgrParams p;
  double prev = 0.0;
  for (double c = 1.0; c <= 1e6; c *= 10) {
    const double s = scaling_gain_ratio_c(c, p);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Sgr, ZeroTuplesDefined) {
  EXPECT_GT(scaling_gain_ratio(0, 10), -1e-9);
  EXPECT_LT(scaling_gain_ratio(0, 10), 1e-9);
}

}  // namespace
}  // namespace fastjoin
