#include "core/load_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fastjoin {
namespace {

TEST(LoadModel, Eq1LoadIsProduct) {
  InstanceLoad l{.stored = 1000, .queued = 50};
  EXPECT_DOUBLE_EQ(l.load(), 50'000.0);
}

TEST(LoadModel, LoadHandlesHugeCounts) {
  // Products overflow u64 at realistic scales; load() must not.
  InstanceLoad l{.stored = 5'000'000'000ULL, .queued = 5'000'000'000ULL};
  EXPECT_DOUBLE_EQ(l.load(), 2.5e19);
}

TEST(LoadModel, Eq2LoadImbalance) {
  std::vector<InstanceLoad> loads{
      {.stored = 100, .queued = 10},  // 1000
      {.stored = 50, .queued = 10},   // 500
      {.stored = 200, .queued = 20},  // 4000
  };
  EXPECT_DOUBLE_EQ(load_imbalance(loads), 8.0);
}

TEST(LoadModel, LiAtLeastOneAndFloored) {
  std::vector<InstanceLoad> loads{{.stored = 0, .queued = 0},
                                  {.stored = 10, .queued = 10}};
  const double li = load_imbalance(loads, 1.0);
  EXPECT_DOUBLE_EQ(li, 100.0);
  EXPECT_DOUBLE_EQ(load_imbalance({}), 1.0);
}

TEST(LoadModel, Eq5RemovalLoad) {
  InstanceLoad src{.stored = 100, .queued = 40};
  KeyLoad k{.key = 1, .stored = 30, .queued = 10};
  // (100-30) * (40-10) = 2100
  EXPECT_DOUBLE_EQ(load_after_removal(src, k), 2100.0);
}

TEST(LoadModel, Eq6InsertionLoad) {
  InstanceLoad dst{.stored = 20, .queued = 5};
  KeyLoad k{.key = 1, .stored = 30, .queued = 10};
  // (20+30) * (5+10) = 750
  EXPECT_DOUBLE_EQ(load_after_insertion(dst, k), 750.0);
}

TEST(LoadModel, Eq8BenefitMatchesDefinition7) {
  // F_k must equal (L_i - L_j) - (L'_i - L'_j) exactly (Eq. 7 = Eq. 8).
  InstanceLoad src{.stored = 100, .queued = 40};
  InstanceLoad dst{.stored = 20, .queued = 5};
  KeyLoad k{.key = 1, .stored = 30, .queued = 10};
  const double before = src.load() - dst.load();
  const double after = load_after_removal(src, k) -
                       load_after_insertion(dst, k);
  EXPECT_DOUBLE_EQ(migration_benefit(src, dst, k), before - after);
  // And the closed form: (100+20)*10 + (40+5)*30 = 1200 + 1350 = 2550.
  EXPECT_DOUBLE_EQ(migration_benefit(src, dst, k), 2550.0);
}

TEST(LoadModel, BenefitAsymmetry) {
  // The paper's observation: the load removed from the source is not the
  // load added to the target.
  InstanceLoad src{.stored = 1000, .queued = 100};
  InstanceLoad dst{.stored = 10, .queued = 1};
  KeyLoad k{.key = 1, .stored = 100, .queued = 20};
  const double removed = src.load() - load_after_removal(src, k);
  const double added = load_after_insertion(dst, k) - dst.load();
  EXPECT_NE(removed, added);
}

TEST(LoadModel, KeyFactorDefinition2) {
  InstanceLoad src{.stored = 100, .queued = 40};
  InstanceLoad dst{.stored = 20, .queued = 5};
  KeyLoad k{.key = 1, .stored = 30, .queued = 10};
  EXPECT_DOUBLE_EQ(migration_key_factor(src, dst, k), 2550.0 / 30.0);
}

TEST(LoadModel, ZeroStoredKeyHasInfiniteFactor) {
  InstanceLoad src{.stored = 100, .queued = 40};
  InstanceLoad dst{.stored = 20, .queued = 5};
  KeyLoad k{.key = 1, .stored = 0, .queued = 10};
  EXPECT_TRUE(std::isinf(migration_key_factor(src, dst, k)));
}

TEST(LoadModel, Eq9TelescopesExactly) {
  // Delta L after migrating a SET of keys must equal
  // L_i - L_j - sum(F_k) with F_k computed from the INITIAL aggregates.
  InstanceLoad src{.stored = 500, .queued = 200};
  InstanceLoad dst{.stored = 100, .queued = 30};
  std::vector<KeyLoad> sel{
      {.key = 1, .stored = 50, .queued = 20},
      {.key = 2, .stored = 30, .queued = 40},
      {.key = 3, .stored = 5, .queued = 1},
  };
  double sum_f = 0.0;
  for (const auto& k : sel) sum_f += migration_benefit(src, dst, k);
  const double expected = src.load() - dst.load() - sum_f;
  EXPECT_DOUBLE_EQ(delta_after_migration(src, dst, sel), expected);
}

TEST(LoadModel, ApplyMigrationMovesCounts) {
  InstanceLoad src{.stored = 500, .queued = 200};
  InstanceLoad dst{.stored = 100, .queued = 30};
  std::vector<KeyLoad> sel{{.key = 1, .stored = 50, .queued = 20}};
  apply_migration(src, dst, sel);
  EXPECT_EQ(src.stored, 450u);
  EXPECT_EQ(src.queued, 180u);
  EXPECT_EQ(dst.stored, 150u);
  EXPECT_EQ(dst.queued, 50u);
}

}  // namespace
}  // namespace fastjoin
