#include "core/greedy_fit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace fastjoin {
namespace {

KeySelectionInput skewed_input() {
  KeySelectionInput in;
  in.src = {.stored = 1000, .queued = 500};  // load 500k
  in.dst = {.stored = 100, .queued = 50};    // load 5k
  in.keys = {
      {.key = 1, .stored = 400, .queued = 200},  // the monster key
      {.key = 2, .stored = 100, .queued = 100},
      {.key = 3, .stored = 100, .queued = 50},
      {.key = 4, .stored = 200, .queued = 50},
      {.key = 5, .stored = 200, .queued = 100},
  };
  return in;
}

TEST(GreedyFit, EmptyKeysYieldEmptySelection) {
  KeySelectionInput in;
  in.src = {.stored = 10, .queued = 10};
  in.dst = {.stored = 1, .queued = 1};
  const auto res = greedy_fit(in);
  EXPECT_TRUE(res.selection.empty());
  EXPECT_EQ(res.tuples_moved, 0u);
}

TEST(GreedyFit, SelectsSomethingOnSkewedInput) {
  const auto res = greedy_fit(skewed_input());
  EXPECT_FALSE(res.selection.empty());
  EXPECT_GT(res.total_benefit, 0.0);
}

TEST(GreedyFit, MaintainsEq9Invariant) {
  // Delta L = L'_i - L'_j must stay positive: the target may never end
  // up heavier than the source (Alg. 1's admission condition).
  const auto in = skewed_input();
  const auto res = greedy_fit(in);
  EXPECT_GT(delta_after_migration(in.src, in.dst, res.selection), 0.0);
  EXPECT_GT(res.predicted_src_load, res.predicted_dst_load);
}

TEST(GreedyFit, ReducesTheGap) {
  const auto in = skewed_input();
  const auto res = greedy_fit(in);
  const double gap_before = in.src.load() - in.dst.load();
  const double gap_after =
      res.predicted_src_load - res.predicted_dst_load;
  EXPECT_LT(gap_after, gap_before);
}

TEST(GreedyFit, BalancedInputSelectsNothing) {
  KeySelectionInput in;
  in.src = {.stored = 100, .queued = 100};
  in.dst = {.stored = 100, .queued = 100};
  in.keys = {{.key = 1, .stored = 50, .queued = 50}};
  const auto res = greedy_fit(in);
  EXPECT_TRUE(res.selection.empty());
}

TEST(GreedyFit, SrcLighterThanDstSelectsNothing) {
  KeySelectionInput in;
  in.src = {.stored = 10, .queued = 10};
  in.dst = {.stored = 100, .queued = 100};
  in.keys = {{.key = 1, .stored = 5, .queued = 5}};
  const auto res = greedy_fit(in);
  EXPECT_TRUE(res.selection.empty());
}

TEST(GreedyFit, ThetaGapFiltersSmallBenefits) {
  auto in = skewed_input();
  // First find the smallest admitted benefit, then raise theta_gap just
  // above it and check that key disappears.
  const auto res = greedy_fit(in);
  ASSERT_FALSE(res.selection.empty());
  double min_benefit = 1e30;
  for (const auto& k : res.selection) {
    min_benefit = std::min(min_benefit, migration_benefit(in.src, in.dst, k));
  }
  in.theta_gap = min_benefit + 1.0;
  const auto res2 = greedy_fit(in);
  EXPECT_LT(res2.selection.size(), res.selection.size());
  for (const auto& k : res2.selection) {
    EXPECT_GE(migration_benefit(in.src, in.dst, k), in.theta_gap);
  }
}

TEST(GreedyFit, PrefersHighFactorKeys) {
  KeySelectionInput in;
  in.src = {.stored = 1000, .queued = 1000};
  in.dst = {.stored = 0, .queued = 0};
  // Key 1: tiny storage, huge probe traffic -> enormous factor.
  // Key 2: huge storage, no probe traffic -> small factor.
  in.keys = {
      {.key = 1, .stored = 1, .queued = 500},
      {.key = 2, .stored = 999, .queued = 500},
  };
  const auto res = greedy_fit(in);
  ASSERT_FALSE(res.selection.empty());
  EXPECT_EQ(res.selection.front().key, 1u);
}

TEST(GreedyFit, DeterministicTieBreak) {
  KeySelectionInput in;
  in.src = {.stored = 100, .queued = 100};
  in.dst = {.stored = 0, .queued = 0};
  in.keys = {
      {.key = 7, .stored = 10, .queued = 10},
      {.key = 3, .stored = 10, .queued = 10},
      {.key = 5, .stored = 10, .queued = 10},
  };
  const auto a = greedy_fit(in);
  std::reverse(in.keys.begin(), in.keys.end());
  const auto b = greedy_fit(in);
  ASSERT_EQ(a.selection.size(), b.selection.size());
  for (std::size_t i = 0; i < a.selection.size(); ++i) {
    EXPECT_EQ(a.selection[i].key, b.selection[i].key);
  }
}

TEST(GreedyFit, ResultBookkeepingConsistent) {
  const auto in = skewed_input();
  const auto res = greedy_fit(in);
  std::uint64_t tuples = 0;
  double benefit = 0.0;
  for (const auto& k : res.selection) {
    tuples += k.stored;
    benefit += migration_benefit(in.src, in.dst, k);
  }
  EXPECT_EQ(res.tuples_moved, tuples);
  EXPECT_DOUBLE_EQ(res.total_benefit, benefit);
  InstanceLoad src = in.src, dst = in.dst;
  apply_migration(src, dst, res.selection);
  EXPECT_DOUBLE_EQ(res.predicted_src_load, src.load());
  EXPECT_DOUBLE_EQ(res.predicted_dst_load, dst.load());
}

// Property sweep: on random instances GreedyFit never violates Eq. 9 and
// never picks a key twice.
class GreedyFitPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyFitPropertyTest, RandomInstancesKeepInvariants) {
  Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    KeySelectionInput in;
    const int n = 1 + static_cast<int>(rng.next_below(60));
    std::uint64_t stored_sum = 0, queued_sum = 0;
    for (int i = 0; i < n; ++i) {
      KeyLoad k;
      k.key = static_cast<KeyId>(i);
      k.stored = rng.next_below(1000);
      k.queued = rng.next_below(500);
      stored_sum += k.stored;
      queued_sum += k.queued;
      in.keys.push_back(k);
    }
    in.src = {.stored = stored_sum, .queued = queued_sum};
    in.dst = {.stored = rng.next_below(200), .queued = rng.next_below(100)};

    const auto res = greedy_fit(in);
    std::set<KeyId> seen;
    for (const auto& k : res.selection) {
      EXPECT_TRUE(seen.insert(k.key).second) << "duplicate key selected";
    }
    if (!res.selection.empty()) {
      EXPECT_GT(delta_after_migration(in.src, in.dst, res.selection), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyFitPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace fastjoin
