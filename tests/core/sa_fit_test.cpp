#include "core/sa_fit.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/greedy_fit.hpp"

namespace fastjoin {
namespace {

KeySelectionInput skewed_input() {
  KeySelectionInput in;
  in.src = {.stored = 1000, .queued = 500};
  in.dst = {.stored = 100, .queued = 50};
  in.keys = {
      {.key = 1, .stored = 400, .queued = 200},
      {.key = 2, .stored = 100, .queued = 100},
      {.key = 3, .stored = 100, .queued = 50},
      {.key = 4, .stored = 200, .queued = 50},
      {.key = 5, .stored = 200, .queued = 100},
  };
  return in;
}

TEST(SAFit, EmptyInput) {
  KeySelectionInput in;
  in.src = {.stored = 10, .queued = 10};
  in.dst = {.stored = 1, .queued = 1};
  const auto res = sa_fit(in);
  EXPECT_TRUE(res.selection.empty());
}

TEST(SAFit, RespectsFeasibilityBound) {
  const auto in = skewed_input();
  const auto res = sa_fit(in);
  // Benefit(SK) <= L_i - L_j (Alg. 3 line 22).
  EXPECT_LE(res.total_benefit, in.src.load() - in.dst.load());
}

TEST(SAFit, SelectsSomethingUseful) {
  const auto res = sa_fit(skewed_input());
  EXPECT_FALSE(res.selection.empty());
  EXPECT_GT(res.total_benefit, 0.0);
}

TEST(SAFit, DeterministicGivenSeed) {
  const auto in = skewed_input();
  SAFitParams p;
  p.seed = 123;
  const auto a = sa_fit(in, p);
  const auto b = sa_fit(in, p);
  ASSERT_EQ(a.selection.size(), b.selection.size());
  for (std::size_t i = 0; i < a.selection.size(); ++i) {
    EXPECT_EQ(a.selection[i].key, b.selection[i].key);
  }
}

TEST(SAFit, NoDuplicateKeys) {
  const auto res = sa_fit(skewed_input());
  std::set<KeyId> seen;
  for (const auto& k : res.selection) {
    EXPECT_TRUE(seen.insert(k.key).second);
  }
}

TEST(SAFit, InfeasibleGapSelectsNothing) {
  KeySelectionInput in;
  in.src = {.stored = 10, .queued = 10};   // load 100
  in.dst = {.stored = 50, .queued = 50};   // load 2500 > src
  in.keys = {{.key = 1, .stored = 5, .queued = 5}};
  const auto res = sa_fit(in);
  EXPECT_TRUE(res.selection.empty());
}

TEST(SAFit, QualityComparableToGreedy) {
  // The paper's Fig. 14 conclusion: SAFit and GreedyFit perform about
  // the same. Check SAFit's per-tuple value is at least half of
  // GreedyFit's on random instances (SA is stochastic; exact parity is
  // not required).
  Xoshiro256 rng(99);
  int sa_not_worse = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    KeySelectionInput in;
    const int n = 5 + static_cast<int>(rng.next_below(30));
    std::uint64_t ssum = 0, qsum = 0;
    for (int i = 0; i < n; ++i) {
      KeyLoad k{.key = static_cast<KeyId>(i),
                .stored = 1 + rng.next_below(500),
                .queued = rng.next_below(300)};
      ssum += k.stored;
      qsum += k.queued;
      in.keys.push_back(k);
    }
    in.src = {.stored = ssum, .queued = qsum};
    in.dst = {.stored = rng.next_below(100), .queued = rng.next_below(50)};

    const auto g = greedy_fit(in);
    SAFitParams p;
    p.seed = 1000 + t;
    p.iters_per_temp = 200;
    const auto s = sa_fit(in, p);
    if (g.total_benefit <= 0.0) {
      ++sa_not_worse;
      continue;
    }
    const double g_value =
        g.tuples_moved ? g.total_benefit / g.tuples_moved : 0.0;
    const double s_value =
        s.tuples_moved ? s.total_benefit / s.tuples_moved : 0.0;
    if (s_value >= 0.5 * g_value) ++sa_not_worse;
  }
  EXPECT_GE(sa_not_worse, trials * 3 / 4);
}

TEST(SAFit, ExtremeParametersStayFeasible) {
  const auto in = skewed_input();
  for (SAFitParams p :
       {SAFitParams{.initial_temp = 1e-2, .min_temp = 1e-3, .cooling = 0.5,
                    .iters_per_temp = 1, .seed = 7},
        SAFitParams{.initial_temp = 10.0, .min_temp = 1e-4, .cooling = 0.99,
                    .iters_per_temp = 300, .seed = 8}}) {
    const auto res = sa_fit(in, p);
    EXPECT_LE(res.total_benefit, in.src.load() - in.dst.load());
    std::set<KeyId> seen;
    for (const auto& k : res.selection) {
      EXPECT_TRUE(seen.insert(k.key).second);
    }
  }
}

}  // namespace
}  // namespace fastjoin
