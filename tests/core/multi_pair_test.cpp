#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/planner.hpp"

namespace fastjoin {
namespace {

std::vector<InstanceLoad> ramp_loads(int n) {
  // Load of instance i = (i+1)^2 * 100: a clean heavy tail.
  std::vector<InstanceLoad> loads;
  for (int i = 0; i < n; ++i) {
    loads.push_back({.stored = static_cast<std::uint64_t>((i + 1) * 10),
                     .queued = static_cast<std::uint64_t>((i + 1) * 10)});
  }
  return loads;
}

TEST(MultiPair, SinglePairMatchesClassicPick) {
  const auto loads = ramp_loads(8);
  PlannerConfig cfg;
  cfg.theta = 2.0;
  const auto single = pick_migration_pair(loads, cfg);
  const auto multi = pick_migration_pairs(loads, cfg, 1);
  ASSERT_TRUE(single.has_value());
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_EQ(multi[0].src, single->src);
  EXPECT_EQ(multi[0].dst, single->dst);
  EXPECT_DOUBLE_EQ(multi[0].li, single->li);
}

TEST(MultiPair, PairsAreDisjointAndOrdered) {
  const auto loads = ramp_loads(10);
  PlannerConfig cfg;
  cfg.theta = 1.5;
  const auto pairs = pick_migration_pairs(loads, cfg, 3);
  ASSERT_GE(pairs.size(), 2u);
  std::set<InstanceId> used;
  for (const auto& p : pairs) {
    EXPECT_TRUE(used.insert(p.src).second);
    EXPECT_TRUE(used.insert(p.dst).second);
  }
  // Heaviest-first: successive pairs have non-increasing LI.
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_LE(pairs[i].li, pairs[i - 1].li);
  }
  // First pair = heaviest (9) with lightest (0).
  EXPECT_EQ(pairs[0].src, 9u);
  EXPECT_EQ(pairs[0].dst, 0u);
  EXPECT_EQ(pairs[1].src, 8u);
  EXPECT_EQ(pairs[1].dst, 1u);
}

TEST(MultiPair, StopsAtThetaCutoff) {
  // Only the extreme pair exceeds theta; inner pairs are balanced.
  std::vector<InstanceLoad> loads{
      {.stored = 100, .queued = 100},  // 10000
      {.stored = 32, .queued = 32},    // 1024
      {.stored = 31, .queued = 31},    // 961
      {.stored = 10, .queued = 10},    // 100
  };
  PlannerConfig cfg;
  cfg.theta = 5.0;
  const auto pairs = pick_migration_pairs(loads, cfg, 2);
  ASSERT_EQ(pairs.size(), 1u);  // 1024/961 ~ 1.07 <= 5 stops the scan
  EXPECT_EQ(pairs[0].src, 0u);
  EXPECT_EQ(pairs[0].dst, 3u);
}

TEST(MultiPair, BalancedReturnsNothing) {
  std::vector<InstanceLoad> loads(6, {.stored = 50, .queued = 50});
  PlannerConfig cfg;
  cfg.theta = 1.5;
  EXPECT_TRUE(pick_migration_pairs(loads, cfg, 3).empty());
}

TEST(MultiPair, CappedByHalfTheInstances) {
  const auto loads = ramp_loads(4);
  PlannerConfig cfg;
  cfg.theta = 1.01;
  const auto pairs = pick_migration_pairs(loads, cfg, 100);
  EXPECT_LE(pairs.size(), 2u);
}

TEST(MultiPair, ZeroMaxPairsIsEmpty) {
  const auto loads = ramp_loads(6);
  PlannerConfig cfg;
  EXPECT_TRUE(pick_migration_pairs(loads, cfg, 0).empty());
}

}  // namespace
}  // namespace fastjoin
