#include "core/random_fit.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "core/greedy_fit.hpp"

namespace fastjoin {
namespace {

KeySelectionInput skewed_input() {
  KeySelectionInput in;
  in.src = {.stored = 1000, .queued = 500};
  in.dst = {.stored = 100, .queued = 50};
  in.keys = {
      {.key = 1, .stored = 400, .queued = 200},
      {.key = 2, .stored = 100, .queued = 100},
      {.key = 3, .stored = 100, .queued = 50},
      {.key = 4, .stored = 200, .queued = 50},
      {.key = 5, .stored = 200, .queued = 100},
  };
  return in;
}

TEST(RandomFit, StaysFeasible) {
  const auto in = skewed_input();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandomFitParams p;
    p.seed = seed;
    const auto res = random_fit(in, p);
    if (!res.selection.empty()) {
      EXPECT_GT(delta_after_migration(in.src, in.dst, res.selection), 0.0)
          << "seed " << seed;
    }
    std::set<KeyId> seen;
    for (const auto& k : res.selection) {
      EXPECT_TRUE(seen.insert(k.key).second);
    }
  }
}

TEST(RandomFit, EmptyAndInfeasibleInputs) {
  KeySelectionInput in;
  in.src = {.stored = 1, .queued = 1};
  in.dst = {.stored = 100, .queued = 100};
  in.keys = {{.key = 1, .stored = 1, .queued = 1}};
  EXPECT_TRUE(random_fit(in).selection.empty());
  in.keys.clear();
  EXPECT_TRUE(random_fit(in).selection.empty());
}

TEST(RandomFit, RespectsMaxFraction) {
  KeySelectionInput in;
  in.src = {.stored = 10'000, .queued = 10'000};
  in.dst = {.stored = 0, .queued = 0};
  for (int i = 0; i < 100; ++i) {
    in.keys.push_back({static_cast<KeyId>(i), 100, 100});
  }
  RandomFitParams p;
  p.max_fraction = 0.1;
  const auto res = random_fit(in, p);
  EXPECT_LE(res.selection.size(), 10u);
}

TEST(RandomFit, NaiveModeIgnoresFeasibility) {
  // The paper's Section III-B strawman: with enough hot keys selected
  // blindly, the target can end up heavier than the source.
  KeySelectionInput in;
  in.src = {.stored = 1000, .queued = 1000};
  in.dst = {.stored = 900, .queued = 900};
  for (int i = 0; i < 20; ++i) {
    in.keys.push_back({static_cast<KeyId>(i), 50, 50});
  }
  RandomFitParams p;
  p.naive = true;
  p.max_fraction = 1.0;
  bool violated = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    p.seed = seed;
    const auto res = random_fit(in, p);
    if (!res.selection.empty() &&
        delta_after_migration(in.src, in.dst, res.selection) < 0.0) {
      violated = true;
    }
  }
  EXPECT_TRUE(violated);
}

TEST(RandomFit, DeterministicPerSeed) {
  const auto in = skewed_input();
  RandomFitParams p;
  p.seed = 5;
  const auto a = random_fit(in, p);
  const auto b = random_fit(in, p);
  ASSERT_EQ(a.selection.size(), b.selection.size());
  for (std::size_t i = 0; i < a.selection.size(); ++i) {
    EXPECT_EQ(a.selection[i].key, b.selection[i].key);
  }
}

TEST(RandomFit, WorsePerTupleValueThanGreedyOnAverage) {
  // The paper's Section III-B point: random selection migrates tuples
  // far less efficiently than GreedyFit's factor ordering.
  Xoshiro256 rng(3);
  double greedy_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    KeySelectionInput in;
    std::uint64_t ssum = 0, qsum = 0;
    for (int i = 0; i < 40; ++i) {
      KeyLoad k{static_cast<KeyId>(i), 1 + rng.next_below(500),
                rng.next_below(300)};
      ssum += k.stored;
      qsum += k.queued;
      in.keys.push_back(k);
    }
    in.src = {ssum, qsum};
    in.dst = {ssum / 30, qsum / 30};
    const auto g = greedy_fit(in);
    RandomFitParams p;
    p.seed = 100 + trial;
    const auto r = random_fit(in, p);
    auto value = [](const KeySelectionResult& res) {
      return res.tuples_moved
                 ? res.total_benefit /
                       static_cast<double>(res.tuples_moved)
                 : 0.0;
    };
    greedy_total += value(g);
    random_total += value(r);
  }
  EXPECT_GT(greedy_total, random_total * 1.2);
}

}  // namespace
}  // namespace fastjoin
