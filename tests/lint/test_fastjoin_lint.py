#!/usr/bin/env python3
"""Fixture tests for scripts/lint/fastjoin_lint.py.

Each rule gets three assertions: it FIRES on a seeded-violation
fixture, it stays QUIET on a clean fixture, and an inline
`fastjoin-lint: allow(<rule>)` SUPPRESSES it. On top of that the
baseline machinery is round-tripped (baselined findings pass, new ones
still fail) and the shipped tree is asserted clean under the committed
baseline — so tier-1 ctest gates lint cleanliness.

Run directly or via ctest (registered in tests/CMakeLists.txt).
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
LINT = os.path.join(REPO, "scripts", "lint", "fastjoin_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint", "fixtures")
BASELINE = os.path.join(REPO, "scripts", "lint",
                        "fastjoin_lint_baseline.json")

failures = []


def run_lint(*args):
    """Run the linter; returns (exit_code, findings_list)."""
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json",
                                     delete=False) as tmp:
        out_path = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, LINT, "--json", out_path, *args],
            capture_output=True, text=True)
        with open(out_path, encoding="utf-8") as f:
            findings = json.load(f)["findings"]
        return proc.returncode, findings, proc.stdout + proc.stderr
    finally:
        os.unlink(out_path)


def check(label, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {label}")
    if not cond:
        failures.append(label)
        if detail:
            print(f"       {detail}")


def fixture(name):
    return os.path.join(FIXTURES, name)


def expect(name, rule, count, exact_lines=None):
    code, findings, log = run_lint(fixture(name))
    got = [f for f in findings if f["rule"] == rule]
    other = [f for f in findings if f["rule"] != rule]
    check(f"{name}: {rule} fires {count}x", len(got) == count,
          f"got {len(got)}: {json.dumps(got, indent=2)}\n{log}")
    check(f"{name}: no other rules fire", not other,
          json.dumps(other, indent=2))
    check(f"{name}: exit {'1' if count else '0'}",
          code == (1 if count else 0), f"exit={code}\n{log}")
    if exact_lines is not None:
        check(f"{name}: findings on lines {exact_lines}",
              sorted(f["line"] for f in got) == sorted(exact_lines),
              f"got lines {[f['line'] for f in got]}")


def main():
    # --- atomic-order -----------------------------------------------
    expect("atomic_order_bad.cpp", "atomic-order", 9)
    expect("atomic_order_allowed.cpp", "atomic-order", 0)
    expect("atomic_order_clean.cpp", "atomic-order", 0)

    # --- hot-path-blocking ------------------------------------------
    expect("hot_path_bad.cpp", "hot-path-blocking", 4)
    expect("hot_path_region.cpp", "hot-path-blocking", 1,
           exact_lines=[10])
    expect("hot_path_allowed.cpp", "hot-path-blocking", 0)

    # --- stub-parity ------------------------------------------------
    expect("stub_parity_bad.hpp", "stub-parity", 2)
    expect("stub_parity_good.hpp", "stub-parity", 0)

    # --- banned-api -------------------------------------------------
    expect("banned_bad.cpp", "banned-api", 4)
    expect("banned_allowed.cpp", "banned-api", 0)

    # --- protocol-clock ---------------------------------------------
    expect("protocol_clock_bad.cpp", "protocol-clock", 3,
           exact_lines=[8, 9, 10])
    expect("protocol_clock_allowed.cpp", "protocol-clock", 0)
    expect("protocol_clock_untagged.cpp", "protocol-clock", 0)

    # --- net-socket -------------------------------------------------
    expect("net_socket_bad.cpp", "net-socket", 5,
           exact_lines=[2, 3, 6, 8, 9])
    expect("net_socket_tagged.cpp", "net-socket", 0)
    expect("net_socket_allowed.cpp", "net-socket", 0)

    # --- net-socket in src/server/ (serving layer) ------------------
    # Fixtures live under fixtures/src/server/ so the linter's
    # path-containment check sees them as serving-layer files.
    expect("src/server/net_socket_server_bad.cpp", "net-socket", 5,
           exact_lines=[2, 3, 6, 8, 9])
    _, sf, _ = run_lint(fixture("src/server/net_socket_server_bad.cpp"))
    check("server fixture: findings carry the serving-layer hint",
          all("serving front door" in f["message"] for f in sf),
          json.dumps(sf, indent=2))
    # The FASTJOIN_NET_FILE tag is reserved for src/net/ itself — a
    # serving-layer file claiming it is a finding, not an exemption.
    expect("src/server/net_socket_server_tagged.cpp", "net-socket", 1,
           exact_lines=[1])
    _, tf, _ = run_lint(
        fixture("src/server/net_socket_server_tagged.cpp"))
    check("server tag abuse: message names the serving layer",
          all("serving layer rides on src/net" in f["message"]
              for f in tf),
          json.dumps(tf, indent=2))
    expect("src/server/net_socket_server_clean.cpp", "net-socket", 0)

    # --- parse-surface ----------------------------------------------
    expect("parse_surface_bad.cpp", "parse-surface", 6,
           exact_lines=[16, 17, 18, 19, 20, 21])
    expect("parse_surface_clean.cpp", "parse-surface", 0)
    expect("parse_surface_allowed.cpp", "parse-surface", 0)
    expect("parse_surface_untagged.cpp", "parse-surface", 0)

    # --- parse-surface: decode/fuzz-harness parity ------------------
    # A tagged header declaring a decoder no harness names fails; one
    # whose type appears in tests/fuzz/ passes. Pointing --fuzz-dir at
    # an empty tree flips the good fixture to failing, proving the
    # check actually reads the harness sources.
    expect("parse_surface_parity_bad.hpp", "parse-surface", 1,
           exact_lines=[14])
    _, pf, _ = run_lint(fixture("parse_surface_parity_bad.hpp"))
    check("parity fixture: message names the uncovered type",
          all("OrphanedFixtureMsg" in f["message"] for f in pf),
          json.dumps(pf, indent=2))
    expect("parse_surface_parity_good.hpp", "parse-surface", 0)
    with tempfile.TemporaryDirectory() as td:
        stub = os.path.join(td, "stub_harness.cpp")
        with open(stub, "w", encoding="utf-8") as f:
            f.write("// no message types named here\n")
        code, findings, log = run_lint(
            fixture("parse_surface_parity_good.hpp"), "--fuzz-dir", td)
        check("parity: harness tree without the type fails (exit 1)",
              code == 1 and len(findings) == 1, log)

    # --- atomic-padding ---------------------------------------------
    expect("atomic_padding_bad.cpp", "atomic-padding", 2,
           exact_lines=[11, 16])
    expect("atomic_padding_clean.cpp", "atomic-padding", 0)
    expect("atomic_padding_allowed.cpp", "atomic-padding", 0)
    expect("atomic_padding_untagged.cpp", "atomic-padding", 0)

    # --- baseline machinery -----------------------------------------
    with tempfile.TemporaryDirectory() as td:
        bl = os.path.join(td, "baseline.json")
        code, _, log = run_lint(fixture("banned_bad.cpp"),
                                "--baseline", bl, "--update-baseline")
        check("baseline: --update-baseline exits 0", code == 0, log)
        code, findings, log = run_lint(fixture("banned_bad.cpp"),
                                       "--baseline", bl)
        baselined = [f for f in findings if f["baselined"]]
        check("baseline: old findings tolerated (exit 0)", code == 0,
              log)
        check("baseline: findings marked baselined",
              len(baselined) == 4, json.dumps(findings, indent=2))
        code, _, log = run_lint(fixture("banned_bad.cpp"),
                                fixture("atomic_order_bad.cpp"),
                                "--baseline", bl)
        check("baseline: NEW findings still fail (exit 1)", code == 1,
              log)

    # --- the shipped tree is clean ----------------------------------
    code, findings, log = run_lint(os.path.join(REPO, "src"),
                                   "--baseline", BASELINE)
    fresh = [f for f in findings if not f["baselined"]]
    check("src/ tree: clean under committed baseline", code == 0,
          f"exit={code}, new findings: {json.dumps(fresh, indent=2)}")

    print(f"\n{len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
