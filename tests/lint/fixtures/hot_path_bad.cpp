// FASTJOIN_HOT_PATH
// Fixture: whole-file hot-path tag; the mutex, the lock guard and the
// allocations inside the loop must all trip hot-path-blocking.
#include <mutex>
#include <vector>

namespace fixture {

std::mutex mu;

void bad(std::vector<int>& out, int n) {
  std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < n; ++i) {
    out.push_back(i);
    auto* p = new int(i);
    delete p;
  }
}

}  // namespace fixture
