// Fixture: the same violations as atomic_order_bad.cpp, each carrying
// an inline allow() — the rule must report nothing.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int ok_load() {
  return counter.load();  // fastjoin-lint: allow(atomic-order): fixture
}

void ok_rmw() {
  // fastjoin-lint: allow(atomic-order): preceding-line form
  counter.fetch_add(1);
}

void ok_increment() {
  counter++;  // fastjoin-lint: allow(atomic-order): fixture
}

}  // namespace fixture
