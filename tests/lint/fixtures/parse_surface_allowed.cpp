// FASTJOIN_PARSE_FILE: fixture — the same violations, each justified
// with an inline allow() (e.g. a debug-only assert behind NDEBUG that
// a reviewer has signed off on).
#include <cassert>
#include <cstdint>
#include <vector>

struct ByteReader {
  bool u32(std::uint32_t& v);
  std::size_t remaining() const;
};

bool decode_fixture(ByteReader& r, std::vector<std::uint32_t>& out) {
  std::uint32_t n = 0;
  assert(r.remaining() >= 4);  // fastjoin-lint: allow(parse-surface) internal invariant, not input-dependent
  if (!r.u32(n)) return false;
  // fastjoin-lint: allow(parse-surface) result intentionally unused: probing for trailing bytes
  r.u32(n);
  if (n > r.remaining()) return false;
  out.resize(n * 1);  // fastjoin-lint: allow(parse-surface) constant factor, cannot overflow
  return true;
}
