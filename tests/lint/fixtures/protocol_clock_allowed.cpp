// FASTJOIN_PROTOCOL_FILE: fixture — same wall-clock reads, all
// justified with inline allow() annotations (telemetry, not a protocol
// wait), plus the legal patterns the rule must never flag.
#include <chrono>
#include <thread>

struct Clock {
  void sleep_for(std::chrono::nanoseconds d);
  std::chrono::nanoseconds now();
};

void protocol_wait(Clock* clk_) {
  auto t0 = std::chrono::steady_clock::now();  // fastjoin-lint: allow(protocol-clock) latency telemetry
  // fastjoin-lint: allow(protocol-clock) recovery-time telemetry
  auto t1 = std::chrono::steady_clock::now();
  clk_->sleep_for(std::chrono::microseconds(50));  // injectable: legal
  std::chrono::steady_clock::time_point tp{};  // type use only: legal
  (void)t0;
  (void)t1;
  (void)tp;
}
