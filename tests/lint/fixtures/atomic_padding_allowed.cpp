// FASTJOIN_HOT_PATH
// Fixture — same layouts as atomic_padding_bad.cpp, justified with
// inline allow() annotations (single-writer data, no contention).
#include <atomic>
#include <cstddef>
#include <cstdint>

struct SingleWriterRing {
  std::size_t mask_ = 0;
  std::atomic<bool> closed_{false};  // fastjoin-lint: allow(atomic-padding) single-writer; reader only at shutdown
  std::size_t cached_tail_ = 0;
};

struct SingleWriterCounter {
  // fastjoin-lint: allow(atomic-padding) owner thread writes both fields
  std::atomic<std::uint64_t> hits{0};
  std::uint32_t owner_tid = 0;
};
