// FASTJOIN_HOT_PATH
// Fixture — unpadded std::atomic members sharing cache lines with hot
// plain fields in a hot-path file. Both orderings (atomic-then-plain
// and plain-then-atomic) must fire.
#include <atomic>
#include <cstddef>
#include <cstdint>

struct BadRing {
  std::size_t mask_ = 0;
  std::atomic<bool> closed_{false};  // plain neighbor above: fires
  std::size_t cached_tail_ = 0;
};

struct BadCounter {
  std::atomic<std::uint64_t> hits{0};  // plain neighbor below: fires
  std::uint32_t owner_tid = 0;
};
