// Fixture: real and stub branches declare the same classes with the
// same public methods (private helpers and call sites inside inline
// bodies don't count) — stub-parity must report nothing.
#pragma once

namespace fixture {

#ifndef FASTJOIN_NO_TELEMETRY

inline int helper_call() { return 2; }

class Widget {
 public:
  Widget() = default;
  void poke() { value_ = helper_call(); }
  int value() const { return value_; }

 private:
  int only_in_real_() const { return value_; }
  int value_ = 0;
};

#else  // FASTJOIN_NO_TELEMETRY

inline int helper_call() { return 0; }

class Widget {
 public:
  Widget() = default;
  void poke() {}
  int value() const { return 0; }
};

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace fixture
