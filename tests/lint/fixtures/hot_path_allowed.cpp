// FASTJOIN_HOT_PATH
// Fixture: hot-path file whose single blocking primitive carries an
// allow() — the rule must report nothing.
#include <mutex>

namespace fixture {

// fastjoin-lint: allow(hot-path-blocking): fixture for the escape hatch
std::mutex mu;

}  // namespace fixture
