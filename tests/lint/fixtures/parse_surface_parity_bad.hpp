// FASTJOIN_PARSE_FILE: fixture — a tagged header declaring a decode
// overload for a message type no fuzz harness names. The decode-parity
// half of parse-surface must refuse to let it land uncovered.
#pragma once
#include <cstdint>
#include <vector>

namespace fastjoin::fixture {

struct OrphanedFixtureMsg {
  std::uint64_t id = 0;
};

bool decode(const std::vector<std::byte>& p, OrphanedFixtureMsg& m);

}  // namespace fastjoin::fixture
