// FASTJOIN_NET_FILE — fixture: the tag exempts the transport layer.
#include <sys/socket.h>
#include <sys/epoll.h>

int transport_write(int fd, const char* buf, int n) {
  long sent = ::send(fd, buf, static_cast<unsigned long>(n), 0);
  int ep = epoll_create1(0);
  return static_cast<int>(sent) + ep;
}
