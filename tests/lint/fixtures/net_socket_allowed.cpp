// Fixture: inline allow() suppresses the net-socket rule.
// fastjoin-lint: allow(net-socket): fixture shim includes the raw API
#include <sys/socket.h>

int poke(int fd) {
  // fastjoin-lint: allow(net-socket): deliberate raw send in fixture
  long sent = ::send(fd, "x", 1, 0);
  return static_cast<int>(sent);
}
