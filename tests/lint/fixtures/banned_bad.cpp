// Fixture: each line here trips banned-api.
#include <cstdlib>
#include <ctime>

namespace fixture {

volatile int spin_flag = 0;

int bad_prng() { return rand(); }
void bad_seed() { srand(42); }

}  // namespace fixture
