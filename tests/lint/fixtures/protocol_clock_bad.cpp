// FASTJOIN_PROTOCOL_FILE: fixture — a protocol-tagged file reading
// wall clocks and sleeping directly instead of going through the
// injectable Clock.
#include <chrono>
#include <thread>

void protocol_wait() {
  auto deadline = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  auto stamp = std::chrono::system_clock::now();
  (void)deadline;
  (void)stamp;
}
