// Fixture: the stub branch is missing Widget::extra() and the whole
// Gadget class — both must trip stub-parity.
#pragma once

namespace fixture {

#ifndef FASTJOIN_NO_TELEMETRY

class Widget {
 public:
  void poke() {}
  int extra() const { return 1; }
};

class Gadget {
 public:
  void spin() {}
};

#else  // FASTJOIN_NO_TELEMETRY

class Widget {
 public:
  void poke() {}
};

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace fixture
