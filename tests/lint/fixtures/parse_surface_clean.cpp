// FASTJOIN_PARSE_FILE: fixture — the patterns the rule must never
// flag: checked reads, division-bounded counts, compile-time asserts,
// and resize/reserve with a plain (already-bounded) identifier.
#include <cstdint>
#include <vector>

struct ByteReader {
  bool u32(std::uint32_t& v);
  std::size_t remaining() const;
};

static_assert(sizeof(std::uint32_t) == 4, "wire width");

bool decode_fixture(ByteReader& r, std::vector<std::uint32_t>& out) {
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  if (n > r.remaining() / sizeof(std::uint32_t)) return false;
  out.resize(n);
  out.reserve(n);
  std::uint32_t v = 0;
  while (r.u32(v)) out.push_back(v);
  return true;
}
