// Fixture: explicit-order atomics and non-atomic `load()`/`store()`
// methods (the InstanceLoad shape) — the rule must report nothing.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> counter{0};

// A non-atomic class whose method names collide with std::atomic's.
struct InstanceLoadLike {
  std::uint64_t load() const { return records; }
  void store(std::uint64_t v) { records = v; }
  std::uint64_t records = 0;
};

std::uint64_t clean() {
  counter.fetch_add(1, std::memory_order_relaxed);
  counter.store(7, std::memory_order_release);
  InstanceLoadLike l;
  l.store(counter.load(std::memory_order_acquire));
  // Multi-line call with the order on the continuation line.
  counter.fetch_add(2,
                    std::memory_order_relaxed);
  // A local shadowing the atomic's name is not an atomic access.
  const auto counter2 = l.load();
  return l.load() + counter2;
}

}  // namespace fixture
