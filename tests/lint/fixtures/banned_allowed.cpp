// Fixture: banned APIs with allow() escapes — must report nothing.
#include <cstdlib>
// fastjoin-lint: allow(banned-api): fixture for the escape hatch
#include <ctime>

namespace fixture {

// fastjoin-lint: allow(banned-api): fixture — MMIO-style register
volatile int hardware_reg = 0;

int ok_prng() {
  return rand();  // fastjoin-lint: allow(banned-api): fixture
}

}  // namespace fixture
