// Fixture: raw socket usage outside the net layer must be flagged.
#include <sys/socket.h>
#include <sys/epoll.h>

int leak_bytes(int fd, const char* buf, int n) {
  long sent = ::send(fd, buf, static_cast<unsigned long>(n), 0);
  char tmp[16];
  long got = ::recv(fd, tmp, sizeof(tmp), 0);
  int ep = epoll_create1(0);
  return static_cast<int>(sent + got) + ep;
}
