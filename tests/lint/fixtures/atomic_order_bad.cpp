// Fixture: every access here should trip the atomic-order rule.
#include <atomic>

namespace fixture {

std::atomic<int> counter{0};
std::atomic<bool> flag_{false};
std::atomic_flag spin = ATOMIC_FLAG_INIT;

int bad_load() { return counter.load(); }
void bad_store(int v) { counter.store(v); }
void bad_rmw() { counter.fetch_add(1); }
void bad_cas(int& e) { counter.compare_exchange_weak(e, e + 1); }
void bad_spin() { while (spin.test_and_set()) {} }
void bad_increment() { counter++; }
void bad_prefix() { ++counter; }
void bad_plus_assign() { counter += 2; }
void bad_plain_assign() { flag_ = true; }

}  // namespace fixture
