// Fixture: BEGIN/END region markers — the mutex inside the region
// trips hot-path-blocking; the one after END does not. Allocation in a
// loop outside any region is also fine.
#include <mutex>
#include <vector>

namespace fixture {

// FASTJOIN_HOT_PATH_BEGIN
std::mutex in_region_mu;  // finding
// FASTJOIN_HOT_PATH_END

std::mutex out_of_region_mu;  // no finding

void cold(std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) out.push_back(i);  // no finding
}

}  // namespace fixture
