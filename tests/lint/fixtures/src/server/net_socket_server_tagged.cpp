// FASTJOIN_NET_FILE -- invalid claim: the serving layer never gets the
// raw-socket exemption; it rides on src/net by design.
#include <sys/socket.h>

int open_raw() { return ::socket(2, 1, 0); }
