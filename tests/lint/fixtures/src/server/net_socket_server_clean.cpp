// Serving-layer fixture: the clean shape -- everything through src/net.
#include "net/connection.hpp"
#include "net/event_loop.hpp"

namespace fastjoin::server {
int pump(net::EventLoop& loop) { return loop.run_once(0); }
}  // namespace fastjoin::server
