// Serving-layer fixture: raw sockets must not appear under src/server/.
#include <sys/socket.h>
#include <poll.h>

int serve_accept(int lfd) {
  int fd = ::accept(lfd, nullptr, nullptr);
  struct pollfd pfd{fd, 1, 0};
  int r = ::poll(&pfd, 1, 0);
  int ep = epoll_create1(0);
  return fd + r + ep;
}
