// fixture — identical violations to parse_surface_bad.cpp but without
// the parse-file tag: trusted-input code may assert freely, so
// nothing here fires.
#include <cassert>
#include <cstdint>
#include <vector>

struct ByteReader {
  bool u32(std::uint32_t& v);
  std::size_t remaining() const;
};

bool decode_fixture(ByteReader& r, std::vector<std::uint32_t>& out) {
  std::uint32_t n = 0;
  assert(r.remaining() >= 4);
  r.u32(n);
  out.resize(n * sizeof(std::uint32_t));
  return true;
}
