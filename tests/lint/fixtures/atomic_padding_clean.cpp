// FASTJOIN_HOT_PATH
// Fixture — every layout the atomic-padding rule must accept: padded
// atomics next to plain fields, packed all-atomic records, containers
// of atomics, and a lone atomic inside an alignas struct.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

struct PaddedRing {
  std::size_t mask_ = 0;
  alignas(64) std::atomic<bool> closed_{false};  // padded: clean
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;  // rides head_'s line by design
};

struct AllAtomicSlot {  // packed atomic record: deliberate layout
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint16_t> code{0};
};

struct alignas(64) Shard {
  std::atomic<std::uint64_t> v{0};  // sole member, struct-padded
};

struct Histogram {
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // wrapped
  std::size_t n_buckets_ = 0;
};
