// FASTJOIN_PARSE_FILE: fixture — a tagged decoder that crashes on
// hostile input, discards a reader result, and multiplies a hostile
// count before bounding it.
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <vector>

struct ByteReader {
  bool u32(std::uint32_t& v);
  std::size_t remaining() const;
};

bool decode_fixture(ByteReader& r, std::vector<std::uint32_t>& out) {
  std::uint32_t n = 0;
  assert(r.remaining() >= 4);
  if (!r.u32(n)) abort();
  if (n == 0) throw 1;
  r.u32(n);
  out.resize(n * sizeof(std::uint32_t));
  auto* scratch = new std::uint32_t[n * 2];
  delete[] scratch;
  return true;
}
