// Fixture — identical wall-clock reads to protocol_clock_bad.cpp but
// WITHOUT the protocol-file tag: the rule is scoped to the protocol
// control plane and must stay quiet here.
#include <chrono>
#include <thread>

void ordinary_wait() {
  auto deadline = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  (void)deadline;
}
