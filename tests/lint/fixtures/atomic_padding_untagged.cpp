// Fixture — identical layout to atomic_padding_bad.cpp but with no
// FASTJOIN_HOT_PATH tag: the rule is scoped to hot files and must
// stay quiet here.
#include <atomic>
#include <cstddef>

struct ColdStruct {
  std::size_t mask_ = 0;
  std::atomic<bool> closed_{false};
  std::size_t cached_tail_ = 0;
};
