// FASTJOIN_PARSE_FILE: fixture — a tagged header whose decode overload
// IS exercised by the committed harnesses (HelloMsg appears throughout
// tests/fuzz/fuzz_wire.cpp), so decode-parity stays quiet.
#pragma once
#include <cstdint>
#include <vector>

namespace fastjoin::fixture {

struct HelloMsg {
  std::uint32_t worker_id = 0;
};

bool decode(const std::vector<std::byte>& p, HelloMsg& m);

}  // namespace fastjoin::fixture
