#include "datagen/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace fastjoin {
namespace {

std::vector<Record> sample_records(int n) {
  std::vector<Record> out;
  for (int i = 0; i < n; ++i) {
    Record r;
    r.side = i % 2 ? Side::kS : Side::kR;
    r.key = static_cast<KeyId>(i * 31 + 7);
    r.seq = static_cast<std::uint64_t>(i);
    r.payload = static_cast<std::uint64_t>(i) * 1000;
    r.ts = i * 123;
    out.push_back(r);
  }
  return out;
}

struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(TraceIo, BinaryRoundTripExact) {
  TempFile f("roundtrip.fjt");
  const auto records = sample_records(1000);
  EXPECT_EQ(write_trace_binary(f.path, records), 1000u);
  const auto back = read_trace_binary(f.path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].key, records[i].key);
    EXPECT_EQ(back[i].seq, records[i].seq);
    EXPECT_EQ(back[i].payload, records[i].payload);
    EXPECT_EQ(back[i].ts, records[i].ts);
    EXPECT_EQ(back[i].side, records[i].side);
  }
}

TEST(TraceIo, StreamingSourceMatchesBulkRead) {
  TempFile f("stream.fjt");
  const auto records = sample_records(257);
  write_trace_binary(f.path, records);
  TraceFileSource src(f.path);
  EXPECT_EQ(src.total_records(), 257u);
  std::size_t i = 0;
  while (auto rec = src.next()) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(rec->seq, records[i].seq);
    ++i;
  }
  EXPECT_EQ(i, 257u);
  EXPECT_FALSE(src.next().has_value());
}

TEST(TraceIo, WriteFromSourceDrains) {
  TempFile f("gen.fjt");
  KeyStreamSpec r;
  r.num_keys = 100;
  KeyStreamSpec s = r;
  s.seed = 9;
  TraceConfig tc;
  tc.total_records = 500;
  TraceGenerator gen(r, s, tc);
  EXPECT_EQ(write_trace_binary(f.path, gen), 500u);
  EXPECT_EQ(read_trace_binary(f.path).size(), 500u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(TraceFileSource("/nonexistent/path.fjt"),
               std::runtime_error);
  EXPECT_THROW(read_trace_binary("/nonexistent/path.fjt"),
               std::runtime_error);
}

TEST(TraceIo, BadMagicThrows) {
  TempFile f("junk.fjt");
  std::ofstream out(f.path, std::ios::binary);
  out << "this is not a trace file at all, definitely";
  out.close();
  EXPECT_THROW(TraceFileSource src(f.path), std::runtime_error);
}

TEST(TraceIo, TruncatedFileDetected) {
  TempFile f("trunc.fjt");
  write_trace_binary(f.path, sample_records(100));
  // Chop the file short.
  std::ifstream in(f.path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();
  EXPECT_THROW(read_trace_binary(f.path), std::runtime_error);
}

TEST(TraceIo, CsvHasHeaderAndRows) {
  TempFile f("trace.csv");
  const auto records = sample_records(10);
  EXPECT_EQ(write_trace_csv(f.path, records), 10u);
  std::ifstream in(f.path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "side,key,seq,payload,ts");
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 10);
}

TEST(TraceIo, CsvRoundTrip) {
  TempFile f("round.csv");
  const auto records = sample_records(200);
  write_trace_csv(f.path, records);
  const auto back = read_trace_csv(f.path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].key, records[i].key);
    EXPECT_EQ(back[i].seq, records[i].seq);
    EXPECT_EQ(back[i].payload, records[i].payload);
    EXPECT_EQ(back[i].ts, records[i].ts);
    EXPECT_EQ(back[i].side, records[i].side);
  }
}

TEST(TraceIo, CsvBadHeaderThrows) {
  TempFile f("bad.csv");
  std::ofstream out(f.path);
  out << "nope,nope\nR,1,2,3,4\n";
  out.close();
  EXPECT_THROW(read_trace_csv(f.path), std::runtime_error);
}

TEST(TraceIo, CsvMalformedRowThrows) {
  TempFile f("mal.csv");
  std::ofstream out(f.path);
  out << "side,key,seq,payload,ts\nR,1,2,3,4\nX,broken\n";
  out.close();
  EXPECT_THROW(read_trace_csv(f.path), std::runtime_error);
}

TEST(TraceIo, EmptyTraceRoundTrip) {
  TempFile f("empty.fjt");
  EXPECT_EQ(write_trace_binary(f.path, std::vector<Record>{}), 0u);
  EXPECT_TRUE(read_trace_binary(f.path).empty());
}

}  // namespace
}  // namespace fastjoin
