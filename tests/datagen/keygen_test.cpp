#include "datagen/keygen.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace fastjoin {
namespace {

TEST(KeyGenerator, RanksMapToDistinctKeys) {
  KeyStreamSpec spec;
  spec.num_keys = 10'000;
  KeyGenerator gen(spec);
  std::set<KeyId> keys;
  for (std::uint64_t r = 1; r <= spec.num_keys; ++r) {
    keys.insert(gen.key_for_rank(r));
  }
  EXPECT_EQ(keys.size(), spec.num_keys);
}

TEST(KeyGenerator, SameScrambleSharesUniverse) {
  // R and S streams built with the same (num_keys, scramble) must join
  // on a common key universe even with different seeds/skews.
  KeyStreamSpec r;
  r.num_keys = 1000;
  r.zipf_s = 1.0;
  r.seed = 1;
  KeyStreamSpec s = r;
  s.zipf_s = 2.0;
  s.seed = 2;
  KeyGenerator gr(r), gs(s);
  for (std::uint64_t rank = 1; rank <= 1000; ++rank) {
    EXPECT_EQ(gr.key_for_rank(rank), gs.key_for_rank(rank));
  }
}

TEST(KeyGenerator, DifferentScrambleDisjointUniverse) {
  KeyStreamSpec a;
  a.num_keys = 1000;
  KeyStreamSpec b = a;
  b.scramble = a.scramble + 1;
  KeyGenerator ga(a), gb(b);
  std::set<KeyId> ua, ub;
  for (std::uint64_t r = 1; r <= 1000; ++r) {
    ua.insert(ga.key_for_rank(r));
    ub.insert(gb.key_for_rank(r));
  }
  std::set<KeyId> inter;
  std::set_intersection(ua.begin(), ua.end(), ub.begin(), ub.end(),
                        std::inserter(inter, inter.begin()));
  // mix64 is bijective, so overlap is possible but vanishingly unlikely.
  EXPECT_LT(inter.size(), 3u);
}

TEST(KeyGenerator, ZipfStreamIsSkewed) {
  KeyStreamSpec spec;
  spec.dist = KeyDist::kZipf;
  spec.num_keys = 10'000;
  spec.zipf_s = 1.2;
  KeyGenerator gen(spec);
  std::map<KeyId, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[gen()];
  int max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  // The hottest key should hold far more than the uniform share.
  EXPECT_GT(max_count, 20 * n / 10'000);
}

TEST(KeyGenerator, UniformStreamIsFlat) {
  KeyStreamSpec spec;
  spec.dist = KeyDist::kUniform;
  spec.num_keys = 100;
  KeyGenerator gen(spec);
  std::map<KeyId, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[gen()];
  for (const auto& [_, c] : counts) {
    EXPECT_NEAR(c, n / 100, n / 100 / 4);
  }
}

TEST(KeyGenerator, HottestKeyIsRankOne) {
  KeyStreamSpec spec;
  spec.dist = KeyDist::kZipf;
  spec.num_keys = 1000;
  spec.zipf_s = 1.5;
  KeyGenerator gen(spec);
  std::map<KeyId, int> counts;
  for (int i = 0; i < 50'000; ++i) ++counts[gen()];
  KeyId hottest = 0;
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    if (c > max_count) {
      max_count = c;
      hottest = k;
    }
  }
  EXPECT_EQ(hottest, gen.key_for_rank(1));
}

TEST(KeyGenerator, DeterministicAcrossInstances) {
  KeyStreamSpec spec;
  spec.num_keys = 500;
  spec.seed = 77;
  KeyGenerator a(spec), b(spec);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace fastjoin
