#include "datagen/ride_hailing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace fastjoin {
namespace {

RideHailingConfig small_config() {
  RideHailingConfig cfg;
  cfg.num_locations = 2000;
  cfg.order_rate = 10'000;
  cfg.track_rate = 50'000;
  cfg.total_records = 100'000;
  return cfg;
}

/// Fraction of the stream held by the top `frac` of observed keys.
double observed_top_mass(const std::map<KeyId, std::uint64_t>& counts,
                         double frac, std::uint64_t universe) {
  std::vector<std::uint64_t> v;
  v.reserve(counts.size());
  std::uint64_t total = 0;
  for (const auto& [_, c] : counts) {
    v.push_back(c);
    total += c;
  }
  std::sort(v.rbegin(), v.rend());
  const auto top = static_cast<std::size_t>(frac * universe);
  std::uint64_t mass = 0;
  for (std::size_t i = 0; i < std::min(top, v.size()); ++i) mass += v[i];
  return static_cast<double>(mass) / static_cast<double>(total);
}

TEST(RideHailing, CalibratedExponentsAreOrdered) {
  RideHailingGenerator gen(small_config());
  // Orders concentrate 80% into 20% of keys, tracks into 24% — the
  // order stream must be calibrated steeper.
  EXPECT_GT(gen.order_exponent(), gen.track_exponent());
  EXPECT_GT(gen.track_exponent(), 0.5);
}

TEST(RideHailing, SkewMatchesPaperStatistics) {
  const auto cfg = small_config();
  RideHailingGenerator gen(cfg);
  std::map<KeyId, std::uint64_t> orders, tracks;
  while (auto rec = gen.next()) {
    if (rec->side == Side::kR) {
      ++orders[rec->key];
    } else {
      ++tracks[rec->key];
    }
  }
  // Fig. 1a: ~20% of locations hold ~80% of orders.
  EXPECT_NEAR(observed_top_mass(orders, 0.20, cfg.num_locations), 0.80,
              0.05);
  // Fig. 1b: ~24% of locations hold ~80% of tracks.
  EXPECT_NEAR(observed_top_mass(tracks, 0.24, cfg.num_locations), 0.80,
              0.05);
}

TEST(RideHailing, StreamsShareKeyUniverse) {
  RideHailingGenerator gen(small_config());
  std::map<KeyId, int> order_keys, track_keys;
  while (auto rec = gen.next()) {
    (rec->side == Side::kR ? order_keys : track_keys)[rec->key] = 1;
  }
  // Hot locations appear in both streams (that is what makes them join).
  int shared = 0;
  for (const auto& [k, _] : order_keys) {
    if (track_keys.count(k)) ++shared;
  }
  EXPECT_GT(shared, static_cast<int>(order_keys.size() / 2));
}

TEST(RideHailing, TrackStreamDominatesVolume) {
  const auto cfg = small_config();
  RideHailingGenerator gen(cfg);
  std::uint64_t orders = 0, tracks = 0;
  while (auto rec = gen.next()) {
    (rec->side == Side::kR ? orders : tracks)++;
  }
  EXPECT_NEAR(static_cast<double>(tracks) / orders,
              cfg.track_rate / cfg.order_rate, 1.0);
}

TEST(RideHailing, TaxiIdsWithinPool) {
  auto cfg = small_config();
  cfg.num_taxis = 100;
  cfg.total_records = 10'000;
  RideHailingGenerator gen(cfg);
  while (auto rec = gen.next()) {
    if (rec->side == Side::kS) {
      EXPECT_LT(rec->payload, cfg.num_taxis);
    }
  }
}

TEST(RideHailing, Deterministic) {
  RideHailingGenerator a(small_config());
  RideHailingGenerator b(small_config());
  for (int i = 0; i < 1000; ++i) {
    auto ra = a.next();
    auto rb = b.next();
    ASSERT_TRUE(ra && rb);
    EXPECT_EQ(ra->key, rb->key);
    EXPECT_EQ(ra->payload, rb->payload);
  }
}

}  // namespace
}  // namespace fastjoin
