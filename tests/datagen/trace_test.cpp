#include "datagen/trace.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fastjoin {
namespace {

KeyStreamSpec small_spec(std::uint64_t seed) {
  KeyStreamSpec spec;
  spec.num_keys = 100;
  spec.zipf_s = 1.0;
  spec.seed = seed;
  return spec;
}

TEST(TraceGenerator, EmitsExactlyTotalRecords) {
  TraceConfig cfg;
  cfg.total_records = 1000;
  TraceGenerator gen(small_spec(1), small_spec(2), cfg);
  std::uint64_t n = 0;
  while (gen.next()) ++n;
  EXPECT_EQ(n, 1000u);
  EXPECT_FALSE(gen.next().has_value());  // stays exhausted
}

TEST(TraceGenerator, TimestampsNonDecreasing) {
  TraceConfig cfg;
  cfg.total_records = 5000;
  cfg.arrivals = ArrivalKind::kPoisson;
  TraceGenerator gen(small_spec(1), small_spec(2), cfg);
  SimTime prev = -1;
  while (auto rec = gen.next()) {
    EXPECT_GE(rec->ts, prev);
    prev = rec->ts;
  }
}

TEST(TraceGenerator, SequenceNumbersPerSideAreDense) {
  TraceConfig cfg;
  cfg.total_records = 2000;
  TraceGenerator gen(small_spec(1), small_spec(2), cfg);
  std::uint64_t next_r = 0, next_s = 0;
  while (auto rec = gen.next()) {
    if (rec->side == Side::kR) {
      EXPECT_EQ(rec->seq, next_r++);
    } else {
      EXPECT_EQ(rec->seq, next_s++);
    }
  }
  EXPECT_GT(next_r, 0u);
  EXPECT_GT(next_s, 0u);
}

TEST(TraceGenerator, RateRatioRespected) {
  TraceConfig cfg;
  cfg.r_rate = 10'000;
  cfg.s_rate = 40'000;
  cfg.total_records = 50'000;
  TraceGenerator gen(small_spec(1), small_spec(2), cfg);
  std::uint64_t r = 0, s = 0;
  while (auto rec = gen.next()) {
    (rec->side == Side::kR ? r : s)++;
  }
  EXPECT_NEAR(static_cast<double>(s) / static_cast<double>(r), 4.0, 0.2);
}

TEST(TraceGenerator, FixedArrivalsHaveConstantGaps) {
  TraceConfig cfg;
  cfg.r_rate = 1000;
  cfg.s_rate = 0.0001;  // effectively silence S
  cfg.total_records = 100;
  cfg.arrivals = ArrivalKind::kFixed;
  TraceGenerator gen(small_spec(1), small_spec(2), cfg);
  SimTime prev = -1;
  SimTime gap = -1;
  while (auto rec = gen.next()) {
    if (rec->side != Side::kR) continue;
    if (prev >= 0) {
      const SimTime g = rec->ts - prev;
      if (gap >= 0) EXPECT_EQ(g, gap);
      gap = g;
    }
    prev = rec->ts;
  }
  EXPECT_EQ(gap, kNanosPerSec / 1000);
}

TEST(TraceGenerator, PoissonArrivalsJitter) {
  TraceConfig cfg;
  cfg.r_rate = 1000;
  cfg.s_rate = 0.0001;
  cfg.total_records = 200;
  cfg.arrivals = ArrivalKind::kPoisson;
  TraceGenerator gen(small_spec(1), small_spec(2), cfg);
  std::map<SimTime, int> gaps;
  SimTime prev = -1;
  while (auto rec = gen.next()) {
    if (rec->side != Side::kR) continue;
    if (prev >= 0) ++gaps[rec->ts - prev];
    prev = rec->ts;
  }
  EXPECT_GT(gaps.size(), 10u);  // many distinct gaps
}

TEST(TraceGenerator, Deterministic) {
  TraceConfig cfg;
  cfg.total_records = 1000;
  cfg.arrivals = ArrivalKind::kPoisson;
  TraceGenerator a(small_spec(1), small_spec(2), cfg);
  TraceGenerator b(small_spec(1), small_spec(2), cfg);
  while (true) {
    auto ra = a.next();
    auto rb = b.next();
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra) break;
    EXPECT_EQ(ra->key, rb->key);
    EXPECT_EQ(ra->ts, rb->ts);
    EXPECT_EQ(ra->side, rb->side);
    EXPECT_EQ(ra->seq, rb->seq);
  }
}

TEST(DatasetScale, MapsGbToTuplesLinearly) {
  DatasetScale scale;
  const auto t10 = scale.tuples_for_gb(10);
  const auto t30 = scale.tuples_for_gb(30);
  const auto t70 = scale.tuples_for_gb(70);
  EXPECT_NEAR(static_cast<double>(t30) / t10, 3.0, 0.01);
  EXPECT_NEAR(static_cast<double>(t70) / t10, 7.0, 0.01);
  EXPECT_GT(t10, 0u);
}

}  // namespace
}  // namespace fastjoin
