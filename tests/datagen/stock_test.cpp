#include "datagen/stock.hpp"

#include <gtest/gtest.h>

#include <map>

namespace fastjoin {
namespace {

StockConfig small_config() {
  StockConfig cfg;
  cfg.num_symbols = 500;
  cfg.total_records = 50'000;
  return cfg;
}

TEST(Stock, PayloadDecodesToValidPriceAndQuantity) {
  StockGenerator gen(small_config());
  while (auto rec = gen.next()) {
    const auto price = StockGenerator::price_cents(rec->payload);
    const auto qty = StockGenerator::quantity(rec->payload);
    EXPECT_GE(price, 100u);
    EXPECT_LT(price, 100'000u);
    EXPECT_GE(qty, 1u);
    EXPECT_LE(qty, 1'000u);
  }
}

TEST(Stock, BothSidesPresentRoughlyEqually) {
  StockGenerator gen(small_config());
  std::uint64_t buys = 0, sells = 0;
  while (auto rec = gen.next()) {
    (rec->side == Side::kR ? buys : sells)++;
  }
  EXPECT_NEAR(static_cast<double>(buys) / sells, 1.0, 0.1);
}

TEST(Stock, SymbolVolumeIsSkewed) {
  StockGenerator gen(small_config());
  std::map<KeyId, std::uint64_t> counts;
  std::uint64_t total = 0;
  while (auto rec = gen.next()) {
    ++counts[rec->key];
    ++total;
  }
  std::uint64_t max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 30 * total / 500);
}

TEST(Stock, BuyAndSellShareSymbolUniverse) {
  StockGenerator gen(small_config());
  std::map<KeyId, int> buy_keys, sell_keys;
  while (auto rec = gen.next()) {
    (rec->side == Side::kR ? buy_keys : sell_keys)[rec->key] = 1;
  }
  int shared = 0;
  for (const auto& [k, _] : buy_keys) {
    if (sell_keys.count(k)) ++shared;
  }
  EXPECT_GT(shared, static_cast<int>(buy_keys.size() * 3 / 4));
}

TEST(Stock, TimestampsNonDecreasing) {
  StockGenerator gen(small_config());
  SimTime prev = -1;
  while (auto rec = gen.next()) {
    EXPECT_GE(rec->ts, prev);
    prev = rec->ts;
  }
}

}  // namespace
}  // namespace fastjoin
