#include "datagen/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fastjoin {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (double s : {0.0, 0.5, 1.0, 2.0}) {
    ZipfDistribution z(1000, s);
    double sum = 0.0;
    for (std::uint64_t k = 1; k <= 1000; ++k) sum += z.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  ZipfDistribution z(100, 1.2);
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_GE(z.pmf(k), z.pmf(k + 1));
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfDistribution z(50, 0.0);
  for (std::uint64_t k = 1; k <= 50; ++k) {
    EXPECT_NEAR(z.pmf(k), 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, SamplesInRange) {
  ZipfDistribution z(100, 1.0);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = z(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 100u);
  }
}

TEST(Zipf, SingleRankAlwaysOne) {
  ZipfDistribution z(1, 1.5);
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(rng), 1u);
}

// Empirical frequencies must match the pmf (chi-square-lite check on the
// head of the distribution where counts are large).
class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalMatchesPmf) {
  const double s = GetParam();
  const std::uint64_t n = 1000;
  ZipfDistribution z(n, s);
  Xoshiro256 rng(42);
  const int samples = 500'000;
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (int i = 0; i < samples; ++i) ++counts[z(rng)];
  for (std::uint64_t k = 1; k <= 10; ++k) {
    const double expected = z.pmf(k) * samples;
    if (expected < 100) continue;  // too noisy to assert
    EXPECT_NEAR(counts[k], expected, 5 * std::sqrt(expected) + 10)
        << "s=" << s << " rank=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfFrequencyTest,
                         ::testing::Values(0.0, 0.5, 0.99, 1.0, 1.5, 2.0));

TEST(Zipf, TopMassGrowsWithSkew) {
  ZipfDistribution flat(10'000, 0.5);
  ZipfDistribution steep(10'000, 1.5);
  EXPECT_LT(flat.top_mass(0.2), steep.top_mass(0.2));
  EXPECT_GT(steep.top_mass(0.2), 0.9);
}

TEST(Zipf, TopMassUniformIsProportional) {
  ZipfDistribution z(1000, 0.0);
  EXPECT_NEAR(z.top_mass(0.2), 0.2, 1e-9);
}

TEST(Zipf, FitExponentHitsTarget) {
  // The paper's Fig. 1a property: top 20% of keys hold 80% of tuples.
  const double s = ZipfDistribution::fit_exponent(10'000, 0.20, 0.80);
  ZipfDistribution z(10'000, s);
  EXPECT_NEAR(z.top_mass(0.20), 0.80, 0.01);
  EXPECT_GT(s, 0.5);
  EXPECT_LT(s, 2.0);
}

TEST(Zipf, FitExponentTrackFraction) {
  // Fig. 1b: top 24% of locations hold 80% of track points.
  const double s = ZipfDistribution::fit_exponent(10'000, 0.24, 0.80);
  ZipfDistribution z(10'000, s);
  EXPECT_NEAR(z.top_mass(0.24), 0.80, 0.01);
  // A looser concentration target needs a smaller exponent.
  const double s_order = ZipfDistribution::fit_exponent(10'000, 0.20, 0.80);
  EXPECT_LT(s, s_order);
}

TEST(Zipf, DeterministicGivenSeed) {
  ZipfDistribution z(500, 1.1);
  Xoshiro256 a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z(a), z(b));
}

}  // namespace
}  // namespace fastjoin
