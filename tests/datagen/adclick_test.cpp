#include "datagen/adclick.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace fastjoin {
namespace {

AdClickConfig small_config() {
  AdClickConfig cfg;
  cfg.num_campaigns = 1000;
  cfg.query_rate = 10'000;
  cfg.click_through = 0.3;
  cfg.total_records = 50'000;
  return cfg;
}

TEST(AdClick, TimestampsNonDecreasing) {
  AdClickGenerator gen(small_config());
  SimTime prev = -1;
  while (auto rec = gen.next()) {
    EXPECT_GE(rec->ts, prev);
    prev = rec->ts;
  }
}

TEST(AdClick, ClickThroughRateApproximatelyHolds) {
  AdClickGenerator gen(small_config());
  std::uint64_t queries = 0, clicks = 0;
  while (auto rec = gen.next()) {
    (rec->side == Side::kR ? queries : clicks)++;
  }
  EXPECT_GT(queries, 0u);
  const double ctr = static_cast<double>(clicks) / queries;
  EXPECT_NEAR(ctr, 0.3, 0.05);
}

TEST(AdClick, EveryClickReferencesAnEarlierQuery) {
  AdClickGenerator gen(small_config());
  std::map<std::uint64_t, std::pair<KeyId, SimTime>> queries;
  while (auto rec = gen.next()) {
    if (rec->side == Side::kR) {
      queries[rec->seq] = {rec->key, rec->ts};
    } else {
      const auto it = queries.find(rec->payload);
      ASSERT_NE(it, queries.end()) << "click for unknown query";
      EXPECT_EQ(rec->key, it->second.first);   // same campaign
      EXPECT_GT(rec->ts, it->second.second);   // strictly later
    }
  }
}

TEST(AdClick, ClickSeqsAreDense) {
  AdClickGenerator gen(small_config());
  std::uint64_t next_click = 0;
  while (auto rec = gen.next()) {
    if (rec->side == Side::kS) {
      EXPECT_EQ(rec->seq, next_click++);
    }
  }
  EXPECT_GT(next_click, 0u);
}

TEST(AdClick, CampaignsAreSkewed) {
  AdClickGenerator gen(small_config());
  std::map<KeyId, std::uint64_t> counts;
  std::uint64_t total = 0;
  while (auto rec = gen.next()) {
    if (rec->side == Side::kR) {
      ++counts[rec->key];
      ++total;
    }
  }
  std::uint64_t max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  // Hot campaign far above uniform share.
  EXPECT_GT(max_count, 20 * total / 1000);
}

TEST(AdClick, Deterministic) {
  AdClickGenerator a(small_config());
  AdClickGenerator b(small_config());
  for (int i = 0; i < 2000; ++i) {
    auto ra = a.next();
    auto rb = b.next();
    ASSERT_TRUE(ra && rb);
    EXPECT_EQ(ra->key, rb->key);
    EXPECT_EQ(ra->ts, rb->ts);
    EXPECT_EQ(ra->side, rb->side);
  }
}

}  // namespace
}  // namespace fastjoin
