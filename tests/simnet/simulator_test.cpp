#include "simnet/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fastjoin {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesNow) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(10, [&] { ++ran; });
  sim.schedule_at(20, [&] { ++ran; });
  sim.schedule_at(30, [&] { ++ran; });
  const auto n = sim.run(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  sim.run();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, CancelSkipsEvent) {
  Simulator sim;
  int ran = 0;
  const auto h = sim.schedule_at(10, [&] { ++ran; });
  sim.schedule_at(20, [&] { ++ran; });
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(ran, 1);
}

TEST(Simulator, CancelAfterExecutionIsNoop) {
  Simulator sim;
  int ran = 0;
  const auto h = sim.schedule_at(10, [&] { ++ran; });
  sim.run();
  sim.cancel(h);  // already executed
  sim.schedule_at(20, [&] { ++ran; });
  sim.run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, EventsCanScheduleChains) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.executed(), 100u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, TimeDoesNotAdvancePastLastEvent) {
  Simulator sim;
  sim.schedule_at(42, [] {});
  sim.run(1'000'000);
  EXPECT_EQ(sim.now(), 42);
}

}  // namespace
}  // namespace fastjoin
