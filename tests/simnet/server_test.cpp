#include "simnet/server.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fastjoin {
namespace {

TEST(Server, ServesJobsFifoOneAtATime) {
  Simulator sim;
  Server server(sim, "s0");
  std::vector<std::pair<int, SimTime>> done;
  sim.schedule_at(0, [&] {
    server.submit(10, [&] { done.push_back({1, sim.now()}); });
    server.submit(5, [&] { done.push_back({2, sim.now()}); });
  });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 1);
  EXPECT_EQ(done[0].second, 10);
  EXPECT_EQ(done[1].first, 2);
  EXPECT_EQ(done[1].second, 15);  // serialized, not parallel
}

TEST(Server, QueueLengthExcludesInService) {
  Simulator sim;
  Server server(sim);
  sim.schedule_at(0, [&] {
    server.submit(100, nullptr);
    server.submit(100, nullptr);
    server.submit(100, nullptr);
    EXPECT_TRUE(server.busy());
    EXPECT_EQ(server.queue_length(), 2u);
  });
  sim.run();
  EXPECT_EQ(server.jobs_completed(), 3u);
  EXPECT_EQ(server.queue_length(), 0u);
}

TEST(Server, PauseHoldsQueueButFinishesInService) {
  Simulator sim;
  Server server(sim);
  int completed = 0;
  sim.schedule_at(0, [&] {
    server.submit(10, [&] { ++completed; });
    server.submit(10, [&] { ++completed; });
  });
  sim.schedule_at(5, [&] { server.pause(); });
  sim.schedule_at(50, [&] {
    EXPECT_EQ(completed, 1);  // in-service job finished, queued held
    server.resume();
  });
  sim.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(sim.now(), 60);  // resumed at 50, second job takes 10
}

TEST(Server, SubmitWhilePausedDefersService) {
  Simulator sim;
  Server server(sim);
  int completed = 0;
  sim.schedule_at(0, [&] {
    server.pause();
    server.submit(10, [&] { ++completed; });
  });
  sim.schedule_at(100, [&] { server.resume(); });
  sim.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(sim.now(), 110);
}

TEST(Server, BusyTimeAccumulates) {
  Simulator sim;
  Server server(sim);
  sim.schedule_at(0, [&] {
    server.submit(30, nullptr);
    server.submit(20, nullptr);
  });
  sim.run();
  EXPECT_EQ(server.busy_time(), 50);
}

TEST(Server, ResumeWithoutPauseIsNoop) {
  Simulator sim;
  Server server(sim);
  server.resume();
  EXPECT_FALSE(server.paused());
}

}  // namespace
}  // namespace fastjoin
