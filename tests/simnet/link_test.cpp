#include "simnet/link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fastjoin {
namespace {

TEST(Link, LatencyOnlyDelivery) {
  Simulator sim;
  Link link(sim, /*latency=*/1000, /*bytes_per_sec=*/0);
  SimTime delivered = -1;
  sim.schedule_at(0, [&] {
    link.send(1'000'000, [&] { delivered = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(delivered, 1000);  // infinite bandwidth: latency only
}

TEST(Link, SerializationDelayScalesWithBytes) {
  Simulator sim;
  Link link(sim, /*latency=*/0, /*bytes_per_sec=*/1e9);  // 1 GB/s
  SimTime delivered = -1;
  sim.schedule_at(0, [&] {
    link.send(1'000'000, [&] { delivered = sim.now(); });  // 1 MB
  });
  sim.run();
  EXPECT_EQ(delivered, 1'000'000);  // 1 MB / 1 GB/s = 1 ms = 1e6 ns
}

TEST(Link, BackToBackTransfersSerialize) {
  Simulator sim;
  Link link(sim, /*latency=*/100, /*bytes_per_sec=*/1e9);
  std::vector<SimTime> deliveries;
  sim.schedule_at(0, [&] {
    link.send(1000, [&] { deliveries.push_back(sim.now()); });  // 1 us tx
    link.send(1000, [&] { deliveries.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 1000 + 100);
  // Second transfer waits for the first to clear the link head.
  EXPECT_EQ(deliveries[1], 2000 + 100);
}

TEST(Link, IdleLinkTransmitsImmediately) {
  Simulator sim;
  Link link(sim, 10, 1e9);
  SimTime d1 = -1, d2 = -1;
  sim.schedule_at(0, [&] { link.send(1000, [&] { d1 = sim.now(); }); });
  // Sent long after the first transfer finished: no queueing.
  sim.schedule_at(50'000, [&] { link.send(1000, [&] { d2 = sim.now(); }); });
  sim.run();
  EXPECT_EQ(d1, 1010);
  EXPECT_EQ(d2, 50'000 + 1010);
}

TEST(Link, CountsTraffic) {
  Simulator sim;
  Link link(sim, 0, 0);
  sim.schedule_at(0, [&] {
    link.send(100, [] {});
    link.send(200, [] {});
  });
  sim.run();
  EXPECT_EQ(link.bytes_sent(), 300u);
  EXPECT_EQ(link.messages_sent(), 2u);
}

}  // namespace
}  // namespace fastjoin
