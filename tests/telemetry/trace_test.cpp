#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace fastjoin::telemetry {
namespace {

#ifdef FASTJOIN_NO_TELEMETRY

TEST(TelemetryStubs, TracingCompilesToNoOps) {
  TraceLog& log = TraceLog::global();
  const auto h = log.begin("a", "b");
  EXPECT_EQ(h, TraceLog::kInvalid);
  log.arg(h, "k", 1);
  log.end(h);
  log.instant("i", "c");
  EXPECT_EQ(log.size(), 0u);
  { ScopedSpan span("a", "b"); }
  std::ostringstream os;
  log.write_chrome_trace(os);
  EXPECT_TRUE(os.str().empty());
}

#else  // telemetry enabled ----------------------------------------------

TEST(TraceLog, BeginEndProducesClosedSpan) {
  TraceLog log;
  const auto h = log.begin("migrate", "migration");
  ASSERT_NE(h, TraceLog::kInvalid);
  log.arg(h, "src", 3);
  log.end(h);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.dropped(), 0u);

  std::ostringstream os;
  log.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"migrate\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\": \"migration\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"src\": 3"), std::string::npos);
}

TEST(TraceLog, DoubleEndIsIdempotent) {
  TraceLog log;
  const auto h = log.begin("s", "c");
  log.end(h);
  log.end(h);  // second close must not rewrite the duration
  EXPECT_EQ(log.size(), 1u);
}

TEST(TraceLog, InstantEvents) {
  TraceLog log;
  log.instant("crash", "fault");
  std::ostringstream os;
  log.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"crash\""), std::string::npos);
}

TEST(TraceLog, ScopedSpanClosesOnDestruction) {
  TraceLog log;
  {
    ScopedSpan span(log, "extract", "migration");
    span.arg("keys", 12);
  }
  std::ostringstream os;
  log.write_chrome_trace(os);
  EXPECT_NE(os.str().find("\"keys\": 12"), std::string::npos);
  EXPECT_EQ(log.size(), 1u);
}

TEST(TraceLog, EscapesQuotesAndControlChars) {
  TraceLog log;
  log.instant("we\"ird\nname", "c");
  std::ostringstream os;
  log.write_chrome_trace(os);
  EXPECT_NE(os.str().find("we\\\"ird name"), std::string::npos);
}

TEST(TraceLog, InvalidHandleOpsAreNoOps) {
  TraceLog log;
  log.end(TraceLog::kInvalid);
  log.arg(TraceLog::kInvalid, "k", 1);
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLog, ClearEmptiesTheLog) {
  TraceLog log;
  log.instant("a", "b");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(TraceLog, SpansFromDifferentThreadsGetDifferentTids) {
  TraceLog log;
  log.instant("main", "c");
  std::thread other([&log] { log.instant("other", "c"); });
  other.join();
  ASSERT_EQ(log.size(), 2u);
  std::ostringstream os;
  log.write_chrome_trace(os);
  const std::string out = os.str();
  // Both events present; Perfetto assigns them separate tracks.
  EXPECT_NE(out.find("\"name\": \"main\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"other\""), std::string::npos);
}

TEST(TraceLog, WriteToFileRoundTrips) {
  TraceLog log;
  log.instant("marker", "test");
  const std::string path = ::testing::TempDir() + "trace_test.json";
  ASSERT_TRUE(log.write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"marker\""), std::string::npos);
}

TEST(TraceLog, ConcurrentSpansAreAllRecorded) {
  TraceLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(log, "work", "test");
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(log.size(), kThreads * kPerThread);
}

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace
}  // namespace fastjoin::telemetry
