#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include "telemetry/clock.hpp"

#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace fastjoin::telemetry {
namespace {

// The recorder is process-global (rings are retained after thread
// exit, which is the point), so these tests assert on the presence of
// their own distinctive events rather than on global emptiness.

std::string dump() {
  std::ostringstream os;
  flight_dump(os);
  return os.str();
}

#ifdef FASTJOIN_NO_TELEMETRY

TEST(TelemetryStubs, FlightRecorderCompilesToNoOps) {
  flight_record(FlightEvent::kCrash, 1, 2);
  EXPECT_EQ(flight_recorded_total(), 0u);
  EXPECT_FALSE(flight_dump(std::string("unused.dump")));
  EXPECT_NE(dump().find("compiled out"), std::string::npos);
  // Names stay available for tooling even when recording is out.
  EXPECT_STREQ(flight_event_name(FlightEvent::kCrash), "crash");
}

#else  // telemetry enabled ----------------------------------------------

TEST(FlightRecorder, RecordsAreCountedAndDumped) {
  const std::uint64_t before = flight_recorded_total();
  flight_record(FlightEvent::kCtrlHold, 77001, 42);
  EXPECT_EQ(flight_recorded_total(), before + 1);
  const std::string out = dump();
  EXPECT_NE(out.find("ctrl_hold a=77001 b=42"), std::string::npos) << out;
}

TEST(FlightRecorder, ThreadLabelAppearsInDump) {
  std::thread t([] {
    set_thread_label("labeled-worker");
    flight_record(FlightEvent::kCtrlWindow, 88002, 0);
  });
  t.join();
  const std::string out = dump();
  EXPECT_NE(out.find("[labeled-worker]"), std::string::npos);
  // The exited thread's ring is retained, marked as such.
  EXPECT_NE(out.find("(exited)"), std::string::npos);
  EXPECT_NE(out.find("ctrl_window a=88002"), std::string::npos);
}

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  std::thread t([] {
    set_thread_label("wrap-test");
    for (std::uint64_t i = 0; i < kFlightRingCapacity + 100; ++i) {
      flight_record(FlightEvent::kBatchPushed, /*a=*/990000 + i, i);
    }
  });
  t.join();
  const std::string out = dump();
  // Oldest 100 events were overwritten; the newest survives.
  EXPECT_EQ(out.find("batch_pushed a=990000 "), std::string::npos);
  EXPECT_EQ(out.find("batch_pushed a=990099 "), std::string::npos);
  EXPECT_NE(out.find("batch_pushed a=990100 "), std::string::npos);
  std::ostringstream last;
  last << "batch_pushed a=" << (990000 + kFlightRingCapacity + 99);
  EXPECT_NE(out.find(last.str()), std::string::npos);
}

TEST(FlightRecorder, ConcurrentRecordersEachKeepTheirRing) {
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      std::string label = "conc-" + std::to_string(t);
      set_thread_label(label.c_str());
      for (int i = 0; i < 500; ++i) {
        flight_record(FlightEvent::kIngestAppend,
                      static_cast<std::uint64_t>(t), 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  const std::string out = dump();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(out.find("[conc-" + std::to_string(t) + "]"),
              std::string::npos);
  }
}

TEST(FlightRecorder, DumpToFile) {
  flight_record(FlightEvent::kMigrationDone, 55003, 9);
  const std::string path = ::testing::TempDir() + "flight_test.dump";
  ASSERT_TRUE(flight_dump(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("migration_done a=55003 b=9"),
            std::string::npos);
  EXPECT_NE(buf.str().find("=== end flight recorder dump ==="),
            std::string::npos);
}

TEST(FlightRecorder, FlightIdPacksSideAndInstance) {
  EXPECT_EQ(flight_id(0, 0), 0u);
  EXPECT_EQ(flight_id(1, 3), (1ull << 32) | 3);
  EXPECT_EQ(flight_id(1, 0xffffffffull) >> 32, 1u);
  EXPECT_EQ(flight_id(0, 7) & 0xffffffffull, 7u);
}

TEST(FlightRecorder, EventNamesAreStable) {
  EXPECT_STREQ(flight_event_name(FlightEvent::kCrash), "crash");
  EXPECT_STREQ(flight_event_name(FlightEvent::kCtrlHoldAck),
               "ctrl_hold_ack");
  EXPECT_STREQ(flight_event_name(FlightEvent::kIngestBackpressure),
               "ingest_backpressure");
  EXPECT_STREQ(flight_event_name(static_cast<FlightEvent>(60'000)), "?");
}

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace
}  // namespace fastjoin::telemetry
