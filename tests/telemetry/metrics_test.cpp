#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"

namespace fastjoin::telemetry {
namespace {

#ifdef FASTJOIN_NO_TELEMETRY

// The compiled-out build must keep the exact API shape as inert stubs.
TEST(TelemetryStubs, MetricsCompileToNoOps) {
  Counter c;
  c.add(42);
  EXPECT_EQ(c.value(), 0u);
  Gauge g;
  g.set(1.0);
  EXPECT_EQ(g.value(), 0.0);
  ConcurrentHistogram h;
  h.record(5.0);
  EXPECT_EQ(h.count(), 0u);
  MetricRegistry reg;
  reg.counter("x").add();
  reg.sample();
  EXPECT_EQ(reg.series("x"), nullptr);
  EXPECT_EQ(reg.snapshot().to_json(), "{}");
}

#else  // telemetry enabled ----------------------------------------------

TEST(Counter, SingleThreadedExact) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

// The acceptance test for the wait-free shards: N writers hammering the
// same counter must lose nothing. Run under TSan this also proves the
// relaxed fetch_adds are race-free.
TEST(Counter, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, ConcurrentWeightedAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c, t] {
      for (std::uint64_t i = 0; i < 10'000; ++i) {
        c.add(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.value(), 10'000u * (1 + 2 + 3 + 4));
}

TEST(Gauge, SetAddValue) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Gauge, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&g] {
      for (int i = 0; i < 10'000; ++i) g.add(1.0);
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 40'000.0);
}

// A concurrent histogram fed the same samples as a LogHistogram must
// produce the identical snapshot — same bucket geometry, same counts,
// same percentile answers. This is the "one implementation of the
// quantile math" guarantee.
TEST(ConcurrentHistogram, SnapshotMatchesLogHistogram) {
  const HistogramParams params{1.0, 1e9, 32};
  ConcurrentHistogram ch(params);
  LogHistogram lh(params.min_value, params.max_value, params.sub_buckets);
  Xoshiro256 rng(7);
  for (int i = 0; i < 50'000; ++i) {
    const double v = 1.0 + rng.next_double() * 1e6;
    ch.record(v);
    lh.add(v);
  }
  const HistogramSnapshot a = ch.snapshot();
  const HistogramSnapshot& b = lh.snapshot();
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.buckets(), b.buckets());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.value_at_percentile(p), b.value_at_percentile(p))
        << "p=" << p;
  }
}

TEST(ConcurrentHistogram, ConcurrentRecordersLoseNothing) {
  ConcurrentHistogram h(HistogramParams{1.0, 1e6, 16});
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      // Identical values per thread keep the double sum associative,
      // so the total is exact regardless of interleaving.
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& w : writers) w.join();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum(),
                   kPerThread * (1.0 + 2 + 3 + 4 + 5 + 6 + 7 + 8));
  EXPECT_DOUBLE_EQ(snap.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap.max(), 8.0);
}

TEST(ConcurrentHistogram, WeightedRecord) {
  ConcurrentHistogram h;
  h.record(100.0, 5);
  h.record(200.0, 0);  // zero-count records are ignored
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.snapshot().sum(), 500.0);
}

TEST(MetricRegistry, FindOrCreateReturnsStableReferences) {
  MetricRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("y");
  EXPECT_NE(&a, &c);
  // Registering more metrics must not move earlier ones.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler_" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("x"), &a);
  EXPECT_EQ(&reg.gauge("g"), &reg.gauge("g"));
  EXPECT_EQ(&reg.histogram("h"), &reg.histogram("h"));
}

TEST(MetricRegistry, SnapshotReflectsValues) {
  MetricRegistry reg;
  reg.counter("events").add(7);
  reg.gauge("load").set(1.25);
  reg.histogram("lat").record(1000.0, 3);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "events");
  EXPECT_DOUBLE_EQ(snap.counters[0].value, 7.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].snapshot.count(), 3u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"events\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"load\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
}

TEST(MetricRegistry, SampleAppendsToSeries) {
  MetricRegistry reg;
  Counter& c = reg.counter("n");
  Gauge& g = reg.gauge("v");
  c.add(10);
  g.set(0.5);
  reg.sample(1'000);
  c.add(5);
  g.set(0.75);
  reg.sample(2'000);

  const TimeSeries* cs = reg.series("n");
  ASSERT_NE(cs, nullptr);
  ASSERT_EQ(cs->size(), 2u);
  EXPECT_EQ(cs->points()[0].t, 1'000);
  EXPECT_DOUBLE_EQ(cs->points()[0].v, 10.0);
  EXPECT_DOUBLE_EQ(cs->points()[1].v, 15.0);  // cumulative

  const TimeSeries* gs = reg.series("v");
  ASSERT_NE(gs, nullptr);
  EXPECT_DOUBLE_EQ(gs->points()[1].v, 0.75);

  EXPECT_EQ(reg.series("missing"), nullptr);

  reg.reset_series();
  EXPECT_EQ(reg.series("n")->size(), 0u);
  EXPECT_EQ(c.value(), 15u);  // values survive a series reset
}

TEST(MetricRegistry, ConcurrentRegistrationAndUpdates) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg] {
      // Every thread resolves the same names — exercising the
      // find-or-create path under contention — then updates.
      Counter& c = reg.counter("shared");
      for (int i = 0; i < 10'000; ++i) c.add();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(reg.counter("shared").value(), 80'000u);
}

TEST(MetricRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricRegistry::global(), &MetricRegistry::global());
}

#endif  // FASTJOIN_NO_TELEMETRY

}  // namespace
}  // namespace fastjoin::telemetry
